"""CLI campaign surface: ``repro sweep`` and the report cache flags."""

import pytest

from repro.campaign.store import ResultStore, set_cache_enabled, \
    set_default_store
from repro.cli import build_parser, main


@pytest.fixture
def fresh_store():
    """Route the process-wide store at a throwaway in-memory one and
    undo every process-global the CLI flags may set."""
    import repro.campaign.store as store_mod
    from repro.campaign.executor import set_default_jobs
    was_enabled = store_mod._cache_enabled
    store = ResultStore(":memory:")
    previous = set_default_store(store)
    set_cache_enabled(True)
    yield store
    set_default_store(previous)
    set_cache_enabled(was_enabled)
    set_default_jobs(None)


def sweep_args(*extra):
    return ["sweep", "--traces", "nd", "--middlewares", "xwhep",
            "--categories", "SMALL", "--strategies", "none,9C-C-R",
            "--seeds", "1,2", "--bot-size", "40", *extra]


def test_cli_sweep_runs_grid_and_reports_store(capsys, fresh_store):
    rc = main(sweep_args())
    out = capsys.readouterr().out
    assert rc == 0
    assert "nd/xwhep/SMALL/nospeq/s1" in out
    assert "nd/xwhep/SMALL/9C-C-R/s2" in out
    assert "4 misses" in out
    assert len(fresh_store) == 4

    # warm re-run: the whole grid comes from the store
    fresh_store.stats = type(fresh_store.stats)()
    main(sweep_args())
    out = capsys.readouterr().out
    assert "4 hits, 0 misses" in out


def test_cli_sweep_no_cache_bypasses_store(capsys, fresh_store):
    rc = main(sweep_args("--no-cache", "--jobs", "1"))
    assert rc == 0
    out = capsys.readouterr().out
    assert "[store]" not in out
    assert len(fresh_store) == 0


def test_cli_sweep_seed_slots_default():
    args = build_parser().parse_args(
        ["sweep", "--traces", "nd", "--seed-slots", "2",
         "--seed-base", "1000"])
    assert args.seed_slots == 2 and args.seed_base == 1000
    assert args.jobs is None and not args.no_cache


def test_cli_report_accepts_campaign_flags(capsys, fresh_store):
    rc = main(["report", "table3", "--jobs", "1", "--no-cache"])
    assert rc == 0
    assert "BoT categories" in capsys.readouterr().out


def test_cli_report_prints_store_stats_when_cached(capsys, fresh_store):
    rc = main(["report", "figure1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[store]" in out and "1 misses" in out
    fresh_store.stats = type(fresh_store.stats)()
    main(["report", "figure1"])
    assert "1 hits, 0 misses" in capsys.readouterr().out


def test_cli_sweep_federated_matrix(capsys, fresh_store):
    rc = main(["sweep", "--traces", "nd,g5klyo",
               "--middlewares", "xwhep",
               "--n-dcis", "1,2",
               "--routings", "round_robin,cheapest_drain",
               "--seeds", "3", "--tenants", "2", "--bot-size", "20",
               "--pool-fraction", "0.05", "--horizon-days", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    # 2 routings x 2 DCI counts x 1 seed through the same store path
    assert "fed1/round_robin/fairshare/SMALL/x2/s3" in out
    assert "fed2/cheapest_drain/fairshare/SMALL/x2/s3" in out
    assert "pool" in out and "mean slowdown" in out
    assert len(fresh_store) == 4

    # warm re-run answers the whole matrix from the store
    fresh_store.stats = type(fresh_store.stats)()
    main(["sweep", "--traces", "nd,g5klyo", "--middlewares", "xwhep",
          "--n-dcis", "1,2",
          "--routings", "round_robin,cheapest_drain",
          "--seeds", "3", "--tenants", "2", "--bot-size", "20",
          "--pool-fraction", "0.05", "--horizon-days", "2"])
    assert "4 hits, 0 misses" in capsys.readouterr().out


def test_cli_sweep_federated_pricing_applies_to_grid(capsys, fresh_store):
    rc = main(["sweep", "--traces", "nd", "--middlewares", "xwhep",
               "--routings", "cheapest_drain", "--providers", "ec2",
               "--pricing", "ec2=30", "--seeds", "3", "--tenants", "2",
               "--bot-size", "20", "--horizon-days", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "/priced/" in out


def test_cli_sweep_federated_rejects_bad_pricing():
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--n-dcis", "2", "--pricing", "nonsense"])
    assert "--pricing" in str(exc.value)


def test_cli_report_lists_economics():
    args = build_parser().parse_args(["report", "economics"])
    assert args.name == "economics"


def test_cli_sweep_federated_rejects_single_bot_axes():
    for flags, fragment in (
            (["--credit-fractions", "0.2"], "--pool-fraction"),
            (["--seed-slots", "2"], "--seeds"),
            (["--seed-base", "5"], "--seeds"),
            (["--strategies", "none"], "single QoS combo"),
            (["--strategies", "9C-C-R,9C-C-D"], "single QoS combo"),
            (["--thresholds", "0.5,0.9"], "single --thresholds")):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--n-dcis", "1", *flags])
        assert fragment in str(exc.value)


def test_cli_sweep_federated_strategy_and_threshold_apply(capsys,
                                                          fresh_store):
    rc = main(["sweep", "--traces", "nd", "--middlewares", "xwhep",
               "--n-dcis", "1", "--strategies", "9C-C-D",
               "--thresholds", "0.5", "--seeds", "3", "--tenants", "2",
               "--bot-size", "20", "--horizon-days", "2"])
    assert rc == 0
    assert "fed1/round_robin" in capsys.readouterr().out
    # the expanded scenario carried the combo and threshold through
    from repro.campaign.store import decode_result
    (digest,) = [row[0] for row in fresh_store._conn.execute(
        "SELECT digest FROM results")]
    (kind, payload) = fresh_store._conn.execute(
        "SELECT kind, payload FROM results WHERE digest = ?",
        (digest,)).fetchone()
    res = decode_result(kind, payload)
    assert res.config.strategy == "9C-C-D"
    assert res.config.strategy_threshold == 0.5
