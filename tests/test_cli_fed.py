"""CLI federation surface: ``repro fed`` and ``repro store``."""

import pytest

from repro.campaign.store import ResultStore
from repro.cli import build_parser, main
from repro.experiments.config import ExecutionConfig
from repro.experiments.runner import run_execution


def fed_args(*extra):
    return ["fed", "--traces", "seti,nd", "--middlewares", "boinc,xwhep",
            "--max-nodes=-,10", "--tenants", "2", "--bot-size", "20",
            "--pool-fraction", "0.05", "--horizon-days", "2",
            "--seed", "3", *extra]


def test_cli_fed_prints_tenants_dcis_and_fairness(capsys):
    rc = main(fed_args())
    out = capsys.readouterr().out
    assert rc == 0
    assert "fed2/round_robin/fairshare/SMALL/x2/s3" in out
    assert "dci0-seti-boinc" in out and "dci1-nd-xwhep" in out
    assert "user0" in out and "user1" in out
    assert "pool:" in out and "fairness:" in out
    assert "DCI dci0-seti-boinc" in out


def test_cli_fed_routing_and_budget_flags(capsys):
    rc = main(fed_args("--routing", "least_loaded", "--policy", "fifo",
                       "--max-workers", "4", "--dci-workers", "2"))
    out = capsys.readouterr().out
    assert rc == 0
    assert "fed2/least_loaded/fifo/SMALL/x2/s3" in out


def test_cli_fed_affinity_pins(capsys):
    rc = main(fed_args("--routing", "affinity",
                       "--affinity", "SMALL=dci1-nd-xwhep"))
    out = capsys.readouterr().out
    assert rc == 0
    # both tenants are SMALL, so both land on the pinned DCI
    assert out.count("-> dci1-nd-xwhep") == 2


def test_cli_fed_rejects_malformed_affinity(capsys):
    with pytest.raises(SystemExit) as exc:
        main(fed_args("--routing", "affinity", "--affinity", "SMALL"))
    assert "--affinity entry 'SMALL'" in str(exc.value)


def test_cli_fed_help_mentions_routing(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fed", "--help"])
    out = capsys.readouterr().out
    assert "routing" in out and "least_loaded" in out


def test_cli_store_stats_and_gc(capsys, tmp_path, monkeypatch):
    path = str(tmp_path / "store.sqlite")
    monkeypatch.setenv("REPRO_STORE", path)
    cfg = ExecutionConfig(trace="nd", middleware="xwhep",
                          category="SMALL", seed=5, bot_size=40)
    res = run_execution(cfg)
    stale = ResultStore(path, salt="old")
    stale.put(cfg, res)
    stale.close()
    current = ResultStore(path)
    current.put(cfg, res)
    current.close()

    assert main(["store", "stats"]) == 0
    out = capsys.readouterr().out
    assert "2 records" in out
    assert "execution" in out and "stale" in out

    assert main(["store", "gc"]) == 0
    out = capsys.readouterr().out
    assert "reclaimed 1 stale rows" in out
    assert "1 records remain" in out

    # second gc finds nothing left to reclaim
    main(["store", "gc"])
    assert "reclaimed 0 stale rows" in capsys.readouterr().out


def test_cli_report_lists_federation():
    args = build_parser().parse_args(["report", "federation"])
    assert args.name == "federation"


def test_cli_fed_admission_and_history_flags(capsys, tmp_path,
                                             monkeypatch):
    """--history persistent + --admission reject: a primed expensive
    archive makes the CLI withhold every QoS order and say so."""
    import numpy as np

    from repro.history import ExecutionRecord, PersistentHistoryStore

    path = str(tmp_path / "history.sqlite")
    monkeypatch.setenv("REPRO_HISTORY", path)
    store = PersistentHistoryStore(path)
    for dci in ("dci0-seti-boinc", "dci1-nd-xwhep"):
        store.add(ExecutionRecord(f"{dci}//SMALL", 20, 5000.0,
                                  np.linspace(50.0, 5000.0, 100),
                                  credits_spent=1e7))
    rc = main(fed_args("--history", "persistent",
                       "--admission", "reject"))
    out = capsys.readouterr().out
    assert rc == 0
    assert "[rejected]" in out
    assert "admission: 0 granted, 2 rejected, 0 deferred" in out


def test_cli_fed_history_routing_policies(capsys):
    for routing in ("history_weighted", "affinity_learned"):
        rc = main(fed_args("--routing", routing))
        out = capsys.readouterr().out
        assert rc == 0
        assert f"fed2/{routing}/fairshare/SMALL/x2/s3" in out


def test_cli_history_stats_and_gc(capsys, tmp_path, monkeypatch):
    import numpy as np

    from repro.history import ExecutionRecord, PersistentHistoryStore

    path = str(tmp_path / "history.sqlite")
    monkeypatch.setenv("REPRO_HISTORY", path)
    stale = PersistentHistoryStore(path, salt="old")
    stale.add(ExecutionRecord("nd-xwhep//SMALL", 10, 100.0,
                              np.linspace(1.0, 100.0, 100), 5.0))
    stale.close()
    current = PersistentHistoryStore(path)
    current.add(ExecutionRecord("nd-xwhep//SMALL", 10, 110.0,
                                np.linspace(1.0, 110.0, 100), 5.0))
    current.close()

    assert main(["history", "stats"]) == 0
    out = capsys.readouterr().out
    assert "1 current records (1 stale)" in out
    assert "nd-xwhep//SMALL" in out and "alpha" in out

    assert main(["history", "gc"]) == 0
    out = capsys.readouterr().out
    assert "reclaimed 1 stale rows" in out
    assert "1 records remain" in out


def test_cli_history_stats_rejects_out_of_range_fraction(capsys):
    for bad in ("0", "1.5", "-0.2"):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["history", "stats", "--at", bad])
        assert "fraction must be in (0, 1]" in capsys.readouterr().err


def test_cli_report_lists_learning():
    args = build_parser().parse_args(["report", "learning"])
    assert args.name == "learning"


def test_cli_store_stats_prints_trace_cache_counters(capsys, tmp_path,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "s.sqlite"))
    assert main(["store", "stats"]) == 0
    assert "trace cache" in capsys.readouterr().out


def test_cli_fed_pricing_and_cheapest_drain(capsys):
    rc = main(fed_args("--routing", "cheapest_drain",
                       "--pricing", "simulation=6"))
    out = capsys.readouterr().out
    assert rc == 0
    assert "fed2/cheapest_drain/fairshare/SMALL/x2/priced/s3" in out
    # the per-DCI accounting line shows credits at the quoted rate
    assert "@ 6 cr/CPUh" in out and "credits" in out


def test_cli_fed_rejects_malformed_pricing(capsys):
    for bad in ("ec2", "ec2=zero", "ec2=-1"):
        with pytest.raises(SystemExit) as exc:
            main(fed_args("--pricing", bad))
        assert "--pricing" in str(exc.value)


def test_cli_history_gc_prune_flags(capsys, tmp_path, monkeypatch):
    import numpy as np

    from repro.history import ExecutionRecord, PersistentHistoryStore

    path = str(tmp_path / "history.sqlite")
    monkeypatch.setenv("REPRO_HISTORY", path)
    store = PersistentHistoryStore(path)
    for i in range(4):
        store.add(ExecutionRecord("nd-xwhep//SMALL", 10, 100.0 + i,
                                  np.linspace(1.0, 100.0 + i, 100), 5.0))
    store.close()

    assert main(["history", "gc", "--max-per-env", "2"]) == 0
    out = capsys.readouterr().out
    assert "history prune (max 2/env): reclaimed 2 rows" in out
    assert "2 records remain" in out

    # age-out with a huge window keeps everything
    assert main(["history", "gc", "--max-age-days", "9999"]) == 0
    out = capsys.readouterr().out
    assert "reclaimed 0 rows" in out


def test_cli_history_stats_prints_provider_costs(capsys, tmp_path,
                                                 monkeypatch):
    import numpy as np

    from repro.history import ExecutionRecord, PersistentHistoryStore

    path = str(tmp_path / "history.sqlite")
    monkeypatch.setenv("REPRO_HISTORY", path)
    store = PersistentHistoryStore(path)
    store.add(ExecutionRecord("nd-xwhep//SMALL", 10, 100.0,
                              np.linspace(1.0, 100.0, 100), 30.0,
                              provider="stratuslab"))
    store.close()
    assert main(["history", "stats"]) == 0
    out = capsys.readouterr().out
    assert "per-provider learned cost" in out
    assert "stratuslab" in out
