"""Columnar node storage: validation, Node-API parity, pool parity.

The contract under test is substitutability: a :class:`NodeColumns`
realization behind the pool must be observationally identical to the
historical list-of-:class:`Node` construction — same interval answers,
same RNG draw sequence, same probe results — because every fixed-seed
golden in the repo depends on it.
"""

import numpy as np
import pytest

from repro.infra.columns import ColumnNode, NodeColumns
from repro.infra.node import Node
from repro.infra.pool import NodePool


def _fleet_raw(seed: int, n: int = 30):
    """Random per-node raw arrays in the trace cache's entry format."""
    rng = np.random.default_rng(seed)
    raw = []
    for i in range(n):
        k = int(rng.integers(0, 4))
        starts, ends = [], []
        t = 0.0
        for j in range(k):
            if j == 0 and i % 3 == 0:
                s = 0.0          # a third of the fleet is up at t=0
            else:
                t += float(rng.uniform(0.1, 5.0))
                s = t
            t = s + float(rng.uniform(0.5, 10.0))
            starts.append(s)
            ends.append(t)
        raw.append((np.asarray(starts, dtype=float),
                    np.asarray(ends, dtype=float),
                    float(rng.uniform(1.0, 10.0)), f"host{i}"))
    return raw


def _nodes_of(raw):
    return [Node(i, p, s, e, tag=tag)
            for i, (s, e, p, tag) in enumerate(raw)]


# ------------------------------------------------------------- validation
def test_from_raw_rejects_bad_power():
    with pytest.raises(ValueError, match="power"):
        NodeColumns.from_raw([(np.array([0.0]), np.array([1.0]),
                               0.0, "")])


def test_from_raw_rejects_shape_mismatch():
    with pytest.raises(ValueError, match="shapes"):
        NodeColumns.from_raw([(np.array([0.0, 2.0]), np.array([1.0]),
                               1.0, "")])


def test_from_raw_rejects_empty_intervals():
    with pytest.raises(ValueError, match="positive-length"):
        NodeColumns.from_raw([(np.array([1.0]), np.array([1.0]),
                               1.0, "")])


def test_from_raw_rejects_overlap_within_a_node():
    with pytest.raises(ValueError, match="sorted"):
        NodeColumns.from_raw([(np.array([0.0, 1.0]), np.array([2.0, 3.0]),
                               1.0, "")])


def test_from_raw_allows_overlap_across_node_borders():
    """The sortedness check is per node; adjacent nodes' intervals are
    unrelated (every node starts its own timeline)."""
    cols = NodeColumns.from_raw([
        (np.array([0.0]), np.array([10.0]), 1.0, "a"),
        (np.array([0.0]), np.array([5.0]), 1.0, "b"),
    ])
    assert cols.interval_at(0, 1.0) == (0.0, 10.0)
    assert cols.interval_at(1, 1.0) == (0.0, 5.0)


def test_template_arrays_are_immutable():
    cols = NodeColumns.from_raw(_fleet_raw(1, n=5))
    with pytest.raises(ValueError):
        cols.starts[0] = -1.0
    with pytest.raises(ValueError):
        cols.offsets[0] = 7


def test_fresh_shares_columns_but_not_cursor():
    template = NodeColumns.from_raw(_fleet_raw(2, n=12))
    a, b = template.fresh(), template.fresh()
    assert a.starts is b.starts and a.offsets is b.offsets
    assert a.cursor is not b.cursor
    # advancing one execution's cursors must not leak into the other
    for i in range(len(a)):
        a.advance(i, 1e9)
    assert np.array_equal(b.cursor, template.offsets[:-1])


# ------------------------------------------------------- Node-API parity
def test_column_node_matches_node_answers():
    raw = _fleet_raw(3, n=20)
    cols = NodeColumns.from_raw(raw).fresh()
    nodes = _nodes_of(raw)
    probes = [0.0, 0.5, 1.0, 3.0, 7.5, 12.0, 30.0, 100.0]
    for i, node in enumerate(nodes):
        view = cols.view(i)
        assert isinstance(view, ColumnNode)
        assert view.node_id == node.node_id
        assert view.power == node.power
        assert view.tag == node.tag
        assert not view.cloud
        assert np.array_equal(view.starts, node.starts)
        assert np.array_equal(view.ends, node.ends)
        assert view.availability_fraction(50.0) == pytest.approx(
            node.availability_fraction(50.0))
        for t in probes:  # monotone, as the simulation guarantees
            assert view.interval_at(t) == node.interval_at(t)
            assert view.available_at(t) == node.available_at(t)
            assert view.next_available(t) == node.next_available(t)


# ----------------------------------------------------------- pool parity
def _drive(pool: NodePool):
    """A deterministic acquire/release/probe workload transcript."""
    transcript = []
    held = []
    for step in range(80):
        t = float(step)
        transcript.append(("ready", pool.has_ready(t)))
        got = pool.acquire(t)
        if got is not None:
            node, end = got
            transcript.append(("acq", node.node_id, node.power,
                               node.tag, end))
            held.append((node, end))
        else:
            transcript.append(("dry",))
        if held and step % 3 == 0:
            node, end = held.pop(0)
            if end <= t:
                pool.preempted(node, t)
            else:
                pool.release(node, t)
        transcript.append(("idle", pool.idle_count(t)))
        transcript.append(("next", pool.next_future_start(t)))
    transcript.append(("size", pool.size))
    return transcript


@pytest.mark.parametrize("seed", range(4))
def test_columnar_pool_replays_object_pool_exactly(seed):
    raw = _fleet_raw(100 + seed, n=40)
    obj_pool = NodePool(_nodes_of(raw),
                        rng=np.random.default_rng([seed, 7]))
    col_pool = NodePool(NodeColumns.from_raw(raw).fresh(),
                        rng=np.random.default_rng([seed, 7]))
    assert _drive(obj_pool) == _drive(col_pool)


def test_columnar_pool_handles_pre_zero_intervals():
    """A first interval ending at/before t=0 takes the scalar filing
    fallback; behaviour still matches the object pool."""
    raw = _fleet_raw(200, n=10)
    raw[4] = (np.array([-5.0, 2.0]), np.array([-1.0, 6.0]), 2.0, "warp")
    raw[7] = (np.array([-3.0]), np.array([-2.0]), 1.0, "gone")
    obj_pool = NodePool(_nodes_of(raw), rng=np.random.default_rng(5))
    col_pool = NodePool(NodeColumns.from_raw(raw).fresh(),
                        rng=np.random.default_rng(5))
    assert _drive(obj_pool) == _drive(col_pool)


def test_acquired_view_identity_is_stable():
    """The pool hands out ONE ColumnNode per id (cursor aliasing would
    corrupt scans if two views existed for one node)."""
    raw = [(np.array([0.0]), np.array([1e9]), 1.0, "a")]
    pool = NodePool(NodeColumns.from_raw(raw).fresh(),
                    rng=np.random.default_rng(0))
    node, _end = pool.acquire(0.0)
    pool.release(node, 1.0)
    again, _end = pool.acquire(2.0)
    assert again is node


def test_cloud_nodes_coexist_with_columnar_members():
    """Dynamically added cloud workers stay Node objects; the weighted
    cloud-vs-regular pick still works over the hybrid pool."""
    raw = [(np.array([0.0]), np.array([1e9]), 1.0, f"h{i}")
           for i in range(3)]
    pool = NodePool(NodeColumns.from_raw(raw).fresh(),
                    rng=np.random.default_rng(1),
                    cloud_poll_weight=10.0)
    cloud = Node.stable(10_000, 5.0)
    pool.add(cloud, at=0.0)
    got = {pool.acquire(0.0)[0].node_id for _ in range(4)}
    assert got == {0, 1, 2, 10_000}
    assert pool.acquire(0.0) is None
    assert cloud in pool
    pool.remove(cloud)
    assert cloud not in pool


# ---------------------------------------------------------- pool filing
def test_pool_from_filing_replays_fresh_filing_exactly():
    """A pool restored from a captured t=0 filing skeleton must be
    indistinguishable from a freshly filed one — same draw-list order,
    same heaps — so the RNG draw sequence (and every fixed-seed
    golden) is unchanged when the harness caches the filing."""
    raw = _fleet_raw(300, n=40)
    template = NodeColumns.from_raw(raw)
    donor = NodePool(template.fresh(), rng=np.random.default_rng(0))
    filing = donor.capture_filing()
    fresh = NodePool(template.fresh(), rng=np.random.default_rng([9, 1]))
    restored = NodePool.from_filing(template.fresh(), filing,
                                    rng=np.random.default_rng([9, 1]))
    assert restored.vector_filed
    assert _drive(fresh) == _drive(restored)


def test_capture_filing_rejects_unvectorized_pools():
    obj_pool = NodePool(_nodes_of(_fleet_raw(1, n=5)),
                        rng=np.random.default_rng(0))
    assert not obj_pool.vector_filed
    with pytest.raises(ValueError, match="not capturable"):
        obj_pool.capture_filing()
    # a degenerate trace (interval ending before t=0) takes the scalar
    # filing path, which advances cursors — also not capturable
    raw = _fleet_raw(200, n=10)
    raw[7] = (np.array([-3.0]), np.array([-2.0]), 1.0, "gone")
    col_pool = NodePool(NodeColumns.from_raw(raw).fresh(),
                        rng=np.random.default_rng(0))
    assert not col_pool.vector_filed
    with pytest.raises(ValueError, match="not capturable"):
        col_pool.capture_filing()


def test_trace_cache_materialize_pool_reuses_filing():
    from repro.experiments.harness import TraceCache

    cache = TraceCache()
    kw = dict(trace="nd", seed=3, cap=25, horizon=2 * 86400.0)
    p1 = cache.materialize_pool(rng=np.random.default_rng([3, 0xB00]),
                                **kw)
    assert len(cache._filings) == 1  # skeleton captured on first build
    p2 = cache.materialize_pool(rng=np.random.default_rng([3, 0xB00]),
                                **kw)
    assert _drive(p1) == _drive(p2)
