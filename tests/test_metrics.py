"""Tail metrics: ideal time, slowdown, fractions, TRE, stability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import ccdf, ccdf_at, ecdf, histogram_fractions
from repro.analysis.metrics import (
    CompletionProfile,
    ideal_completion_time,
    normalized_times,
    tail_fraction_of_tasks,
    tail_fraction_of_time,
    tail_removal_efficiency,
    tail_slowdown,
)


def linear_profile(n=100, rate=1.0):
    """k-th completion at k/rate: perfectly steady, no tail."""
    return CompletionProfile.from_times([(i + 1) / rate for i in range(n)])


def tailed_profile(n=100, tail_len=10, tail_gap=50.0):
    """Steady except the last tail_len tasks, delayed by tail_gap each."""
    times = [(i + 1.0) for i in range(n - tail_len)]
    last = times[-1]
    times += [last + (j + 1) * tail_gap for j in range(tail_len)]
    return CompletionProfile.from_times(times)


# ------------------------------------------------------------------ basics
def test_tc_indexing_matches_definition():
    p = linear_profile(100)
    assert p.tc(0.01) == pytest.approx(1.0)
    assert p.tc(0.5) == pytest.approx(50.0)
    assert p.tc(1.0) == pytest.approx(100.0)


def test_tc_rounds_fraction_up():
    p = linear_profile(10)
    assert p.tc(0.11) == pytest.approx(2.0)  # ceil(1.1) = 2


def test_tc_validation():
    p = linear_profile(10)
    with pytest.raises(ValueError):
        p.tc(0.0)
    with pytest.raises(ValueError):
        p.tc(1.5)


def test_profile_requires_tasks():
    with pytest.raises(ValueError):
        CompletionProfile.from_times([])


def test_profile_sorts_input():
    p = CompletionProfile.from_times([3.0, 1.0, 2.0])
    assert list(p.times) == [1.0, 2.0, 3.0]


def test_completed_at():
    p = linear_profile(10)
    assert p.completed_at(0.5) == 0
    assert p.completed_at(5.0) == 5
    assert p.completed_at(100.0) == 10


# -------------------------------------------------------------- ideal time
def test_ideal_time_of_steady_profile_equals_makespan():
    p = linear_profile(100)
    assert ideal_completion_time(p) == pytest.approx(100.0)


def test_ideal_time_ignores_tail():
    p = tailed_profile(100, tail_len=10, tail_gap=50.0)
    # tc(0.9) = 90th completion at t=90 -> ideal = 100
    assert ideal_completion_time(p) == pytest.approx(100.0)


def test_slowdown_steady_is_one():
    assert tail_slowdown(linear_profile()) == pytest.approx(1.0)


def test_slowdown_reflects_tail():
    p = tailed_profile(100, tail_len=10, tail_gap=50.0)
    # makespan = 90 + 500 = 590; ideal = 100
    assert tail_slowdown(p) == pytest.approx(5.9)


def test_slowdown_clamped_at_one():
    # decelerating start then sprint: actual < extrapolated ideal
    times = [10.0, 20.0, 30.0, 40.0, 41.0, 42.0, 43.0, 44.0, 45.0, 46.0]
    p = CompletionProfile.from_times(times)
    assert tail_slowdown(p) >= 1.0


# ---------------------------------------------------------- tail fractions
def test_tail_fraction_of_tasks():
    p = tailed_profile(100, tail_len=10, tail_gap=50.0)
    assert tail_fraction_of_tasks(p) == pytest.approx(0.10)


def test_tail_fraction_of_time():
    p = tailed_profile(100, tail_len=10, tail_gap=50.0)
    # (590 - 100) / 590
    assert tail_fraction_of_time(p) == pytest.approx(490.0 / 590.0)


def test_no_tail_zero_fractions():
    p = linear_profile()
    assert tail_fraction_of_tasks(p) == pytest.approx(0.0)
    assert tail_fraction_of_time(p) == pytest.approx(0.0)


# --------------------------------------------------------------------- TRE
def test_tre_complete_removal():
    assert tail_removal_efficiency(600.0, 100.0, 100.0) == 100.0


def test_tre_half_removal():
    assert tail_removal_efficiency(600.0, 350.0, 100.0) == pytest.approx(50.0)


def test_tre_no_improvement():
    assert tail_removal_efficiency(600.0, 600.0, 100.0) == 0.0


def test_tre_clamps_regressions_to_zero():
    assert tail_removal_efficiency(600.0, 700.0, 100.0) == 0.0


def test_tre_clamps_super_ideal_to_hundred():
    assert tail_removal_efficiency(600.0, 50.0, 100.0) == 100.0


def test_tre_undefined_without_tail():
    with pytest.raises(ValueError):
        tail_removal_efficiency(100.0, 90.0, 100.0)


# --------------------------------------------------------------- stability
def test_normalized_times_mean_one():
    vals = normalized_times([100.0, 200.0, 300.0])
    assert np.mean(vals) == pytest.approx(1.0)


def test_normalized_times_empty():
    assert normalized_times([]).size == 0


def test_normalized_times_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        normalized_times([0.0, 0.0])


# --------------------------------------------------------------------- cdf
def test_ecdf_monotone():
    x, y = ecdf([3.0, 1.0, 2.0])
    assert list(x) == [1.0, 2.0, 3.0]
    assert list(y) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_ccdf_complement():
    x, y = ccdf([1.0, 2.0, 3.0, 4.0])
    assert y[0] == pytest.approx(0.75)
    assert y[-1] == pytest.approx(0.0)


def test_ccdf_at_thresholds_inclusive():
    frac = ccdf_at([0.0, 50.0, 100.0, 100.0], [0, 50, 100])
    assert list(frac) == pytest.approx([1.0, 0.75, 0.5])


def test_ccdf_at_empty():
    assert list(ccdf_at([], [0, 1])) == [0.0, 0.0]


def test_histogram_fractions_sum_to_one():
    rngv = np.random.default_rng(0).normal(1.0, 0.3, 500)
    centers, frac = histogram_fractions(rngv, 0.0, 5.0, 20)
    assert frac.sum() == pytest.approx(1.0)
    assert centers.shape == (20,)


def test_histogram_fractions_clips_outliers_into_edge_bins():
    _, frac = histogram_fractions([-5.0, 10.0], 0.0, 5.0, 5)
    assert frac[0] == pytest.approx(0.5)
    assert frac[-1] == pytest.approx(0.5)


def test_histogram_validation():
    with pytest.raises(ValueError):
        histogram_fractions([1.0], 1.0, 0.0, 5)


# ------------------------------------------------------------- properties
@settings(max_examples=40, deadline=None)
@given(times=st.lists(st.floats(0.1, 1e6), min_size=10, max_size=200))
def test_property_slowdown_at_least_one(times):
    p = CompletionProfile.from_times(times)
    assert tail_slowdown(p) >= 1.0


@settings(max_examples=40, deadline=None)
@given(times=st.lists(st.floats(0.1, 1e6), min_size=10, max_size=200))
def test_property_tail_fractions_bounded(times):
    p = CompletionProfile.from_times(times)
    assert 0.0 <= tail_fraction_of_tasks(p) <= 1.0
    assert 0.0 <= tail_fraction_of_time(p) <= 1.0


@settings(max_examples=40, deadline=None)
@given(nospeq=st.floats(200.0, 1e6), speq_frac=st.floats(0.0, 2.0),
       ideal=st.floats(1.0, 100.0))
def test_property_tre_in_range(nospeq, speq_frac, ideal):
    speq = ideal + (nospeq - ideal) * speq_frac
    tre = tail_removal_efficiency(nospeq, speq, ideal)
    assert 0.0 <= tre <= 100.0
