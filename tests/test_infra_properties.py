"""Property tests pinning the vectorized availability hot path
float-for-float against scalar reference walks.

The drift goldens pin end-to-end results; these tests pin the
*internal* equivalences those goldens rely on, so a future edit that
re-associates a float sum or drops a boundary case fails here with a
usable message instead of as an opaque golden diff:

* ``intervals.intersect`` (searchsorted pair enumeration) against the
  historical two-pointer merge;
* ``gantt.gate_windows`` (arange form) against the per-step loop;
* ``RenewalTraceGenerator``'s bulk boundary assembly + clipping
  against a scalar per-node walk using the same float association.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infra import intervals as iv
from repro.infra.catalog import get_trace_spec
from repro.infra.gantt import gate_windows
from repro.infra.renewal import RenewalTraceGenerator


# --------------------------------------------------------------- helpers
def _interval_set(rng, n):
    if n == 0:
        return np.empty(0), np.empty(0)
    bounds = np.cumsum(rng.exponential(1.0, 2 * n))
    return bounds[0::2], bounds[1::2]


# ------------------------------------------------------------- intersect
@given(seed=st.integers(0, 2**32 - 1),
       n1=st.integers(0, 40), n2=st.integers(0, 40))
@settings(max_examples=120, deadline=None)
def test_intersect_matches_two_pointer_reference(seed, n1, n2):
    rng = np.random.default_rng(seed)
    s1, e1 = _interval_set(rng, n1)
    s2, e2 = _interval_set(rng, n2)
    vs, ve = iv.intersect(s1, e1, s2, e2)
    rs, re_ = iv.intersect_scalar(s1, e1, s2, e2)
    assert vs.tobytes() == rs.tobytes()
    assert ve.tobytes() == re_.tobytes()


def test_intersect_with_touching_boundaries_emits_nothing():
    # adjacent-only overlap (hi == lo) must not produce empty intervals
    s, e = iv.intersect(np.array([0.0, 10.0]), np.array([5.0, 15.0]),
                        np.array([5.0]), np.array([10.0]))
    assert s.size == 0 and e.size == 0


# ---------------------------------------------------------- gate_windows
def _gate_windows_scalar(threshold, period, phase, horizon,
                         depth=1.0, base=0.5):
    """The historical per-step loop, kept verbatim as the reference."""
    amp = depth / 2.0
    lo, hi = base - amp, base + amp
    if threshold <= lo:
        return np.array([0.0]), np.array([horizon])
    if threshold >= hi:
        return np.empty(0), np.empty(0)
    s = (threshold - base) / amp
    a = math.asin(s)
    w = period / (2.0 * math.pi)
    lo_off = (a * w - phase * w) % period
    width = (math.pi - 2.0 * a) * w
    starts, ends = [], []
    k0 = -1
    t = lo_off + k0 * period
    while t < horizon:
        s0, e0 = t, t + width
        if e0 > 0:
            starts.append(max(0.0, s0))
            ends.append(min(horizon, e0))
        k0 += 1
        t = lo_off + k0 * period
    return np.asarray(starts), np.asarray(ends)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_gate_windows_matches_scalar_loop(seed):
    rng = np.random.default_rng(seed)
    thr = float(rng.random())
    period = float(rng.uniform(10.0, 2e5))
    phase = float(rng.uniform(0.0, 2.0 * math.pi))
    horizon = float(rng.uniform(50.0, 2e6))
    depth = float(rng.uniform(0.05, 1.0))
    vs, ve = gate_windows(thr, period, phase, horizon, depth=depth)
    rs, re_ = _gate_windows_scalar(thr, period, phase, horizon, depth=depth)
    assert vs.tobytes() == rs.tobytes()
    assert ve.tobytes() == re_.tobytes()


# ------------------------------------------------------- renewal bulk path
def _assemble_scalar(in_avail, first, t0, av_row, un_row):
    """Per-node walk mirroring the bulk path's exact float association:
    ``starts = (t0 + exclA) + exclG`` with sequentially accumulated
    cumulative sums, ``ends = starts + A``."""
    k = av_row.shape[0]
    if in_avail:
        A = np.concatenate(([first], av_row[:k - 1]))
        G = un_row.copy()
        g_shift = 1  # row starts available: G[j] excluded until j >= 1
    else:
        A = av_row.copy()
        G = np.concatenate(([first], un_row[:k - 1]))
        g_shift = 0  # row starts in a gap: G[0] precedes A[0]
    starts = np.empty(k)
    ends = np.empty(k)
    cum_a = 0.0
    cum_g = 0.0
    for j in range(k):
        excl_a = cum_a
        if g_shift:
            g_term = cum_g          # exclusive sum of gaps
        else:
            g_term = cum_g + G[j]   # inclusive sum of gaps
        starts[j] = (t0 + excl_a) + g_term
        ends[j] = starts[j] + A[j]
        cum_a += A[j]
        cum_g += G[j]
    return starts, ends


def _clip_scalar(starts_row, ends_row, horizon):
    """The historical per-row clip (keep → clip → re-check)."""
    keep = (ends_row > 0.0) & (starts_row < horizon)
    s_arr = np.clip(starts_row[keep], 0.0, None)
    e_arr = np.minimum(ends_row[keep], horizon)
    ok = e_arr > s_arr
    return s_arr[ok], e_arr[ok]


@given(seed=st.integers(0, 2**32 - 1),
       n=st.integers(1, 12), k=st.integers(2, 24))
@settings(max_examples=80, deadline=None)
def test_bulk_assembly_matches_scalar_walk(seed, n, k):
    rng = np.random.default_rng(seed)
    in_avail = rng.random(n) < 0.5
    first = rng.exponential(100.0, n)
    t0 = -first * rng.random(n)
    av = rng.exponential(300.0, (n, k))
    un = rng.exponential(150.0, (n, k))
    starts, ends = RenewalTraceGenerator._assemble_bulk(
        in_avail, first, t0, av, un)
    for i in range(n):
        rs, re_ = _assemble_scalar(bool(in_avail[i]), float(first[i]),
                                   float(t0[i]), av[i], un[i])
        assert starts[i].tobytes() == rs.tobytes()
        assert ends[i].tobytes() == re_.tobytes()


@given(seed=st.integers(0, 2**32 - 1),
       n=st.integers(1, 10), k=st.integers(2, 20))
@settings(max_examples=80, deadline=None)
def test_vectorized_clip_matches_per_row_reference(seed, n, k):
    rng = np.random.default_rng(seed)
    horizon = float(rng.uniform(100.0, 5000.0))
    starts = rng.uniform(-500.0, horizon * 1.5, (n, k))
    starts.sort(axis=1)
    ends = starts + rng.exponential(200.0, (n, k))
    flat_s, flat_e, offsets = RenewalTraceGenerator._clip_rows(
        starts, ends, horizon)
    for i in range(n):
        rs, re_ = _clip_scalar(starts[i], ends[i], horizon)
        assert flat_s[offsets[i]:offsets[i + 1]].tobytes() == rs.tobytes()
        assert flat_e[offsets[i]:offsets[i + 1]].tobytes() == re_.tobytes()


def test_generate_bulk_and_fallback_agree_on_interval_invariants():
    """End to end: every generated schedule is sorted, disjoint,
    clipped to [0, horizon], whichever path produced it."""
    spec = get_trace_spec("nd")
    rng = np.random.default_rng(11)
    nodes = spec.materialize(rng, horizon=86400.0, max_nodes=60)
    assert nodes
    for node in nodes:
        iv.validate(node.starts, node.ends)
        if node.starts.size:
            assert node.starts[0] >= 0.0
            assert node.ends[-1] <= 86400.0
