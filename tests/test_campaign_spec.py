"""Declarative sweep specs: expansion, canonical order, hashability."""

import zlib

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    MultiTenantSweepSpec,
    SweepSpec,
    scaled_bot_sizes,
    stable_seed,
)
from repro.core.strategies import ALL_COMBOS
from repro.experiments.config import SCALES, ExecutionConfig
from repro.experiments import figures


# ------------------------------------------------------------------- seeds
def test_stable_seed_is_crc32_of_env_slot():
    expected = zlib.crc32(b"seti/boinc/SMALL/3") % (2 ** 31)
    assert stable_seed("seti", "boinc", "SMALL", 3) == expected
    # process-independent: same inputs, same seed, always
    assert stable_seed("seti", "boinc", "SMALL", 3) == expected


# ------------------------------------------------------------------- sweep
def tiny_sweep(**kw):
    base = dict(traces=("nd",), middlewares=("xwhep",),
                categories=("SMALL",), seed_slots=2)
    base.update(kw)
    return SweepSpec(**base)


def test_sweep_counts_and_types():
    s = tiny_sweep(strategies=(None, "9C-C-R"), thresholds=(0.8, 0.9))
    assert s.n_configs() == 2 * 2 * 2
    cfgs = s.expand()
    assert len(cfgs) == s.n_configs()
    assert all(isinstance(c, ExecutionConfig) for c in cfgs)


def test_sweep_strategies_are_outermost_axis():
    s = tiny_sweep(strategies=(None, "9C-C-R"))
    cfgs = s.expand()
    assert [c.strategy for c in cfgs] == [None, None, "9C-C-R", "9C-C-R"]
    # within a block the environment order repeats exactly
    assert [c.seed for c in cfgs[:2]] == [c.seed for c in cfgs[2:]]


def test_sweep_explicit_seeds_win_over_slots():
    s = tiny_sweep(seeds=(7, 8, 9), seed_slots=5)
    assert [c.seed for c in s.expand()] == [7, 8, 9]


def test_sweep_bot_sizes_apply_per_category():
    s = SweepSpec(traces=("nd",), middlewares=("xwhep",),
                  categories=("SMALL", "BIG"),
                  bot_sizes=(("SMALL", 40),))
    by_cat = {c.category: c.bot_size for c in s.expand()}
    assert by_cat == {"SMALL": 40, "BIG": None}


def test_sweep_is_hashable_and_canonical():
    a = tiny_sweep()
    b = SweepSpec(traces=["nd"], middlewares=["xwhep"],
                  categories=["SMALL"], seed_slots=2)  # lists normalize
    assert a == b and hash(a) == hash(b)
    assert a.expand() == b.expand()
    assert {a: "ok"}[b] == "ok"


def test_sweep_baselines_canonicalize_strategy_axes():
    """Threshold/credit sweeps must not multiply physically identical
    no-SpeQuloS runs into distinct configs (and store digests)."""
    s = tiny_sweep(strategies=(None, "9C-C-R"),
                   thresholds=(0.8, 0.9), credit_fractions=(0.05, 0.10))
    cfgs = s.expand()
    bases = [c for c in cfgs if c.strategy is None]
    speq = [c for c in cfgs if c.strategy is not None]
    assert all(c.strategy_threshold == 0.9 and c.credit_fraction == 0.10
               for c in bases)
    # per seed: 4 equal baseline grid points, 4 distinct SpeQuloS ones
    assert len(bases) == 8 and len(set(bases)) == 2
    assert len(set(speq)) == 8


def test_sweep_validation():
    with pytest.raises(ValueError):
        tiny_sweep(traces=())
    with pytest.raises(ValueError):
        tiny_sweep(seed_slots=0)
    with pytest.raises(ValueError):
        tiny_sweep(seeds=())


# ------------------------------------------ equivalence with legacy grids
def test_baseline_grid_matches_hand_rolled_loop():
    scale = SCALES["quick"]
    expected = []
    for trace in ("seti", "nd"):
        for mw in ("boinc", "xwhep"):
            for cat in ("SMALL", "RANDOM"):
                for i in range(scale.seeds_per_env):
                    expected.append(ExecutionConfig(
                        trace=trace, middleware=mw, category=cat,
                        seed=stable_seed(trace, mw, cat, i),
                        bot_size=scale.bot_size(cat)))
    got = figures.baseline_grid(scale, categories=("SMALL", "RANDOM"),
                                traces=("seti", "nd"))
    assert got == expected


def test_strategy_sweep_matches_legacy_block_layout():
    """Bases first, then one block per combo in ALL_COMBOS order —
    the slicing contract of _run_strategy_campaign."""
    scale = SCALES["quick"]
    combos = [c.name for c in ALL_COMBOS]
    sweep = figures.strategy_sweep(scale).with_strategies(None, *combos)
    cfgs = sweep.expand()
    bases = figures.strategy_sweep(scale).expand()
    n = len(bases)
    assert len(cfgs) == n * (len(combos) + 1)
    assert cfgs[:n] == bases
    for k, name in enumerate(combos):
        block = cfgs[n * (k + 1): n * (k + 2)]
        assert block == [b.with_strategy(name) for b in bases]


# ------------------------------------------------------------ multi-tenant
def test_multi_tenant_sweep_order_and_scaling():
    s = MultiTenantSweepSpec(
        traces=("seti",), middlewares=("boinc",),
        policies=("fifo", "fairshare"), tenant_counts=(1, 4),
        seeds=(1, 2), bot_size=40, pool_fraction=0.05,
        pool_scaling="per-tenant", worker_budget=8,
        worker_budget_scaling="at-least-tenants", deadline_factor=0.5)
    cfgs = s.expand()
    assert len(cfgs) == s.n_configs() == 2 * 2 * 2
    # policies outermost, then tenant counts, then seeds
    assert [(c.policy, c.n_tenants, c.seed) for c in cfgs] == [
        ("fifo", 1, 1), ("fifo", 1, 2), ("fifo", 4, 1), ("fifo", 4, 2),
        ("fairshare", 1, 1), ("fairshare", 1, 2),
        ("fairshare", 4, 1), ("fairshare", 4, 2)]
    one = cfgs[0]
    four = cfgs[2]
    assert one.pool_fraction == pytest.approx(0.05)
    assert four.pool_fraction == pytest.approx(0.05 / 4)
    assert one.max_total_workers == 8
    # budget never drops below the tenant count
    s16 = MultiTenantSweepSpec(tenant_counts=(16,), worker_budget=8,
                               worker_budget_scaling="at-least-tenants")
    assert s16.expand()[0].max_total_workers == 16


def test_multi_tenant_sweep_validation():
    with pytest.raises(ValueError):
        MultiTenantSweepSpec(pool_scaling="inverse-square")
    with pytest.raises(ValueError):
        MultiTenantSweepSpec(worker_budget_scaling="whatever")
    with pytest.raises(ValueError):
        MultiTenantSweepSpec(policies=())


# ---------------------------------------------------------------- campaign
def test_campaign_spec_bundles_sweeps():
    a = tiny_sweep()
    b = tiny_sweep(strategies=("9C-C-R",))
    camp = CampaignSpec(name="demo", sweeps=(a, b))
    assert camp.n_configs() == a.n_configs() + b.n_configs()
    assert camp.expand() == a.expand() + b.expand()


def test_campaign_spec_expand_unique_drops_duplicates():
    a = tiny_sweep()
    camp = CampaignSpec(name="dup", sweeps=(a, a))
    assert len(camp.expand()) == 2 * a.n_configs()
    assert camp.expand_unique() == a.expand()


def test_scaled_bot_sizes_helper():
    scale = SCALES["quick"]
    pairs = scaled_bot_sizes(scale, ("SMALL", "BIG"))
    assert pairs == (("SMALL", scale.bot_size("SMALL")),
                     ("BIG", scale.bot_size("BIG")))
