"""Node availability schedules: cursor queries and validation."""

import math

import numpy as np
import pytest

from repro.infra.node import Node


def make(starts, ends, power=1000.0):
    return Node(0, power, np.asarray(starts, float),
                np.asarray(ends, float))


def test_interval_at_inside():
    n = make([0, 100], [50, 200])
    assert n.interval_at(10) == (0.0, 50.0)
    assert n.interval_at(150) == (100.0, 200.0)


def test_interval_at_gap_returns_none():
    n = make([0, 100], [50, 200])
    assert n.interval_at(75) is None


def test_interval_at_boundaries():
    n = make([0, 100], [50, 200])
    assert n.interval_at(0) == (0.0, 50.0)
    # interval is [start, end): at the end instant the node is away
    assert n.interval_at(50) is None
    assert n.interval_at(100) == (100.0, 200.0)


def test_next_available_from_gap():
    n = make([0, 100], [50, 200])
    assert n.next_available(60) == (100.0, 200.0)


def test_next_available_inside_interval_returns_it():
    n = make([0, 100], [50, 200])
    assert n.next_available(120) == (100.0, 200.0)


def test_next_available_exhausted():
    n = make([0], [50])
    assert n.next_available(60) is None


def test_forward_cursor_is_monotone():
    n = make([0, 100, 300], [50, 200, 400])
    assert n.interval_at(10) is not None
    assert n.interval_at(150) is not None
    assert n.interval_at(350) is not None
    assert n.interval_at(500) is None


def test_available_at():
    n = make([10], [20])
    assert not n.available_at(5)
    assert n.available_at(15)
    assert not n.available_at(25)


def test_availability_fraction():
    n = make([0, 50], [25, 75])
    assert n.availability_fraction(100) == pytest.approx(0.5)


def test_availability_fraction_clips_to_window():
    n = make([0], [1000])
    assert n.availability_fraction(100) == pytest.approx(1.0)


def test_stable_node_never_dies():
    n = Node.stable(7, 3000.0, start=5.0)
    assert n.cloud
    assert n.interval_at(10.0) == (5.0, math.inf)
    assert n.interval_at(1e12) == (5.0, math.inf)


def test_empty_schedule_allowed():
    n = make([], [])
    assert n.interval_at(0) is None
    assert n.next_available(0) is None


def test_rejects_nonpositive_power():
    with pytest.raises(ValueError):
        make([0], [10], power=0)


def test_rejects_overlapping_intervals():
    with pytest.raises(ValueError):
        make([0, 40], [50, 100])


def test_rejects_inverted_interval():
    with pytest.raises(ValueError):
        make([10], [5])


def test_rejects_mismatched_shapes():
    with pytest.raises(ValueError):
        Node(0, 1000.0, np.array([0.0, 1.0]), np.array([2.0]))


def test_touching_intervals_allowed():
    n = make([0, 50], [50, 100])
    assert n.interval_at(25) == (0.0, 50.0)
    assert n.interval_at(75) == (50.0, 100.0)
