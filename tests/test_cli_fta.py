"""CLI subcommands and FTA-style trace import/export."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.infra.fta import TraceFormatError, load_trace, save_trace
from repro.infra.node import Node


# --------------------------------------------------------------------- fta
def test_fta_roundtrip(tmp_path):
    nodes = [
        Node(0, 950.0, np.array([0.0, 7200.0]), np.array([3600.0, 10800.0])),
        Node(1, 1210.0, np.array([100.0]), np.array([4000.0])),
    ]
    path = tmp_path / "trace.txt"
    save_trace(nodes, str(path), header="test trace")
    loaded = load_trace(str(path))
    assert len(loaded) == 2
    assert np.allclose(loaded[0].starts, nodes[0].starts)
    assert np.allclose(loaded[0].ends, nodes[0].ends)
    assert loaded[0].power == 950.0
    assert loaded[1].power == 1210.0


def test_fta_load_from_file_object():
    text = io.StringIO("# comment\n0 0 100 500\n0 200 300 500\n1 50 60\n")
    nodes = load_trace(text, default_power=1234.0)
    assert len(nodes) == 2
    assert nodes[0].power == 500.0
    assert nodes[1].power == 1234.0  # default applied
    assert nodes[0].starts.shape == (2,)


def test_fta_sorts_intervals():
    text = io.StringIO("0 200 300\n0 0 100\n")
    nodes = load_trace(text)
    assert list(nodes[0].starts) == [0.0, 200.0]


def test_fta_rejects_bad_columns():
    with pytest.raises(TraceFormatError):
        load_trace(io.StringIO("0 1\n"))
    with pytest.raises(TraceFormatError):
        load_trace(io.StringIO("0 1 2 3 4\n"))


def test_fta_rejects_inverted_interval():
    with pytest.raises(TraceFormatError):
        load_trace(io.StringIO("0 100 50\n"))


def test_fta_rejects_overlap():
    with pytest.raises(TraceFormatError):
        load_trace(io.StringIO("0 0 100\n0 50 150\n"))


def test_fta_rejects_power_change():
    with pytest.raises(TraceFormatError):
        load_trace(io.StringIO("0 0 10 100\n0 20 30 200\n"))


def test_fta_rejects_bad_numbers():
    with pytest.raises(TraceFormatError):
        load_trace(io.StringIO("0 zero 10\n"))
    with pytest.raises(TraceFormatError):
        load_trace(io.StringIO("0 0 10 -5\n"))


def test_fta_rejects_empty():
    with pytest.raises(TraceFormatError):
        load_trace(io.StringIO("# nothing here\n"))


def test_fta_loaded_trace_runs_in_simulation(tmp_path):
    """Exported synthetic traces replay identically through the stack."""
    from repro.infra.catalog import get_trace_spec
    from repro.infra.pool import NodePool
    from repro.middleware.xwhep import XWHepServer
    from repro.simulator.engine import Simulation
    from repro.workload.bot import BagOfTasks, Task

    spec = get_trace_spec("nd")
    nodes = spec.materialize(np.random.default_rng(3), 2 * 86400.0,
                             max_nodes=40)
    path = tmp_path / "nd.txt"
    save_trace(nodes, str(path))
    loaded = load_trace(str(path))

    def run(node_list):
        sim = Simulation(horizon=10 * 86400.0)
        pool = NodePool(node_list, rng=np.random.default_rng(1))
        srv = XWHepServer(sim, pool)
        bot = BagOfTasks(bot_id="b",
                         tasks=[Task(i, 50_000.0) for i in range(30)],
                         wall_clock=60.0)
        done = {}
        class Obs:
            def on_bot_completed(self, bid, t):
                done["t"] = t
                sim.stop()
        srv.add_observer(Obs())
        srv.submit_bot(bot)
        sim.run()
        return done.get("t")

    assert run(nodes) == pytest.approx(run(loaded), rel=1e-9)


# --------------------------------------------------------------------- cli
def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_cli_run(capsys):
    rc = main(["run", "--trace", "nd", "--middleware", "xwhep",
               "--seed", "3", "--bot-size", "40"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "makespan" in out
    assert "tail slowdown" in out


def test_cli_run_with_strategy(capsys):
    rc = main(["run", "--trace", "nd", "--middleware", "xwhep",
               "--seed", "3", "--bot-size", "40",
               "--strategy", "9C-C-R"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "credits spent" in out


def test_cli_compare(capsys):
    rc = main(["compare", "--trace", "nd", "--middleware", "xwhep",
               "--seed", "3", "--bot-size", "40"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "speedup" in out
    assert "baseline (no SpeQuloS)" in out


def test_cli_trace_inspect(capsys, tmp_path):
    export = tmp_path / "out.txt"
    rc = main(["trace", "nd", "--days", "1", "--max-nodes", "25",
               "--export", str(export)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "paper target" in out
    assert export.exists()
    assert len(load_trace(str(export))) > 0


def test_cli_multi(capsys):
    rc = main(["multi", "--trace", "nd", "--middleware", "xwhep",
               "--seed", "3", "--tenants", "4", "--bot-size", "30",
               "--policy", "fairshare", "--max-workers", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "user0" in out and "user3" in out
    assert "max/min slowdown" in out
    assert "jain index" in out
    assert "pool:" in out


def test_cli_report_table3(capsys):
    rc = main(["report", "table3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "BoT categories" in out


def test_cli_report_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["report", "figure99"])
