"""Cloud substrate: drivers, instances, worker agents, coordinators."""


import numpy as np
import pytest

from repro.cloud.api import CloudError, ComputeDriver, ProviderProfile, QuotaExceeded
from repro.cloud.registry import PROVIDER_NAMES, get_driver, list_providers
from repro.cloud.worker import CloudDuplicationCoordinator, RescheduleAgent
from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.xwhep import XWHepServer
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks, Task


def bot_of(n, nops=1000.0, bot_id="b"):
    return BagOfTasks(bot_id=bot_id,
                      tasks=[Task(i, nops) for i in range(n)],
                      wall_clock=nops / 1000.0)


# ----------------------------------------------------------------- drivers
def test_registry_has_paper_providers():
    for name in ("ec2", "eucalyptus", "rackspace", "opennebula",
                 "stratuslab", "nimbus", "grid5000", "simulation"):
        assert name in PROVIDER_NAMES


def test_registry_unknown_provider():
    with pytest.raises(KeyError):
        get_driver("azure", Simulation())


def test_list_providers_profiles():
    profiles = {p.name: p for p in list_providers()}
    assert profiles["simulation"].boot_delay == 0.0
    assert profiles["ec2"].boot_delay > 0.0
    assert profiles["grid5000"].power_std == 0.0


def test_create_node_boot_delay_and_power():
    sim = Simulation()
    drv = get_driver("ec2", sim, rng=np.random.default_rng(0))
    sim.at(100.0, lambda: None)
    sim.run()
    inst = drv.create_node(tag="t")
    assert inst.created_at == 100.0
    assert inst.boot_end == pytest.approx(100.0 + 120.0)
    assert inst.node.cloud
    assert inst.node.interval_at(inst.boot_end) is not None
    assert inst.node.power > 50


def test_instance_ids_unique_across_drivers():
    sim = Simulation()
    a = get_driver("ec2", sim).create_node()
    b = get_driver("nimbus", sim).create_node()
    assert a.instance_id != b.instance_id


def test_destroy_node_and_cpu_accounting():
    sim = Simulation()
    drv = get_driver("simulation", sim)
    inst = drv.create_node()
    sim.at(7200.0, lambda: drv.destroy_node(inst))
    sim.run()
    assert not inst.alive
    assert inst.cpu_seconds(1e9) == pytest.approx(7200.0)
    assert drv.total_cpu_hours() == pytest.approx(2.0)


def test_destroy_unknown_instance():
    sim = Simulation()
    drv = get_driver("simulation", sim)
    other = get_driver("simulation", sim).create_node()
    with pytest.raises(CloudError):
        drv.destroy_node(other)


def test_quota_enforced():
    sim = Simulation()
    profile = ProviderProfile("tiny", boot_delay=0.0, max_instances=2)
    drv = ComputeDriver(profile, sim)
    drv.create_node()
    drv.create_node()
    with pytest.raises(QuotaExceeded):
        drv.create_node()


def test_quota_frees_on_destroy():
    sim = Simulation()
    profile = ProviderProfile("tiny", boot_delay=0.0, max_instances=1)
    drv = ComputeDriver(profile, sim)
    inst = drv.create_node()
    drv.destroy_node(inst)
    drv.create_node()  # no raise
    assert drv.running_count() == 1
    assert len(drv.list_nodes(alive_only=False)) == 2


# ---------------------------------------------------------------- agents
def build_server(nodes, pool_seed=0):
    sim = Simulation(horizon=1e7)
    pool = NodePool(nodes, rng=np.random.default_rng(pool_seed))
    srv = XWHepServer(sim, pool)
    return sim, srv


def test_reschedule_agent_drains_pending_queue():
    # one very slow regular node, agent handles the rest
    slow = Node(1, 1.0, np.array([0.0]), np.array([1e9]))
    sim, srv = build_server([slow])
    srv.submit_bot(bot_of(5, nops=1000.0))
    cloud = Node.stable(99, power=1000.0)
    agent = RescheduleAgent(sim, srv, cloud)
    agent.start()
    done = {}
    class Obs:
        def on_bot_completed(self, bid, t):
            done["t"] = t
    srv.add_observer(Obs())
    sim.run(until=5e6)
    assert "t" in done
    assert agent.units_fetched >= 4


def test_reschedule_agent_starvation_callback():
    sim, srv = build_server([Node(1, 1000.0, np.array([0.0]),
                                  np.array([1e9]))])
    srv.submit_bot(bot_of(1, nops=1000.0))
    starved = []
    cloud = Node.stable(99, power=1000.0)
    agent = RescheduleAgent(sim, srv, cloud,
                            on_starved=lambda a: starved.append(a))
    sim.at(100.0, agent.start)  # after the BoT completed
    sim.run()
    assert starved == [agent]


def test_reschedule_agent_stop_detaches():
    sim, srv = build_server([Node(1, 1.0, np.array([0.0]),
                                  np.array([1e9]))])
    srv.submit_bot(bot_of(3, nops=1000.0))
    cloud = Node.stable(99, power=1000.0)
    agent = RescheduleAgent(sim, srv, cloud)
    agent.start()
    sim.at(1.5, agent.stop)
    sim.run(until=10.0)
    fetched_at_stop = agent.units_fetched
    sim.run(until=1000.0)
    assert agent.units_fetched == fetched_at_stop


def test_coordinator_sync_orders_pending_before_running():
    slow = Node(1, 1.0, np.array([0.0]), np.array([1e9]))
    sim, srv = build_server([slow])
    srv.submit_bot(bot_of(3, nops=1000.0))
    coord = CloudDuplicationCoordinator(sim, srv, "b")
    def sync():
        fresh = coord.sync()
        assert fresh == 3
        head = coord.queue[0]
        # the never-assigned tasks come first
        assert srv.tasks[head].first_assign_time is None
    sim.at(1.0, sync)
    sim.run(until=2.0)


def test_coordinator_completes_tasks_and_merges():
    slow = Node(1, 1.0, np.array([0.0]), np.array([1e9]))
    sim, srv = build_server([slow])
    srv.submit_bot(bot_of(4, nops=1000.0))
    coord = CloudDuplicationCoordinator(sim, srv, "b")
    cloud = Node.stable(99, power=1000.0)
    done = {}
    class Obs:
        def on_bot_completed(self, bid, t):
            done["t"] = t
    srv.add_observer(Obs())
    def go():
        coord.sync()
        coord.add_worker(cloud)
    sim.at(1.0, go)
    sim.run(until=1e6)
    assert done["t"] < 10.0
    assert coord.completions >= 3
    assert coord.busy_seconds(cloud) > 0


def test_coordinator_skips_tasks_completed_on_dci():
    fast = Node(1, 1000.0, np.array([0.0]), np.array([1e9]))
    sim, srv = build_server([fast])
    srv.submit_bot(bot_of(2, nops=1000.0))
    coord = CloudDuplicationCoordinator(sim, srv, "b")
    starved = []
    coord._on_starved = lambda c, n: starved.append(n)
    cloud = Node.stable(99, power=1000.0)
    def go():
        coord.sync()
        coord.add_worker(cloud)
    sim.at(50.0, go)  # both tasks already done on the DCI by then
    sim.run()
    assert coord.completions == 0
    assert starved  # nothing useful to execute


def test_coordinator_double_sync_no_duplicates():
    slow = Node(1, 1.0, np.array([0.0]), np.array([1e9]))
    sim, srv = build_server([slow])
    srv.submit_bot(bot_of(3, nops=1000.0))
    coord = CloudDuplicationCoordinator(sim, srv, "b")
    def syncs():
        coord.sync()
        assert coord.sync() == 0
        assert coord.backlog() == 3
    sim.at(1.0, syncs)
    sim.run(until=2.0)
