"""Transcript-equality pins for the columnar billing scan (PR 9).

The scheduler's vectorized ``_bill_and_manage`` must be byte-identical
to the historical per-handle loop (kept as
``_bill_and_manage_scalar``): same ``credits.bill`` sequence, same
floats in the credit ledger and the meter's per-provider dicts, same
handle lifecycle decisions — under arbitrary busy trajectories,
including escrow exhaustion (where the vectorized path must detect the
risk and route to the scalar replay).  A hypothesis driver runs twin
worlds through identical random trajectories and compares full state
after every tick.

Also pinned here: ``BillingMeter.charge_many`` against sequential
``charge`` calls, the ledger's column/attribute sync invariants, and
the ``PriceBook`` static-rate cache semantics.
"""

from types import SimpleNamespace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.worker import CloudWorkerHandle
from repro.core.credit import CreditSystem
from repro.core.scheduler import (
    SCHED_TELEMETRY,
    QoSRun,
    SchedulerConfig,
    SpeQuloSScheduler,
)
from repro.core.strategies import (
    DEPLOY_FLAT,
    SIZE_CONSERVATIVE,
    SIZE_GREEDY,
    StrategyCombo,
)
from repro.economics.billing import BillingMeter
from repro.economics.pricing import PriceBook


# --------------------------------------------------------------- stubs
class _StubServer:
    """Busy accounting only — what the billing scan reads."""

    def __init__(self):
        self.busy_sec = {}      # node_id -> accumulated busy seconds
        self.busy_now = set()   # node_ids currently computing

    def cloud_busy_seconds(self, node):
        return self.busy_sec.get(node.node_id, 0.0)

    def is_busy(self, node):
        return node.node_id in self.busy_now

    def cloud_usage_of(self, node_ids, now):
        return ([self.busy_sec.get(n, 0.0) for n in node_ids],
                [n in self.busy_now for n in node_ids])

    def remove_cloud_node(self, node):
        pass


class _StubDriver:
    name = "stubcloud"

    def destroy_node(self, instance):
        pass


def _make_handle(nid):
    inst = SimpleNamespace(node=SimpleNamespace(node_id=nid),
                           boot_end=0.0)
    return CloudWorkerHandle(inst, DEPLOY_FLAT)


def _build_world(n_handles, provision, greedy, idle_grace):
    credits = CreditSystem()
    credits.deposit("u", provision)
    credits.order("b", "u", provision)
    server = _StubServer()
    cfg = SchedulerConfig(idle_grace=idle_grace)
    sched = SpeQuloSScheduler(SimpleNamespace(now=0.0), info=None,
                              credits=credits, config=cfg)
    combo = StrategyCombo(size=SIZE_GREEDY if greedy
                          else SIZE_CONSERVATIVE, deploy=DEPLOY_FLAT)
    run = QoSRun(bot_id="b", server=server, driver=_StubDriver(),
                 monitor=None, oracle=None, combo=combo, started=True)
    sched.runs["b"] = run
    for nid in range(n_handles):
        run.ledger.append(_make_handle(nid))
        sched._active_total += 1
        sched._active_by_server[server] = \
            sched._active_by_server.get(server, 0) + 1
    return sched, run, server


def _handle_state(run):
    return [(h.billed_busy, h.last_busy, h.ever_assigned, h.stopped)
            for h in run.handles]


def _assert_ledger_synced(run):
    """Counter/column consistency: columns mirror attrs exactly."""
    led = run.ledger
    n = led.n
    assert n == len(run.handles)
    assert led.active == sum(1 for h in run.handles if not h.stopped)
    assert led.billed_busy[:n].tolist() == \
        [h.billed_busy for h in run.handles]
    assert led.last_busy[:n].tolist() == \
        [h.last_busy for h in run.handles]
    assert led.ever_assigned[:n].tolist() == \
        [h.ever_assigned for h in run.handles]
    assert led.stopped[:n].tolist() == [h.stopped for h in run.handles]
    for h in run.handles:
        if not h.stopped:
            assert led.by_node[h.node.node_id] is h


# ----------------------------------------------- scan transcript equality
@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_vectorized_scan_matches_per_handle_reference(data):
    n = data.draw(st.integers(1, 6), label="handles")
    greedy = data.draw(st.booleans(), label="greedy")
    idle_grace = data.draw(st.sampled_from([None, 60.0, 180.0]),
                           label="idle_grace")
    # small provisions force clamping/exhaustion (the scalar-fallback
    # regime); big ones keep the vectorized fast path engaged
    provision = data.draw(st.sampled_from([0.02, 0.3, 3.0, 1e4]),
                          label="provision")
    vec, run_v, srv_v = _build_world(n, provision, greedy, idle_grace)
    ref, run_r, srv_r = _build_world(n, provision, greedy, idle_grace)

    n_ticks = data.draw(st.integers(1, 7), label="ticks")
    now = 0.0
    for _ in range(n_ticks):
        now += 60.0
        incs = data.draw(st.lists(
            st.floats(0.0, 90.0, allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n))
        busy = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
        for srv in (srv_v, srv_r):
            srv.busy_now = {i for i, b in enumerate(busy) if b}
            for i, inc in enumerate(incs):
                srv.busy_sec[i] = srv.busy_sec.get(i, 0.0) + inc
        vec.sim.now = now
        ref.sim.now = now
        vec._bill_and_manage(run_v)
        ref._bill_and_manage_scalar(run_r)

        # full-state equality, exact floats throughout
        assert vec.credits.ledger == ref.credits.ledger
        assert vec.credits.get_order("b").spent == \
            ref.credits.get_order("b").spent
        assert vec.meter.spent_by_provider == ref.meter.spent_by_provider
        assert vec.meter.cpu_seconds_by_provider == \
            ref.meter.cpu_seconds_by_provider
        assert _handle_state(run_v) == _handle_state(run_r)
        assert run_v.stop_reason == run_r.stop_reason
        assert run_v.active_workers() == run_r.active_workers()
        assert vec._active_total == ref._active_total
        _assert_ledger_synced(run_v)
        _assert_ledger_synced(run_r)


def test_exhausting_tick_takes_the_scalar_fallback():
    """A tick whose charges might overrun the escrow must route to the
    exact replay (where settlement interleaving is observable)."""
    sched, run, srv = _build_world(3, provision=0.01, greedy=False,
                                   idle_grace=None)
    for i in range(3):
        srv.busy_sec[i] = 3600.0  # 15 credits each at the paper rate
    before = SCHED_TELEMETRY["scalar_fallbacks"]
    sched.sim.now = 60.0
    sched._bill_and_manage(run)
    assert SCHED_TELEMETRY["scalar_fallbacks"] == before + 1
    assert run.stop_reason == "credits exhausted"
    assert all(h.stopped for h in run.handles)
    assert run.active_workers() == 0


def test_stop_by_node_uses_the_index():
    sched, run, _srv = _build_world(4, provision=100.0, greedy=False,
                                    idle_grace=None)
    target = run.handles[2]
    sched._stop_by_node(run, target.node)
    assert target.stopped
    assert run.active_workers() == 3
    assert sched._active_total == 3
    # a node the run never launched is a no-op
    sched._stop_by_node(run, SimpleNamespace(node_id=999))
    assert run.active_workers() == 3


# ------------------------------------------------- charge_many equality
@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_charge_many_matches_sequential_charges(data):
    provision = data.draw(st.sampled_from([0.01, 0.5, 20.0, 1e5]))
    deltas = data.draw(st.lists(
        st.floats(-5.0, 400.0, allow_nan=False, allow_infinity=False),
        min_size=0, max_size=10))
    book = PriceBook.uniform(
        data.draw(st.sampled_from([15.0, 3.5, 120.0])))

    def fresh():
        credits = CreditSystem()
        credits.deposit("u", provision)
        credits.order("b", "u", provision)
        return BillingMeter(credits, book)

    seq, batch = fresh(), fresh()
    expected_fail = -1
    for i, d in enumerate(deltas):
        billed, asked = seq.charge("b", "p", d, now=60.0)
        if billed < asked - 1e-9:
            expected_fail = i
            break  # the scheduler stops billing here
    got_fail = batch.charge_many("b", "p", deltas, now=60.0)
    assert got_fail == expected_fail
    assert batch.credits.ledger == seq.credits.ledger
    assert batch.credits.get_order("b").spent == \
        seq.credits.get_order("b").spent
    assert batch.spent_by_provider == seq.spent_by_provider
    assert batch.cpu_seconds_by_provider == seq.cpu_seconds_by_provider


# --------------------------------------------------- static-rate caching
def test_static_book_caches_and_set_rate_invalidates():
    book = PriceBook.uniform(15.0)
    assert book.is_static()
    assert book.rate("ec2", now=0.0) == 15.0
    assert ("ec2", "ondemand") in book._rate_cache
    assert book.rate("ec2", now=9999.0) == 15.0  # served from cache
    book.set_rate("ec2", 30.0)
    assert book._rate_cache == {}  # invalidated
    assert book.rate("ec2", now=0.0) == 30.0


def test_time_varying_book_never_caches():
    book = PriceBook({"spotty": lambda now: 10.0 + now})
    assert not book.is_static()
    assert book.rate("spotty", now=0.0) == 10.0
    assert book.rate("spotty", now=5.0) == 15.0
    assert book._rate_cache == {}


def test_ledger_grows_past_initial_capacity():
    run = QoSRun(bot_id="b", server=None, driver=None, monitor=None,
                 oracle=None, combo=None)
    handles = [_make_handle(i) for i in range(40)]
    for h in handles:
        run.ledger.append(h)
    assert len(run.ledger) == 40
    assert run.handles == handles
    assert np.array_equal(run.ledger.node_ids[:40], np.arange(40))
    assert run.active_workers() == 40
