"""Routing edge cases and the history-fed policies.

The satellite bar: least-loaded tie-breaking with equal loads,
all-DCIs-dead ranking, and affinity fallback when the pinned DCI has
no live workers.  Plus the history plane's routing consumers:
throughput-probe least-loaded, slowdown-weighted history routing, and
learned affinity pins.
"""

import numpy as np
import pytest

from repro.core.routing import (
    ROUTING_POLICIES,
    AffinityRouter,
    HistoryWeightedRouter,
    LearnedAffinityRouter,
    LeastLoadedRouter,
    make_router,
)
from repro.history import ExecutionRecord, HistoryPlane


class _FakePool:
    def __init__(self, idle):
        self._idle = idle

    def idle_count(self, t):
        return self._idle


class _FakeServer:
    def __init__(self, busy, backlog, idle):
        self._busy, self._backlog = busy, backlog
        self.pool = _FakePool(idle)

    def busy_count(self):
        return self._busy

    def backlog(self):
        return self._backlog


class _FakeDCI:
    def __init__(self, name, busy=0, backlog=0, idle=10):
        self.name = name
        self.server = _FakeServer(busy, backlog, idle)


def _plane_with_slowdowns(entries, smoothing=1.0):
    """Plane with one record per (dci, category, slowdown, rate)."""
    plane = HistoryPlane(smoothing=smoothing)
    for dci, category, slowdown, rate in entries:
        makespan = 100.0 * slowdown      # ideal fixed at 100 s
        grid = np.linspace(0.9, 90.0, 100)
        grid[-1] = makespan
        n_tasks = max(1, int(round(rate * makespan)))
        plane.add(ExecutionRecord(f"{dci}//{category}", n_tasks,
                                  makespan, grid))
    return plane


# ------------------------------------------------------------- edge cases
def test_least_loaded_equal_nonzero_loads_tie_break_to_first():
    # both DCIs at load 10/10 = 1.0: earliest declared wins, always
    a = _FakeDCI("a", busy=5, backlog=5, idle=5)
    b = _FakeDCI("b", busy=10, backlog=10, idle=10)
    r = LeastLoadedRouter()
    assert [r.route("SMALL", [a, b], 0.0) for _ in range(3)] == [0, 0, 0]


def test_all_dcis_dead_ranking_is_deterministic_for_every_policy():
    dead = [_FakeDCI("x", idle=0), _FakeDCI("y", idle=0)]
    plane = HistoryPlane()  # empty: history policies run their fallbacks
    assert LeastLoadedRouter().route("SMALL", dead, 0.0) == 0
    assert LeastLoadedRouter(plane=plane).route("SMALL", dead, 0.0) == 0
    assert HistoryWeightedRouter(plane=plane).route("SMALL", dead, 0.0) == 0
    # round-robin fallbacks still cycle (they ignore liveness)
    learned = LearnedAffinityRouter(plane=plane)
    assert [learned.route("SMALL", dead, 0.0) for _ in range(2)] == [0, 1]


def test_affinity_pinned_to_dead_dci_falls_back_when_skip_dead():
    live = _FakeDCI("live", idle=4)
    dead = _FakeDCI("dead", idle=0)
    # historical default honors the pin even into a dead grid
    assert AffinityRouter({"SMALL": "dead"}).route(
        "SMALL", [live, dead], 0.0) == 1
    # skip_dead releases the pin to the round-robin fallback
    r = AffinityRouter({"SMALL": "dead"}, skip_dead=True)
    assert [r.route("SMALL", [live, dead], 0.0) for _ in range(3)] == \
        [0, 1, 0]
    # a live pin is still honored with skip_dead on
    r2 = AffinityRouter({"SMALL": "live"}, skip_dead=True)
    assert r2.route("SMALL", [live, dead], 0.0) == 0


# ------------------------------------------------------- history policies
def test_least_loaded_with_plane_uses_throughput_drain():
    # instantaneous probes say a (3 outstanding / 3 live = 1.0) beats
    # b (8/4 = 2.0); history says b drains 8 units at 2/s (4 s) faster
    # than a drains 3 at 0.1/s (30 s)
    a = _FakeDCI("a", busy=3, backlog=0, idle=0)
    b = _FakeDCI("b", busy=4, backlog=4, idle=0)
    plane = _plane_with_slowdowns([("a", "SMALL", 1.0, 0.1),
                                   ("b", "SMALL", 1.0, 2.0)])
    assert LeastLoadedRouter().route("SMALL", [a, b], 0.0) == 0
    assert LeastLoadedRouter(plane=plane).route("SMALL", [a, b], 0.0) == 1


def test_history_probes_keep_the_dead_dci_invariant():
    """A DCI with zero live workers must never win the drain ranking,
    however fast its archived throughput says it drains when alive
    (regression: 0 outstanding / positive rate used to score 0)."""
    dead = _FakeDCI("dead", busy=0, backlog=0, idle=0)
    alive = _FakeDCI("alive", busy=5, backlog=20, idle=5)
    plane = _plane_with_slowdowns([("dead", "SMALL", 1.0, 100.0),
                                   ("alive", "SMALL", 1.0, 0.5)])
    assert LeastLoadedRouter(plane=plane).route(
        "SMALL", [dead, alive], 0.0) == 1
    assert HistoryWeightedRouter(plane=plane).route(
        "SMALL", [dead, alive], 0.0) == 1
    # every DCI dead: deterministic first-declared fallback, even warm
    dead2 = _FakeDCI("alive", busy=0, backlog=0, idle=0)
    assert HistoryWeightedRouter(plane=plane).route(
        "SMALL", [dead, dead2], 0.0) == 0


def test_least_loaded_with_partial_history_falls_back_instantaneous():
    a = _FakeDCI("a", busy=3, backlog=0, idle=0)
    b = _FakeDCI("b", busy=4, backlog=4, idle=0)
    plane = _plane_with_slowdowns([("b", "SMALL", 1.0, 2.0)])  # a cold
    assert LeastLoadedRouter(plane=plane).route("SMALL", [a, b], 0.0) == \
        LeastLoadedRouter().route("SMALL", [a, b], 0.0)


def test_history_weighted_penalizes_high_slowdown_categories():
    # equal drain, but dci a historically serves SMALL with 4x tails
    a = _FakeDCI("a", busy=2, backlog=0, idle=0)
    b = _FakeDCI("b", busy=2, backlog=0, idle=0)
    plane = _plane_with_slowdowns([("a", "SMALL", 4.0, 1.0),
                                   ("b", "SMALL", 1.0, 1.0)])
    assert HistoryWeightedRouter(plane=plane).route(
        "SMALL", [a, b], 0.0) == 1
    # an unseen category weights 1.0 everywhere: drain decides (tie -> a)
    assert HistoryWeightedRouter(plane=plane).route(
        "BIG", [a, b], 0.0) == 0


def test_history_weighted_cold_plane_matches_least_loaded():
    a = _FakeDCI("a", busy=5, backlog=5, idle=5)
    b = _FakeDCI("b", busy=1, backlog=0, idle=5)
    for targets in ([a, b], [b, a]):
        assert HistoryWeightedRouter(plane=HistoryPlane()).route(
            "SMALL", targets, 0.0) == \
            LeastLoadedRouter().route("SMALL", targets, 0.0)
    assert HistoryWeightedRouter(plane=None).route(
        "SMALL", [a, b], 0.0) == 1


def test_learned_affinity_pins_to_lowest_archived_slowdown():
    dg = _FakeDCI("dg")
    cluster = _FakeDCI("cluster")
    plane = _plane_with_slowdowns([
        ("dg", "SMALL", 1.1, 1.0), ("cluster", "SMALL", 3.0, 1.0),
        ("dg", "BIG", 5.0, 1.0), ("cluster", "BIG", 1.2, 1.0)])
    r = LearnedAffinityRouter(plane=plane)
    targets = [dg, cluster]
    assert r.route("SMALL", targets, 0.0) == 0
    assert r.route("BIG", targets, 0.0) == 1
    # category never archived: round-robin fallback cycles
    assert [r.route("RANDOM", targets, 0.0) for _ in range(2)] == [0, 1]


def test_learned_affinity_without_plane_is_round_robin():
    targets = [_FakeDCI("a"), _FakeDCI("b")]
    r = LearnedAffinityRouter(plane=None)
    assert [r.route("SMALL", targets, 0.0) for _ in range(3)] == [0, 1, 0]


# ---------------------------------------------------------------- factory
def test_make_router_threads_plane_into_history_policies():
    plane = HistoryPlane()
    for policy in ROUTING_POLICIES:
        router = make_router(policy, plane=plane)
        assert router.name == policy
    assert make_router("history_weighted", plane=plane).plane is plane
    assert make_router("affinity_learned", plane=plane).plane is plane
    # the named least_loaded policy keeps instantaneous probes even
    # when a plane is offered (drift-pinned scenarios)
    assert make_router("least_loaded", plane=plane).plane is None


def test_new_policies_reject_empty_target_lists():
    for policy in ("history_weighted", "affinity_learned"):
        with pytest.raises(ValueError):
            make_router(policy, plane=HistoryPlane()).route("SMALL", [], 0.0)


# ------------------------------------------------------- cheapest_drain
class _FakeDriver:
    def __init__(self, name):
        self.name = name


def _priced_dci(name, provider, **kw):
    dci = _FakeDCI(name, **kw)
    dci.driver = _FakeDriver(provider)
    return dci


def test_cheapest_drain_uniform_book_matches_least_loaded():
    from repro.core.routing import CheapestDrainRouter
    from repro.economics.pricing import PriceBook
    targets = [_priced_dci("a", "stratuslab", busy=5, backlog=5, idle=5),
               _priced_dci("b", "ec2", busy=1, backlog=0, idle=9)]
    cheap = CheapestDrainRouter(pricebook=PriceBook.uniform(15.0))
    blind = LeastLoadedRouter()
    for category in ("SMALL", "BIG"):
        assert cheap.route(category, targets, 0.0) == \
            blind.route(category, targets, 0.0)
    # ties too: both idle -> both pick the earliest declared
    idle = [_priced_dci("a", "stratuslab"), _priced_dci("b", "ec2")]
    assert cheap.route("SMALL", idle, 0.0) == \
        blind.route("SMALL", idle, 0.0) == 0


def test_cheapest_drain_prefers_cheap_provider_until_loaded():
    from repro.core.routing import CheapestDrainRouter
    from repro.economics.pricing import PriceBook
    book = PriceBook.from_pairs((("stratuslab", 6.0), ("ec2", 18.0)))
    r = CheapestDrainRouter(pricebook=book)
    # equal loads: the 3x-cheaper provider wins even declared second
    targets = [_priced_dci("pricey", "ec2"),
               _priced_dci("cheap", "stratuslab")]
    assert r.route("SMALL", targets, 0.0) == 1
    # the cheap DCI saturated far past the price ratio: load wins
    targets = [_priced_dci("pricey", "ec2", idle=10),
               _priced_dci("cheap", "stratuslab",
                           busy=10, backlog=90, idle=0)]
    assert r.route("SMALL", targets, 0.0) == 0


def test_cheapest_drain_never_prefers_dead_dci():
    from repro.core.routing import CheapestDrainRouter
    from repro.economics.pricing import PriceBook
    book = PriceBook.from_pairs((("stratuslab", 0.5),))
    targets = [_priced_dci("pricey", "ec2", idle=5),
               _priced_dci("dead-cheap", "stratuslab", idle=0)]
    assert CheapestDrainRouter(pricebook=book).route(
        "SMALL", targets, 0.0) == 0


def test_cheapest_drain_warm_plane_uses_drain_estimates():
    from repro.core.routing import CheapestDrainRouter
    from repro.economics.pricing import PriceBook
    # archived throughput: "slow" drains 10x slower than "fast";
    # prices equal, so the drain estimate alone must decide
    plane = _plane_with_slowdowns([("slow", "SMALL", 1.0, 0.01),
                                   ("fast", "SMALL", 1.0, 0.1)])
    targets = [_priced_dci("slow", "ec2", busy=5, backlog=5, idle=5),
               _priced_dci("fast", "ec2", busy=5, backlog=5, idle=5)]
    r = CheapestDrainRouter(plane=plane, pricebook=PriceBook())
    assert r.route("SMALL", targets, 0.0) == 1


def test_cheapest_drain_charges_default_rate_without_driver():
    from repro.core.routing import CheapestDrainRouter
    from repro.economics.pricing import PriceBook
    book = PriceBook.from_pairs((("stratuslab", 6.0),))
    # no .driver attribute: the book's default applies (15 > 6)
    targets = [_FakeDCI("plain"), _priced_dci("cheap", "stratuslab")]
    assert CheapestDrainRouter(pricebook=book).route(
        "SMALL", targets, 0.0) == 1


def test_make_router_threads_pricebook_into_cheapest_drain():
    from repro.economics.pricing import PriceBook
    plane = HistoryPlane()
    book = PriceBook.from_pairs((("ec2", 30.0),))
    router = make_router("cheapest_drain", plane=plane, pricebook=book)
    assert router.name == "cheapest_drain"
    assert router.plane is plane and router.book is book
    # without a book the factory supplies the uniform default
    assert make_router("cheapest_drain").book.default == 15.0
    with pytest.raises(ValueError):
        make_router("cheapest_drain").route("SMALL", [], 0.0)
