"""Report rendering and light figure builders (smoke + content)."""

import os

import pytest

from repro.experiments.config import CampaignScale
from repro.experiments.report import ExperimentReport, Series, TextTable
from repro.experiments import figures


# ------------------------------------------------------------------ report
def test_text_table_render_alignment():
    t = TextTable("Title", ["col_a", "b"])
    t.add_row("x", 123)
    t.add_row("longer", 4.5)
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "Title"
    assert "col_a" in lines[2]
    assert out.count("\n") >= 5


def test_text_table_note():
    t = TextTable("T", ["a"], note="remember this")
    t.add_row("1")
    assert "note: remember this" in t.render()


def test_series_render():
    s = Series("curve", [1.0, 2.0], [0.5, 1.0])
    out = s.render()
    assert out.startswith("curve:")
    assert "(1," in out and "(2," in out


def test_report_render_and_save(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    rep = ExperimentReport("Test X", "a title")
    table = TextTable("T", ["a"])
    table.add_row("v")
    rep.tables.append(table)
    rep.series.append(Series("s", [1], [2]))
    rep.notes.append("hello")
    path = rep.save()
    assert os.path.dirname(path) == str(tmp_path)
    content = open(path).read()
    assert "### Test X: a title" in content
    assert "note: hello" in content


# --------------------------------------------------------- light builders
TINY = CampaignScale(name="tiny", size_factor=0.06, seeds_per_env=1,
                     seeds_strategy_grid=1)


def test_figure1_report_contents():
    rep = figures.figure1_report(TINY)
    assert rep.experiment_id == "Figure 1"
    assert rep.series, "needs the completion-ratio curve"
    xs = rep.series[0].x
    assert list(xs) == sorted(xs)
    body = rep.render()
    assert "tail slowdown" in body


def test_table3_report_contents():
    rep = figures.table3_report(n_draws=5)
    body = rep.render()
    for name in ("SMALL", "BIG", "RANDOM"):
        assert name in body
    assert "weib(91.98,0.57)" in body


@pytest.mark.slow
def test_table2_report_small_horizon():
    rep = figures.table2_report(horizon_days=0.5, step=600.0)
    body = rep.render()
    for trace in ("seti", "nd", "g5klyo", "g5kgre", "spot10", "spot100"):
        assert trace in body
    assert "measured" in body


def test_table5_report_contents():
    rep = figures.table5_report(duration_days=1.0, n_bots=6)
    body = rep.render()
    for comp in ("XW@LAL", "XW@LRI", "EGI", "StratusLab", "EC2"):
        assert comp in body


@pytest.mark.slow
def test_contention_report_contents():
    rep = figures.contention_report(TINY)
    body = rep.render()
    for policy in ("fifo", "fairshare", "deadline"):
        assert policy in body
    assert "max/min spread" in body
    assert "jain index" in body


def test_material_tail_filter():
    from repro.experiments.figures import has_material_tail
    from repro.experiments.runner import ExecutionResult
    from repro.experiments.config import ExecutionConfig
    import numpy as np

    def fake(makespan, ideal):
        return ExecutionResult(
            config=ExecutionConfig(trace="nd", middleware="xwhep",
                                   category="SMALL", seed=1),
            makespan=makespan, censored=False, n_tasks=10,
            completion_times=np.array([makespan]),
            tc_grid=np.full(100, np.nan), ideal_time=ideal,
            slowdown=makespan / ideal, pct_tasks_in_tail=0.0,
            pct_time_in_tail=0.0, credits_provisioned=0.0,
            credits_spent=0.0, workers_launched=0, cloud_cpu_hours=0.0,
            cloud_completions=0, events=0, wall_seconds=0.0)

    assert has_material_tail(fake(2000.0, 1000.0))
    assert not has_material_tail(fake(1050.0, 1000.0))   # 5% < 10%
    assert not has_material_tail(fake(1100.0, 1000.0))   # boundary
    assert not has_material_tail(fake(100.0, 50.0))      # < MIN_TAIL
