"""Admission control: predicted credit cost gates pooled QoS orders.

Unit level: the controller grants cold environments, rejects or defers
claims whose plane-predicted cost exceeds the pool's *uncommitted*
remainder, and tracks commitments so an arrival burst cannot all be
admitted against the same credits.  Integration level: a federated
scenario over a primed persistent archive really withholds QoS from
tenants the pool cannot cover — they still run best-effort — and the
outcome records the verdicts.
"""

import numpy as np
import pytest

from repro.core.admission import (
    DEFERRED,
    GRANTED,
    REJECTED,
    AdmissionController,
)
from repro.core.credit import CreditPool
from repro.experiments import DCISpec, ScenarioConfig, run_federated
from repro.history import ExecutionRecord, HistoryPlane

ENV = "dci0-seti-boinc//SMALL"


def _plane(cost_per_task: float, n_tasks: int = 10) -> HistoryPlane:
    plane = HistoryPlane()
    plane.add(ExecutionRecord(ENV, n_tasks, 1000.0,
                              np.linspace(10.0, 1000.0, 100),
                              credits_spent=cost_per_task * n_tasks))
    return plane


def _pool(provisioned: float, spent: float = 0.0) -> CreditPool:
    return CreditPool(pool_id="p", user="u", provisioned=provisioned,
                      spent=spent)


# ----------------------------------------------------------------- units
def test_cold_environment_is_always_granted():
    ctrl = AdmissionController(HistoryPlane(), mode="reject")
    decision = ctrl.evaluate("b1", ENV, 1000, _pool(1.0))
    assert decision.verdict == GRANTED
    assert decision.predicted_cost is None
    assert ctrl.committed() == 0.0  # nothing to commit without a forecast


def test_reject_when_predicted_cost_exceeds_pool_remainder():
    ctrl = AdmissionController(_plane(2.0), mode="reject")
    ok = ctrl.evaluate("b1", ENV, 10, _pool(100.0))       # 20 <= 100
    assert ok.verdict == GRANTED and ok.predicted_cost == 20.0
    over = ctrl.evaluate("b2", ENV, 100, _pool(100.0))    # 200 > 80 left
    assert over.verdict == REJECTED
    assert over.available == pytest.approx(80.0)


def test_defer_mode_defers_instead_of_rejecting():
    ctrl = AdmissionController(_plane(2.0), mode="defer")
    assert ctrl.evaluate("b1", ENV, 100, _pool(100.0)).verdict == DEFERRED
    # once the pool can cover it (e.g. a deposit or released claims),
    # the re-evaluation grants
    assert ctrl.evaluate("b1", ENV, 100, _pool(300.0)).verdict == GRANTED


def test_commitments_prevent_burst_over_admission_until_released():
    ctrl = AdmissionController(_plane(2.0), mode="reject")
    pool = _pool(50.0)
    assert ctrl.evaluate("b1", ENV, 10, pool).verdict == GRANTED   # 20
    assert ctrl.evaluate("b2", ENV, 10, pool).verdict == GRANTED   # 40
    # a third identical claim exceeds the uncommitted 10 remaining
    assert ctrl.evaluate("b3", ENV, 10, pool).verdict == REJECTED
    ctrl.release("b1")
    assert ctrl.evaluate("b3", ENV, 10, pool).verdict == GRANTED
    assert ctrl.counts() == {GRANTED: 3, REJECTED: 0, DEFERRED: 0}


def test_commitments_net_out_in_flight_spend():
    """A granted run's billed spend already shrank pool.remaining, so
    only its *unspent* forecast may keep reserving credits — without
    the netting, mid-run claims would count twice and starve later
    arrivals (regression)."""
    from repro.core.credit import CreditSystem

    credits = CreditSystem()
    credits.deposit("u", 1000.0)
    pool = credits.open_pool("p", "u", 1000.0)
    credits.join_pool("b1", "p")

    ctrl = AdmissionController(_plane(2.0), mode="reject")
    assert ctrl.evaluate("b1", ENV, 300, pool,
                         credits=credits).verdict == GRANTED  # forecast 600
    credits.bill("b1", 500.0)          # in-flight spend
    # remaining 500, outstanding commitment 600-500=100 -> available 400
    decision = ctrl.evaluate("b2", ENV, 50, pool, credits=credits)
    assert decision.verdict == GRANTED  # 100 <= 400
    assert decision.available == pytest.approx(400.0)
    # without the credits system the gate is conservative (full 600)
    assert ctrl.committed() == pytest.approx(600.0 + 100.0)
    assert ctrl.committed(credits) == pytest.approx(100.0 + 100.0)


def test_safety_factor_tightens_the_gate():
    ctrl = AdmissionController(_plane(2.0), mode="reject", safety=2.0)
    # predicted 20, safety-inflated 40 > 30
    assert ctrl.evaluate("b1", ENV, 10, _pool(30.0)).verdict == REJECTED


def test_controller_validation():
    plane = HistoryPlane()
    with pytest.raises(ValueError):
        AdmissionController(plane, mode="drop")
    with pytest.raises(ValueError):
        AdmissionController(plane, safety=0.0)
    with pytest.raises(ValueError):
        AdmissionController(plane, retry_period=0.0)


def test_scenario_config_validates_admission_and_history():
    dcis = (DCISpec(trace="seti", middleware="boinc"),)
    with pytest.raises(ValueError):
        ScenarioConfig(dcis=dcis, seed=1, admission="drop")
    with pytest.raises(ValueError):
        ScenarioConfig(dcis=dcis, seed=1, history="mysql")
    cfg = ScenarioConfig(dcis=dcis, seed=1, admission="reject",
                         history="memory")
    assert cfg.with_admission(None).admission is None


# ----------------------------------------------------------- integration
def _scenario(**overrides) -> ScenarioConfig:
    base = dict(
        dcis=(DCISpec(trace="seti", middleware="boinc"),
              DCISpec(trace="nd", middleware="xwhep", max_nodes=10)),
        seed=6000, n_tenants=4, bot_size=20, strategy="9C-C-R",
        pool_fraction=0.05, arrival_rate_per_hour=2.0,
        horizon_days=2.0, history="persistent")
    base.update(overrides)
    return ScenarioConfig(**base)


def _prime_archive(monkeypatch, tmp_path, cost_per_task: float):
    """Point REPRO_HISTORY at a fresh archive primed with expensive
    history for both DCIs' SMALL bucket."""
    path = str(tmp_path / "history.sqlite")
    monkeypatch.setenv("REPRO_HISTORY", path)
    from repro.history import PersistentHistoryStore
    store = PersistentHistoryStore(path)
    for dci in ("dci0-seti-boinc", "dci1-nd-xwhep"):
        n = 20
        store.add(ExecutionRecord(f"{dci}//SMALL", n, 5000.0,
                                  np.linspace(50.0, 5000.0, 100),
                                  credits_spent=cost_per_task * n))
    return path


def test_federated_admission_reject_withholds_qos_but_not_execution(
        monkeypatch, tmp_path):
    _prime_archive(monkeypatch, tmp_path, cost_per_task=1e6)
    res = run_federated(_scenario(admission="reject"))
    arrived = [t for t in res.tenants if t.admission != "-"]
    assert arrived and all(t.admission == "rejected" for t in arrived)
    # rejected tenants never bill the pool...
    assert res.pool_spent == 0.0
    assert all(t.credits_spent == 0.0 for t in res.tenants)
    assert all(t.workers_launched == 0 for t in res.tenants)
    # ...but their BoTs still complete best-effort on the DG
    assert all(not t.censored for t in arrived)
    assert res.admission_counts() == {"rejected": len(arrived)}


def test_federated_admission_defer_records_deferred_verdicts(
        monkeypatch, tmp_path):
    _prime_archive(monkeypatch, tmp_path, cost_per_task=1e6)
    res = run_federated(_scenario(admission="defer"))
    arrived = [t for t in res.tenants if t.admission != "-"]
    assert arrived and all(t.admission == "deferred" for t in arrived)
    assert res.pool_spent == 0.0


def test_federated_admission_grants_when_pool_covers_costs(
        monkeypatch, tmp_path):
    # archived cost ~ what the pool actually holds: everyone admitted
    _prime_archive(monkeypatch, tmp_path, cost_per_task=1e-3)
    res = run_federated(_scenario(admission="reject"))
    arrived = [t for t in res.tenants if t.admission != "-"]
    assert arrived and all(t.admission == "granted" for t in arrived)


def test_admission_field_round_trips_the_store(monkeypatch, tmp_path):
    from repro.campaign.store import ResultStore
    _prime_archive(monkeypatch, tmp_path, cost_per_task=1e6)
    cfg = _scenario(admission="reject")
    res = run_federated(cfg)
    store = ResultStore(":memory:")
    store.put(cfg, res)
    back = store.get(cfg)
    assert back.config == cfg
    assert [t.admission for t in back.tenants] == \
        [t.admission for t in res.tenants]
