"""Simulation engine: ordering, cancellation, determinism, bounds."""

import math

import pytest

from repro.simulator.engine import (
    PRIORITY_INFRA,
    PRIORITY_MONITOR,
    PRIORITY_NORMAL,
    Simulation,
    SimulationError,
)


class Recorder:
    def __init__(self):
        self.log = []

    def mark(self, label):
        self.log.append(label)


def test_events_run_in_time_order():
    sim = Simulation()
    rec = Recorder()
    sim.at(5.0, rec.mark, "b")
    sim.at(1.0, rec.mark, "a")
    sim.at(9.0, rec.mark, "c")
    sim.run()
    assert rec.log == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulation()
    times = []
    sim.at(3.5, lambda: times.append(sim.now))
    sim.at(7.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [3.5, 7.25]
    assert sim.now == 7.25


def test_schedule_uses_relative_delay():
    sim = Simulation()
    seen = []
    def later():
        seen.append(sim.now)
    def first():
        sim.schedule(10.0, later)
    sim.at(2.0, first)
    sim.run()
    assert seen == [12.0]


def test_equal_time_fifo_order():
    sim = Simulation()
    rec = Recorder()
    for label in "abcde":
        sim.at(1.0, rec.mark, label)
    sim.run()
    assert rec.log == list("abcde")


def test_priority_orders_simultaneous_events():
    sim = Simulation()
    rec = Recorder()
    sim.at(1.0, rec.mark, "monitor", priority=PRIORITY_MONITOR)
    sim.at(1.0, rec.mark, "normal", priority=PRIORITY_NORMAL)
    sim.at(1.0, rec.mark, "infra", priority=PRIORITY_INFRA)
    sim.run()
    assert rec.log == ["infra", "normal", "monitor"]


def test_cancelled_event_does_not_run():
    sim = Simulation()
    rec = Recorder()
    ev = sim.at(1.0, rec.mark, "x")
    sim.at(2.0, rec.mark, "y")
    ev.cancel()
    sim.run()
    assert rec.log == ["y"]


def test_cancel_is_idempotent():
    sim = Simulation()
    ev = sim.at(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_cancel_from_within_callback():
    sim = Simulation()
    rec = Recorder()
    ev = sim.at(2.0, rec.mark, "victim")
    sim.at(1.0, ev.cancel)
    sim.run()
    assert rec.log == []


def test_scheduling_in_the_past_raises():
    sim = Simulation()
    sim.at(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_bounds_processing():
    sim = Simulation()
    rec = Recorder()
    sim.at(1.0, rec.mark, "early")
    sim.at(100.0, rec.mark, "late")
    sim.run(until=10.0)
    assert rec.log == ["early"]
    sim.run()
    assert rec.log == ["early", "late"]


def test_horizon_caps_run():
    sim = Simulation(horizon=50.0)
    rec = Recorder()
    sim.at(10.0, rec.mark, "in")
    sim.at(60.0, rec.mark, "out")
    sim.run()
    assert rec.log == ["in"]


def test_stop_halts_processing():
    sim = Simulation()
    rec = Recorder()
    sim.at(1.0, rec.mark, "a")
    sim.at(2.0, lambda: sim.stop())
    sim.at(3.0, rec.mark, "b")
    sim.run()
    assert rec.log == ["a"]
    # a further run resumes where it stopped
    sim.run()
    assert rec.log == ["a", "b"]


def test_run_is_not_reentrant():
    sim = Simulation()
    failure = {}
    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            failure["err"] = exc
    sim.at(1.0, reenter)
    sim.run()
    assert "err" in failure


def test_events_scheduled_during_run_execute():
    sim = Simulation()
    rec = Recorder()
    def chain(n):
        rec.mark(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)
    sim.at(0.0, chain, 0)
    sim.run()
    assert rec.log == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_pending_counts_live_events():
    sim = Simulation()
    ev1 = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    assert sim.pending() == 2
    ev1.cancel()
    assert sim.pending() == 1


def test_peek_skips_cancelled():
    sim = Simulation()
    ev1 = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    ev1.cancel()
    assert sim.peek() == 2.0


def test_invalid_horizon_rejected():
    with pytest.raises(SimulationError):
        Simulation(horizon=0)


def test_events_processed_counter():
    sim = Simulation()
    for i in range(7):
        sim.at(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_zero_delay_event_runs_at_now():
    sim = Simulation()
    seen = []
    def outer():
        sim.schedule(0.0, lambda: seen.append(sim.now))
    sim.at(4.0, outer)
    sim.run()
    assert seen == [4.0]


def test_infinite_horizon_default():
    sim = Simulation()
    assert math.isinf(sim.horizon)


def test_pending_prunes_cancelled_heap_entries():
    """The O(n) count used to leave cancelled garbage on the heap;
    pending() now compacts it (like peek pops it from the top) while
    keeping the remaining schedule intact."""
    sim = Simulation(horizon=100.0)
    ran = []
    keep = [sim.at(float(t), ran.append, t) for t in (10, 30, 50)]
    doomed = [sim.at(float(t), ran.append, -t) for t in (20, 40, 60)]
    for ev in doomed:
        ev.cancel()
    assert len(sim._heap) == 6
    assert sim.pending() == 3
    assert len(sim._heap) == 3          # garbage reclaimed eagerly
    sim.run()
    assert ran == [10, 30, 50]          # order survives the re-heapify
    assert keep[0].time == 10.0


def test_pending_prune_inside_running_callback():
    """run() holds an alias to the heap list; pending() must compact
    in place so events scheduled after the prune still fire."""
    sim = Simulation(horizon=100.0)
    ran = []

    def first():
        victim.cancel()
        assert sim.pending() == 1       # prunes mid-run
        ran.append("first")

    sim.at(1.0, first)
    victim = sim.at(2.0, ran.append, "cancelled")
    sim.at(3.0, ran.append, "last")
    sim.run()
    assert ran == ["first", "last"]


# ---------------------------------------------- same-timestamp coalescing
def test_same_key_events_share_one_heap_entry():
    """The point of coalescing: k same-(time, priority) events cost one
    heap entry, not k."""
    sim = Simulation()
    for i in range(100):
        sim.at(5.0, lambda: None)
    assert len(sim._heap) == 1
    sim.run()
    assert sim.events_processed == 100


def test_coalesced_events_preserve_priority_then_seq_order():
    sim = Simulation()
    log = []
    sim.at(5.0, log.append, "m1", priority=PRIORITY_MONITOR)
    sim.at(5.0, log.append, "n1")
    sim.at(5.0, log.append, "i1", priority=PRIORITY_INFRA)
    sim.at(5.0, log.append, "n2")
    sim.at(5.0, log.append, "m2", priority=PRIORITY_MONITOR)
    sim.at(5.0, log.append, "i2", priority=PRIORITY_INFRA)
    sim.run()
    assert log == ["i1", "i2", "n1", "n2", "m1", "m2"]


def test_same_time_lower_priority_scheduled_mid_drain_preempts_rest():
    """A callback raising an infra event at its own instant must see it
    run before the remaining same-time normal events — the exact
    (time, priority, seq) order a flat heap would produce."""
    sim = Simulation()
    log = []

    def normal(i):
        log.append(("n", i))
        if i == 0:
            sim.at(5.0, lambda: log.append(("infra",)),
                   priority=PRIORITY_INFRA)

    for i in range(3):
        sim.at(5.0, normal, i)
    sim.run()
    assert log == [("n", 0), ("infra",), ("n", 1), ("n", 2)]


def test_same_key_event_scheduled_mid_drain_runs_after_the_bucket():
    """Same time, same priority, scheduled from inside the bucket being
    drained: its seq is larger, so it runs after the existing events."""
    sim = Simulation()
    log = []

    def first():
        log.append("first")
        sim.at(5.0, log.append, "late")

    sim.at(5.0, first)
    sim.at(5.0, log.append, "second")
    sim.run()
    assert log == ["first", "second", "late"]


def test_stop_mid_bucket_resumes_in_order():
    sim = Simulation()
    log = []
    sim.at(5.0, log.append, "a")
    sim.at(5.0, lambda: (log.append("b"), sim.stop()))
    sim.at(5.0, log.append, "c")
    sim.at(6.0, log.append, "d")
    sim.run()
    assert log == ["a", "b"]
    sim.run()
    assert log == ["a", "b", "c", "d"]


def test_cancel_mid_bucket_skips_without_firing():
    sim = Simulation()
    log = []
    victims = []

    def first():
        log.append("first")
        for v in victims:
            v.cancel()

    sim.at(5.0, first)
    victims.append(sim.at(5.0, log.append, "victim1"))
    sim.at(5.0, log.append, "kept")
    victims.append(sim.at(5.0, log.append, "victim2"))
    sim.run()
    assert log == ["first", "kept"]
    assert sim.events_processed == 2


# -------------------------------------------------------- batched dispatch
class BatchRecorder:
    """Counts per-event vs batched deliveries of one callable."""

    def __init__(self):
        self.log = []

    def one(self, label):
        self.log.append(("one", label))

    def one_batch(self, argslist):
        self.log.append(("batch", [label for (label,) in argslist]))

    def other(self, label):
        self.log.append(("other", label))


def test_batch_handler_gets_one_call_with_args_in_seq_order():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)
    for label in "abc":
        sim.at(5.0, rec.one, label)
    sim.run()
    assert rec.log == [("batch", ["a", "b", "c"])]
    assert sim.events_processed == 3


def test_batch_of_one_takes_the_per_event_path():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)
    sim.at(5.0, rec.one, "solo")
    sim.at(6.0, rec.one, "alone")   # different instants: never batched
    sim.run()
    assert rec.log == [("one", "solo"), ("one", "alone")]


def test_schedule_batch_shares_one_bucket_and_batches():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)
    evs = sim.schedule_batch(5.0, rec.one, [("a",), ("b",), ("c",)])
    assert [ev.time for ev in evs] == [5.0] * 3
    assert len(sim._heap) == 1
    sim.run()
    assert rec.log == [("batch", ["a", "b", "c"])]


def test_events_cancelled_before_the_run_are_excluded():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)
    lead = sim.at(5.0, rec.one, "lead")
    sim.at(5.0, rec.one, "a")
    mid = sim.at(5.0, rec.one, "mid")
    sim.at(5.0, rec.one, "b")
    tail = sim.at(5.0, rec.one, "tail")
    for ev in (lead, mid, tail):
        ev.cancel()
    sim.run()
    assert rec.log == [("batch", ["a", "b"])]
    assert sim.events_processed == 2


def test_mixed_callables_split_runs_in_seq_order():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)
    sim.at(5.0, rec.one, "a")
    sim.at(5.0, rec.one, "b")
    sim.at(5.0, rec.other, "x")
    sim.at(5.0, rec.one, "c")
    sim.at(5.0, rec.one, "d")
    sim.run()
    assert rec.log == [("batch", ["a", "b"]), ("other", "x"),
                       ("batch", ["c", "d"])]


def test_cancelled_interloper_does_not_split_the_run():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)
    sim.at(5.0, rec.one, "a")
    ghost = sim.at(5.0, rec.other, "ghost")
    sim.at(5.0, rec.one, "b")
    ghost.cancel()
    sim.run()
    assert rec.log == [("batch", ["a", "b"])]


def test_priority_buckets_never_merge_into_one_run():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)
    sim.at(5.0, rec.one, "n1")
    sim.at(5.0, rec.one, "n2")
    sim.at(5.0, rec.one, "m1", priority=PRIORITY_MONITOR)
    sim.at(5.0, rec.one, "m2", priority=PRIORITY_MONITOR)
    sim.run()
    assert rec.log == [("batch", ["n1", "n2"]), ("batch", ["m1", "m2"])]


def test_same_time_infra_event_preempts_before_the_batch():
    """Flat-heap order around a batch: an infra event raised at the
    bucket's own instant runs before the batched remainder."""
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)

    def opener():
        rec.log.append(("opener",))
        sim.at(5.0, rec.other, "infra", priority=PRIORITY_INFRA)

    sim.at(5.0, opener)
    for label in "abc":
        sim.at(5.0, rec.one, label)
    sim.run()
    assert rec.log == [("opener",), ("other", "infra"),
                       ("batch", ["a", "b", "c"])]


def test_batch_handler_may_schedule_same_key_followups():
    """Events a batch handler queues at its own (time, priority) get
    larger seqs, drain afterwards, and may batch again."""
    sim = Simulation()
    rec = BatchRecorder()
    spawned = []

    def one_batch(argslist):
        rec.one_batch(argslist)
        if not spawned:
            spawned.append(True)
            sim.schedule_batch(0.0, rec.one, [("x",), ("y",)])

    sim.register_batch(rec.one, one_batch)
    sim.at(5.0, rec.one, "a")
    sim.at(5.0, rec.one, "b")
    sim.run()
    assert rec.log == [("batch", ["a", "b"]), ("batch", ["x", "y"])]
    assert sim.events_processed == 4


def test_batch_handler_scheduling_higher_urgency_same_time_raises():
    sim = Simulation()
    rec = BatchRecorder()

    def bad_batch(argslist):
        sim.at(5.0, rec.other, "preempt", priority=PRIORITY_INFRA)

    sim.register_batch(rec.one, bad_batch)
    sim.at(5.0, rec.one, "a")
    sim.at(5.0, rec.one, "b")
    with pytest.raises(SimulationError, match="higher-urgency"):
        sim.run()


def test_stop_inside_a_batch_handler_raises():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, lambda argslist: sim.stop())
    sim.at(5.0, rec.one, "a")
    sim.at(5.0, rec.one, "b")
    with pytest.raises(SimulationError, match="stop"):
        sim.run()


def test_cancelling_a_run_member_inside_the_batch_raises():
    sim = Simulation()
    rec = BatchRecorder()
    evs = []
    sim.register_batch(rec.one, lambda argslist: evs[-1].cancel())
    evs.append(sim.at(5.0, rec.one, "a"))
    evs.append(sim.at(5.0, rec.one, "b"))
    with pytest.raises(SimulationError, match="cancelled"):
        sim.run()


def test_unregister_batch_restores_per_event_dispatch():
    sim = Simulation()
    rec = BatchRecorder()
    sim.register_batch(rec.one, rec.one_batch)
    sim.unregister_batch(rec.one)
    sim.at(5.0, rec.one, "a")
    sim.at(5.0, rec.one, "b")
    sim.run()
    assert rec.log == [("one", "a"), ("one", "b")]


def test_bound_method_registration_is_per_instance():
    sim = Simulation()
    rec1, rec2 = BatchRecorder(), BatchRecorder()
    sim.register_batch(rec1.one, rec1.one_batch)   # rec2 stays per-event
    sim.at(5.0, rec1.one, "a")
    sim.at(5.0, rec1.one, "b")
    sim.at(5.0, rec2.one, "x")
    sim.at(5.0, rec2.one, "y")
    sim.run()
    assert rec1.log == [("batch", ["a", "b"])]
    assert rec2.log == [("one", "x"), ("one", "y")]


def test_register_batch_rejects_non_callables():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.register_batch("not-callable", lambda argslist: None)


def test_run_until_drained_heap_advances_clock_to_bound():
    """Regression (phased service loops): a bounded run over an empty
    heap must advance `now` to the bound, not stand still."""
    sim = Simulation()
    sim.at(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    assert sim.run(until=10.0) == 10.0
    assert sim.now == 10.0
    # events remain schedulable at the advanced clock
    sim.at(10.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.at(9.0, lambda: None)
