"""History plane: backends, round-trips, queries, salting.

The losslessness bar mirrors the campaign store's: a record fetched
back from any backend (in-memory, plain SQLite, persistent salted
SQLite) must be *exactly* the record archived — IEEE doubles included
— so an α fitted from persisted history equals the α fitted from the
same records in memory, bit for bit.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.history import (
    ExecutionRecord,
    HistoryPlane,
    InMemoryHistoryStore,
    PersistentHistoryStore,
    SQLiteHistoryStore,
    env_key_of,
    fit_alpha,
    open_history_plane,
    split_env_key,
)

# ---------------------------------------------------------------- strategies
finite_time = st.floats(min_value=1e-3, max_value=1e9,
                        allow_nan=False, allow_infinity=False)


@st.composite
def records(draw, env_key="dci-a//SMALL"):
    """One archivable record with a partially NaN-padded grid."""
    n_filled = draw(st.integers(min_value=1, max_value=100))
    times = sorted(draw(st.lists(finite_time, min_size=n_filled,
                                 max_size=n_filled)))
    grid = np.full(100, np.nan)
    grid[:n_filled] = times
    return ExecutionRecord(
        env_key=env_key,
        n_tasks=draw(st.integers(min_value=1, max_value=10000)),
        makespan=times[-1],
        grid=grid,
        credits_spent=draw(st.floats(min_value=0.0, max_value=1e6,
                                     allow_nan=False)),
        provider=draw(st.sampled_from(("", "ec2", "stratuslab"))))


def _assert_identical(a: ExecutionRecord, b: ExecutionRecord) -> None:
    assert a.env_key == b.env_key
    assert a.n_tasks == b.n_tasks
    assert a.makespan == b.makespan          # exact, not approx
    assert a.credits_spent == b.credits_spent
    assert a.provider == b.provider
    assert np.array_equal(a.grid, b.grid, equal_nan=True)


BACKENDS = [InMemoryHistoryStore,
            lambda: SQLiteHistoryStore(":memory:"),
            lambda: PersistentHistoryStore(":memory:", salt="s1")]


# ---------------------------------------------------------------- round-trip
@pytest.mark.parametrize("make_store", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(recs=st.lists(
    records(), min_size=1, max_size=5,
    unique_by=lambda r: (r.n_tasks, r.makespan, r.credits_spent,
                         r.grid.tobytes())))
def test_archive_fetch_round_trip_is_lossless(make_store, recs):
    store = make_store()
    for rec in recs:
        store.add(rec)
    back = store.fetch("dci-a//SMALL")
    assert len(back) == len(recs)
    for orig, rt in zip(recs, back):
        _assert_identical(orig, rt)


@settings(max_examples=25, deadline=None)
@given(recs=st.lists(
    records(), min_size=1, max_size=6,
    # the persistent store dedups byte-identical records (replay
    # idempotence); feed distinct ones so both backends hold the
    # same multiset
    unique_by=lambda r: (r.n_tasks, r.makespan, r.credits_spent,
                         r.grid.tobytes())))
def test_alpha_from_persisted_records_equals_in_memory_alpha(recs):
    """The satellite bar: persistence must not perturb calibration."""
    mem = HistoryPlane(InMemoryHistoryStore())
    sql = HistoryPlane(PersistentHistoryStore(":memory:"))
    for rec in recs:
        mem.add(rec)
        sql.add(rec)
    for fraction in (0.25, 0.5, 0.9):
        a_mem, n_mem = mem.alpha("dci-a//SMALL", fraction)
        a_sql, n_sql = sql.alpha("dci-a//SMALL", fraction)
        assert (a_mem, n_mem) == (a_sql, n_sql)
        # and both equal the direct fit over the raw records
        p = [r.tc_at(fraction) / fraction for r in recs]
        a = [r.makespan for r in recs]
        assert a_mem == fit_alpha(p, a)


def test_persistent_add_is_idempotent(tmp_path):
    store = PersistentHistoryStore(str(tmp_path / "h.sqlite"), salt="s1")
    rec = ExecutionRecord("e//X", 10, 100.0, np.full(100, 7.0), 1.5)
    store.add(rec)
    store.add(rec)
    assert len(store) == 1
    store.add(ExecutionRecord("e//X", 10, 101.0, np.full(100, 7.0), 1.5))
    assert len(store) == 2


def test_persistent_salting_hides_and_gcs_stale_records(tmp_path):
    path = str(tmp_path / "h.sqlite")
    old = PersistentHistoryStore(path, salt="old")
    old.add(ExecutionRecord("e//X", 10, 100.0, np.full(100, 5.0)))
    new = PersistentHistoryStore(path, salt="new")
    # stale-salt records are invisible to the current code version
    assert len(new) == 0
    assert new.fetch("e//X") == []
    assert new.env_keys() == []
    assert new.stale_count() == 1
    rows, nbytes = new.gc()
    assert rows == 1 and nbytes > 0
    assert new.stale_count() == 0
    # ...while same-salt records survive across handles
    new.add(ExecutionRecord("e//X", 10, 100.0, np.full(100, 5.0)))
    again = PersistentHistoryStore(path, salt="new")
    assert len(again) == 1


def test_plane_gc_delegates_and_defaults_to_noop():
    assert HistoryPlane(InMemoryHistoryStore()).gc() == (0, 0)
    path_store = PersistentHistoryStore(":memory:", salt="s")
    assert HistoryPlane(path_store).gc() == (0, 0)


# ------------------------------------------------------------------- queries
def _plane_with(env, triples):
    """Plane holding (n_tasks, makespan, credits) records with flat
    grids (tc constant: no tail; slowdown 1)."""
    plane = HistoryPlane()
    for n, mk, credits in triples:
        grid = np.linspace(mk / 100.0, mk, 100)
        plane.add(ExecutionRecord(env, n, mk, grid, credits))
    return plane


def test_grids_and_makespans_shapes():
    plane = _plane_with("d//S", [(10, 100.0, 0.0), (10, 200.0, 0.0)])
    assert plane.grids("d//S").shape == (2, 100)
    assert plane.grids("missing//S").shape == (0, 100)
    assert list(plane.makespans("d//S")) == [100.0, 200.0]


def test_throughput_is_ewma_over_archive_order():
    plane = HistoryPlane(smoothing=0.5)
    env = "d//S"
    for n, mk in ((100, 100.0), (100, 400.0)):  # rates 1.0, 0.25
        plane.add(ExecutionRecord(env, n, mk, np.full(100, mk)))
    assert plane.throughput(env) == pytest.approx(0.5 * 0.25 + 0.5 * 1.0)
    assert plane.throughput("missing//S") is None


def test_dci_throughput_aggregates_categories_by_record_count():
    plane = HistoryPlane(smoothing=1.0)  # last record wins per env
    plane.add(ExecutionRecord("d//A", 100, 100.0, np.full(100, 1.0)))  # 1.0
    plane.add(ExecutionRecord("d//B", 100, 200.0, np.full(100, 1.0)))  # 0.5
    plane.add(ExecutionRecord("d//B", 100, 200.0, np.full(100, 1.0)))
    # weighted by counts: (1*1.0 + 2*0.5) / 3
    assert plane.dci_throughput("d") == pytest.approx(2.0 / 3.0)
    assert plane.dci_throughput("other") is None


def test_mean_slowdown_and_availability():
    plane = HistoryPlane()
    env = "d//S"
    # ideal = tc(0.9)/0.9 = 90/0.9 = 100; makespan 150 -> slowdown 1.5
    grid = np.linspace(1.0, 100.0, 100)
    grid[-1] = 150.0
    plane.add(ExecutionRecord(env, 100, 150.0, grid))
    assert plane.mean_slowdown(env) == pytest.approx(1.5)
    summary = plane.summarize(env)
    assert summary.availability == pytest.approx(1 / 1.5)
    assert plane.mean_slowdown("missing//S") is None


def test_predicted_cost_scales_mean_cost_per_task():
    plane = _plane_with("d//S", [(10, 100.0, 20.0), (20, 100.0, 20.0)])
    # per task: mean(2.0, 1.0) = 1.5
    assert plane.cost_per_task("d//S") == pytest.approx(1.5)
    assert plane.predicted_cost("d//S", 40) == pytest.approx(60.0)
    assert plane.predicted_cost("missing//S", 40) is None


def test_alpha_residuals_drop_unusable_bases():
    plane = HistoryPlane()
    env = "d//S"
    grid = np.full(100, np.nan)
    grid[49] = 50.0
    plane.add(ExecutionRecord(env, 100, 120.0, grid))
    plane.add(ExecutionRecord(env, 100, 120.0, np.full(100, np.nan)))
    res = plane.alpha_residuals(env, 0.5, alpha=1.0)
    assert list(res) == [pytest.approx(120.0 - 100.0)]
    # alpha=None fits first: one usable record -> exact fit -> residual 0
    assert plane.alpha_residuals(env, 0.5)[0] == pytest.approx(0.0)


def test_summary_covers_every_env_key_sorted():
    plane = _plane_with("b//S", [(10, 100.0, 1.0)])
    plane.add(ExecutionRecord("a//S", 10, 50.0,
                              np.linspace(0.5, 50.0, 100)))
    assert list(plane.summary()) == ["a//S", "b//S"]
    assert plane.summary()["b//S"].records == 1


# -------------------------------------------------------------------- modes
def test_open_history_plane_modes(tmp_path, monkeypatch):
    assert isinstance(open_history_plane(None).backend,
                      InMemoryHistoryStore)
    assert isinstance(open_history_plane("memory").backend,
                      InMemoryHistoryStore)
    monkeypatch.setenv("REPRO_HISTORY", str(tmp_path / "h.sqlite"))
    plane = open_history_plane("persistent")
    assert isinstance(plane.backend, PersistentHistoryStore)
    assert plane.backend.path == str(tmp_path / "h.sqlite")
    with pytest.raises(ValueError):
        open_history_plane("mysql")


def test_env_key_helpers_round_trip():
    key = env_key_of("dci0-seti-boinc", "SMALL")
    assert key == "dci0-seti-boinc//SMALL"
    assert split_env_key(key) == ("dci0-seti-boinc", "SMALL")


def test_plane_archive_requires_finished_monitor():
    class _Mon:
        done = False
    with pytest.raises(ValueError):
        HistoryPlane().archive("e//X", _Mon())


def test_plane_smoothing_validation():
    with pytest.raises(ValueError):
        HistoryPlane(smoothing=0.0)
    with pytest.raises(ValueError):
        HistoryPlane(smoothing=1.5)


def test_ensure_passes_planes_through_and_wraps_backends():
    plane = HistoryPlane()
    assert HistoryPlane.ensure(plane) is plane
    store = InMemoryHistoryStore()
    assert HistoryPlane.ensure(store).backend is store
    assert isinstance(HistoryPlane.ensure(None).backend,
                      InMemoryHistoryStore)


def test_info_module_reads_and_archives_through_the_plane():
    """The refactor's contract: InformationModule is a plane consumer."""
    from repro.core.info import InformationModule
    from repro.workload.bot import BagOfTasks, Task

    shared = HistoryPlane()
    info = InformationModule(store=shared)
    assert info.plane is shared
    assert info.store is shared.backend
    bot = BagOfTasks(bot_id="b", tasks=[Task(i, 1000.0) for i in range(4)],
                     wall_clock=1.0)
    mon = info.register(bot, 0.0)
    for i in range(4):
        mon.on_task_completed(("b", i), float(i + 1))
    info.archive_execution("e//X", mon, credits_spent=3.25)
    (rec,) = shared.fetch("e//X")
    assert rec.makespan == 4.0
    assert rec.credits_spent == 3.25
    assert math.isfinite(rec.tc_at(1.0))


# --------------------------------------------- provider dimension (economics)
def _rec(env, n, makespan, spent, provider=""):
    grid = np.full(100, np.nan)
    grid[-1] = makespan
    return ExecutionRecord(env, n, makespan, grid,
                           credits_spent=spent, provider=provider)


def test_cost_per_task_filters_by_provider():
    plane = HistoryPlane()
    env = "dci-a//SMALL"
    plane.add(_rec(env, 10, 100.0, 50.0, provider="stratuslab"))   # 5/task
    plane.add(_rec(env, 10, 100.0, 150.0, provider="ec2"))         # 15/task
    assert plane.cost_per_task(env) == pytest.approx(10.0)
    assert plane.cost_per_task(env, provider="stratuslab") == \
        pytest.approx(5.0)
    assert plane.cost_per_task(env, provider="ec2") == pytest.approx(15.0)
    # untagged legacy records are provider-agnostic: they join every
    # provider's estimate instead of being superseded by tagged ones
    plane.add(_rec(env, 10, 100.0, 250.0))
    assert plane.cost_per_task(env, provider="ec2") == \
        pytest.approx((15.0 + 25.0) / 2.0)
    # a provider the bucket never saw: only the provider-agnostic
    # (untagged) records speak for it
    assert plane.cost_per_task(env, provider="nimbus") == \
        pytest.approx(25.0)
    assert plane.predicted_cost(env, 20, provider="stratuslab") == \
        pytest.approx(20 * (5.0 + 25.0) / 2.0)


def test_provider_costs_aggregates_across_envs():
    plane = HistoryPlane()
    plane.add(_rec("a//SMALL", 10, 50.0, 60.0, provider="ec2"))
    plane.add(_rec("b//BIG", 10, 50.0, 20.0, provider="ec2"))
    plane.add(_rec("a//SMALL", 10, 50.0, 30.0, provider="stratuslab"))
    plane.add(_rec("a//SMALL", 10, 50.0, 99.0))   # untagged: excluded
    costs = plane.provider_costs()
    assert costs["ec2"] == (2, pytest.approx(4.0))
    assert costs["stratuslab"] == (1, pytest.approx(3.0))
    assert "" not in costs


def test_admission_reads_per_provider_cost():
    from repro.core.admission import AdmissionController
    from repro.core.credit import CreditSystem
    plane = HistoryPlane()
    env = "dci-a//SMALL"
    plane.add(_rec(env, 10, 100.0, 50.0, provider="stratuslab"))
    plane.add(_rec(env, 10, 100.0, 1000.0, provider="ec2"))
    credits = CreditSystem()
    credits.deposit("u", 120.0)
    pool = credits.open_pool("p", "u", 120.0)
    ctrl = AdmissionController(plane, mode="reject")
    # 20 tasks: 100 credits from stratuslab history (fits), 2000 from ec2
    assert ctrl.evaluate("b1", env, 20, pool,
                         provider="stratuslab").verdict == "granted"
    ctrl.release("b1")
    assert ctrl.evaluate("b2", env, 20, pool,
                         provider="ec2").verdict == "rejected"


def test_sqlite_migration_adds_provider_column(tmp_path):
    import sqlite3
    path = str(tmp_path / "old.sqlite")
    conn = sqlite3.connect(path)
    conn.executescript("""
        CREATE TABLE executions (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            env_key TEXT NOT NULL, n_tasks INTEGER NOT NULL,
            makespan REAL NOT NULL, grid TEXT NOT NULL,
            credits_spent REAL NOT NULL DEFAULT 0.0);
    """)
    conn.execute("INSERT INTO executions "
                 "(env_key, n_tasks, makespan, grid, credits_spent) "
                 "VALUES ('a//SMALL', 5, 10.0, '[10.0]', 2.5)")
    conn.commit()
    conn.close()
    store = SQLiteHistoryStore(path)          # migrates in place
    (rec,) = store.fetch("a//SMALL")
    assert rec.provider == ""                 # legacy rows read back
    store.add(_rec("a//SMALL", 5, 11.0, 3.0, provider="ec2"))
    assert store.fetch("a//SMALL")[1].provider == "ec2"


# -------------------------------------------------- archive pruning policies
def _prune_store(tmp_path, n=5, env="a//SMALL"):
    store = PersistentHistoryStore(str(tmp_path / "h.sqlite"),
                                   salt="test")
    for i in range(n):
        store.add(_rec(env, 10, 100.0 + i, 1.0))
    return store


def test_prune_caps_records_per_env(tmp_path):
    store = _prune_store(tmp_path, n=5)
    for i in range(3):
        store.add(_rec("b//BIG", 10, 200.0 + i, 1.0))
    rows, nbytes = store.prune(max_per_env=2)
    assert rows == 4 and nbytes > 0
    # the newest two of each environment survive, in insertion order
    assert [r.makespan for r in store.fetch("a//SMALL")] == [103.0, 104.0]
    assert [r.makespan for r in store.fetch("b//BIG")] == [201.0, 202.0]
    assert store.prune(max_per_env=2) == (0, 0)


def test_prune_ages_out_old_records(tmp_path):
    import time as _time
    store = _prune_store(tmp_path, n=3)
    # pretend the first two records are 10 days old
    store._conn.execute(
        "UPDATE executions SET created_at = ? WHERE makespan < 102.0",
        (_time.time() - 10 * 86400.0,))
    store._conn.commit()
    rows, _ = store.prune(max_age_days=5.0)
    assert rows == 2
    assert [r.makespan for r in store.fetch("a//SMALL")] == [102.0]


def test_prune_leaves_stale_salt_records_to_gc(tmp_path):
    path = str(tmp_path / "h.sqlite")
    old = PersistentHistoryStore(path, salt="old")
    old.add(_rec("a//SMALL", 10, 1.0, 1.0))
    old.close()
    store = PersistentHistoryStore(path, salt="new")
    for i in range(3):
        store.add(_rec("a//SMALL", 10, 100.0 + i, 1.0))
    rows, _nbytes = store.prune(max_per_env=1)
    assert rows == 2
    assert len(store) == 1
    assert store.stale_count() == 1           # untouched by prune
    assert store.gc()[0] == 1


def test_prune_validates_arguments(tmp_path):
    store = _prune_store(tmp_path, n=1)
    with pytest.raises(ValueError):
        store.prune(max_per_env=0)
    with pytest.raises(ValueError):
        store.prune(max_age_days=0.0)
    assert store.prune() == (0, 0)            # no policy = no-op
