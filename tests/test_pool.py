"""NodePool: lazy acquire/release semantics and poll weighting."""

import numpy as np
import pytest

from repro.infra.node import Node
from repro.infra.pool import NodePool


def volatile(nid, starts, ends, power=1000.0):
    return Node(nid, power, np.asarray(starts, float),
                np.asarray(ends, float))


def rng(seed=0):
    return np.random.default_rng(seed)


def test_acquire_returns_available_node():
    pool = NodePool([volatile(1, [0], [100])], rng=rng())
    got = pool.acquire(10.0)
    assert got is not None
    node, end = got
    assert node.node_id == 1
    assert end == 100.0


def test_acquire_empty_pool_returns_none():
    pool = NodePool(rng=rng())
    assert pool.acquire(0.0) is None


def test_acquired_node_not_served_twice():
    pool = NodePool([volatile(1, [0], [100])], rng=rng())
    assert pool.acquire(0.0) is not None
    assert pool.acquire(0.0) is None


def test_release_returns_node_to_service():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.release(n, 10.0)
    assert pool.acquire(10.0) is not None


def test_future_node_not_served_early_then_promoted():
    pool = NodePool([volatile(1, [50], [100])], rng=rng())
    assert pool.acquire(0.0) is None
    assert pool.acquire(60.0) is not None


def test_stale_idle_node_recycled_to_next_interval():
    pool = NodePool([volatile(1, [0, 200], [100, 300])], rng=rng())
    # sits idle past its first interval
    got = pool.acquire(150.0)
    assert got is None  # now between intervals
    got = pool.acquire(250.0)
    assert got is not None
    assert got[1] == 300.0


def test_preempted_node_comes_back_next_interval():
    n = volatile(1, [0, 200], [100, 300])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.preempted(n, 100.0)
    assert pool.acquire(150.0) is None
    assert pool.acquire(210.0) is not None


def test_node_that_never_returns_is_dropped():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.preempted(n, 100.0)
    assert pool.size == 0
    assert pool.acquire(200.0) is None


def test_remove_prevents_future_acquire():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    pool.remove(n)
    assert pool.acquire(0.0) is None
    assert n not in pool


def test_remove_while_busy_blocks_release():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.remove(n)
    pool.release(n, 10.0)  # no-op: retired
    assert pool.acquire(10.0) is None


def test_duplicate_add_rejected():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    with pytest.raises(ValueError):
        pool.add(n, 0.0)


def test_next_future_start():
    pool = NodePool([volatile(1, [50], [100]),
                     volatile(2, [80], [120])], rng=rng())
    assert pool.next_future_start(0.0) == 50.0


def test_next_future_start_with_ready_node_returns_now():
    pool = NodePool([volatile(1, [0], [100])], rng=rng())
    assert pool.next_future_start(10.0) == 10.0


def test_next_future_start_exhausted_returns_none():
    n = volatile(1, [0], [10])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.preempted(n, 10.0)
    assert pool.next_future_start(20.0) is None


def test_idle_count():
    pool = NodePool([volatile(1, [0], [100]),
                     volatile(2, [0], [100]),
                     volatile(3, [500], [600])], rng=rng())
    assert pool.idle_count(10.0) == 2


def test_all_nodes_eventually_served():
    nodes = [volatile(i, [0], [1000]) for i in range(10)]
    pool = NodePool(nodes, rng=rng())
    seen = set()
    for _ in range(10):
        node, _ = pool.acquire(0.0)
        seen.add(node.node_id)
    assert seen == set(range(10))


def test_cloud_poll_weight_biases_selection():
    """With weight w, one idle cloud worker should win roughly
    w/(w+1) of the draws against one idle regular node."""
    wins = 0
    trials = 400
    for seed in range(trials):
        reg = volatile(1, [0], [1e9])
        cloud = Node.stable(2, 3000.0)
        pool = NodePool([reg, cloud], rng=rng(seed), cloud_poll_weight=10.0)
        node, _ = pool.acquire(0.0)
        if node.cloud:
            wins += 1
    assert 0.82 < wins / trials < 0.98  # expectation ~0.909


def test_cloud_weight_validation():
    with pytest.raises(ValueError):
        NodePool(cloud_poll_weight=0.0)


def test_selection_is_seed_deterministic():
    def draw(seed):
        nodes = [volatile(i, [0], [1000]) for i in range(20)]
        pool = NodePool(nodes, rng=rng(seed))
        return [pool.acquire(0.0)[0].node_id for _ in range(20)]
    assert draw(5) == draw(5)
    assert draw(5) != draw(6)
