"""NodePool: lazy acquire/release semantics and poll weighting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infra.node import Node
from repro.infra.pool import NodePool


def volatile(nid, starts, ends, power=1000.0):
    return Node(nid, power, np.asarray(starts, float),
                np.asarray(ends, float))


def rng(seed=0):
    return np.random.default_rng(seed)


def test_acquire_returns_available_node():
    pool = NodePool([volatile(1, [0], [100])], rng=rng())
    got = pool.acquire(10.0)
    assert got is not None
    node, end = got
    assert node.node_id == 1
    assert end == 100.0


def test_acquire_empty_pool_returns_none():
    pool = NodePool(rng=rng())
    assert pool.acquire(0.0) is None


def test_acquired_node_not_served_twice():
    pool = NodePool([volatile(1, [0], [100])], rng=rng())
    assert pool.acquire(0.0) is not None
    assert pool.acquire(0.0) is None


def test_release_returns_node_to_service():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.release(n, 10.0)
    assert pool.acquire(10.0) is not None


def test_future_node_not_served_early_then_promoted():
    pool = NodePool([volatile(1, [50], [100])], rng=rng())
    assert pool.acquire(0.0) is None
    assert pool.acquire(60.0) is not None


def test_stale_idle_node_recycled_to_next_interval():
    pool = NodePool([volatile(1, [0, 200], [100, 300])], rng=rng())
    # sits idle past its first interval
    got = pool.acquire(150.0)
    assert got is None  # now between intervals
    got = pool.acquire(250.0)
    assert got is not None
    assert got[1] == 300.0


def test_preempted_node_comes_back_next_interval():
    n = volatile(1, [0, 200], [100, 300])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.preempted(n, 100.0)
    assert pool.acquire(150.0) is None
    assert pool.acquire(210.0) is not None


def test_node_that_never_returns_is_dropped():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.preempted(n, 100.0)
    assert pool.size == 0
    assert pool.acquire(200.0) is None


def test_remove_prevents_future_acquire():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    pool.remove(n)
    assert pool.acquire(0.0) is None
    assert n not in pool


def test_remove_while_busy_blocks_release():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.remove(n)
    pool.release(n, 10.0)  # no-op: retired
    assert pool.acquire(10.0) is None


def test_duplicate_add_rejected():
    n = volatile(1, [0], [100])
    pool = NodePool([n], rng=rng())
    with pytest.raises(ValueError):
        pool.add(n, 0.0)


def test_next_future_start():
    pool = NodePool([volatile(1, [50], [100]),
                     volatile(2, [80], [120])], rng=rng())
    assert pool.next_future_start(0.0) == 50.0


def test_next_future_start_with_ready_node_returns_now():
    pool = NodePool([volatile(1, [0], [100])], rng=rng())
    assert pool.next_future_start(10.0) == 10.0


def test_next_future_start_exhausted_returns_none():
    n = volatile(1, [0], [10])
    pool = NodePool([n], rng=rng())
    pool.acquire(0.0)
    pool.preempted(n, 10.0)
    assert pool.next_future_start(20.0) is None


def test_idle_count():
    pool = NodePool([volatile(1, [0], [100]),
                     volatile(2, [0], [100]),
                     volatile(3, [500], [600])], rng=rng())
    assert pool.idle_count(10.0) == 2


def test_all_nodes_eventually_served():
    nodes = [volatile(i, [0], [1000]) for i in range(10)]
    pool = NodePool(nodes, rng=rng())
    seen = set()
    for _ in range(10):
        node, _ = pool.acquire(0.0)
        seen.add(node.node_id)
    assert seen == set(range(10))


def test_cloud_poll_weight_biases_selection():
    """With weight w, one idle cloud worker should win roughly
    w/(w+1) of the draws against one idle regular node."""
    wins = 0
    trials = 400
    for seed in range(trials):
        reg = volatile(1, [0], [1e9])
        cloud = Node.stable(2, 3000.0)
        pool = NodePool([reg, cloud], rng=rng(seed), cloud_poll_weight=10.0)
        node, _ = pool.acquire(0.0)
        if node.cloud:
            wins += 1
    assert 0.82 < wins / trials < 0.98  # expectation ~0.909


def test_cloud_weight_validation():
    with pytest.raises(ValueError):
        NodePool(cloud_poll_weight=0.0)


def test_selection_is_seed_deterministic():
    def draw(seed):
        nodes = [volatile(i, [0], [1000]) for i in range(20)]
        pool = NodePool(nodes, rng=rng(seed))
        return [pool.acquire(0.0)[0].node_id for _ in range(20)]
    assert draw(5) == draw(5)
    assert draw(5) != draw(6)


def test_has_ready_refiles_stale_entries():
    """Regression: has_ready used to detect stale ready entries but
    leave them in place — repeated polls rescanned dead entries and a
    stale node masked the true next wake-up time."""
    pool = NodePool([volatile(1, [0, 200], [100, 300])], rng=rng())
    assert pool.has_ready(10.0)
    assert not pool.has_ready(150.0)    # stale entry swept...
    assert pool._ready_end_of == {}     # ...out of the ready index
    assert pool.next_future_start(150.0) == 200.0  # refiled, not lost
    assert pool.has_ready(250.0)        # and promoted back on time


def test_idle_count_sweeps_instead_of_rescanning():
    pool = NodePool([volatile(1, [0], [100]),
                     volatile(2, [0, 400], [50, 500]),
                     volatile(3, [600], [700])], rng=rng())
    assert pool.idle_count(10.0) == 2
    assert pool.idle_count(75.0) == 1   # node 2 expired and was refiled
    assert pool.idle_count(450.0) == 1  # ...then came back
    assert pool.idle_count(650.0) == 1  # node 3 promoted


# --------------------------------------------------- partition invariant
class PoolModel:
    """Drives a NodePool through random ops, tracking busy ownership."""

    def __init__(self, node_specs, seed):
        self.nodes = []
        for nid, intervals in enumerate(node_specs):
            starts = [float(s) for s, _ in intervals]
            ends = [float(e) for _, e in intervals]
            self.nodes.append(volatile(nid, starts, ends))
        self.pool = NodePool(self.nodes, rng=rng(seed))
        self.busy = {}  # node_id -> Node acquired and not yet returned
        self.t = 0.0

    def check_partition(self):
        """ready ∪ future ∪ busy partitions the membership set."""
        pool = self.pool
        ready = set(pool._ready_end_of)
        future = {nid for _, nid, _, _ in pool._future
                  if nid in pool._members}
        busy = {nid for nid in self.busy if nid in pool._members}
        assert ready | future | busy == pool._members
        assert not ready & future
        assert not ready & busy
        assert not future & busy
        assert pool.size == len(pool._members)
        # every filed-ready node's interval genuinely covers no earlier
        # end than recorded (ends only go stale forward in time)
        for nid, (end, node) in pool._ready_end_of.items():
            assert node.node_id == nid

    def step(self, op, dt):
        self.t += dt
        pool, t = self.pool, self.t
        if op == 0:
            got = pool.acquire(t)
            if got is not None:
                node, end = got
                assert end > t
                assert node.node_id not in self.busy
                self.busy[node.node_id] = node
        elif op == 1 and self.busy:
            nid = sorted(self.busy)[0]
            pool.release(self.busy.pop(nid), t)
        elif op == 2 and self.busy:
            nid = sorted(self.busy)[-1]
            pool.preempted(self.busy.pop(nid), t)
        elif op == 3:
            pool.has_ready(t)
        elif op == 4:
            pool.idle_count(t)
        elif op == 5:
            pool.next_future_start(t)
        elif op == 6 and pool._members:
            nid = sorted(pool._members)[0]
            pool.remove(self.nodes[nid])
            self.busy.pop(nid, None)
        self.check_partition()


interval_sets = st.lists(
    st.lists(st.tuples(st.integers(0, 400), st.integers(1, 80)),
             min_size=1, max_size=4),
    min_size=1, max_size=6)


@settings(max_examples=60, deadline=None)
@given(specs=interval_sets, seed=st.integers(0, 2**16),
       ops=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 40)),
                    min_size=1, max_size=40))
def test_ready_future_busy_partition_members(specs, seed, ops):
    """After any operation sequence, every member node is in exactly
    one of: the ready index, the future heap, or busy (acquired)."""
    node_specs = []
    for raw in specs:
        t, intervals = 0, []
        for gap, length in raw:
            start = t + gap
            end = start + length
            intervals.append((start, end))
            t = end
        node_specs.append(intervals)
    model = PoolModel(node_specs, seed)
    model.check_partition()
    for op, dt in ops:
        model.step(op, float(dt))


# ---------------------------------------------------------------------------
# ghost compaction (probe/acquire-alternating runs)
# ---------------------------------------------------------------------------
def _many_interval_nodes(n=4, periods=40):
    """Nodes whose short intervals expire at every integer probe, so
    each sweep refiles every node and leaves a ghost copy behind."""
    return [volatile(i, [k + 0.0 for k in range(periods)],
                     [k + 0.5 for k in range(periods)])
            for i in range(n)]


def test_sweep_refile_ghosts_are_compacted_away():
    """Regression: a sweep-refiled node appends a fresh draw-list copy
    without removing the old one, so every copy's id stays in the ready
    index and the historical ``in index`` compaction filter removed
    nothing — the ghost tail grew by n per sweep and the O(n) scan
    re-triggered forever.  Deduplicating (first copy per indexed id
    wins) must bring the tail to zero."""
    from repro.infra.pool import POOL_STATS, reset_pool_stats
    reset_pool_stats()
    pool = NodePool(_many_interval_nodes(n=4, periods=40), rng=rng())
    for step in range(30):
        t = step + 0.75  # every interval filed before has expired
        pool.has_ready(t)  # the probe sweeps and refiles
        ghosts = (len(pool._ready_reg) + len(pool._ready_cloud)
                  - len(pool._ready_end_of))
        # the tail may grow between compactions, but never past the
        # trigger threshold plus one sweep's worth of refiles
        assert ghosts <= max(8, len(pool._ready_end_of)) + 4
    assert POOL_STATS["ghost_compactions"] > 0
    # after the final compaction cycle each indexed id appears at most
    # once per draw list
    ids = [e if type(e) is int else e.node_id for e in pool._ready_reg]
    live = [i for i in ids if i in pool._ready_end_of]
    assert len(live) == len(set(live))


def test_ghost_compaction_keeps_pool_drawable():
    """Compaction must only drop ghosts: every indexed node stays
    acquirable afterwards."""
    nodes = _many_interval_nodes(n=12, periods=40)
    pool = NodePool(nodes, rng=rng(3))
    for step in range(20):
        pool.idle_count(step + 0.75)
    t = 20.25  # inside interval [20, 20.5]
    assert pool.idle_count(t) == 12
    got = [pool.acquire(t) for _ in range(12)]
    assert all(g is not None for g in got)
    assert sorted(n.node_id for n, _end in got) == list(range(12))
    assert pool.acquire(t) is None
