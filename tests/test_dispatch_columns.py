"""Transcript-equality pins for the vectorized dispatch plane.

Three layers of PR-playbook pins:

* ``acquire_many`` vs ``k`` sequential scalar ``acquire`` calls — the
  RNG draw sequence and the returned (node, end) pairs must be
  byte-identical under random acquire/release/preempt churn;
* bulk ``_dispatch`` vs the kept scalar reference ``_dispatch_scalar``
  — two identical worlds, one with the bulk path disabled, must emit
  identical observer-event transcripts, stats, event counts and final
  RNG states for both middleware models;
* the ``TaskColumns``/``TaskState`` sync invariant — after arbitrary
  middleware churn, every mirrored column cell equals its object
  field.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infra.columns import NodeColumns
from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware import make_server
from repro.middleware.base import TaskState
from repro.middleware.columns import TaskColumns
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks, Task


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _rand_fleet(seed: int, n: int, ready_at_zero: bool = False):
    """Raw per-node arrays with sorted, non-overlapping intervals.

    ``ready_at_zero`` pulls every node's first interval start to 0 so
    an arrival storm meets a full ready pool — the regime where the
    dispatch ready-hint routes to the bulk pass."""
    g = np.random.default_rng(seed)
    raw = []
    for _ in range(n):
        k = int(g.integers(1, 5))
        pts = np.sort(g.choice(400, size=2 * k, replace=False)).astype(float)
        starts, ends = pts[0::2].copy(), pts[1::2].copy()
        if ready_at_zero:
            starts[0] = 0.0
        raw.append((starts, ends,
                    float(g.integers(1, 4)) * 500.0, "trace"))
    return raw


def _pool_pair(fleet_seed: int, n: int, rng_seed: int):
    """Two structurally identical columnar pools with equal RNG state."""
    raw = _rand_fleet(fleet_seed, n)
    template = NodeColumns.from_raw(raw)
    return (NodePool(template.fresh(), rng=np.random.default_rng(rng_seed)),
            NodePool(template.fresh(), rng=np.random.default_rng(rng_seed)))


class _Recorder:
    """Observer recording every emitted event, in order."""

    def __init__(self):
        self.events = []

    def on_task_arrived(self, gtid, t):
        self.events.append(("arrived", gtid, t))

    def on_task_first_assigned(self, gtid, t):
        self.events.append(("first_assigned", gtid, t))

    def on_task_completed(self, gtid, t):
        self.events.append(("completed", gtid, t))

    def on_bot_completed(self, bot_id, t):
        self.events.append(("bot_completed", bot_id, t))


def _bot(seed: int, size: int) -> BagOfTasks:
    g = np.random.default_rng(seed)
    tasks = [Task(task_id=i, nops=float(g.integers(1, 60)) * 1000.0)
             for i in range(size)]
    return BagOfTasks(bot_id="b0", tasks=tasks, category="SMALL")


def _run_world(kind: str, bulk: bool, fleet_seed: int, n_nodes: int,
               rng_seed: int, bot_seed: int, bot_size: int,
               ready_at_zero: bool = False):
    """Assemble and drain one world; return its full transcript."""
    raw = _rand_fleet(fleet_seed, n_nodes, ready_at_zero)
    template = NodeColumns.from_raw(raw)
    sim = Simulation(horizon=400_000.0)
    pool = NodePool(template.fresh(),
                    rng=np.random.default_rng(rng_seed))
    server = make_server(kind, sim, pool)
    if not bulk:  # force the scalar reference for every queue length
        server._BULK_MIN = 10 ** 9
    rec = _Recorder()
    server.add_observer(rec)
    server.submit_bot(_bot(bot_seed, bot_size), at=0.0)
    sim.run()
    return (rec.events, vars(server.stats).copy(),
            pool._rng.bit_generator.state, sim.events_processed, sim.now,
            server)


# ---------------------------------------------------------------------------
# acquire_many vs scalar acquire
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(fleet_seed=st.integers(0, 1000), n=st.integers(1, 8),
       rng_seed=st.integers(0, 1000), data=st.data())
def test_acquire_many_equals_sequential_acquires(fleet_seed, n, rng_seed,
                                                 data):
    """Bulk acquisition replays the scalar draw sequence exactly —
    same (node, end) pairs, same RNG state — including dry draws and
    interleaved release/preempt churn between batches."""
    pool_a, pool_b = _pool_pair(fleet_seed, n, rng_seed)
    t = 0.0
    for _round in range(6):
        t += float(data.draw(st.integers(0, 80), label="dt"))
        k = data.draw(st.integers(0, n + 2), label="k")
        got_a = pool_a.acquire_many(t, k)
        got_b = []
        for _ in range(k):
            g = pool_b.acquire(t)
            if g is None:
                break
            got_b.append(g)
        assert ([(nd.node_id, end) for nd, end in got_a]
                == [(nd.node_id, end) for nd, end in got_b])
        assert (pool_a._rng.bit_generator.state
                == pool_b._rng.bit_generator.state)
        t += float(data.draw(st.integers(0, 80), label="dt2"))
        for (na, end_a), (nb, _eb) in zip(got_a, got_b):
            if t < end_a:
                pool_a.release(na, t)
                pool_b.release(nb, t)
            else:
                pool_a.preempted(na, t)
                pool_b.preempted(nb, t)
    assert pool_a._ready_end_of == {
        nid: (end, nid if type(e) is int else e.node_id)
        for nid, (end, e) in pool_b._ready_end_of.items()}


# ---------------------------------------------------------------------------
# bulk _dispatch vs the scalar reference
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(kind=st.sampled_from(["boinc", "xwhep"]),
       fleet_seed=st.integers(0, 400), n_nodes=st.integers(2, 10),
       rng_seed=st.integers(0, 400), bot_seed=st.integers(0, 400),
       bot_size=st.integers(1, 12), ready_zero=st.booleans())
def test_bulk_dispatch_transcript_equals_scalar(kind, fleet_seed, n_nodes,
                                                rng_seed, bot_seed,
                                                bot_size, ready_zero):
    """The bulk pairing pass is byte-identical to the scalar loop:
    observer events, stats, processed event count, final clock and the
    pool RNG state all match under arrival storms, preemption waves,
    BOINC timeouts/reissues (which route the pass back to the scalar
    reference) and XWHEP reissue churn.  ``ready_zero`` fleets start
    with every node available so the ready-hint actually routes the
    storm to the bulk pass (scattered fleets mostly exercise the
    hint's scalar routing)."""
    ev_b, stats_b, rng_b, n_b, now_b, _ = _run_world(
        kind, True, fleet_seed, n_nodes, rng_seed, bot_seed, bot_size,
        ready_at_zero=ready_zero)
    ev_s, stats_s, rng_s, n_s, now_s, _ = _run_world(
        kind, False, fleet_seed, n_nodes, rng_seed, bot_seed, bot_size,
        ready_at_zero=ready_zero)
    assert ev_b == ev_s
    assert stats_b == stats_s
    assert rng_b == rng_s
    assert n_b == n_s
    assert now_b == now_s


def test_bulk_dispatch_path_actually_taken():
    """Guard against the fast path silently never engaging: a fresh
    arrival storm over an available pool must run at least one bulk
    pass."""
    from repro.middleware.base import DISPATCH_STATS, reset_dispatch_stats
    reset_dispatch_stats()
    _run_world("boinc", True, fleet_seed=7, n_nodes=8, rng_seed=1,
               bot_seed=3, bot_size=10, ready_at_zero=True)
    assert DISPATCH_STATS["bulk"] > 0
    reset_dispatch_stats()
    _run_world("xwhep", True, fleet_seed=7, n_nodes=8, rng_seed=1,
               bot_seed=3, bot_size=10, ready_at_zero=True)
    assert DISPATCH_STATS["bulk"] > 0


# ---------------------------------------------------------------------------
# TaskColumns / TaskState sync invariant
# ---------------------------------------------------------------------------
def _assert_in_sync(server):
    cols = server.task_cols
    assert len(cols) == len(server.tasks)
    for st_ in server.tasks.values():
        assert cols.gtids[st_.row] == st_.gtid
        assert bool(cols.done[st_.row]) == st_.done
        assert int(cols.outstanding[st_.row]) == st_.outstanding
        assert int(cols.cloud_dups[st_.row]) == st_.cloud_dups
        fa = cols.first_assign[st_.row]
        if st_.first_assign_time is None:
            assert np.isnan(fa)
        else:
            assert fa == st_.first_assign_time


@settings(max_examples=20, deadline=None)
@given(kind=st.sampled_from(["boinc", "xwhep"]),
       fleet_seed=st.integers(0, 300), rng_seed=st.integers(0, 300),
       bot_seed=st.integers(0, 300), bot_size=st.integers(1, 10))
def test_task_columns_stay_in_sync_under_churn(kind, fleet_seed, rng_seed,
                                               bot_seed, bot_size):
    """After a full run — assignments, suspensions, preemptions,
    timeouts, reissues, completions — every mirrored column cell
    equals its TaskState field (the HandleLedger-style invariant)."""
    *_, server = _run_world(kind, True, fleet_seed, 6, rng_seed,
                            bot_seed, bot_size)
    _assert_in_sync(server)


def test_task_columns_grow_by_doubling():
    cols = TaskColumns()
    cap0 = cols.done.shape[0]
    for i in range(cap0 + 1):
        row = cols.add(("b", i))
        assert row == i
    assert cols.done.shape[0] == 2 * cap0
    assert len(cols) == cap0 + 1
    assert not cols.done[:cap0 + 1].any()
    assert np.isnan(cols.first_assign[:cap0 + 1]).all()


def test_standalone_task_state_mutators_work_without_columns():
    st_ = TaskState(gtid=("b", 0), task=Task(task_id=0, nops=1.0))
    st_.add_outstanding(1)
    st_.set_first_assign(5.0)
    st_.add_cloud_dups(1)
    st_.mark_done()
    assert (st_.outstanding, st_.first_assign_time,
            st_.cloud_dups, st_.done) == (1, 5.0, 1, True)


# ---------------------------------------------------------------------------
# wake-up teardown
# ---------------------------------------------------------------------------
def test_teardown_cancels_armed_wakeup():
    """A drained run must not keep a dead dispatch wake-up event in the
    heap once the server is torn down."""
    sim = Simulation(horizon=10_000.0)
    node = Node(0, 1000.0, np.asarray([500.0]), np.asarray([600.0]))
    pool = NodePool([node], rng=np.random.default_rng(0))
    server = make_server("xwhep", sim, pool)
    server.submit_bot(BagOfTasks(
        bot_id="b0", tasks=[Task(task_id=0, nops=1000.0)]), at=0.0)
    sim.run(until=100.0)  # arrival found no node: wake-up armed at 500
    assert server._wakeup is not None and not server._wakeup.cancelled
    server.teardown()
    assert server._wakeup is None
    assert sim.pending() == 0


def test_stop_hook_tears_down_harness_servers():
    """The stop-when-complete watcher wires server teardown through the
    engine's stop hooks: after a stopped run no wake-up survives."""
    from repro.experiments.harness import ScenarioHarness

    harness = ScenarioHarness(horizon=1_000_000.0)
    raw = _rand_fleet(11, 6)
    template = NodeColumns.from_raw(raw)
    sim = harness.sim
    pool = NodePool(template.fresh(), rng=np.random.default_rng(2))
    server = make_server("xwhep", sim, pool)
    from repro.cloud.registry import get_driver
    driver = get_driver("simulation", sim, rng=np.random.default_rng(3))
    harness.add_dci("d0", server, driver)
    server.submit_bot(_bot(5, 6), at=0.0)
    harness.stop_when_complete(["b0"])
    harness.run()
    assert server._wakeup is None or server._wakeup.cancelled
