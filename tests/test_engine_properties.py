"""Seeded randomized property tests for the simulation engine.

Each test drives :class:`~repro.simulator.engine.Simulation` through a
randomized but fully seeded scenario — interleaved schedule / cancel /
stop operations issued from inside callbacks — and checks the engine's
contract properties rather than specific traces:

* execution order is exactly ``(time, priority, seq)``-sorted;
* cancelled events never fire;
* ``pending()`` / ``peek()`` agree with a shadow model of the heap;
* ``run(until=...)`` never advances past its bound, never runs an
  event beyond it, and the clock is monotone across phased runs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import (
    PRIORITY_INFRA,
    PRIORITY_MONITOR,
    PRIORITY_NORMAL,
    Simulation,
)

PRIORITIES = (PRIORITY_INFRA, PRIORITY_NORMAL, PRIORITY_MONITOR)
SEEDS = range(8)


class RandomDriver:
    """Issues random schedule/cancel operations from inside callbacks
    and records every execution with its full ordering key."""

    def __init__(self, sim: Simulation, rng: random.Random,
                 max_events: int = 400):
        self.sim = sim
        self.rng = rng
        self.max_events = max_events
        self.spawned = 0
        self.by_token = {}      # spawn index -> Event
        self.live = {}          # event -> key, not yet fired/cancelled
        self.cancelled = set()
        self.executed = []      # (time, priority, seq) in firing order

    def spawn(self, n: int) -> None:
        for _ in range(n):
            if self.spawned >= self.max_events:
                return
            delay = self.rng.choice([0.0, 0.0, self.rng.uniform(0.0, 50.0)])
            priority = self.rng.choice(PRIORITIES)
            token = self.spawned
            ev = self.sim.schedule(delay, self._fire, token,
                                   priority=priority)
            # the engine fills in the tie-breaking seq; remember the key
            self.by_token[token] = ev
            self.live[ev] = (ev.time, ev.priority, ev.seq)
            self.spawned += 1

    def cancel_some(self) -> None:
        victims = [ev for ev in self.live if self.rng.random() < 0.15]
        for ev in victims:
            ev.cancel()
            self.cancelled.add(ev)
            del self.live[ev]

    def _fire(self, token: int) -> None:
        # the event firing must be the (time, priority, seq)-minimum of
        # everything currently live — that IS the engine's ordering
        # contract, stated against a shadow model of the heap
        current = self.by_token[token]
        key = self.live.pop(current)
        assert all(key <= other for other in self.live.values())
        assert self.sim.now == key[0]
        # time (the key's first component) is globally monotone; the
        # full key is only ordered among coexisting events
        assert not self.executed or key[0] >= self.executed[-1][0]
        self.executed.append(key)
        if self.rng.random() < 0.6:
            self.spawn(self.rng.randint(0, 3))
        if self.rng.random() < 0.3:
            self.cancel_some()
        self._check_introspection()

    def _check_introspection(self) -> None:
        assert self.sim.pending() == len(self.live)
        peek = self.sim.peek()
        if not self.live:
            assert peek is None
        else:
            assert peek == min(key[0] for key in self.live.values())


@pytest.mark.parametrize("seed", SEEDS)
def test_random_interleaving_fires_in_key_order(seed):
    rng = random.Random(seed)
    sim = Simulation()
    driver = RandomDriver(sim, rng)
    driver.spawn(30)
    sim.run()
    assert len(driver.executed) == driver.spawned - len(driver.cancelled)
    assert not driver.live


@pytest.mark.parametrize("seed", SEEDS)
def test_cancelled_events_never_fire(seed):
    rng = random.Random(1000 + seed)
    sim = Simulation()
    fired = []
    events = []
    for i in range(200):
        ev = sim.at(rng.uniform(0.0, 100.0), fired.append, i,
                    priority=rng.choice(PRIORITIES))
        events.append(ev)
    doomed = {i for i in range(200) if rng.random() < 0.5}
    for i in doomed:
        events[i].cancel()
        events[i].cancel()  # cancel is idempotent
    sim.run()
    assert set(fired) == set(range(200)) - doomed
    assert sim.pending() == 0 and sim.peek() is None


@pytest.mark.parametrize("seed", SEEDS)
def test_stop_halts_after_current_callback(seed):
    rng = random.Random(2000 + seed)
    sim = Simulation()
    fired = []
    times = sorted(rng.uniform(0.0, 100.0) for _ in range(50))
    stop_at = rng.randrange(50)

    def cb(i):
        fired.append(i)
        if len(fired) == stop_at + 1:
            sim.stop()

    for i, t in enumerate(times):
        sim.at(t, cb, i)
    sim.run()
    assert len(fired) == stop_at + 1
    assert sim.now == pytest.approx(times[fired[-1]])
    # a fresh run() resumes where the stop left off
    sim.run()
    assert len(fired) == 50


@pytest.mark.parametrize("seed", SEEDS)
def test_run_until_clock_invariants(seed):
    rng = random.Random(3000 + seed)
    sim = Simulation()
    fired = []
    for _ in range(120):
        t = rng.uniform(0.0, 1000.0)
        sim.at(t, lambda t=t: fired.append(t))
    bounds = sorted(rng.uniform(0.0, 1100.0) for _ in range(6))
    prev_now = 0.0
    for until in bounds:
        returned = sim.run(until=until)
        assert returned == sim.now
        assert sim.now >= prev_now          # clock is monotone
        assert sim.now <= until             # never passes the bound
        assert all(t <= until for t in fired)
        nxt = sim.peek()
        assert nxt is None or nxt > until   # nothing due was left behind
        prev_now = sim.now
    sim.run()
    assert len(fired) == 120
    assert fired == sorted(fired)


# ---------------------------------------------------------------------------
# batched dispatch vs the flat per-event reference (hypothesis)
# ---------------------------------------------------------------------------
class _BatchModeDriver:
    """Runs one generated schedule, optionally with batch handlers.

    Two callables are batch-registrable (``f0``, ``f1``); a third is
    always per-event.  Fired events append to a log and spawn children
    deterministically from their token, so the reference and the
    batched run face identical workloads; the engine's batch contract
    says their observable traces must be indistinguishable.
    """

    def __init__(self, spec, batched: bool):
        self.sim = Simulation()
        self.log = []
        self.spawned = 0
        if batched:
            self.sim.register_batch(self.f0, self._f0_batch)
            self.sim.register_batch(self.f1, self._f1_batch)
        events = []
        for time, priority, fn_idx, token in spec["events"]:
            fn = (self.f0, self.f1, self.g)[fn_idx]
            events.append(self.sim.at(time, fn, token, priority=priority))
        for i in spec["cancels"]:
            events[i % len(events)].cancel()

    # the two batched forms replay per event — exact by construction
    def _f0_batch(self, argslist):
        for (token,) in argslist:
            self.f0(token)

    def _f1_batch(self, argslist):
        for (token,) in argslist:
            self.f1(token)

    def f0(self, token):
        self._fire(0, token)

    def f1(self, token):
        self._fire(1, token)

    def g(self, token):
        self._fire(2, token)

    def _fire(self, kind, token):
        self.log.append((kind, token, self.sim.now))
        # deterministic children: strictly-future times keep the spawn
        # legal from inside a batch (same-time higher-urgency raises)
        if self.spawned < 40 and token % 3 == 0:
            self.spawned += 1
            child_fn = (self.f0, self.f1, self.g)[token % 2]
            self.sim.schedule(1.0 + token % 2, child_fn, token + 101,
                              priority=PRIORITIES[token % 3])

    def run(self):
        self.sim.run()
        return self.log, self.sim.events_processed, self.sim.now


_EVENT = st.tuples(
    st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.0, 5.0]),   # clustered times
    st.sampled_from(PRIORITIES),
    st.integers(min_value=0, max_value=2),             # fn choice
    st.integers(min_value=0, max_value=60),            # token
)


@settings(max_examples=60, deadline=None)
@given(st.fixed_dictionaries({
    "events": st.lists(_EVENT, min_size=1, max_size=30),
    "cancels": st.lists(st.integers(min_value=0, max_value=200),
                        max_size=6),
}))
def test_batched_dispatch_is_indistinguishable_from_flat(spec):
    ref_log, ref_count, ref_now = _BatchModeDriver(spec, False).run()
    bat_log, bat_count, bat_now = _BatchModeDriver(spec, True).run()
    assert bat_log == ref_log
    assert bat_count == ref_count
    assert bat_now == ref_now
