"""On-disk trace-realization store: roundtrip, two-tier promotion,
read-only sharing, fingerprint invalidation, and GC."""

import os

import numpy as np
import pytest

from repro.experiments import trace_store as ts
from repro.experiments.harness import TraceCache
from repro.experiments.trace_store import TraceStore


@pytest.fixture
def store(tmp_path):
    """A fresh store in tmp, installed as the process default."""
    st = TraceStore(root=str(tmp_path / "traces"))
    prev = ts.set_default_trace_store(st)
    yield st
    ts.set_default_trace_store(prev)


KEY = ("nd", (7,), 5, 3600.0)


def _realize(cache=None):
    if cache is None:  # NB: an empty TraceCache is falsy (len == 0)
        cache = TraceCache()
    return cache.materialize("nd", 7, 5, 3600.0), cache


# ------------------------------------------------------------- roundtrip
def test_save_load_roundtrip_bit_identical(store):
    nodes, _ = _realize()
    assert store.saves == 1
    raw = store.load(KEY)
    assert raw is not None and len(raw) == len(nodes)
    for node, (starts, ends, power, tag) in zip(nodes, raw):
        assert starts.tobytes() == node.starts.tobytes()
        assert ends.tobytes() == node.ends.tobytes()
        assert power == node.power
        assert tag == node.tag


def test_fresh_cache_promotes_from_disk_without_regenerating(store):
    nodes1, cache1 = _realize()
    # a second process is modelled by a fresh L1 over the same store
    nodes2, cache2 = _realize()
    assert cache1.disk_hits == 0 and cache1.misses == 1
    assert cache2.disk_hits == 1 and cache2.misses == 1
    assert store.saves == 1          # nothing regenerated or re-saved
    for a, b in zip(nodes1, nodes2):
        assert a.starts.tobytes() == b.starts.tobytes()
        assert a.ends.tobytes() == b.ends.tobytes()
        assert a.power == b.power and a.tag == b.tag


def test_missing_key_counts_a_miss(store):
    assert store.load(("nd", (99,), 5, 3600.0)) is None
    assert store.misses == 1


def test_save_is_idempotent(store):
    _realize()
    raw = store.load(KEY)
    store.save(KEY, raw)
    assert store.saves == 1
    current, stale = store.entries()
    assert (current, stale) == (1, 0)


# ------------------------------------------------------------- read-only
def test_generated_arrays_are_read_only(store):
    nodes, _ = _realize()
    with pytest.raises(ValueError):
        nodes[0].starts[0] = -1.0
    with pytest.raises(ValueError):
        nodes[0].ends[0] = -1.0


def test_disk_loaded_arrays_are_read_only(store):
    _realize()
    nodes, _ = _realize()  # served from disk by a fresh L1
    with pytest.raises(ValueError):
        nodes[0].starts[0] = -1.0


def test_rebuilt_nodes_share_the_cached_arrays(store):
    _realize()
    cache = TraceCache()
    a, _ = _realize(cache)
    b, _ = _realize(cache)
    assert a[0] is not b[0]
    assert a[0].starts is b[0].starts  # zero-copy across executions


# ------------------------------------------------------- invalidation/GC
def test_stale_fingerprint_entries_are_unreachable_and_gced(store):
    _realize()
    path = store.path_for(KEY)
    stale = path.replace(store.fingerprint + ".npz", "deadbeef0000.npz")
    os.rename(path, stale)
    assert store.load(KEY) is None          # content-addressed: stale
    assert store.entries() == (0, 1)
    removed, nbytes = store.gc()
    assert removed == 1 and nbytes > 0
    assert store.entries() == (0, 0)
    assert not os.path.exists(stale)


def test_gc_keeps_current_entries(store):
    _realize()
    assert store.gc() == (0, 0)
    assert store.entries() == (1, 0)


def test_key_digest_separates_streams_caps_horizons(store):
    paths = {store.path_for(k) for k in [
        ("nd", (7,), 5, 3600.0),
        ("nd", (8,), 5, 3600.0),
        ("nd", (7, 1), 5, 3600.0),
        ("nd", (7,), 6, 3600.0),
        ("nd", (7,), 5, 7200.0),
    ]}
    assert len(paths) == 5


def test_summary_reports_two_tier_stats(store):
    _realize()
    _realize()
    assert "1 saved" in store.summary()
    assert "1 current" in store.summary()


# ------------------------------------------------------------- mmap path
def test_load_uses_mmap_not_fallback(store):
    _realize()
    raw = store.load(KEY)
    assert store.mmap_fallbacks == 0
    assert raw[0][0].base is not None  # views into the mapped archive


def test_empty_realization_roundtrips(store):
    store.save(("empty", (), 0, 1.0), [])
    assert store.load(("empty", (), 0, 1.0)) == []
