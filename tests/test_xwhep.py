"""XtremWeb-HEP model: single execution, heartbeat detection, reissue."""

import numpy as np
import pytest

from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.xwhep import XWHepConfig, XWHepServer
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks, Task


class Collector:
    def __init__(self):
        self.completions = []
        self.assignments = []
        self.bot_done_at = None

    def on_task_first_assigned(self, gtid, t):
        self.assignments.append((gtid, t))

    def on_task_completed(self, gtid, t):
        self.completions.append((gtid, t))

    def on_bot_completed(self, bot_id, t):
        self.bot_done_at = t


def build(nodes, config=None, horizon=1e7, pool_seed=0):
    sim = Simulation(horizon=horizon)
    pool = NodePool(nodes, rng=np.random.default_rng(pool_seed))
    srv = XWHepServer(sim, pool, config=config)
    col = Collector()
    srv.add_observer(col)
    return sim, pool, srv, col


def stable(nid, power=1000.0, until=1e9):
    return Node(nid, power, np.array([0.0]), np.array([until]))


def bot_of(n, nops=1000.0, bot_id="b"):
    return BagOfTasks(bot_id=bot_id,
                      tasks=[Task(i, nops) for i in range(n)],
                      wall_clock=nops / 1000.0)


def test_single_task_completes_at_exact_duration():
    sim, _, srv, col = build([stable(1, power=500.0)])
    srv.submit_bot(bot_of(1, nops=1000.0))
    sim.run()
    assert col.completions[0][1] == pytest.approx(2.0)
    assert col.bot_done_at == pytest.approx(2.0)


def test_tasks_serialize_on_one_node():
    sim, _, srv, col = build([stable(1)])
    srv.submit_bot(bot_of(3, nops=1000.0))
    sim.run()
    times = sorted(t for _, t in col.completions)
    assert times == pytest.approx([1.0, 2.0, 3.0])


def test_tasks_parallelize_across_nodes():
    sim, _, srv, col = build([stable(i) for i in range(3)])
    srv.submit_bot(bot_of(3, nops=1000.0))
    sim.run()
    assert max(t for _, t in col.completions) == pytest.approx(1.0)


def test_preempted_task_lost_and_reissued_after_timeout():
    # node 1 dies at t=5 mid-task; node 2 only becomes available later
    n1 = Node(1, 1000.0, np.array([0.0]), np.array([5.0]))
    n2 = Node(2, 1000.0, np.array([6.0]), np.array([1e9]))
    sim, _, srv, col = build([n1, n2], config=XWHepConfig(worker_timeout=900))
    srv.submit_bot(bot_of(1, nops=10_000.0))  # needs 10 s
    sim.run()
    # lost at 5, detected at 5+900, rerun takes 10 s on node 2
    assert col.bot_done_at == pytest.approx(915.0)
    assert srv.stats.preemptions == 1
    assert srv.stats.reissues == 1


def test_custom_worker_timeout_shifts_detection():
    n1 = Node(1, 1000.0, np.array([0.0]), np.array([5.0]))
    n2 = Node(2, 1000.0, np.array([6.0]), np.array([1e9]))
    sim, _, srv, col = build([n1, n2],
                             config=XWHepConfig(worker_timeout=100))
    srv.submit_bot(bot_of(1, nops=10_000.0))
    sim.run()
    assert col.bot_done_at == pytest.approx(115.0)


def test_no_replication_single_result_per_task():
    sim, _, srv, col = build([stable(i) for i in range(5)])
    srv.submit_bot(bot_of(2, nops=1000.0))
    sim.run()
    assert srv.stats.assignments == 2
    assert srv.stats.completions == 2
    assert srv.stats.discarded_results == 0


def test_work_lost_on_preemption_restarts_from_scratch():
    # node up [0, 9] runs 10s task, dies at 9 (90% done);
    # returns [1000, inf) and must redo the full 10 s
    n1 = Node(1, 1000.0, np.array([0.0, 1000.0]),
              np.array([9.0, 1e9]))
    sim, _, srv, col = build([n1], config=XWHepConfig(worker_timeout=900))
    srv.submit_bot(bot_of(1, nops=10_000.0))
    sim.run()
    # detection at 9+900=909, node back at 1000, full rerun 10 s
    assert col.bot_done_at == pytest.approx(1010.0)


def test_multi_bot_isolation():
    sim, _, srv, col = build([stable(i) for i in range(4)])
    srv.submit_bot(bot_of(2, nops=1000.0, bot_id="b1"))
    srv.submit_bot(bot_of(2, nops=2000.0, bot_id="b2"))
    sim.run()
    done = {g[0][0] for g in col.completions}
    assert done == {"b1", "b2"}
    assert srv.bot_completed("b1") and srv.bot_completed("b2")


def test_arrivals_respected():
    sim, _, srv, col = build([stable(1)])
    tasks = [Task(0, 1000.0, arrival=0.0), Task(1, 1000.0, arrival=100.0)]
    srv.submit_bot(BagOfTasks(bot_id="b", tasks=tasks, wall_clock=1.0))
    sim.run()
    times = sorted(t for _, t in col.completions)
    assert times == pytest.approx([1.0, 101.0])


def test_pending_waits_for_node_return():
    n1 = Node(1, 1000.0, np.array([50.0]), np.array([1e9]))
    sim, _, srv, col = build([n1])
    srv.submit_bot(bot_of(1, nops=1000.0))
    sim.run()
    assert col.bot_done_at == pytest.approx(51.0)


def test_external_complete_discards_regular_result():
    sim, _, srv, col = build([stable(1)])
    srv.submit_bot(bot_of(1, nops=100_000.0))  # 100 s
    sim.at(10.0, srv.external_complete, ("b", 0), 10.0)
    sim.run()
    assert col.bot_done_at == pytest.approx(10.0)
    assert srv.stats.discarded_results == 1  # the regular result at 100 s


def test_fetch_for_cloud_serves_pending_first():
    sim, _, srv, col = build([stable(1)])
    srv.submit_bot(bot_of(3, nops=100_000.0))
    cloud = Node.stable(99, power=1000.0)

    def fetch():
        st = srv.fetch_for_cloud(cloud)
        assert st is not None
        assert st.queued is False
    sim.at(1.0, fetch)
    sim.run()
    assert srv.stats.cloud_assignments == 1
    assert col.bot_done_at < 300.0


def test_fetch_for_cloud_duplicates_running_when_no_pending():
    sim, _, srv, col = build([stable(1, power=10.0)])  # slow: 100 s/task
    srv.submit_bot(bot_of(1, nops=1000.0))
    cloud = Node.stable(99, power=1000.0)
    fetched = {}

    def fetch():
        st = srv.fetch_for_cloud(cloud)
        fetched["unit"] = st
    sim.at(10.0, fetch)
    sim.run()
    assert fetched["unit"] is not None
    assert fetched["unit"].cloud_dups == 0  # decremented after completion
    # cloud (1 s) beats the slow node (100 s)
    assert col.bot_done_at == pytest.approx(11.0)
    assert srv.stats.discarded_results == 1


def test_fetch_for_cloud_returns_none_when_nothing_useful():
    sim, _, srv, col = build([stable(1)])
    srv.submit_bot(bot_of(1, nops=1000.0))
    cloud = Node.stable(99, power=1000.0)
    result = {}

    def fetch():
        result["unit"] = srv.fetch_for_cloud(cloud)
    sim.at(500.0, fetch)  # long after completion
    sim.run()
    assert result["unit"] is None


def test_config_validation():
    with pytest.raises(ValueError):
        XWHepConfig(worker_timeout=-1)
    with pytest.raises(ValueError):
        XWHepConfig(keep_alive_period=120, worker_timeout=60)


def test_assigned_count_and_uncompleted():
    sim, _, srv, col = build([stable(1, power=10.0)])
    srv.submit_bot(bot_of(3, nops=1000.0))
    sim.run(until=150.0)  # first task done (100 s), second running
    assert srv.assigned_count("b") == 2
    assert len(srv.uncompleted_gtids("b")) == 2


def test_detection_skips_completed_task():
    """A task completed by the cloud while its failure detection is
    pending must not be reissued."""
    n1 = Node(1, 1000.0, np.array([0.0]), np.array([5.0]))
    sim, _, srv, col = build([n1])
    srv.submit_bot(bot_of(1, nops=10_000.0))
    sim.at(100.0, srv.external_complete, ("b", 0), 100.0)
    sim.run()
    assert srv.stats.reissues == 0
    assert col.bot_done_at == pytest.approx(100.0)
