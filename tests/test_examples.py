"""The example scripts stay runnable (deliverable guard).

The fast examples run end-to-end as subprocesses; the campaign-sized
ones are compile-checked and their mains imported (running them is the
benchmarks' job).
"""

import os
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

ALL_EXAMPLES = ["quickstart.py", "spot_market.py", "custom_trace.py",
                "edgi_deployment.py", "strategy_comparison.py",
                "prediction_service.py", "federated_scenario.py"]

FAST_EXAMPLES = ["custom_trace.py", "edgi_deployment.py",
                 "federated_scenario.py"]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_compiles(name):
    py_compile.compile(os.path.join(EXAMPLES_DIR, name), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_quickstart_output_is_sane():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "speedup" in proc.stdout
    assert "tail removal" in proc.stdout
