"""End-to-end integration: the paper's headline claims at small scale.

These are the load-bearing acceptance tests of the reproduction: the
tail effect exists on volatile BE-DCIs, SpeQuloS removes most of it
while offloading only a small workload fraction to the cloud, and the
whole pipeline is deterministic.
"""

import numpy as np
import pytest

from repro.analysis.metrics import tail_removal_efficiency
from repro.experiments.config import ExecutionConfig
from repro.experiments.runner import run_campaign, run_execution


def cfg(trace, mw, seed, size=150, **kw):
    return ExecutionConfig(trace=trace, middleware=mw, category="SMALL",
                           seed=seed, bot_size=size, **kw)


@pytest.fixture(scope="module")
def volatile_pairs():
    """Paired (baseline, 9C-C-R) runs on two volatile environments."""
    bases, speqs = [], []
    for trace, mw in (("seti", "boinc"), ("nd", "xwhep")):
        for seed in (21, 22):
            base = cfg(trace, mw, seed)
            bases.append(run_execution(base))
            speqs.append(run_execution(base.with_strategy("9C-C-R")))
    return bases, speqs


def test_tail_effect_exists_on_volatile_traces(volatile_pairs):
    bases, _ = volatile_pairs
    slowdowns = [b.slowdown for b in bases]
    # the paper's Figure 2: volatile DCIs show substantial tails
    assert max(slowdowns) > 1.3


def test_boinc_tail_is_longer_than_xwhep(volatile_pairs):
    bases, _ = volatile_pairs
    boinc = [b.slowdown for b in bases if b.config.middleware == "boinc"]
    xwhep = [b.slowdown for b in bases if b.config.middleware == "xwhep"]
    assert np.mean(boinc) > np.mean(xwhep)


def test_spequlos_reduces_completion_time(volatile_pairs):
    bases, speqs = volatile_pairs
    for b, s in zip(bases, speqs):
        assert s.makespan <= b.makespan * 1.02
    # and at least one big win (paper: speedups beyond 2x)
    speedups = [b.makespan / s.makespan for b, s in zip(bases, speqs)]
    assert max(speedups) > 1.5


def test_tre_mostly_high_for_headline_combo(volatile_pairs):
    bases, speqs = volatile_pairs
    tres = []
    for b, s in zip(bases, speqs):
        if b.makespan - b.ideal_time > 120.0:
            tres.append(tail_removal_efficiency(
                b.makespan, s.makespan, b.ideal_time))
    assert tres, "volatile baselines must show a tail"
    assert np.mean(tres) > 50.0


def test_cloud_offload_is_small_fraction_of_workload(volatile_pairs):
    _, speqs = volatile_pairs
    for s in speqs:
        # credits model 10% of the workload; the paper's claim is that
        # under ~25% of that is actually consumed (~2.5% of workload).
        assert s.credits_used_pct <= 60.0


def test_stable_trace_needs_little_cloud():
    base = cfg("spot10", "xwhep", 31)
    b = run_execution(base)
    s = run_execution(base.with_strategy("9C-C-R"))
    assert b.slowdown < 2.0  # spot ladders are comparatively stable
    assert s.credits_used_pct <= 50.0


def test_deterministic_pipeline_end_to_end():
    base = cfg("g5klyo", "xwhep", 17)
    r1 = run_execution(base.with_strategy("9A-G-D"))
    r2 = run_execution(base.with_strategy("9A-G-D"))
    assert r1.makespan == r2.makespan
    assert r1.credits_spent == pytest.approx(r2.credits_spent)
    assert r1.events == r2.events


def test_all_18_combos_complete_on_one_env():
    from repro.core.strategies import ALL_COMBOS
    base = cfg("nd", "xwhep", 41, size=80)
    baseline = run_execution(base)
    # store=None: this asserts *simulation* behavior, so it must never
    # be answered from a stale persistent campaign store
    results = run_campaign(
        [base.with_strategy(c.name) for c in ALL_COMBOS], n_jobs=1,
        store=None)
    for res in results:
        assert not res.censored
        assert res.makespan <= baseline.makespan * 1.05
        assert res.credits_spent <= res.credits_provisioned + 1e-6


def test_random_bot_with_arrivals_end_to_end():
    base = ExecutionConfig(trace="g5kgre", middleware="boinc",
                           category="RANDOM", seed=51, bot_size=120)
    b = run_execution(base)
    s = run_execution(base.with_strategy("9C-C-R"))
    assert not b.censored and not s.censored
    assert s.makespan <= b.makespan * 1.02
