"""Federated scenario layer: routing, configs, arbitration, store.

Headline scenario (the acceptance bar for the federation subsystem):
eight tenants' BoTs over a heterogeneous two-DCI federation — a huge
volatile desktop grid next to a 10-node lab grid — sharing one credit
pool and one worker budget.  Live-load routing must beat blind round
robin on the max/min per-tenant slowdown spread, the global budget
must hold across both clouds, and the whole scenario must be
bit-reproducible and store-round-trippable.
"""

import numpy as np
import pytest

from repro.campaign.spec import FederatedSweepSpec
from repro.campaign.store import ResultStore, encode_result
from repro.core.routing import (
    ROUTING_POLICIES,
    AffinityRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    make_router,
)
from repro.core.scheduler import CloudArbiter
from repro.deployment.edgi import EDGI_DCIS, edgi_scenario
from repro.experiments import (
    DCISpec,
    FederatedResult,
    ScenarioConfig,
    run_campaign,
    run_federated,
)


# ------------------------------------------------------------------ routing
class _FakePool:
    def __init__(self, idle):
        self._idle = idle

    def idle_count(self, t):
        return self._idle


class _FakeServer:
    def __init__(self, busy, backlog, idle):
        self._busy, self._backlog = busy, backlog
        self.pool = _FakePool(idle)

    def busy_count(self):
        return self._busy

    def backlog(self):
        return self._backlog


class _FakeDCI:
    def __init__(self, name, busy=0, backlog=0, idle=10):
        self.name = name
        self.server = _FakeServer(busy, backlog, idle)


def test_make_router_covers_all_policies_and_rejects_unknown():
    for policy in ROUTING_POLICIES:
        assert make_router(policy).name == policy
    with pytest.raises(ValueError):
        make_router("random")


def test_round_robin_cycles_in_declaration_order():
    r = RoundRobinRouter()
    targets = [_FakeDCI("a"), _FakeDCI("b"), _FakeDCI("c")]
    assert [r.route("SMALL", targets, 0.0) for _ in range(5)] == \
        [0, 1, 2, 0, 1]


def test_least_loaded_picks_lowest_work_per_live_worker():
    targets = [_FakeDCI("big", busy=50, backlog=100, idle=200),
               _FakeDCI("small", busy=8, backlog=40, idle=2)]
    # big: 150/250 = 0.6; small: 48/10 = 4.8
    assert LeastLoadedRouter().route("SMALL", targets, 0.0) == 0


def test_least_loaded_breaks_ties_by_declaration_order():
    targets = [_FakeDCI("a"), _FakeDCI("b")]  # both idle: load 0
    assert LeastLoadedRouter().route("SMALL", targets, 0.0) == 0


def test_least_loaded_avoids_dci_with_no_live_workers():
    """A DCI whose every node is inside an unavailability interval
    must rank as infinitely loaded, not least loaded (regression:
    0 / max(1, 0) used to score a dead grid as load zero)."""
    dead = _FakeDCI("dead", busy=0, backlog=0, idle=0)
    alive = _FakeDCI("alive", busy=5, backlog=20, idle=50)
    assert LeastLoadedRouter().route("SMALL", [dead, alive], 0.0) == 1
    # every DCI dead: deterministic first-declared fallback
    assert LeastLoadedRouter().route(
        "SMALL", [dead, _FakeDCI("dead2", idle=0)], 0.0) == 0


def test_affinity_pins_categories_and_falls_back_round_robin():
    targets = [_FakeDCI("dg"), _FakeDCI("cluster")]
    r = AffinityRouter({"BIG": "cluster"})
    assert r.route("BIG", targets, 0.0) == 1
    assert r.route("big", targets, 0.0) == 1  # case-insensitive
    # unmapped categories round-robin over every DCI
    assert [r.route("SMALL", targets, 0.0) for _ in range(3)] == [0, 1, 0]
    # a pin to an absent DCI also falls back
    r2 = AffinityRouter({"SMALL": "gone"})
    assert [r2.route("SMALL", targets, 0.0) for _ in range(2)] == [0, 1]


def test_routers_reject_empty_target_list():
    for policy in ROUTING_POLICIES:
        with pytest.raises(ValueError):
            make_router(policy).route("SMALL", [], 0.0)


# ------------------------------------------------------------------ configs
def _dcis(**kw):
    return (DCISpec(trace="seti", middleware="boinc"),
            DCISpec(trace="nd", middleware="xwhep", **kw))


def test_dci_spec_validation():
    with pytest.raises(ValueError):
        DCISpec(trace="lhc", middleware="boinc")
    with pytest.raises(ValueError):
        DCISpec(trace="seti", middleware="condor")
    with pytest.raises(ValueError):
        DCISpec(trace="seti", middleware="boinc", provider="azure")
    with pytest.raises(ValueError):
        DCISpec(trace="seti", middleware="boinc", worker_cap=0)


def test_scenario_config_validation():
    good = dict(dcis=_dcis(), seed=1)
    ScenarioConfig(**good)
    with pytest.raises(ValueError):
        ScenarioConfig(dcis=(), seed=1)
    with pytest.raises(ValueError):
        ScenarioConfig(**good, routing="random")
    with pytest.raises(ValueError):
        ScenarioConfig(**good, policy="lottery")
    with pytest.raises(ValueError):
        ScenarioConfig(**good, affinity=(("SMALL", "nope"),))
    with pytest.raises(ValueError):
        ScenarioConfig(**good, n_tenants=0)
    with pytest.raises(ValueError):
        ScenarioConfig(
            dcis=(DCISpec(trace="seti", middleware="boinc", name="x"),
                  DCISpec(trace="nd", middleware="xwhep", name="x")),
            seed=1)  # duplicate explicit names
    # same trace+middleware twice is fine: derived names carry the index
    twin = ScenarioConfig(
        dcis=(DCISpec(trace="seti", middleware="boinc"),
              DCISpec(trace="seti", middleware="boinc")), seed=1)
    assert twin.dci_names() == ("dci0-seti-boinc", "dci1-seti-boinc")


def test_scenario_config_names_and_pairing():
    cfg = ScenarioConfig(dcis=_dcis(), seed=3)
    assert cfg.dci_names() == ("dci0-seti-boinc", "dci1-nd-xwhep")
    paired = cfg.with_routing("least_loaded")
    assert paired.seed == cfg.seed and paired.dcis == cfg.dcis
    assert cfg.with_policy("fifo").policy == "fifo"
    named = ScenarioConfig(dcis=EDGI_DCIS, seed=3)
    assert named.dci_names() == ("XW@LAL", "XW@LRI")


def test_edgi_scenario_preset():
    cfg = edgi_scenario(seed=9, routing="least_loaded")
    assert cfg.dci_names() == ("XW@LAL", "XW@LRI")
    assert cfg.dcis[0].provider == "stratuslab"
    assert cfg.dcis[1].provider == "ec2"
    assert cfg.dcis[1].max_nodes == 200
    assert cfg.routing == "least_loaded"


def test_federated_sweep_spec_expands_canonically():
    sweep = FederatedSweepSpec(
        dci_traces=("seti", "nd"), dci_middlewares=("boinc", "xwhep"),
        dci_max_nodes=(None, 10), n_dcis=(1, 2),
        routings=("round_robin", "least_loaded"),
        policies=("fairshare",), seeds=(1, 2))
    cfgs = sweep.expand()
    assert len(cfgs) == sweep.n_configs() == 8
    # routings outermost, then policies, then n_dcis, then seeds
    assert [ (c.routing, len(c.dcis), c.seed) for c in cfgs[:4] ] == \
        [("round_robin", 1, 1), ("round_robin", 1, 2),
         ("round_robin", 2, 1), ("round_robin", 2, 2)]
    # templates cycle: the 2-DCI scenarios carry the nd@10 spec
    two = [c for c in cfgs if len(c.dcis) == 2][0]
    assert two.dcis[1].trace == "nd" and two.dcis[1].max_nodes == 10
    # smaller federations are prefixes of larger ones
    assert cfgs[0].dcis == two.dcis[:1]


# ----------------------------------------------- the federated scenario
#: the reference federated scenario (ISSUE acceptance): a huge volatile
#: DCI next to a 10-node lab grid, tiny shared pool, 8-worker budget
def _reference(routing: str, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        dcis=(DCISpec(trace="seti", middleware="boinc"),
              DCISpec(trace="nd", middleware="xwhep", max_nodes=10)),
        seed=seed, n_tenants=8, bot_size=100, strategy="9C-C-R",
        routing=routing, max_total_workers=8, pool_fraction=0.02,
        arrival_rate_per_hour=2.0, deadline_factor=0.5, horizon_days=2.0)


_SEEDS = (6000, 6001, 6002)


@pytest.fixture(scope="module")
def reference_results():
    cfgs = [_reference(routing, seed)
            for routing in ("round_robin", "least_loaded")
            for seed in _SEEDS]
    results = run_campaign(cfgs)
    return {(c.routing, c.seed): r for c, r in zip(cfgs, results)}


def test_federated_scenario_is_seed_reproducible(reference_results):
    base = reference_results[("round_robin", 6000)]
    again = run_federated(_reference("round_robin", 6000))
    assert [t.makespan for t in again.tenants] == \
        [t.makespan for t in base.tenants]
    assert [t.dci for t in again.tenants] == [t.dci for t in base.tenants]
    assert again.pool_spent == base.pool_spent
    assert again.events == base.events


def test_global_worker_budget_holds_across_clouds(reference_results):
    for res in reference_results.values():
        assert res.workers_peak <= 8


def test_pooled_spend_never_exceeds_provision(reference_results):
    for res in reference_results.values():
        assert res.pool_spent <= res.pool_provisioned + 1e-9
        assert sum(t.credits_spent for t in res.tenants) == \
            pytest.approx(res.pool_spent)


def test_every_tenant_is_routed_and_accounted(reference_results):
    for res in reference_results.values():
        names = res.config.dci_names()
        assert all(t.dci in names for t in res.tenants)
        assert sum(d.tenants_assigned for d in res.dcis) == 8
        for d in res.dcis:
            assert d.tenants_assigned == len(res.tenants_on(d.name))


def test_round_robin_splits_evenly_least_loaded_protects_weak_dci(
        reference_results):
    for seed in _SEEDS:
        rr = reference_results[("round_robin", seed)]
        assert [d.tenants_assigned for d in rr.dcis] == [4, 4]
        ll = reference_results[("least_loaded", seed)]
        weak = ll.dcis[1]
        assert weak.trace == "nd"
        assert weak.tenants_assigned < 4  # diverted off the 10-node grid


def test_least_loaded_beats_round_robin_on_slowdown_spread(
        reference_results):
    """The ISSUE acceptance criterion, on the reference scenario."""
    rr = float(np.mean([reference_results[("round_robin", s)]
                        .slowdown_spread for s in _SEEDS]))
    ll = float(np.mean([reference_results[("least_loaded", s)]
                        .slowdown_spread for s in _SEEDS]))
    assert ll < rr


def test_single_dci_federation_ignores_routing():
    cfgs = [ScenarioConfig(dcis=(DCISpec(trace="nd", middleware="xwhep"),),
                           seed=4, n_tenants=2, bot_size=20,
                           routing=routing, horizon_days=2.0)
            for routing in ("round_robin", "least_loaded")]
    a, b = (run_federated(c) for c in cfgs)
    assert [t.makespan for t in a.tenants] == [t.makespan for t in b.tenants]
    assert a.events == b.events


def test_affinity_routing_pins_categories_to_dcis():
    cfg = ScenarioConfig(
        dcis=(DCISpec(trace="seti", middleware="boinc", name="dg"),
              DCISpec(trace="g5klyo", middleware="xwhep", name="cluster")),
        seed=5, n_tenants=4, categories=("SMALL", "BIG"), bot_size=20,
        routing="affinity", affinity=(("BIG", "cluster"),
                                      ("SMALL", "dg")),
        horizon_days=2.0)
    res = run_federated(cfg)
    for t in res.tenants:
        assert t.dci == ("cluster" if t.category == "BIG" else "dg")


# ------------------------------------------------------- cross-DCI caps
def test_arbiter_per_dci_cap_validation():
    with pytest.raises(ValueError):
        CloudArbiter("fifo", max_dci_workers=0)
    with pytest.raises(ValueError):
        CloudArbiter("fifo", dci_caps={"x": 0})


def test_per_dci_worker_caps_bind():
    cfg = ScenarioConfig(
        dcis=(DCISpec(trace="seti", middleware="boinc", worker_cap=2),
              DCISpec(trace="nd", middleware="xwhep", max_nodes=10)),
        seed=6000, n_tenants=8, bot_size=100, strategy="9C-C-R",
        max_total_workers=8, max_dci_workers=3, pool_fraction=0.02,
        arrival_rate_per_hour=2.0, deadline_factor=0.5, horizon_days=2.0)
    res = run_federated(cfg)
    # DCISpec.worker_cap overrides the uniform max_dci_workers
    assert res.dcis[0].workers_peak <= 2
    assert res.dcis[1].workers_peak <= 3
    assert res.workers_peak <= 8


# ------------------------------------------------------- store round-trip
def test_federated_result_round_trips_the_store_byte_identically():
    cfg = ScenarioConfig(
        dcis=(DCISpec(trace="nd", middleware="xwhep", max_nodes=20),),
        seed=8, n_tenants=2, bot_size=20, horizon_days=2.0,
        affinity=(("SMALL", "dci0-nd-xwhep"),), routing="affinity")
    res = run_federated(cfg)
    store = ResultStore(":memory:")
    store.put(cfg, res)
    back = store.get(cfg)
    assert isinstance(back, FederatedResult)
    assert back.config == cfg
    assert back.config.dcis[0].max_nodes == 20
    # byte-identity of the re-encoded payload (lossless codec)
    assert encode_result(back) == encode_result(res)
    assert [t.dci for t in back.tenants] == [t.dci for t in res.tenants]
    assert [d.name for d in back.dcis] == [d.name for d in res.dcis]
    assert store.stats.hits == 1 and store.stats.puts == 1


def test_run_campaign_dedups_and_caches_federated_configs():
    cfg = ScenarioConfig(
        dcis=(DCISpec(trace="nd", middleware="xwhep", max_nodes=20),),
        seed=9, n_tenants=2, bot_size=20, horizon_days=2.0)
    store = ResultStore(":memory:")
    first = run_campaign([cfg, cfg], n_jobs=1, store=store)
    assert first[0] is first[1]
    assert store.stats.puts == 1
    again = run_campaign([cfg], n_jobs=1, store=store)
    assert encode_result(again[0]) == encode_result(first[0])
    assert store.stats.hits >= 1
