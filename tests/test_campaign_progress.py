"""Progress reporting: tick counting, throttling, ETA math."""

import io

from repro.campaign.progress import ProgressReporter, format_duration


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make(total=10, min_interval=5.0):
    clock = FakeClock()
    stream = io.StringIO()
    rep = ProgressReporter(total, label="sweep", stream=stream,
                           min_interval=min_interval, clock=clock)
    return rep, clock, stream


def test_format_duration():
    assert format_duration(42.4) == "42s"
    assert format_duration(192) == "3m12s"
    assert format_duration(2 * 3600 + 5 * 60) == "2h05m"
    assert format_duration(-3.0) == "0s"


def test_eta_extrapolates_throughput():
    rep, clock, _ = make(total=10)
    assert rep.eta() is None  # nothing done yet
    clock.t = 20.0
    rep.done = 4
    assert rep.eta() == 30.0  # 5 s/unit x 6 remaining


def test_tick_emits_first_then_throttles():
    rep, clock, stream = make(total=4, min_interval=5.0)
    rep.tick()                    # first tick always emits
    clock.t = 1.0
    rep.tick()                    # within interval: silent
    lines = stream.getvalue().splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("sweep: 1/4 (25%)")
    clock.t = 7.0
    rep.tick()                    # interval elapsed: emits with ETA
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert "elapsed 7s" in lines[1] and "eta" in lines[1]


def test_completion_always_emits():
    rep, clock, stream = make(total=2, min_interval=1e9)
    rep.tick()
    rep.tick()                    # reaching total bypasses throttling
    lines = stream.getvalue().splitlines()
    assert lines[-1].startswith("sweep: 2/2 (100%)")
    assert "eta" not in lines[-1]


def test_bulk_fast_forward_and_finish():
    rep, clock, stream = make(total=8, min_interval=1e9)
    rep.tick(5)                   # cache hits land as one bulk tick
    assert rep.done == 5
    rep.finish()                  # aborted sweep: force a closing line
    assert stream.getvalue().splitlines()[-1].startswith("sweep: 5/8")


def test_zero_total_is_all_done():
    rep, _, stream = make(total=0)
    rep.finish()
    assert "0/0 (100%)" in stream.getvalue()
