"""Experiment runner: configs, determinism, pairing, campaigns."""

import numpy as np
import pytest

from repro.experiments.config import (
    SCALES,
    ExecutionConfig,
    get_scale,
)
from repro.experiments.runner import (
    run_campaign,
    run_execution,
    run_execution_with_middleware,
)


def quick_cfg(**kw):
    base = dict(trace="nd", middleware="xwhep", category="SMALL",
                seed=5, bot_size=60)
    base.update(kw)
    return ExecutionConfig(**base)


# ------------------------------------------------------------------ config
def test_config_validation():
    with pytest.raises(ValueError):
        quick_cfg(trace="lhc")
    with pytest.raises(ValueError):
        quick_cfg(middleware="condor")
    with pytest.raises(ValueError):
        quick_cfg(category="HUGE")
    with pytest.raises(ValueError):
        quick_cfg(credit_fraction=0.0)


def test_with_strategy_pairs_configs():
    base = quick_cfg()
    speq = base.with_strategy("9C-C-R")
    assert speq.seed == base.seed
    assert speq.trace == base.trace
    assert base.strategy is None and speq.strategy == "9C-C-R"


def test_node_cap_scales_with_replication():
    xw = quick_cfg(bot_size=100)
    bo = quick_cfg(middleware="boinc", bot_size=100)
    assert bo.node_cap() >= xw.node_cap()


def test_node_cap_explicit_override():
    assert quick_cfg(max_nodes=42).node_cap() == 42


def test_node_cap_bounded_by_natural_size():
    cfg = quick_cfg(trace="spot10", bot_size=10_000)
    assert cfg.node_cap() <= 87


def test_scales_registry():
    assert get_scale("quick") is SCALES["quick"]
    assert get_scale("full").size_factor == 1.0
    with pytest.raises(KeyError):
        get_scale("gigantic")


def test_scale_bot_size():
    quick = SCALES["quick"]
    assert quick.bot_size("SMALL") == 250
    assert quick.bot_size("BIG") == 2500
    assert SCALES["full"].bot_size("SMALL") is None


# ------------------------------------------------------------------ runner
def test_execution_result_fields():
    res = run_execution(quick_cfg())
    assert res.makespan > 0
    assert not res.censored
    assert res.n_tasks == 60
    assert res.completion_times.shape == (60,)
    assert res.tc_grid.shape == (100,)
    assert res.slowdown >= 1.0
    assert res.ideal_time > 0
    assert res.credits_provisioned == 0.0
    assert res.events > 0
    assert res.server_stats["completions"] == 60


def test_same_seed_reproduces_exactly():
    a = run_execution(quick_cfg())
    b = run_execution(quick_cfg())
    assert a.makespan == b.makespan
    assert np.allclose(a.completion_times, b.completion_times)


def test_different_seeds_differ():
    a = run_execution(quick_cfg(seed=5))
    b = run_execution(quick_cfg(seed=6))
    assert a.makespan != b.makespan


def test_speq_run_provisions_credits():
    res = run_execution(quick_cfg().with_strategy("9C-C-R"))
    # provision = 10% x 60 x 11000s / 3600 x 15 credits
    expected = 0.10 * 60 * 11_000 / 3600 * 15
    assert res.credits_provisioned == pytest.approx(expected, rel=1e-6)
    assert 0.0 <= res.credits_used_pct <= 100.0


def test_speq_never_slower_much_and_often_faster():
    base = run_execution(quick_cfg(seed=11))
    speq = run_execution(quick_cfg(seed=11).with_strategy("9C-C-R"))
    assert speq.makespan <= base.makespan * 1.05


def test_middleware_override_runner():
    slow = run_execution_with_middleware(
        quick_cfg(middleware="xwhep", seed=12), worker_timeout=3600.0)
    fast = run_execution_with_middleware(
        quick_cfg(middleware="xwhep", seed=12), worker_timeout=120.0)
    # longer detection can only delay completion
    assert slow.makespan >= fast.makespan - 1e-6


def test_boinc_delay_bound_override():
    res = run_execution_with_middleware(
        quick_cfg(middleware="boinc", seed=13), delay_bound=3600.0)
    assert res.makespan > 0


def test_campaign_serial_matches_individual():
    # store=None: exercise raw execution, not the campaign cache
    cfgs = [quick_cfg(seed=s) for s in (1, 2, 3)]
    serial = run_campaign(cfgs, n_jobs=1, store=None)
    assert [r.makespan for r in serial] == \
        [run_execution(c).makespan for c in cfgs]


def test_campaign_parallel_order_and_determinism():
    # store=None so the parallel run genuinely fans out over the pool
    cfgs = [quick_cfg(seed=s) for s in range(8)]
    serial = run_campaign(cfgs, n_jobs=1, store=None)
    parallel = run_campaign(cfgs, n_jobs=2, store=None)
    assert [r.makespan for r in serial] == [r.makespan for r in parallel]
    assert [r.config.seed for r in parallel] == list(range(8))


# ------------------------------------------------------------- trace cache
def test_trace_cache_is_true_lru(monkeypatch):
    from repro.experiments.harness import TraceCache
    monkeypatch.setenv("REPRO_TRACE_CACHE", "3")
    cache = TraceCache()
    horizon = 3600.0

    def key(seed):
        return ("nd", (seed,), 4, horizon)

    for seed in (1, 2, 3):
        cache.materialize("nd", seed, 4, horizon)
    assert cache.keys() == [key(1), key(2), key(3)]

    # a hit refreshes recency: key(1) moves to the back...
    cache.materialize("nd", 1, 4, horizon)
    assert cache.keys() == [key(2), key(3), key(1)]

    # ...so a miss evicts the least recently USED (key 2), not the
    # oldest inserted (key 1)
    cache.materialize("nd", 4, 4, horizon)
    assert key(1) in cache.keys()
    assert key(2) not in cache.keys()
    assert cache.keys() == [key(3), key(1), key(4)]
    assert cache.hits == 1 and cache.misses == 4 and cache.evictions == 1


def test_trace_cache_capacity_is_env_configurable(monkeypatch):
    from repro.experiments.harness import TraceCache
    cache = TraceCache()
    monkeypatch.setenv("REPRO_TRACE_CACHE", "2")
    for seed in (1, 2, 3):
        cache.materialize("nd", seed, 4, 3600.0)
    assert len(cache) == 2 and cache.evictions == 1
    monkeypatch.delenv("REPRO_TRACE_CACHE")
    assert TraceCache.capacity() == 6  # documented default
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    assert TraceCache.capacity() == 1  # clamped to at least one entry


def test_trace_cache_streams_realize_independently():
    """Same (trace, seed) under different DCI streams must neither
    collide in the cache nor produce the same realization."""
    from repro.experiments.harness import TraceCache
    cache = TraceCache()
    a = cache.materialize("nd", 7, 4, 3600.0)
    b = cache.materialize("nd", 7, 4, 3600.0, stream=(1,))
    assert len(cache) == 2 and cache.misses == 2
    assert [(n.starts.tolist()) for n in a] != \
        [(n.starts.tolist()) for n in b]
    assert "2 misses" in cache.summary()


def test_trace_cache_hit_reuses_realization_but_rebuilds_nodes():
    from repro.experiments.harness import TraceCache
    cache = TraceCache()
    a = cache.materialize("nd", 9, 4, 3600.0)
    b = cache.materialize("nd", 9, 4, 3600.0)
    assert len(cache) == 1
    assert cache.hits == 1 and cache.misses == 1
    # same cached interval arrays back the rebuilt Node objects
    assert a[0] is not b[0]
    assert a[0].starts is b[0].starts


def test_censoring_at_horizon():
    # an impossible deadline: 1000-task bot, horizon of ~2 minutes
    cfg = ExecutionConfig(trace="g5klyo", middleware="xwhep",
                          category="SMALL", seed=3, bot_size=200,
                          horizon_days=0.002)
    res = run_execution(cfg)
    assert res.censored
    assert res.makespan == pytest.approx(cfg.horizon)
    assert res.completion_times.shape == (200,)
