"""BOINC model: replication, quorum, delay_bound, suspend/resume."""

import numpy as np
import pytest

from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.boinc import BoincConfig, BoincServer
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks, Task


class Collector:
    def __init__(self):
        self.completions = []
        self.bot_done_at = None

    def on_task_completed(self, gtid, t):
        self.completions.append((gtid, t))

    def on_bot_completed(self, bot_id, t):
        self.bot_done_at = t


def build(nodes, config=None, horizon=1e7, pool_seed=0):
    sim = Simulation(horizon=horizon)
    pool = NodePool(nodes, rng=np.random.default_rng(pool_seed))
    srv = BoincServer(sim, pool, config=config)
    col = Collector()
    srv.add_observer(col)
    return sim, pool, srv, col


def stable(nid, power=1000.0, until=1e9):
    return Node(nid, power, np.array([0.0]), np.array([until]))


def bot_of(n, nops=1000.0, bot_id="b"):
    return BagOfTasks(bot_id=bot_id,
                      tasks=[Task(i, nops) for i in range(n)],
                      wall_clock=nops / 1000.0)


def test_workunit_needs_quorum_results():
    sim, _, srv, col = build([stable(1), stable(2), stable(3)])
    srv.submit_bot(bot_of(1, nops=1000.0))
    sim.run()
    # 3 replicas issued in parallel; quorum 2 -> complete at 1 s
    assert col.bot_done_at == pytest.approx(1.0)
    assert srv.stats.assignments == 3


def test_quorum_one_completes_with_first_result():
    cfg = BoincConfig(target_nresults=1, min_quorum=1)
    sim, _, srv, col = build([stable(1)], config=cfg)
    srv.submit_bot(bot_of(2, nops=1000.0))
    sim.run()
    assert col.bot_done_at == pytest.approx(2.0)
    assert srv.stats.assignments == 2


def test_one_result_per_user_per_wu_blocks_same_node():
    """A single node can never satisfy a quorum of 2 by itself."""
    cfg = BoincConfig(target_nresults=2, min_quorum=2)
    sim, _, srv, col = build([stable(1)], config=cfg)
    srv.submit_bot(bot_of(1, nops=1000.0))
    sim.run(until=10_000.0)
    assert col.bot_done_at is None  # stuck: needs a second worker
    assert srv.stats.assignments == 1


def test_one_result_per_user_disabled_allows_same_node():
    cfg = BoincConfig(target_nresults=2, min_quorum=2,
                      one_result_per_user_per_wu=False)
    sim, _, srv, col = build([stable(1)], config=cfg)
    srv.submit_bot(bot_of(1, nops=1000.0))
    sim.run()
    assert col.bot_done_at == pytest.approx(2.0)


def test_heterogeneous_powers_quorum_waits_for_second():
    nodes = [stable(1, power=1000.0), stable(2, power=500.0),
             stable(3, power=100.0)]
    sim, _, srv, col = build(nodes)
    srv.submit_bot(bot_of(1, nops=1000.0))
    sim.run()
    # results at 1 s, 2 s, 10 s; quorum of 2 reached at 2 s
    assert col.bot_done_at == pytest.approx(2.0)
    assert srv.stats.discarded_results == 1  # the 10 s result is late


def test_suspend_resume_preserves_progress():
    """BOINC clients checkpoint: an interrupted replica resumes and
    only computes the remaining operations."""
    cfg = BoincConfig(target_nresults=1, min_quorum=1)
    # available [0, 6), gap, then [10, inf): a 10 s task finishes at
    # 10 + remaining 4 s = 14 s (NOT 20 s: progress kept)
    n = Node(1, 1000.0, np.array([0.0, 10.0]), np.array([6.0, 1e9]))
    sim, _, srv, col = build([n], config=cfg)
    srv.submit_bot(bot_of(1, nops=10_000.0))
    sim.run()
    assert col.bot_done_at == pytest.approx(14.0)
    assert srv.stats.suspensions == 1
    assert srv.stats.resumes == 1


def test_delay_bound_reissues_stalled_replica():
    cfg = BoincConfig(target_nresults=1, min_quorum=1, delay_bound=100.0)
    # node 1 dies at t=5 and never returns; node 2 arrives later
    n1 = Node(1, 1000.0, np.array([0.0]), np.array([5.0]))
    n2 = Node(2, 1000.0, np.array([50.0]), np.array([1e9]))
    sim, _, srv, col = build([n1, n2], config=cfg)
    srv.submit_bot(bot_of(1, nops=10_000.0))
    sim.run()
    # timeout at 100 -> reissue on node 2 -> 10 s
    assert col.bot_done_at == pytest.approx(110.0)
    assert srv.stats.timeouts == 1
    assert srv.stats.reissues == 1


def test_late_result_counts_if_wu_incomplete():
    """A result arriving after delay_bound still validates (BOINC
    behaviour) when the workunit is not yet complete."""
    cfg = BoincConfig(target_nresults=1, min_quorum=1, delay_bound=100.0)
    # node 1 suspends [5, 200), resumes and finishes at 205;
    # no other node exists, so the timeout reissue finds nobody.
    n1 = Node(1, 1000.0, np.array([0.0, 200.0]), np.array([5.0, 1e9]))
    sim, _, srv, col = build([n1], config=cfg)
    srv.submit_bot(bot_of(1, nops=10_000.0))
    sim.run()
    assert col.bot_done_at == pytest.approx(205.0)
    assert srv.stats.timeouts == 1


def test_reissue_after_timeout_goes_to_fresh_node():
    cfg = BoincConfig(target_nresults=2, min_quorum=2, delay_bound=50.0)
    n1 = stable(1)
    n2 = Node(2, 1000.0, np.array([0.0]), np.array([0.5]))  # dies fast
    n3 = Node(3, 1000.0, np.array([100.0]), np.array([1e9]))
    sim, _, srv, col = build([n1, n2, n3], pool_seed=3)
    srv.submit_bot(bot_of(1, nops=1000.0))
    sim.run()
    assert col.bot_done_at is not None
    # the wu saw three distinct workers at most once each
    st = srv.tasks[("b", 0)]
    assert len(st.workers) == len(set(st.workers))


def test_completed_wu_late_results_discarded():
    nodes = [stable(1, power=1000.0), stable(2, power=1000.0),
             stable(3, power=10.0)]  # third is very slow
    sim, _, srv, col = build(nodes)
    srv.submit_bot(bot_of(1, nops=1000.0))
    sim.run()
    assert col.bot_done_at == pytest.approx(1.0)
    assert srv.stats.discarded_results == 1


def test_config_validation():
    with pytest.raises(ValueError):
        BoincConfig(target_nresults=1, min_quorum=2)
    with pytest.raises(ValueError):
        BoincConfig(min_quorum=0)
    with pytest.raises(ValueError):
        BoincConfig(delay_bound=0)


def test_external_complete_marks_wu_done():
    sim, _, srv, col = build([stable(1), stable(2), stable(3)])
    srv.submit_bot(bot_of(1, nops=1_000_000.0))  # 1000 s
    sim.at(5.0, srv.external_complete, ("b", 0), 5.0)
    sim.run()
    assert col.bot_done_at == pytest.approx(5.0)
    assert srv.stats.discarded_results == 3  # all replicas late


def test_fetch_for_cloud_issues_extra_replica():
    sim, _, srv, col = build([stable(1, power=10.0),
                              stable(2, power=10.0),
                              stable(3, power=10.0)])
    srv.submit_bot(bot_of(1, nops=1000.0))  # 100 s on regular nodes
    c1 = Node.stable(98, power=1000.0)
    c2 = Node.stable(99, power=1000.0)

    def fetch():
        assert srv.fetch_for_cloud(c1) is not None
        assert srv.fetch_for_cloud(c2) is not None
    sim.at(10.0, fetch)
    sim.run()
    # both cloud replicas (1 s each) complete the quorum at ~11 s
    assert col.bot_done_at == pytest.approx(11.0)
    assert srv.stats.cloud_assignments == 2


def test_fetch_for_cloud_respects_one_result_rule():
    sim, _, srv, col = build([stable(1, power=10.0),
                              stable(2, power=10.0),
                              stable(3, power=10.0)])
    srv.submit_bot(bot_of(1, nops=1000.0))
    cloud = Node.stable(99, power=1000.0)
    got = {}

    def fetch():
        got["first"] = srv.fetch_for_cloud(cloud)
        got["second"] = srv.fetch_for_cloud(cloud)
    sim.at(10.0, fetch)
    sim.run()
    assert got["first"] is not None
    assert got["second"] is None  # same worker, same wu: forbidden


def test_stats_counters_consistent():
    sim, _, srv, col = build([stable(i) for i in range(6)])
    srv.submit_bot(bot_of(4, nops=1000.0))
    sim.run()
    assert srv.stats.completions == 4
    # every wu issued exactly target replicas (no failures here)
    assert srv.stats.assignments == 12
    assert srv.stats.discarded_results == 4  # 3rd result of each wu
