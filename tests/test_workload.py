"""BoT workload model: Table 3 categories and generator properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.bot import BagOfTasks, Task
from repro.workload.categories import get_category
from repro.workload.generator import make_bot


def rng(seed=0):
    return np.random.default_rng(seed)


# -------------------------------------------------------------------- Task
def test_task_duration_on_power():
    t = Task(0, nops=3_600_000)
    assert t.duration_on(1000) == pytest.approx(3600.0)
    assert t.duration_on(3000) == pytest.approx(1200.0)


def test_task_validation():
    with pytest.raises(ValueError):
        Task(0, nops=0)
    with pytest.raises(ValueError):
        Task(0, nops=10, arrival=-1)
    with pytest.raises(ValueError):
        Task(0, nops=10).duration_on(0)


# ------------------------------------------------------------- BagOfTasks
def test_homogeneous_bot():
    bot = BagOfTasks.homogeneous("b", 100, 60_000, wall_clock=180)
    assert bot.size == 100
    assert bot.total_nops == pytest.approx(6_000_000)
    assert bot.arrival_span() == 0.0


def test_workload_cpu_hours_uses_wall_clock():
    bot = BagOfTasks.homogeneous("b", 1000, 3_600_000, wall_clock=11_000)
    # paper: size x wall_clock = 1000 x 11000 s ~ 3055.6 CPU h
    assert bot.workload_cpu_hours == pytest.approx(3055.55, rel=1e-3)


def test_empty_bot_rejected():
    with pytest.raises(ValueError):
        BagOfTasks(bot_id="b", tasks=[])


def test_unordered_arrivals_rejected():
    tasks = [Task(0, 10, arrival=5.0), Task(1, 10, arrival=1.0)]
    with pytest.raises(ValueError):
        BagOfTasks(bot_id="b", tasks=tasks)


def test_iteration_and_len():
    bot = BagOfTasks.homogeneous("b", 5, 10, wall_clock=1)
    assert len(bot) == 5
    assert [t.task_id for t in bot] == [0, 1, 2, 3, 4]


# -------------------------------------------------------------- categories
def test_table3_small():
    c = get_category("SMALL")
    assert c.size == 1000
    assert c.nops == 3_600_000
    assert c.arrival_weibull is None
    assert c.wall_clock == 11_000


def test_table3_big():
    c = get_category("big")  # case-insensitive
    assert c.size == 10_000
    assert c.nops == 60_000
    assert c.wall_clock == 180


def test_table3_random():
    c = get_category("RANDOM")
    assert c.size is None
    assert c.size_normal == (1000.0, 200.0)
    assert c.nops_normal == (60_000.0, 10_000.0)
    assert c.arrival_weibull == (91.98, 0.57)
    assert c.heterogeneous


def test_unknown_category():
    with pytest.raises(KeyError):
        get_category("HUGE")


# --------------------------------------------------------------- generator
def test_make_small_is_deterministic_shape():
    bot = make_bot("SMALL", rng())
    assert bot.size == 1000
    assert all(t.nops == 3_600_000 for t in bot)
    assert all(t.arrival == 0.0 for t in bot)
    assert bot.category == "SMALL"


def test_make_big():
    bot = make_bot("BIG", rng())
    assert bot.size == 10_000
    assert bot.wall_clock == 180


def test_make_random_statistics():
    sizes, mean_nops, spans = [], [], []
    for seed in range(30):
        bot = make_bot("RANDOM", rng(seed))
        sizes.append(bot.size)
        mean_nops.append(bot.total_nops / bot.size)
        spans.append(bot.arrival_span())
    assert np.mean(sizes) == pytest.approx(1000, rel=0.1)
    assert 50 < np.std(sizes) < 400
    assert np.mean(mean_nops) == pytest.approx(60_000, rel=0.05)
    # arrivals concentrated within the first hour or so
    assert 100 < np.mean(spans) < 20_000


def test_random_arrivals_sorted():
    bot = make_bot("RANDOM", rng(3))
    arr = [t.arrival for t in bot]
    assert arr == sorted(arr)
    assert arr[0] >= 0.0


def test_size_override():
    bot = make_bot("SMALL", rng(), size_override=50)
    assert bot.size == 50
    assert bot.tasks[0].nops == 3_600_000  # attributes unchanged


def test_bot_id_passthrough():
    bot = make_bot("BIG", rng(), bot_id="my-bot")
    assert bot.bot_id == "my-bot"


def test_same_seed_same_bot():
    a = make_bot("RANDOM", rng(42))
    b = make_bot("RANDOM", rng(42))
    assert a.size == b.size
    assert all(x.nops == y.nops for x, y in zip(a, b))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_random_bots_always_valid(seed):
    bot = make_bot("RANDOM", rng(seed))
    assert bot.size >= 10
    assert all(t.nops >= 1000 for t in bot)
    arr = [t.arrival for t in bot]
    assert arr == sorted(arr)


@settings(max_examples=25, deadline=None)
@given(size=st.integers(1, 500))
def test_property_override_respected(size):
    bot = make_bot("BIG", rng(0), size_override=size)
    assert bot.size == max(10, size)
