"""Sharded executor: caching, determinism, crash fallback, resume."""

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.campaign.executor as executor_mod
from repro.campaign.executor import (
    CampaignExecutor,
    default_jobs,
    run_cached,
    set_default_jobs,
)
from repro.campaign.store import ResultStore, comparable_payload, \
    encode_result
from repro.experiments.config import ExecutionConfig
from repro.experiments.runner import run_campaign


def quick_cfg(**kw):
    base = dict(trace="nd", middleware="xwhep", category="SMALL",
                seed=5, bot_size=40)
    base.update(kw)
    return ExecutionConfig(**base)


def grid(n=4):
    return [quick_cfg(seed=s) for s in range(1, n + 1)]


def counting_run_one(monkeypatch):
    calls = []
    real = executor_mod._run_one

    def spy(cfg):
        calls.append(cfg)
        return real(cfg)

    monkeypatch.setattr(executor_mod, "_run_one", spy)
    return calls


# ------------------------------------------------------------------- jobs
def test_default_jobs_env_and_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    set_default_jobs(5)
    try:
        assert default_jobs() == 5
    finally:
        set_default_jobs(None)
    assert default_jobs() == 3


# ---------------------------------------------------------------- caching
def test_executor_dedups_identical_configs(monkeypatch):
    calls = counting_run_one(monkeypatch)
    cfg = quick_cfg()
    results = CampaignExecutor(store=None, n_jobs=1).run([cfg, cfg, cfg])
    assert len(calls) == 1
    assert len(results) == 3
    assert results[0] is results[1] is results[2]


def test_executor_stores_misses_and_serves_hits(monkeypatch):
    store = ResultStore(":memory:")
    cfgs = grid(3)
    first = CampaignExecutor(store=store, n_jobs=1).run(cfgs)
    assert store.stats.misses == 3 and store.stats.puts == 3

    calls = counting_run_one(monkeypatch)
    again = CampaignExecutor(store=store, n_jobs=1).run(cfgs)
    assert calls == []  # zero new simulations on a warm store
    assert store.stats.hits == 3
    assert [r.makespan for r in again] == [r.makespan for r in first]


def test_interrupted_campaign_resumes_with_hits(monkeypatch):
    """Completed work persists, so a resumed campaign only simulates
    what the interruption left unfinished."""
    store = ResultStore(":memory:")
    cfgs = grid(4)
    # the "interrupted" first attempt finished half the campaign
    CampaignExecutor(store=store, n_jobs=1).run(cfgs[:2])
    store.stats = type(store.stats)()  # fresh accounting for the resume
    calls = counting_run_one(monkeypatch)
    results = CampaignExecutor(store=store, n_jobs=1).run(cfgs)
    assert store.stats.hits == 2 and store.stats.misses == 2
    assert [c.seed for c in calls] == [3, 4]
    assert len(results) == 4
    # a second resume needs no simulation at all: 100% hits
    calls.clear()
    CampaignExecutor(store=store, n_jobs=1).run(cfgs)
    assert calls == []


def test_run_campaign_wrapper_accepts_store_none(monkeypatch):
    calls = counting_run_one(monkeypatch)
    results = run_campaign(grid(2), n_jobs=1, store=None)
    assert len(calls) == 2 and len(results) == 2


# ----------------------------------------------------- serial == parallel
@pytest.mark.slow
def test_serial_and_parallel_records_are_bit_identical():
    cfgs = [quick_cfg(seed=s, strategy=st)
            for s in (1, 2) for st in (None, "9C-C-R")]
    serial_store = ResultStore(":memory:")
    parallel_store = ResultStore(":memory:")
    serial = CampaignExecutor(store=serial_store, n_jobs=1).run(cfgs)
    parallel = CampaignExecutor(store=parallel_store, n_jobs=2).run(cfgs)
    for cfg, a, b in zip(cfgs, serial, parallel):
        pa, pb = encode_result(a)[1], encode_result(b)[1]
        assert comparable_payload(pa) == comparable_payload(pb), cfg.label()
    assert parallel_store.mode_of(cfgs[0]) == "parallel"
    assert serial_store.mode_of(cfgs[0]) == "serial"


# -------------------------------------------------------- crash resilience
class _FakePool:
    """Stand-in pool whose workers 'crash' for selected shards."""

    #: shard indices that complete before the pool breaks
    complete_first = 0

    def __init__(self, max_workers=None):
        self._submitted = 0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        fut = concurrent.futures.Future()
        if self._submitted < self.complete_first:
            fut.set_result(fn(*args))
        else:
            fut.set_exception(BrokenProcessPool("worker died"))
        self._submitted += 1
        return fut


def test_oversized_realization_groups_split_into_chunks(monkeypatch):
    """Many configs over one trace realization (a contention sweep)
    must still fan out across all workers, not serialize on one."""

    class RecordingPool(_FakePool):
        complete_first = 10 ** 9  # never break; run shards inline
        sizes = []

        def submit(self, fn, *args):
            RecordingPool.sizes.append(len(args[0]))
            return super().submit(fn, *args)

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                        RecordingPool)
    # 8 variants of ONE (trace, seed) realization
    cfgs = [quick_cfg(strategy=st, strategy_threshold=thr)
            for st in (None, "9C-C-R") for thr in (0.8, 0.85, 0.9, 0.95)]
    results = CampaignExecutor(store=None, n_jobs=2).run(cfgs)
    assert len(results) == 8
    assert len(RecordingPool.sizes) == 8  # ceil(8 / (2*4)) = 1 per shard
    assert all(s == 1 for s in RecordingPool.sizes)


def test_broken_pool_mid_run_falls_back_to_serial(monkeypatch):
    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                        _FakePool)
    store = ResultStore(":memory:")
    cfgs = grid(4)
    with pytest.warns(RuntimeWarning, match="finishing 4 remaining"):
        results = CampaignExecutor(store=store, n_jobs=2).run(cfgs)
    assert len(results) == 4
    assert all(store.mode_of(c) == "serial" for c in cfgs)
    # the fallback results match a plain serial run exactly
    redo = CampaignExecutor(store=None, n_jobs=1).run(cfgs)
    assert [r.makespan for r in results] == [r.makespan for r in redo]


def test_broken_pool_keeps_already_finished_shards(monkeypatch):
    class OneShardSurvives(_FakePool):
        complete_first = 1

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                        OneShardSurvives)
    store = ResultStore(":memory:")
    cfgs = grid(4)
    with pytest.warns(RuntimeWarning, match="broke mid-run"):
        results = CampaignExecutor(store=store, n_jobs=2).run(cfgs)
    assert len(results) == 4
    modes = {store.mode_of(c) for c in cfgs}
    assert modes == {"parallel", "serial"}


# --------------------------------------------------------------- run_cached
def test_run_cached_config_and_extra(monkeypatch):
    store = ResultStore(":memory:")
    cfg = quick_cfg()
    a = run_cached(cfg, store=store)
    b = run_cached(cfg, store=store)
    assert encode_result(a) == encode_result(b)
    assert store.stats.misses == 1 and store.stats.hits == 1
    # a different extra key is a different record
    run_cached(cfg, extra={"delay_bound": 60.0}, store=store,
               compute=lambda: executor_mod._run_one(cfg))
    assert store.stats.misses == 2


def test_run_cached_dict_key_requires_compute():
    with pytest.raises(TypeError):
        run_cached({"experiment": "x"}, store=None)
    out = run_cached({"experiment": "x"}, compute=lambda: {"n": 1},
                     store=ResultStore(":memory:"))
    assert out == {"n": 1}
