"""Shared DGServer machinery: observers, multi-BoT, Flat cloud nodes,
busy accounting — behaviours common to both middleware models."""

import numpy as np
import pytest

from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware import MIDDLEWARE_NAMES, make_server
from repro.middleware.boinc import BoincConfig
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks, Task


def stable(nid, power=1000.0):
    return Node(nid, power, np.array([0.0]), np.array([1e9]))


def bot_of(n, nops=1000.0, bot_id="b"):
    return BagOfTasks(bot_id=bot_id,
                      tasks=[Task(i, nops) for i in range(n)],
                      wall_clock=1.0)


def build(kind, n_nodes=4, config=None):
    sim = Simulation(horizon=1e7)
    pool = NodePool([stable(i) for i in range(n_nodes)],
                    rng=np.random.default_rng(0))
    return sim, make_server(kind, sim, pool, config=config)


def test_make_server_names():
    assert MIDDLEWARE_NAMES == ("boinc", "xwhep")
    with pytest.raises(ValueError):
        build("condor")


@pytest.mark.parametrize("kind", MIDDLEWARE_NAMES)
def test_observer_event_order_and_counts(kind):
    sim, srv = build(kind)
    events = []

    class Obs:
        def on_task_arrived(self, gtid, t):
            events.append(("arrive", gtid, t))

        def on_task_first_assigned(self, gtid, t):
            events.append(("assign", gtid, t))

        def on_task_completed(self, gtid, t):
            events.append(("complete", gtid, t))

        def on_bot_completed(self, bot_id, t):
            events.append(("bot", bot_id, t))

    srv.add_observer(Obs())
    srv.submit_bot(bot_of(3))
    sim.run()
    kinds = [e[0] for e in events]
    assert kinds.count("arrive") == 3
    assert kinds.count("assign") == 3
    assert kinds.count("complete") == 3
    assert kinds.count("bot") == 1
    # per task: arrive precedes assign precedes complete
    for i in range(3):
        seq = [k for k, g, _ in events if g == ("b", i)]
        assert seq == ["arrive", "assign", "complete"]


@pytest.mark.parametrize("kind", MIDDLEWARE_NAMES)
def test_duplicate_bot_rejected(kind):
    sim, srv = build(kind)
    bot = bot_of(2)
    srv.submit_bot(bot)
    with pytest.raises(ValueError):
        srv.submit_bot(bot)


@pytest.mark.parametrize("kind", MIDDLEWARE_NAMES)
def test_bot_progress_accounting(kind):
    sim, srv = build(kind)
    srv.submit_bot(bot_of(5))
    sim.run()
    total, arrived, completed = srv.bot_progress("b")
    assert (total, arrived, completed) == (5, 5, 5)
    assert srv.bot_completed("b")
    assert srv.uncompleted_gtids("b") == []


@pytest.mark.parametrize("kind", MIDDLEWARE_NAMES)
def test_flat_cloud_node_validation(kind):
    sim, srv = build(kind)
    with pytest.raises(ValueError):
        srv.add_cloud_node(stable(99))  # not flagged as cloud


@pytest.mark.parametrize("kind", MIDDLEWARE_NAMES)
def test_flat_cloud_node_joins_and_leaves(kind):
    sim, srv = build(kind, n_nodes=2,
                     config=BoincConfig(target_nresults=1, min_quorum=1)
                     if kind == "boinc" else None)
    cloud = Node.stable(99, power=10_000.0)
    srv.submit_bot(bot_of(6, nops=100_000.0))
    sim.at(1.0, srv.add_cloud_node, cloud)
    done = {}

    class Obs:
        def on_bot_completed(self, bid, t):
            done["t"] = t
            sim.stop()

    srv.add_observer(Obs())
    sim.run()
    assert srv.stats.cloud_assignments >= 1
    assert srv.cloud_busy_seconds(cloud) > 0.0
    srv.remove_cloud_node(cloud)
    assert cloud not in srv.pool


@pytest.mark.parametrize("kind", MIDDLEWARE_NAMES)
def test_cloud_busy_seconds_tracks_inflight(kind):
    cfg = BoincConfig(target_nresults=1, min_quorum=1) \
        if kind == "boinc" else None
    sim, srv = build(kind, n_nodes=1, config=cfg)
    cloud = Node.stable(99, power=1000.0)
    srv.submit_bot(bot_of(1, nops=1_000_000.0))  # 1000 s on the cloud
    sim.at(0.5, srv.add_cloud_node, cloud)
    checked = {}

    def check():
        checked["busy"] = srv.cloud_busy_seconds(cloud)
    sim.at(100.0, check)
    sim.run(until=200.0)
    # the cloud worker may or may not have won the task against the
    # regular node; if it did, in-flight busy time accrues linearly
    if srv.is_busy(cloud):
        assert checked["busy"] == pytest.approx(100.0 - 0.5, abs=1.0)
    else:
        assert checked["busy"] == 0.0


@pytest.mark.parametrize("kind", MIDDLEWARE_NAMES)
def test_idle_callback_fired_on_node_free(kind):
    cfg = BoincConfig(target_nresults=1, min_quorum=1) \
        if kind == "boinc" else None
    sim, srv = build(kind, n_nodes=0 or 1, config=cfg)
    cloud = Node.stable(99, power=1000.0)
    pings = []
    srv.register_idle_callback(cloud, lambda: pings.append(sim.now))
    srv.submit_bot(bot_of(1, nops=1000.0))
    # hand the unit to the cloud node directly
    sim.at(0.0, srv.fetch_for_cloud, cloud)
    sim.run()
    assert pings  # notified after its unit completed
    srv.unregister_idle_callback(cloud)


@pytest.mark.parametrize("kind", MIDDLEWARE_NAMES)
def test_two_bots_complete_independently(kind):
    sim, srv = build(kind, n_nodes=6)
    srv.submit_bot(bot_of(3, bot_id="alpha"))
    srv.submit_bot(bot_of(3, nops=5000.0, bot_id="beta"))
    finished = []

    class Obs:
        def on_bot_completed(self, bid, t):
            finished.append((bid, t))

    srv.add_observer(Obs())
    sim.run()
    names = [b for b, _ in finished]
    assert set(names) == {"alpha", "beta"}
    t_alpha = dict(finished)["alpha"]
    t_beta = dict(finished)["beta"]
    assert t_alpha < t_beta  # alpha's tasks are 5x shorter
