"""Information module monitors, history stores, Oracle predictions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.info import BoTMonitor, InformationModule, tc_grid
from repro.core.oracle import Oracle, fit_alpha, prediction_success
from repro.core.storage import (
    ExecutionRecord,
    InMemoryHistoryStore,
    SQLiteHistoryStore,
)
from repro.workload.bot import BagOfTasks, Task


def bot_of(n=10, bot_id="b"):
    return BagOfTasks(bot_id=bot_id,
                      tasks=[Task(i, 1000.0) for i in range(n)],
                      wall_clock=1.0)


def feed_monitor(mon, completions, assignments=None):
    """Drive a monitor through a synthetic event sequence."""
    assignments = assignments if assignments is not None else completions
    for i, t in enumerate(assignments):
        mon.on_task_first_assigned((mon.bot_id, i), t)
    for i, t in enumerate(completions):
        mon.on_task_completed((mon.bot_id, i), t)
    if len(completions) == mon.total:
        mon.on_bot_completed(mon.bot_id, completions[-1])


# ---------------------------------------------------------------- monitor
def test_monitor_counts_and_fractions():
    mon = BoTMonitor(bot_of(10), t0=0.0)
    feed_monitor(mon, [float(i + 1) for i in range(5)])
    assert mon.completed_count == 5
    assert mon.fraction_completed() == 0.5
    assert not mon.done


def test_monitor_tc_ta():
    mon = BoTMonitor(bot_of(10), t0=0.0)
    feed_monitor(mon, [float(i + 1) for i in range(10)],
                 assignments=[0.5 * (i + 1) for i in range(10)])
    assert mon.tc(0.5) == pytest.approx(5.0)
    assert mon.ta(0.5) == pytest.approx(2.5)
    assert mon.execution_variance(0.5) == pytest.approx(2.5)
    assert mon.done


def test_monitor_relative_to_t0():
    mon = BoTMonitor(bot_of(2), t0=100.0)
    mon.on_task_completed(("b", 0), 150.0)
    assert mon.completion_times == [50.0]


def test_monitor_ignores_other_bots():
    mon = BoTMonitor(bot_of(2), t0=0.0)
    mon.on_task_completed(("other", 0), 1.0)
    assert mon.completed_count == 0


def test_monitor_tc_none_before_reached():
    mon = BoTMonitor(bot_of(10), t0=0.0)
    feed_monitor(mon, [1.0, 2.0])
    assert mon.tc(0.5) is None
    assert mon.execution_variance(0.9) is None


def test_monitor_sample_series():
    mon = BoTMonitor(bot_of(4), t0=0.0)
    mon.on_task_arrived(("b", 0), 0.0)
    mon.on_task_arrived(("b", 1), 0.0)
    mon.on_task_first_assigned(("b", 0), 1.0)
    mon.sample(10.0)
    t, completed, assigned, waiting = mon.series[-1]
    assert (t, completed, assigned, waiting) == (10.0, 0, 1, 1)


def test_tc_grid_shape_and_nan_padding():
    grid = tc_grid([1.0, 2.0, 3.0], total=10)
    assert grid.shape == (100,)
    assert grid[9] == pytest.approx(1.0)   # tc(10%) = 1st completion
    assert grid[29] == pytest.approx(3.0)
    assert math.isnan(grid[99])


# ------------------------------------------------------------------ stores
@pytest.mark.parametrize("store_factory", [
    InMemoryHistoryStore, lambda: SQLiteHistoryStore(":memory:")])
def test_store_roundtrip(store_factory):
    store = store_factory()
    rec = ExecutionRecord("env1", 100, 1234.5,
                          np.linspace(10, 1234.5, 100))
    store.add(rec)
    store.add(ExecutionRecord("env2", 10, 99.0, np.full(100, np.nan)))
    assert len(store) == 2
    assert store.env_keys() == ["env1", "env2"]
    got = store.fetch("env1")
    assert len(got) == 1
    assert got[0].makespan == 1234.5
    assert np.allclose(got[0].grid, rec.grid)


def test_sqlite_store_preserves_nan():
    store = SQLiteHistoryStore(":memory:")
    grid = np.full(100, np.nan)
    grid[49] = 55.0
    store.add(ExecutionRecord("e", 10, 100.0, grid))
    got = store.fetch("e")[0]
    assert math.isnan(got.grid[0])
    assert got.grid[49] == 55.0


def test_record_tc_at():
    rec = ExecutionRecord("e", 100, 200.0, np.arange(1.0, 101.0))
    assert rec.tc_at(0.5) == pytest.approx(50.0)
    assert rec.tc_at(1.0) == pytest.approx(100.0)
    with pytest.raises(ValueError):
        rec.tc_at(0.0)


def test_info_module_register_and_archive():
    info = InformationModule()
    bot = bot_of(4)
    mon = info.register(bot, t0=0.0)
    with pytest.raises(ValueError):
        info.register(bot, t0=0.0)
    feed_monitor(mon, [1.0, 2.0, 3.0, 4.0])
    info.archive_execution("envX", mon)
    assert len(info.history("envX")) == 1


def test_archive_unfinished_rejected():
    info = InformationModule()
    mon = info.register(bot_of(4), t0=0.0)
    with pytest.raises(ValueError):
        info.archive_execution("envX", mon)


# ----------------------------------------------------------------- alpha
def test_fit_alpha_perfect_history():
    # actual = 2 * base everywhere -> alpha = 2
    p = [100.0, 200.0, 300.0]
    a = [200.0, 400.0, 600.0]
    assert fit_alpha(p, a) == pytest.approx(2.0)


def test_fit_alpha_is_weighted_median():
    p = [100.0, 100.0, 100.0]
    a = [110.0, 120.0, 500.0]  # outlier should not drag the fit
    alpha = fit_alpha(p, a)
    assert alpha == pytest.approx(1.2)


def test_fit_alpha_empty_history_returns_one():
    assert fit_alpha([], []) == 1.0


def test_fit_alpha_ignores_nan_and_nonpositive():
    p = [float("nan"), -5.0, 100.0]
    a = [100.0, 100.0, 150.0]
    assert fit_alpha(p, a) == pytest.approx(1.5)


@settings(max_examples=30, deadline=None)
@given(ratios=st.lists(st.floats(0.5, 3.0), min_size=1, max_size=30),
       scale=st.floats(10.0, 1e4))
def test_property_fit_alpha_minimizes_l1(ratios, scale):
    p = np.full(len(ratios), scale)
    a = scale * np.asarray(ratios)
    alpha = fit_alpha(p, a)
    def loss(x):
        return np.abs(x * p - a).sum()
    # the optimum is no worse than nearby candidates
    assert loss(alpha) <= loss(alpha * 1.05) + 1e-6
    assert loss(alpha) <= loss(alpha * 0.95) + 1e-6


# ------------------------------------------------------------- prediction
def test_prediction_success_window():
    assert prediction_success(100.0, 100.0)
    assert prediction_success(100.0, 80.0)
    assert prediction_success(100.0, 120.0)
    assert not prediction_success(100.0, 79.0)
    assert not prediction_success(100.0, 121.0)
    assert not prediction_success(0.0, 50.0)


def make_history(info, env, makespans, n=10):
    """Archive executions with linear profiles scaled to makespans."""
    for k, mk in enumerate(makespans):
        bot = bot_of(n, bot_id=f"h{env}-{k}")
        mon = info.register(bot, t0=0.0)
        feed_monitor(mon, list(np.linspace(mk / n, mk, n)))
        info.archive_execution(env, mon)


def test_oracle_alpha_learns_scaling():
    """History where tails double the extrapolation: alpha ~ 2."""
    info = InformationModule()
    for k in range(5):
        bot = bot_of(10, bot_id=f"h{k}")
        mon = info.register(bot, t0=0.0)
        # steady to 50% at t=50, then slow: makespan 200
        times = list(np.linspace(10, 50, 5)) + list(np.linspace(80, 200, 5))
        feed_monitor(mon, times)
        info.archive_execution("envA", mon)
    oracle = Oracle(info)
    alpha, n = oracle.alpha_for("envA", 0.5)
    assert n == 5
    assert alpha == pytest.approx(2.0, rel=0.05)


def test_oracle_predict_live_bot():
    info = InformationModule()
    make_history(info, "envB", [100.0] * 4)
    live = bot_of(10, bot_id="live")
    mon = info.register(live, t0=0.0)
    feed_monitor(mon, list(np.linspace(5, 50, 5)))  # 50% done at t=50
    pred = Oracle(info).predict("live", "envB")
    assert pred is not None
    assert pred.at_fraction == pytest.approx(0.5)
    # base = 50/0.5 = 100; history is linear so alpha ~ 1
    assert pred.predicted_completion == pytest.approx(100.0, rel=0.05)
    assert pred.uncertainty == pytest.approx(1.0)


def test_oracle_predict_without_progress_returns_none():
    info = InformationModule()
    mon = info.register(bot_of(10, bot_id="fresh"), t0=0.0)
    assert Oracle(info).predict("fresh", "envC") is None


def test_oracle_no_history_alpha_one():
    info = InformationModule()
    oracle = Oracle(info)
    alpha, n = oracle.alpha_for("nowhere", 0.5)
    assert alpha == 1.0 and n == 0
    assert math.isnan(oracle.success_rate("nowhere", 0.5, 1.0))
