"""Multi-tenant QoS arbitration: pools, tenant streams, contention.

The headline scenario (the acceptance bar for the multi-tenant
subsystem): eight concurrent BoTs on one BE-DCI share one credit pool
sized far below aggregate demand.  Under every arbitration policy all
BoTs complete and the pooled spend never exceeds the provision; the
whole scenario is bit-reproducible from its seed; and fair-share ends
with a strictly tighter per-tenant slowdown spread than FIFO.
"""

import numpy as np
import pytest

from repro.core.credit import CreditSystem, InsufficientCredits
from repro.core.scheduler import ARBITRATION_POLICIES, CloudArbiter
from repro.experiments.config import MultiTenantConfig
from repro.experiments.runner import run_multi_tenant
from repro.workload.tenants import generate_tenants, poisson_arrivals


# ---------------------------------------------------------------- pools
def test_pool_open_join_bill_close_cycle():
    cs = CreditSystem()
    cs.deposit("org", 100.0)
    pool = cs.open_pool("p", "org", 60.0)
    assert cs.balance("org") == pytest.approx(40.0)
    cs.join_pool("a", "p")
    cs.join_pool("b", "p")
    assert cs.bill("a", 25.0) == pytest.approx(25.0)
    assert cs.bill("b", 50.0) == pytest.approx(35.0)  # clamped to pool
    assert pool.spent == pytest.approx(60.0)
    assert not cs.has_credits("a") and not cs.has_credits("b")
    spent, refund = cs.close_pool("p")
    assert spent == pytest.approx(60.0) and refund == pytest.approx(0.0)
    assert cs.balance("org") == pytest.approx(40.0)


def test_pool_close_refunds_remainder_and_closes_members():
    cs = CreditSystem()
    cs.deposit("org", 50.0)
    cs.open_pool("p", "org", 50.0)
    cs.join_pool("a", "p")
    cs.bill("a", 10.0)
    # member close pays nothing back on its own
    assert cs.close("a") == (pytest.approx(10.0), 0.0)
    spent, refund = cs.close_pool("p")
    assert spent == pytest.approx(10.0) and refund == pytest.approx(40.0)
    assert cs.balance("org") == pytest.approx(40.0)
    assert cs.bill("a", 5.0) == 0.0  # closed orders bill nothing


def test_pool_spend_never_exceeds_provision_under_any_billing():
    cs = CreditSystem()
    cs.deposit("org", 30.0)
    pool = cs.open_pool("p", "org", 30.0)
    for i in range(6):
        cs.join_pool(f"bot{i}", "p")
    rng = np.random.default_rng(0)
    for _ in range(200):
        cs.bill(f"bot{rng.integers(6)}", float(rng.uniform(0, 5)))
    assert pool.spent <= pool.provisioned + 1e-9
    assert sum(cs.spent(f"bot{i}") for i in range(6)) == \
        pytest.approx(pool.spent)


def test_pool_allowance_caps_member_spend():
    cs = CreditSystem()
    cs.deposit("org", 100.0)
    cs.open_pool("p", "org", 100.0)
    cs.join_pool("a", "p")
    cs.set_allowance("a", 15.0)
    assert cs.remaining_for("a") == pytest.approx(15.0)
    assert cs.bill("a", 40.0) == pytest.approx(15.0)
    assert not cs.has_credits("a")
    cs.set_allowance("a", None)  # lift the cap: pool remainder is back
    assert cs.remaining_for("a") == pytest.approx(85.0)


def test_pool_guards():
    cs = CreditSystem()
    with pytest.raises(InsufficientCredits):
        cs.open_pool("p", "poor", 10.0)
    cs.deposit("org", 20.0)
    cs.open_pool("p", "org", 10.0)
    with pytest.raises(ValueError):
        cs.open_pool("p", "org", 5.0)       # already open
    with pytest.raises(KeyError):
        cs.join_pool("a", "nope")
    cs.join_pool("a", "p")
    with pytest.raises(ValueError):
        cs.join_pool("a", "p")              # open order exists
    with pytest.raises(ValueError):
        cs.open_pool("q", "org", 5.0, expected_members=0)


# -------------------------------------------------------- tenant stream
def test_poisson_arrivals_start_at_zero_and_are_sorted():
    rng = np.random.default_rng(5)
    t = poisson_arrivals(rng, 16, rate_per_hour=4.0)
    assert t[0] == 0.0
    assert np.all(np.diff(t) >= 0)
    with pytest.raises(ValueError):
        poisson_arrivals(rng, 0, 1.0)
    with pytest.raises(ValueError):
        poisson_arrivals(rng, 3, 0.0)


def test_generate_tenants_is_seed_reproducible():
    a = generate_tenants(np.random.default_rng(11), 6, bot_size=20)
    b = generate_tenants(np.random.default_rng(11), 6, bot_size=20)
    assert [t.arrival for t in a] == [t.arrival for t in b]
    assert [t.bot_id for t in a] == [t.bot_id for t in b]
    assert all(x.bot.size == 20 for x in a)


def test_generate_tenants_cycles_categories_and_sets_deadlines():
    subs = generate_tenants(np.random.default_rng(3), 4,
                            categories=("SMALL", "BIG"), bot_size=15,
                            deadline_factor=0.5)
    assert [s.bot.category for s in subs] == ["SMALL", "BIG",
                                              "SMALL", "BIG"]
    for s in subs:
        assert s.deadline == pytest.approx(
            s.arrival + 0.5 * s.bot.size * s.bot.wall_clock)


def test_generate_tenants_explicit_arrivals_validated():
    rng = np.random.default_rng(0)
    subs = generate_tenants(rng, 3, arrivals=[0.0, 5.0, 5.0], bot_size=12)
    assert [s.arrival for s in subs] == [0.0, 5.0, 5.0]
    with pytest.raises(ValueError):
        generate_tenants(rng, 3, arrivals=[0.0, 5.0], bot_size=12)
    with pytest.raises(ValueError):
        generate_tenants(rng, 2, arrivals=[5.0, 1.0], bot_size=12)


# ----------------------------------------------------------- arbitration
def test_arbiter_rejects_unknown_policy():
    with pytest.raises(ValueError):
        CloudArbiter("round-robin")
    with pytest.raises(ValueError):
        CloudArbiter("fifo", max_total_workers=0)


def test_multi_tenant_config_validation():
    good = dict(trace="seti", middleware="boinc", seed=1)
    MultiTenantConfig(**good)
    with pytest.raises(ValueError):
        MultiTenantConfig(**good, policy="lottery")
    with pytest.raises(ValueError):
        MultiTenantConfig(**good, n_tenants=0)
    with pytest.raises(ValueError):
        MultiTenantConfig(**good, categories=("HUGE",))
    with pytest.raises(ValueError):
        MultiTenantConfig(**good, n_tenants=2, arrivals=(0.0,))
    with pytest.raises(ValueError):
        MultiTenantConfig(**good, pool_fraction=0.0)


# ------------------------------------------------- the contended scenario
#: eight SMALL BoTs on one volatile BOINC DCI; the pool holds ~0.6 % of
#: the aggregate declared workload, so whoever is served late under a
#: take-all policy is left to the middleware's day-long result deadline
def _contended(policy: str, seed: int = 99) -> MultiTenantConfig:
    return MultiTenantConfig(
        trace="seti", middleware="boinc", seed=seed, n_tenants=8,
        bot_size=40, strategy="9C-C-D", policy=policy,
        max_total_workers=8, pool_fraction=0.006, deadline_factor=0.5)


@pytest.fixture(scope="module")
def contended_results():
    return {p: run_multi_tenant(_contended(p)) for p in ARBITRATION_POLICIES}


def test_all_policies_complete_all_tenants(contended_results):
    for policy, res in contended_results.items():
        assert len(res.tenants) == 8
        assert res.censored_count == 0, policy
        assert all(t.makespan > 0 for t in res.tenants)


def test_contended_scenario_is_seed_reproducible(contended_results):
    again = run_multi_tenant(_contended("fairshare"))
    base = contended_results["fairshare"]
    assert [t.makespan for t in again.tenants] == \
        [t.makespan for t in base.tenants]
    assert [t.credits_spent for t in again.tenants] == \
        [t.credits_spent for t in base.tenants]
    assert again.pool_spent == base.pool_spent
    assert again.events == base.events


def test_pooled_spend_never_exceeds_provision(contended_results):
    for policy, res in contended_results.items():
        assert res.pool_spent <= res.pool_provisioned + 1e-9, policy
        assert sum(t.credits_spent for t in res.tenants) == \
            pytest.approx(res.pool_spent)


def test_worker_budget_is_respected(contended_results):
    for policy, res in contended_results.items():
        assert res.workers_peak <= 8, policy


def test_fairshare_beats_fifo_on_slowdown_spread(contended_results):
    fifo = contended_results["fifo"]
    fair = contended_results["fairshare"]
    # the contended regime must actually bind: FIFO drains the pool
    assert fifo.pool_used_pct == pytest.approx(100.0, abs=0.5)
    assert fair.slowdown_spread < fifo.slowdown_spread
    # fair-share's equalization also shows in Jain's index
    assert fair.fairness > fifo.fairness


def test_deadline_policy_ran_with_deadlines_set(contended_results):
    res = contended_results["deadline"]
    assert all(t.deadline is not None for t in res.tenants)


def test_service_order_is_edf_under_deadline_policy():
    from repro.core.scheduler import QoSRun

    def stub(bot_id, deadline):
        return QoSRun(bot_id=bot_id, server=None, driver=None,
                      monitor=None, oracle=None, combo=None,
                      deadline=deadline)

    runs = [stub("b0", 300.0), stub("b1", None),
            stub("b2", 100.0), stub("b3", 200.0)]
    edf = CloudArbiter("deadline").service_order(runs, now=0.0)
    assert [r.bot_id for r in edf] == ["b2", "b3", "b0", "b1"]
    fifo = CloudArbiter("fifo").service_order(runs, now=0.0)
    assert [r.bot_id for r in fifo] == ["b0", "b1", "b2", "b3"]


def test_pooled_order_launches_workers_without_arbiter():
    """The arbiter is optional: a pooled order alone must still fund
    cloud workers (regression: _launch used to size against the pooled
    order's own provisioned=0 instead of the pool remainder)."""
    from repro.cloud.registry import get_driver
    from repro.core.service import SpeQuloS
    from repro.infra.catalog import get_trace_spec
    from repro.infra.pool import NodePool
    from repro.middleware import make_server
    from repro.simulator.engine import Simulation
    from repro.workload.bot import BagOfTasks

    sim = Simulation(horizon=5 * 86400.0)
    nodes = get_trace_spec("nd").materialize(
        np.random.default_rng(1), 5 * 86400.0, 40)
    server = make_server("xwhep", sim,
                         NodePool(nodes, rng=np.random.default_rng(2)))
    service = SpeQuloS(sim)  # no arbiter
    service.connect_dci("d", server, get_driver("simulation", sim))
    bot = BagOfTasks.homogeneous("b", 40, 3_600_000.0, 11_000.0)
    service.register_qos(bot, "d")
    service.credits.deposit("org", 1000.0)
    service.open_qos_pool("p", "org", 1000.0)
    service.order_qos_pooled("b", "p")
    server.submit_bot(bot)
    sim.run()
    run = service.run_for("b")
    assert run.workers_launched > 0
    pool = service.credits.get_pool("p")
    assert 0.0 < pool.spent <= pool.provisioned


def test_uncontended_single_tenant_all_policies_agree():
    results = {}
    for policy in ARBITRATION_POLICIES:
        cfg = MultiTenantConfig(
            trace="nd", middleware="xwhep", seed=4, n_tenants=1,
            bot_size=30, strategy="9C-C-R", policy=policy,
            pool_fraction=0.10)
        results[policy] = run_multi_tenant(cfg)
    makespans = {p: r.tenants[0].makespan for p, r in results.items()}
    assert len(set(makespans.values())) == 1  # no contention, no policy
    assert all(r.slowdown_spread == pytest.approx(1.0)
               for r in results.values())
