"""Economics plane: pricing, billing, deposits — units + invariants.

The hypothesis suites pin the ISSUE's three economics invariants:
pooled spend never exceeds provision under heterogeneous per-provider
rates; billing is additive across providers; a uniform price book
reproduces the fixed-rate totals bit-identically.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.credit import CREDITS_PER_CPU_HOUR, CreditSystem
from repro.economics import (
    AccountTopUp,
    AllowanceRation,
    BillingMeter,
    DepositSchedule,
    PoolTopUp,
    PriceBook,
    ProviderPricing,
    parse_pricing,
    spot_rate,
)
from repro.simulator.engine import Simulation

PROVIDERS = ("stratuslab", "ec2", "grid5000")


# ---------------------------------------------------------------- pricing
def test_pricebook_default_is_paper_rate():
    book = PriceBook()
    assert book.rate("anything") == CREDITS_PER_CPU_HOUR
    assert book.is_uniform


def test_pricebook_per_provider_rates_and_case():
    book = PriceBook.from_pairs((("StratusLab", 6.0), ("ec2", 18.0)))
    assert book.rate("stratuslab") == 6.0
    assert book.rate("EC2") == 18.0
    assert book.rate("nimbus") == CREDITS_PER_CPU_HOUR
    assert not book.is_uniform
    assert book.providers() == ["ec2", "stratuslab"]


def test_pricebook_time_varying_hook():
    book = PriceBook(rates={"ec2": lambda now: 10.0 + now / 3600.0})
    assert book.rate("ec2", 0.0) == 10.0
    assert book.rate("ec2", 7200.0) == 12.0


def test_pricebook_spot_tier_falls_back_to_ondemand():
    pricing = ProviderPricing(ondemand=18.0, spot=5.0)
    assert pricing.rate(tier="spot") == 5.0
    assert pricing.rate(tier="ondemand") == 18.0
    no_spot = ProviderPricing(ondemand=18.0)
    assert no_spot.rate(tier="spot") == 18.0
    with pytest.raises(ValueError):
        no_spot.rate(tier="reserved")


def test_spot_rate_follows_market_trace():
    from repro.infra.spot import SpotMarket
    market = SpotMarket(np.random.default_rng(7), horizon=86400.0)
    rate = spot_rate(market, credits_per_dollar=100.0)
    for t in (0.0, 3600.0, 40000.0):
        assert rate(t) == pytest.approx(100.0 * market.price_at(t))
    book = PriceBook(rates={"ec2": ProviderPricing(18.0, spot=rate)})
    assert book.rate("ec2", 0.0, tier="spot") == \
        pytest.approx(100.0 * market.price_at(0.0))


def test_parse_pricing_pairs_and_errors():
    assert parse_pricing("stratuslab=6,ec2=18.5") == \
        (("stratuslab", 6.0), ("ec2", 18.5))
    for bad in ("ec2", "ec2=abc", "ec2=-3", "ec2=0"):
        with pytest.raises(ValueError):
            parse_pricing(bad)


def test_provider_profile_carries_price():
    from repro.cloud.registry import get_driver
    sim = Simulation(horizon=10.0)
    driver = get_driver("ec2", sim)
    assert driver.price_per_cpu_hour == 15.0
    book = PriceBook.from_profiles([driver.profile])
    assert book.rate("ec2") == 15.0


# ---------------------------------------------------------------- billing
def _funded_system(provision=1000.0):
    credits = CreditSystem()
    credits.deposit("user", provision)
    return credits


def test_meter_charges_at_provider_rate():
    credits = _funded_system()
    credits.order("bot", "user", 100.0)
    meter = BillingMeter(credits, PriceBook.from_pairs((("ec2", 36.0),)))
    billed, asked = meter.charge("bot", "ec2", 3600.0)
    assert asked == 36.0 and billed == 36.0
    billed, asked = meter.charge("bot", "other", 3600.0)
    assert asked == CREDITS_PER_CPU_HOUR
    assert meter.spent_for("ec2") == 36.0
    assert meter.cpu_seconds_by_provider["ec2"] == 3600.0
    assert meter.total_spent() == credits.spent("bot")


def test_meter_clamps_at_escrow_like_credit_system():
    credits = _funded_system(provision=10.0)
    credits.order("bot", "user", 10.0)
    meter = BillingMeter(credits, PriceBook.from_pairs((("ec2", 36.0),)))
    billed, asked = meter.charge("bot", "ec2", 3600.0)
    assert asked == 36.0 and billed == 10.0
    assert not meter.has_credits("bot")
    assert meter.remaining_for("bot") == 0.0


def test_meter_affordable_cpu_hours():
    meter = BillingMeter(CreditSystem(),
                         PriceBook.from_pairs((("ec2", 30.0),)))
    assert meter.affordable_cpu_hours("ec2", 60.0) == 2.0
    assert meter.affordable_cpu_hours("ec2", 0.0) == 0.0


# ------------------------------------------------- hypothesis invariants
charge_lists = st.lists(
    st.tuples(st.integers(0, 3),                       # bot index
              st.sampled_from(PROVIDERS),              # provider
              st.floats(0.0, 20000.0)),                # busy seconds
    min_size=1, max_size=40)
rate_maps = st.fixed_dictionaries(
    {p: st.floats(0.5, 100.0) for p in PROVIDERS})


@settings(max_examples=60, deadline=None)
@given(rates=rate_maps, charges=charge_lists,
       provision=st.floats(10.0, 500.0))
def test_pooled_spend_never_exceeds_provision(rates, charges, provision):
    """Heterogeneous per-provider rates cannot overdraw a shared pool."""
    credits = _funded_system(provision)
    credits.open_pool("pool", "user", provision)
    bots = [f"bot{i}" for i in range(4)]
    for bot in bots:
        credits.join_pool(bot, "pool")
    meter = BillingMeter(credits, PriceBook(rates=rates))
    for i, provider, busy in charges:
        meter.charge(bots[i], provider, busy)
    pool = credits.get_pool("pool")
    assert pool.spent <= pool.provisioned + 1e-9
    assert pool.remaining >= 0.0


@settings(max_examples=60, deadline=None)
@given(rates=rate_maps, charges=charge_lists)
def test_billing_additive_across_providers(rates, charges):
    """Per-provider buckets sum exactly to the credit system's view."""
    credits = _funded_system(1e9)
    bots = [f"bot{i}" for i in range(4)]
    for bot in bots:
        credits.order(bot, "user", 1e8)
    meter = BillingMeter(credits, PriceBook(rates=rates))
    for i, provider, busy in charges:
        meter.charge(bots[i], provider, busy)
    total_orders = sum(credits.spent(bot) for bot in bots)
    assert math.isclose(meter.total_spent(), total_orders,
                        rel_tol=0.0, abs_tol=1e-6)
    ledger_total = sum(amount for op, _who, amount in credits.ledger
                       if op == "bill")
    assert math.isclose(meter.total_spent(), ledger_total,
                        rel_tol=0.0, abs_tol=1e-6)


@settings(max_examples=60, deadline=None)
@given(charges=charge_lists,
       rate=st.floats(0.5, 100.0),
       provision=st.floats(10.0, 10000.0))
def test_uniform_book_matches_fixed_rate_bit_identically(charges, rate,
                                                         provision):
    """A uniform book reproduces the inline-formula totals exactly —
    same floats, not just close ones (the drift-golden guarantee)."""
    # fund generously (provision/4 escrows x4 can out-round provision);
    # the comparison is about billing totals, not account arithmetic
    metered = _funded_system(10.0 * provision)
    inline = _funded_system(10.0 * provision)
    bots = [f"bot{i}" for i in range(4)]
    for bot in bots:
        metered.order(bot, "user", provision / 4.0)
        inline.order(bot, "user", provision / 4.0)
    meter = BillingMeter(metered, PriceBook.uniform(rate))
    for i, provider, busy in charges:
        meter.charge(bots[i], provider, busy)
        if busy > 0:  # the historical scheduler skipped <= 0 deltas
            inline.bill(bots[i], rate * busy / 3600.0)
    for bot in bots:
        assert metered.spent(bot) == inline.spent(bot)  # bit-identical


# --------------------------------------------------------------- deposits
def test_fund_pool_moves_credits_into_open_pool():
    credits = _funded_system(500.0)
    credits.open_pool("pool", "user", 100.0)
    remaining = credits.fund_pool("pool", "user", 50.0)
    pool = credits.get_pool("pool")
    assert pool.provisioned == 150.0 and remaining == 150.0
    assert credits.balance("user") == 350.0
    assert ("fund_pool", "pool", 50.0) in credits.ledger


def test_fund_pool_rejects_closed_pool_and_overdraft():
    credits = _funded_system(100.0)
    credits.open_pool("pool", "user", 100.0)
    with pytest.raises(Exception):
        credits.fund_pool("pool", "user", 1.0)  # balance now 0
    credits.close_pool("pool")
    with pytest.raises(KeyError):
        credits.fund_pool("pool", "user", 1.0)


def test_deposit_schedule_ticks_over_virtual_time():
    sim = Simulation(horizon=5 * 86400.0)
    credits = CreditSystem()
    credits.deposit("funder", 1000.0)
    credits.deposit("tenants", 100.0)
    credits.open_pool("pool", "tenants", 100.0)
    schedule = DepositSchedule(sim, credits, [
        PoolTopUp("pool", "funder", amount=50.0, period=86400.0,
                  max_total=120.0),
        AccountTopUp("tenants", cap=25.0, period=86400.0),
    ]).start()
    sim.run(until=3.5 * 86400.0)
    pool = credits.get_pool("pool")
    # three periods elapsed; max_total caps the third installment
    assert pool.provisioned == 100.0 + 50.0 + 50.0 + 20.0
    assert credits.balance("tenants") == 25.0
    assert len(schedule.applied) == 6
    assert schedule.total_applied() == 120.0 + 25.0


def test_allowance_ration_resets_member_caps():
    sim = Simulation(horizon=86400.0)
    credits = _funded_system(100.0)
    credits.open_pool("pool", "user", 100.0)
    order = credits.join_pool("bot", "pool")
    DepositSchedule(sim, credits,
                    [AllowanceRation("pool", per_member=10.0,
                                     period=3600.0)]).start()
    sim.run(until=3700.0)
    assert order.allowance == 10.0
    credits.bill("bot", 10.0)
    assert credits.remaining_for("bot") == 0.0   # rationed out
    sim.run(until=7300.0)
    assert order.allowance == 20.0               # spent + per_member
    assert credits.remaining_for("bot") == 10.0


def test_harness_schedule_deposits_verb():
    from repro.experiments.harness import ScenarioHarness
    harness = ScenarioHarness(horizon=2 * 86400.0)
    service = harness.service
    service.credits.deposit("funder", 300.0)
    service.credits.deposit("tenants", 10.0)
    service.open_qos_pool("pool", "tenants", 10.0)
    schedule = harness.schedule_deposits(
        [PoolTopUp("pool", "funder", amount=100.0, period=86400.0)])
    harness.run()
    assert service.credits.get_pool("pool").provisioned == 210.0
    assert schedule.total_applied() == 200.0


# ----------------------------------------------------- scheduler threading
def test_scheduler_meter_defaults_to_config_rate():
    from repro.core.info import InformationModule
    from repro.core.scheduler import SchedulerConfig, SpeQuloSScheduler
    sim = Simulation(horizon=10.0)
    credits = CreditSystem()
    sched = SpeQuloSScheduler(
        sim, InformationModule(), credits,
        SchedulerConfig(credits_per_cpu_hour=21.0))
    assert sched.meter.rate_for("anything") == 21.0
    assert sched.meter.credits is credits


def test_service_exposes_meter_and_pricebook():
    from repro.core.service import SpeQuloS
    sim = Simulation(horizon=10.0)
    book = PriceBook.from_pairs((("ec2", 30.0),))
    service = SpeQuloS(sim, pricebook=book)
    assert service.meter.rate_for("ec2") == 30.0
    assert service.meter.book is book


# ----------------------------------------------------- declarative config
def _dcis(**kw):
    from repro.experiments.config import DCISpec
    return (DCISpec(trace="nd", middleware="xwhep",
                    provider="stratuslab", **kw),
            DCISpec(trace="g5klyo", middleware="xwhep", provider="ec2"))


def test_scenario_config_pricing_validation_and_tuplify():
    from repro.experiments.config import ScenarioConfig
    cfg = ScenarioConfig(dcis=_dcis(), seed=1,
                         pricing=[["stratuslab", 6], ["ec2", 18.0]])
    assert cfg.pricing == (("stratuslab", 6.0), ("ec2", 18.0))
    assert cfg.price_map() == {"stratuslab": 6.0, "ec2": 18.0}
    assert "/priced/" in cfg.label()
    assert hash(cfg)  # stays hashable for the campaign store
    with pytest.raises(ValueError):
        ScenarioConfig(dcis=_dcis(), seed=1, pricing=(("nope", 6.0),))
    with pytest.raises(ValueError):
        ScenarioConfig(dcis=_dcis(), seed=1, pricing=(("ec2", 0.0),))


def test_dcispec_price_overrides_scenario_pricing():
    from repro.experiments.config import DCISpec, ScenarioConfig
    cfg = ScenarioConfig(dcis=_dcis(price=4.0), seed=1,
                         pricing=(("stratuslab", 6.0),))
    assert cfg.price_map()["stratuslab"] == 4.0
    with pytest.raises(ValueError):
        DCISpec(trace="nd", middleware="xwhep", price=0.0)
    # two DCIs quoting the same provider differently is a config error
    specs = (DCISpec(trace="nd", middleware="xwhep", price=4.0),
             DCISpec(trace="seti", middleware="boinc", price=5.0))
    with pytest.raises(ValueError):
        ScenarioConfig(dcis=specs, seed=1)


def test_with_pricing_pairs_scenarios():
    from repro.experiments.config import ScenarioConfig
    base = ScenarioConfig(dcis=_dcis(), seed=1)
    assert base.price_map() == {}
    assert "/priced" not in base.label()
    priced = base.with_pricing((("ec2", 30.0),))
    assert priced.pricing == (("ec2", 30.0),)
    assert priced.with_pricing(None).pricing is None


def test_federated_sweep_pricings_axis_expands():
    from repro.campaign.spec import FederatedSweepSpec
    sweep = FederatedSweepSpec(
        dci_traces=("nd",), dci_middlewares=("xwhep",),
        dci_providers=("ec2",), n_dcis=(1,),
        routings=("least_loaded", "cheapest_drain"),
        pricings=(None, [["ec2", 18.0]]), seeds=(0, 1))
    assert sweep.pricings == (None, (("ec2", 18.0),))
    cfgs = sweep.expand()
    assert len(cfgs) == sweep.n_configs() == 8
    books = {cfg.pricing for cfg in cfgs}
    assert books == {None, (("ec2", 18.0),)}
    assert hash(sweep)


def test_federated_sweep_dci_prices_template_cycles():
    from repro.campaign.spec import FederatedSweepSpec
    sweep = FederatedSweepSpec(
        dci_traces=("nd", "g5klyo"), dci_middlewares=("xwhep",),
        dci_providers=("stratuslab", "ec2"), dci_prices=(6.0, None),
        n_dcis=(2,), seeds=(0,))
    (cfg,) = sweep.expand()
    assert cfg.dcis[0].price == 6.0 and cfg.dcis[1].price is None
    assert cfg.price_map() == {"stratuslab": 6.0}
