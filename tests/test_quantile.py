"""Piecewise log-linear quantile sampler: exactness and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infra.quantile import PiecewiseLogQuantile


def test_quartiles_exact_by_construction():
    q = PiecewiseLogQuantile((10, 100, 1000))
    assert q.ppf(np.array([0.25]))[0] == pytest.approx(10, rel=1e-6)
    assert q.ppf(np.array([0.5]))[0] == pytest.approx(100, rel=1e-6)
    assert q.ppf(np.array([0.75]))[0] == pytest.approx(1000, rel=1e-6)


def test_ppf_monotone():
    q = PiecewiseLogQuantile((61, 531, 5407), tail_factor=40)
    u = np.linspace(0, 1, 501)
    v = q.ppf(u)
    assert np.all(np.diff(v) >= 0)


def test_tail_factor_controls_maximum():
    q = PiecewiseLogQuantile((10, 100, 1000), tail_factor=7)
    assert q.ppf(np.array([1.0]))[0] == pytest.approx(7000, rel=1e-6)


def test_floor_factor_controls_minimum():
    q = PiecewiseLogQuantile((10, 100, 1000), floor_factor=0.5)
    assert q.ppf(np.array([0.0]))[0] == pytest.approx(5.0, rel=1e-6)


def test_floor_clamped_to_one_second():
    q = PiecewiseLogQuantile((2, 4, 8), floor_factor=0.25)
    assert q.q_min == 1.0


def test_sample_statistics_match_quartiles():
    q = PiecewiseLogQuantile((21, 51, 63), tail_factor=600)
    rng = np.random.default_rng(1)
    s = q.sample(rng, 40000)
    got = np.percentile(s, [25, 50, 75])
    assert got[0] == pytest.approx(21, rel=0.08)
    assert got[1] == pytest.approx(51, rel=0.08)
    assert got[2] == pytest.approx(63, rel=0.08)


def test_sample_bounds():
    q = PiecewiseLogQuantile((10, 100, 1000), tail_factor=40)
    rng = np.random.default_rng(2)
    s = q.sample(rng, 10000)
    assert s.min() >= q.q_min - 1e-9
    assert s.max() <= q.q_max + 1e-9


def test_mean_between_min_and_max():
    q = PiecewiseLogQuantile((10, 100, 1000))
    assert q.q_min < q.mean() < q.q_max


def test_mean_increases_with_tail_factor():
    base = PiecewiseLogQuantile((10, 100, 1000), tail_factor=5).mean()
    heavy = PiecewiseLogQuantile((10, 100, 1000), tail_factor=500).mean()
    assert heavy > base


def test_invalid_quartiles_rejected():
    with pytest.raises(ValueError):
        PiecewiseLogQuantile((100, 10, 1000))
    with pytest.raises(ValueError):
        PiecewiseLogQuantile((0, 10, 100))
    with pytest.raises(ValueError):
        PiecewiseLogQuantile((10, 100, 1000), tail_factor=0.5)
    with pytest.raises(ValueError):
        PiecewiseLogQuantile((10, 100, 1000), floor_factor=0.0)


def test_ppf_rejects_out_of_range():
    q = PiecewiseLogQuantile((10, 100, 1000))
    with pytest.raises(ValueError):
        q.ppf(np.array([-0.1]))
    with pytest.raises(ValueError):
        q.ppf(np.array([1.1]))


def test_negative_sample_size_rejected():
    q = PiecewiseLogQuantile((10, 100, 1000))
    with pytest.raises(ValueError):
        q.sample(np.random.default_rng(0), -1)


def test_equal_quartiles_degenerate_ok():
    q = PiecewiseLogQuantile((5, 5, 5))
    s = q.sample(np.random.default_rng(3), 100)
    assert np.all(s > 0)


@settings(max_examples=30, deadline=None)
@given(q1=st.floats(1.0, 1e3), r2=st.floats(1.0, 50.0),
       r3=st.floats(1.0, 50.0),
       tail=st.floats(1.0, 1000.0))
def test_property_samples_positive_and_bounded(q1, r2, r3, tail):
    """Any valid quartile triple yields positive, bounded samples."""
    quartiles = (q1, q1 * r2, q1 * r2 * r3)
    q = PiecewiseLogQuantile(quartiles, tail_factor=tail)
    s = q.sample(np.random.default_rng(0), 256)
    assert np.all(s > 0)
    assert np.all(s <= q.q_max + 1e-6)


@settings(max_examples=30, deadline=None)
@given(u=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=64))
def test_property_ppf_monotone_in_u(u):
    q = PiecewiseLogQuantile((61, 531, 5407))
    u_sorted = np.sort(np.asarray(u))
    v = q.ppf(u_sorted)
    assert np.all(np.diff(v) >= -1e-12)
