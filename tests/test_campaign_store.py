"""Content-addressed store: digests, lossless round-trips, stats."""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.campaign.store import (
    ResultStore,
    comparable_payload,
    config_digest,
    decode_result,
    encode_result,
)
from repro.experiments.config import ExecutionConfig, MultiTenantConfig
from repro.experiments.runner import run_execution, run_multi_tenant


def quick_cfg(**kw):
    base = dict(trace="nd", middleware="xwhep", category="SMALL",
                seed=5, bot_size=40)
    base.update(kw)
    return ExecutionConfig(**base)


@pytest.fixture
def store():
    s = ResultStore(":memory:")
    yield s
    s.close()


# ----------------------------------------------------------------- digests
def test_digest_changes_when_any_config_field_changes():
    base = quick_cfg()
    variants = dict(trace="seti", middleware="boinc", category="BIG",
                    seed=6, strategy="9C-C-R", strategy_threshold=0.8,
                    credit_fraction=0.2, bot_size=41, max_nodes=10,
                    horizon_days=10.0, provider="amazon-ec2")
    assert set(variants) == {f.name for f in dataclasses.fields(base)}
    for field, value in variants.items():
        changed = dataclasses.replace(base, **{field: value})
        assert config_digest(changed) != config_digest(base), field


def test_digest_covers_type_salt_and_extra():
    cfg = quick_cfg()
    assert config_digest(cfg) == config_digest(cfg)
    assert config_digest(cfg, salt="other") != config_digest(cfg)
    assert config_digest(cfg, extra={"delay_bound": 60.0}) \
        != config_digest(cfg)
    # a dict key with the same fields is a different kind
    assert config_digest(dataclasses.asdict(cfg)) != config_digest(cfg)


def test_digest_rejects_unknown_keys():
    with pytest.raises(TypeError):
        config_digest(42)


def test_default_salt_embeds_code_fingerprint(monkeypatch):
    """Staleness protection is automatic: the salt hashes the
    simulation source, so editing it orphans old records without a
    manual CODE_VERSION bump."""
    import repro.campaign.store as store_mod
    monkeypatch.delenv("REPRO_CODE_SALT", raising=False)
    fp = store_mod.code_fingerprint()
    assert len(fp) == 16 and fp == store_mod.code_fingerprint()
    assert store_mod._code_salt() == f"{store_mod.CODE_VERSION}-{fp}"
    # explicit and env salts still win
    assert store_mod._code_salt("pinned") == "pinned"
    monkeypatch.setenv("REPRO_CODE_SALT", "forced")
    assert store_mod._code_salt() == "forced"


# ------------------------------------------------------------- round-trips
def assert_execution_results_equal(a, b):
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb, equal_nan=True), field.name
        else:
            assert va == vb, field.name


def test_execution_result_roundtrip_is_lossless(store):
    res = run_execution(quick_cfg(strategy="9C-C-R"))
    store.put(res.config, res)
    back = store.get(res.config)
    assert_execution_results_equal(res, back)
    # and the re-encoded payload is byte-identical (caching can never
    # change figure numbers)
    assert encode_result(back) == encode_result(res)


def test_multi_tenant_result_roundtrip_is_lossless(store):
    cfg = MultiTenantConfig(trace="nd", middleware="xwhep", seed=3,
                            n_tenants=2, bot_size=20,
                            categories=("SMALL",), policy="fairshare",
                            max_total_workers=4, deadline_factor=0.5)
    res = run_multi_tenant(cfg)
    store.put(cfg, res)
    back = store.get(cfg)
    assert back.config == cfg
    assert encode_result(back) == encode_result(res)
    assert len(back.tenants) == len(res.tenants)
    for ta, tb in zip(res.tenants, back.tenants):
        assert ta == tb
    assert np.array_equal(back.slowdowns, res.slowdowns)


def test_json_payload_roundtrip(store):
    key = {"experiment": "edgi", "seed": 5}
    store.put(key, {"XW@LAL": 100, "EC2": 3})
    assert store.get(key) == {"XW@LAL": 100, "EC2": 3}


def test_json_payload_preserves_key_order(store):
    """Warm and cold runs must render identically: table 5 iterates
    its summary dict, so the store may not re-sort payload keys."""
    key = {"experiment": "order"}
    summary = {"XW@LAL": 1, "XW@LRI": 2, "EGI": 3, "EC2": 4}
    store.put(key, summary)
    assert list(store.get(key)) == list(summary)


def test_nan_and_inf_survive_roundtrip():
    kind, payload = encode_result({"vals": [1.0, float("nan"),
                                            float("inf")]})
    back = decode_result(kind, payload)
    assert back["vals"][0] == 1.0
    assert np.isnan(back["vals"][1])
    assert back["vals"][2] == float("inf")


# ------------------------------------------------------------------- stats
def test_hit_miss_accounting(store):
    cfg = quick_cfg()
    assert store.get(cfg) is None
    res = run_execution(cfg)
    store.put(cfg, res)
    assert store.get(cfg) is not None
    assert (store.stats.hits, store.stats.misses, store.stats.puts) \
        == (1, 1, 1)
    assert store.stats.hit_rate == 0.5
    assert "1 hits, 1 misses" in store.stats.summary()


def test_contains_does_not_touch_counters(store):
    cfg = quick_cfg()
    assert not store.contains(cfg)
    store.put(cfg, run_execution(cfg))
    assert store.contains(cfg)
    assert store.stats.lookups == 0


# ------------------------------------------------- conflicts / invalidation
def test_identical_reput_is_silent_despite_wall_seconds(store):
    cfg = quick_cfg()
    res = run_execution(cfg)
    store.put(cfg, res)
    rerun = dataclasses.replace(res, wall_seconds=res.wall_seconds + 1.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        store.put(cfg, rerun, mode="parallel")
    assert store.stats.conflicts == 0
    assert len(store) == 1


def test_divergent_reput_warns_and_counts_conflict(store):
    cfg = quick_cfg()
    res = run_execution(cfg)
    store.put(cfg, res)
    bogus = dataclasses.replace(res, makespan=res.makespan + 1.0)
    with pytest.warns(RuntimeWarning, match="store conflict"):
        store.put(cfg, bogus)
    assert store.stats.conflicts == 1
    # divergence must be visible in the CI-grepped stats line
    assert "1 CONFLICTS" in store.stats.summary()
    # first record wins
    assert store.get(cfg).makespan == res.makespan


def test_comparable_payload_strips_timing_only():
    res = run_execution(quick_cfg())
    _, payload = encode_result(res)
    other = dataclasses.replace(res, wall_seconds=1e9)
    _, payload2 = encode_result(other)
    assert payload != payload2
    assert comparable_payload(payload) == comparable_payload(payload2)


def test_invalidate_single_and_all(store):
    a, b = quick_cfg(seed=1), quick_cfg(seed=2)
    store.put(a, run_execution(a))
    store.put(b, run_execution(b))
    assert len(store) == 2
    assert store.invalidate(a) == 1
    assert not store.contains(a) and store.contains(b)
    assert store.invalidate() == 1
    assert len(store) == 0


def test_salted_stores_do_not_share_entries(tmp_path):
    path = str(tmp_path / "store.sqlite")
    cfg = quick_cfg()
    res = run_execution(cfg)
    v1 = ResultStore(path, salt="v1")
    v1.put(cfg, res)
    assert v1.get(cfg) is not None
    v2 = ResultStore(path, salt="v2")
    assert v2.get(cfg) is None  # unreachable under the new salt
    v1.close()
    v2.close()


# ------------------------------------------------------------ gc + stats
def test_gc_drops_only_stale_salt_records(tmp_path):
    path = str(tmp_path / "store.sqlite")
    cfg = quick_cfg()
    res = run_execution(cfg)
    old = ResultStore(path, salt="v1")
    old.put(cfg, res)
    old.put(quick_cfg(seed=6), run_execution(quick_cfg(seed=6)))
    old.close()
    cur = ResultStore(path, salt="v2")
    cur.put(cfg, res)
    assert len(cur) == 3
    rows, nbytes = cur.gc()
    assert rows == 2 and nbytes > 0
    assert len(cur) == 1
    assert cur.get(cfg) is not None  # current record survives
    # idempotent: a second pass reclaims nothing
    assert cur.gc() == (0, 0)
    cur.close()


def test_gc_vacuum_shrinks_the_file(tmp_path):
    path = str(tmp_path / "store.sqlite")
    old = ResultStore(path, salt="v1")
    for seed in range(5, 9):
        cfg = quick_cfg(seed=seed)
        old.put(cfg, run_execution(cfg))
    old.close()
    cur = ResultStore(path, salt="v2")
    before = cur.file_bytes()
    rows, _ = cur.gc(vacuum=True)
    assert rows == 4
    assert cur.file_bytes() < before
    cur.close()


def test_breakdown_splits_current_and_stale(tmp_path):
    path = str(tmp_path / "store.sqlite")
    cfg = quick_cfg()
    res = run_execution(cfg)
    old = ResultStore(path, salt="v1")
    old.put(cfg, res)
    old.put({"k": 1}, {"v": 2})
    old.close()
    cur = ResultStore(path, salt="v2")
    cur.put(cfg, res)
    assert cur.breakdown() == {
        "execution": {"current": 1, "stale": 1},
        "json": {"current": 0, "stale": 1}}
    assert cur.file_bytes() > 0
    cur.close()


def test_in_memory_store_reports_zero_file_bytes(store):
    assert store.file_bytes() == 0
    assert store.gc() == (0, 0)


# ------------------------------------------------------------- persistence
def test_store_accepts_bare_relative_path(tmp_path, monkeypatch):
    """REPRO_STORE=results.sqlite (no directory part) must work."""
    monkeypatch.chdir(tmp_path)
    s = ResultStore("bare.sqlite")
    s.put({"k": 1}, {"v": 2})
    s.close()
    assert (tmp_path / "bare.sqlite").exists()


def test_store_persists_across_handles(tmp_path):
    path = str(tmp_path / "store.sqlite")
    cfg = quick_cfg()
    res = run_execution(cfg)
    first = ResultStore(path)
    first.put(cfg, res, mode="parallel")
    first.close()
    second = ResultStore(path)
    assert second.mode_of(cfg) == "parallel"
    assert_execution_results_equal(second.get(cfg), res)
    assert second.labels() == [cfg.label()]
    second.close()
