"""Fixed-seed drift tests against pre-refactor golden outputs.

The goldens under ``tests/data/`` were captured from the runner code
*before* the world assembly was extracted into
:class:`~repro.experiments.harness.ScenarioHarness` (PR 3).  Every
field is compared with exact equality — the harness refactor (and any
later change to assembly order or RNG stream labels) must keep
single-DCI ``run_execution``/``run_multi_tenant`` and the EDGI
deployment bit-identical.  If a change *intends* to alter simulation
semantics, recapture the goldens and say so in the commit.
"""

import json
import os

import pytest

from repro.deployment.edgi import EDGIConfig, EDGIDeployment, run_edgi
from repro.experiments.config import ExecutionConfig, MultiTenantConfig
from repro.experiments.runner import run_execution, run_multi_tenant

_DATA = os.path.join(os.path.dirname(__file__), "data")


def _load(name):
    with open(os.path.join(_DATA, name)) as fh:
        return json.load(fh)


_GOLDENS = _load("drift_goldens.json")
_EDGI = _load("edgi_goldens.json")


@pytest.mark.parametrize("golden", _GOLDENS["execution"],
                         ids=lambda g: "-".join(
                             str(g["config"][k]) for k in
                             ("trace", "middleware", "seed")))
def test_run_execution_matches_pre_harness_golden(golden):
    res = run_execution(ExecutionConfig(**golden["config"]))
    assert res.makespan == golden["makespan"]
    assert res.censored == golden["censored"]
    assert res.events == golden["events"]
    assert [float(x) for x in res.completion_times] == \
        golden["completion_times"]
    assert [float(x) for x in res.tc_grid] == golden["tc_grid"]
    assert res.credits_provisioned == golden["credits_provisioned"]
    assert res.credits_spent == golden["credits_spent"]
    assert res.workers_launched == golden["workers_launched"]
    assert res.cloud_cpu_hours == golden["cloud_cpu_hours"]
    assert res.server_stats == golden["server_stats"]


@pytest.mark.parametrize("golden", _GOLDENS["multi_tenant"],
                         ids=lambda g: "-".join(
                             str(g["config"][k]) for k in
                             ("trace", "policy", "seed")))
def test_run_multi_tenant_matches_pre_harness_golden(golden):
    res = run_multi_tenant(MultiTenantConfig(**golden["config"]))
    assert res.events == golden["events"]
    assert res.pool_provisioned == golden["pool_provisioned"]
    assert res.pool_spent == golden["pool_spent"]
    assert res.workers_peak == golden["workers_peak"]
    assert len(res.tenants) == len(golden["tenants"])
    for t, g in zip(res.tenants, golden["tenants"]):
        assert t.user == g["user"]
        assert t.arrival == g["arrival"]
        assert t.makespan == g["makespan"]
        assert t.censored == g["censored"]
        assert t.slowdown == g["slowdown"]
        assert t.credits_spent == g["credits_spent"]
        assert t.workers_launched == g["workers_launched"]


def test_edgi_small_run_matches_pre_harness_golden():
    summary = EDGIDeployment(seed=5, horizon_days=3.0).run(
        duration_days=1.5, n_bots=8, bot_size=120)
    assert summary == _EDGI["small"]


@pytest.mark.slow
def test_edgi_table5_matches_committed_results():
    """The acceptance pin: the default EDGIConfig regenerates exactly
    the Table 5 numbers committed under benchmarks/results/."""
    assert run_edgi(EDGIConfig()) == _EDGI["table5"]
