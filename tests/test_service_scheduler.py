"""SpeQuloS service + Scheduler: the full §3 control loop."""

import numpy as np
import pytest

from repro.cloud.registry import get_driver
from repro.core.credit import CREDITS_PER_CPU_HOUR
from repro.core.scheduler import SchedulerConfig
from repro.core.service import SpeQuloS
from repro.core.strategies import parse_combo
from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.xwhep import XWHepServer
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks, Task


def bot_of(n, nops=100_000.0, bot_id="b", wall_clock=None):
    return BagOfTasks(
        bot_id=bot_id, tasks=[Task(i, nops) for i in range(n)],
        wall_clock=wall_clock if wall_clock is not None else nops / 1000.0)


def make_stack(nodes, pool_seed=0, scheduler_config=None):
    sim = Simulation(horizon=1e7)
    pool = NodePool(nodes, rng=np.random.default_rng(pool_seed))
    srv = XWHepServer(sim, pool)
    speq = SpeQuloS(sim, scheduler_config=scheduler_config)
    driver = get_driver("simulation", sim, rng=np.random.default_rng(1))
    speq.connect_dci("dci", srv, driver)
    return sim, srv, speq, driver


def slow_nodes(n, power=10.0):
    """Stable but slow: tasks take nops/power seconds."""
    return [Node(i, power, np.array([0.0]), np.array([1e9]))
            for i in range(n)]


def run_to_completion(sim, srv, bot_id):
    done = {}
    class Obs:
        def on_bot_completed(self, bid, t):
            if bid == bot_id:
                done["t"] = t
                sim.stop()
    srv.add_observer(Obs())
    sim.run()
    return done.get("t")


def test_register_requires_known_dci():
    sim, srv, speq, _ = make_stack(slow_nodes(2))
    with pytest.raises(KeyError):
        speq.register_qos(bot_of(2), "nowhere")


def test_order_requires_registration():
    sim, srv, speq, _ = make_stack(slow_nodes(2))
    speq.credits.deposit("u", 100.0)
    with pytest.raises(KeyError):
        speq.order_qos("ghost", "u", 50.0)


def straggler_nodes(n_fast=9, fast_power=100.0, slow_power=10.0):
    """n_fast quick nodes plus one straggler: completions stagger, the
    90 % trigger fires early and the last task becomes the tail."""
    nodes = [Node(i, fast_power, np.array([0.0]), np.array([1e9]))
             for i in range(n_fast)]
    nodes.append(Node(n_fast, slow_power, np.array([0.0]),
                      np.array([1e9])))
    return nodes


def test_cloud_workers_start_after_trigger_and_speed_up():
    """9 tasks finish at 1000 s; the straggler would take 10_000 s but
    the 90 %-completion trigger duplicates it onto the cloud."""
    sim, srv, speq, driver = make_stack(straggler_nodes())
    bot = bot_of(10, nops=100_000.0, wall_clock=10_000.0)
    speq.register_qos(bot, "dci", parse_combo("9C-C-R"))
    provision = 0.10 * bot.workload_cpu_hours * CREDITS_PER_CPU_HOUR
    speq.credits.deposit("u", provision)
    speq.order_qos(bot.bot_id, "u", provision)
    srv.submit_bot(bot, at=0.0)
    t = run_to_completion(sim, srv, bot.bot_id)
    run = speq.run_for(bot.bot_id)
    assert run.started
    assert run.workers_launched >= 1
    assert speq.credits.spent(bot.bot_id) > 0
    assert t < 2500.0  # tail removed (baseline: 10_000 s)


def test_order_settled_and_refunded_on_completion():
    nodes = slow_nodes(10, power=10.0)
    sim, srv, speq, _ = make_stack(nodes)
    bot = bot_of(10, nops=100_000.0, wall_clock=10_000.0)
    speq.register_qos(bot, "dci")
    speq.credits.deposit("u", 1000.0)
    speq.order_qos(bot.bot_id, "u", 500.0)
    srv.submit_bot(bot, at=0.0)
    run_to_completion(sim, srv, bot.bot_id)
    order = speq.credits.get_order(bot.bot_id)
    assert order.closed
    assert speq.credits.balance("u") == pytest.approx(1000.0 - order.spent)
    run = speq.run_for(bot.bot_id)
    assert run.finished
    assert all(h.stopped for h in run.handles)


def test_no_credits_no_cloud():
    nodes = slow_nodes(5, power=10.0)
    sim, srv, speq, driver = make_stack(nodes)
    bot = bot_of(5, nops=100_000.0, wall_clock=10_000.0)
    speq.register_qos(bot, "dci")
    srv.submit_bot(bot, at=0.0)
    run_to_completion(sim, srv, bot.bot_id)
    assert speq.run_for(bot.bot_id).workers_launched == 0
    assert driver.total_cpu_hours() == 0.0


def test_billing_is_busy_time_at_fixed_rate():
    nodes = slow_nodes(10, power=10.0)
    sim, srv, speq, _ = make_stack(nodes)
    bot = bot_of(10, nops=100_000.0, wall_clock=10_000.0)
    speq.register_qos(bot, "dci", parse_combo("9C-C-R"))
    speq.credits.deposit("u", 10_000.0)
    speq.order_qos(bot.bot_id, "u", 10_000.0)
    srv.submit_bot(bot, at=0.0)
    run_to_completion(sim, srv, bot.bot_id)
    run = speq.run_for(bot.bot_id)
    busy = sum(srv.cloud_busy_seconds(h.node) for h in run.handles)
    expected = busy / 3600.0 * CREDITS_PER_CPU_HOUR
    assert speq.credits.spent(bot.bot_id) == pytest.approx(expected,
                                                           rel=0.01)


def test_credit_exhaustion_stops_workers():
    cfg = SchedulerConfig(tick_period=60.0)
    sim, srv, speq, driver = make_stack(straggler_nodes(),
                                        scheduler_config=cfg)
    bot = bot_of(10, nops=100_000.0, wall_clock=10_000.0)
    speq.register_qos(bot, "dci", parse_combo("9A-G-R"))
    # a tiny order: enough to trigger but not to finish the tail
    speq.credits.deposit("u", 0.5)
    speq.order_qos(bot.bot_id, "u", 0.5)
    srv.submit_bot(bot, at=0.0)
    run_to_completion(sim, srv, bot.bot_id)
    run = speq.run_for(bot.bot_id)
    assert run.stop_reason in ("credits exhausted", "bot completed")
    assert speq.credits.spent(bot.bot_id) <= 0.5 + 1e-6


def test_greedy_releases_never_assigned_workers():
    """Greedy launches S workers; those that get no unit stop after a
    tick instead of lingering."""
    cfg = SchedulerConfig(tick_period=60.0, greedy_release_grace=60.0)
    sim, srv, speq, driver = make_stack(straggler_nodes(),
                                        scheduler_config=cfg)
    # huge wall_clock -> large S; only one task remains to duplicate
    bot = bot_of(10, nops=100_000.0, wall_clock=360_000.0)
    speq.register_qos(bot, "dci", parse_combo("9C-G-D"))
    provision = 0.10 * bot.workload_cpu_hours * CREDITS_PER_CPU_HOUR
    speq.credits.deposit("u", provision)
    speq.order_qos(bot.bot_id, "u", provision)
    srv.submit_bot(bot, at=0.0)
    run_to_completion(sim, srv, bot.bot_id)
    run = speq.run_for(bot.bot_id)
    assert run.workers_launched > 4  # greedy over-provisioned
    # but the extra ones were stopped without ever computing
    idle_stopped = [h for h in run.handles
                    if h.stopped and not h.ever_assigned]
    assert idle_stopped


def test_flat_deployment_joins_pool():
    sim, srv, speq, _ = make_stack(straggler_nodes())
    bot = bot_of(10, nops=100_000.0, wall_clock=10_000.0)
    speq.register_qos(bot, "dci", parse_combo("9A-C-F"))
    provision = 0.10 * bot.workload_cpu_hours * CREDITS_PER_CPU_HOUR
    speq.credits.deposit("u", provision)
    speq.order_qos(bot.bot_id, "u", provision)
    srv.submit_bot(bot, at=0.0)
    t = run_to_completion(sim, srv, bot.bot_id)
    assert speq.run_for(bot.bot_id).started
    assert t <= 10_000.0 + 1.0


def test_cloud_duplication_deployment():
    sim, srv, speq, _ = make_stack(straggler_nodes())
    bot = bot_of(10, nops=100_000.0, wall_clock=10_000.0)
    speq.register_qos(bot, "dci", parse_combo("9C-C-D"))
    provision = 0.10 * bot.workload_cpu_hours * CREDITS_PER_CPU_HOUR
    speq.credits.deposit("u", provision)
    speq.order_qos(bot.bot_id, "u", provision)
    srv.submit_bot(bot, at=0.0)
    t = run_to_completion(sim, srv, bot.bot_id)
    run = speq.run_for(bot.bot_id)
    assert run.coordinator is not None
    assert run.coordinator.completions >= 1
    assert t < 2500.0  # straggler executed on the cloud side


def test_prediction_flow_through_service():
    nodes = slow_nodes(10, power=10.0)
    sim, srv, speq, _ = make_stack(nodes)
    bot = bot_of(10, nops=100_000.0, wall_clock=10_000.0)
    speq.register_qos(bot, "dci")
    srv.submit_bot(bot, at=0.0)
    preds = {}
    def ask():
        preds["p"] = speq.get_prediction(bot.bot_id)
    sim.at(5000.0, ask)  # nothing finished yet (all complete at 10000)
    run_to_completion(sim, srv, bot.bot_id)
    assert preds["p"] is None  # no completions at 50% of wall time
    # after completion the execution is archived for future alpha fits
    env = speq.env_key("dci", bot.category)
    assert len(speq.info.history(env)) == 1


def test_history_archived_enables_prediction_next_time():
    sim, srv, speq, _ = make_stack(straggler_nodes())
    first = bot_of(10, nops=100_000.0, bot_id="b1", wall_clock=10_000.0)
    speq.register_qos(first, "dci")
    srv.submit_bot(first, at=0.0)
    run_to_completion(sim, srv, "b1")

    second = bot_of(10, nops=100_000.0, bot_id="b2", wall_clock=10_000.0)
    t0 = sim.now
    speq.register_qos(second, "dci")
    srv.submit_bot(second, at=t0)
    preds = {}

    def ask():
        preds["p"] = speq.get_prediction("b2")
    # 9 fast tasks complete 1000 s in; ask mid-flight (90 % done)
    sim.at(t0 + 1500.0, ask)
    sim.run(until=t0 + 2000.0)
    assert preds["p"] is not None
    assert preds["p"].history_size == 1
    assert preds["p"].at_fraction == pytest.approx(0.9)


def test_duplicate_dci_rejected():
    sim, srv, speq, driver = make_stack(slow_nodes(2))
    with pytest.raises(ValueError):
        speq.connect_dci("dci", srv, driver)


def test_scheduler_config_validation():
    with pytest.raises(ValueError):
        SchedulerConfig(tick_period=0.0)
    with pytest.raises(ValueError):
        SchedulerConfig(idle_grace=-1.0)
    with pytest.raises(ValueError):
        SchedulerConfig(max_workers=0)


def test_max_workers_cap():
    cfg = SchedulerConfig(max_workers=2)
    sim, srv, speq, _ = make_stack(straggler_nodes(),
                                   scheduler_config=cfg)
    bot = bot_of(10, nops=100_000.0, wall_clock=100_000.0)
    speq.register_qos(bot, "dci", parse_combo("9C-G-R"))
    speq.credits.deposit("u", 1e6)
    speq.order_qos(bot.bot_id, "u", 1e6)
    srv.submit_bot(bot, at=0.0)
    run_to_completion(sim, srv, bot.bot_id)
    assert speq.run_for(bot.bot_id).workers_launched <= 2
