"""Credit System: accounts, orders, billing, deposit policies."""

import pytest

from repro.core.credit import (
    CREDITS_PER_CPU_HOUR,
    CappedDailyDeposit,
    CreditSystem,
    InsufficientCredits,
    NetworkOfFavors,
)


def funded(user="alice", amount=1000.0):
    cs = CreditSystem()
    cs.deposit(user, amount)
    return cs


def test_exchange_rate_is_paper_value():
    assert CREDITS_PER_CPU_HOUR == 15.0


def test_deposit_and_balance():
    cs = CreditSystem()
    assert cs.balance("alice") == 0.0
    cs.deposit("alice", 100.0)
    assert cs.balance("alice") == 100.0
    cs.deposit("alice", 50.0)
    assert cs.balance("alice") == 150.0


def test_negative_deposit_rejected():
    cs = CreditSystem()
    with pytest.raises(ValueError):
        cs.deposit("alice", -1.0)


def test_order_escrows_from_account():
    cs = funded()
    order = cs.order("bot1", "alice", 400.0)
    assert cs.balance("alice") == 600.0
    assert order.provisioned == 400.0
    assert order.remaining == 400.0
    assert cs.has_credits("bot1")


def test_order_insufficient_funds():
    cs = funded(amount=10.0)
    with pytest.raises(InsufficientCredits):
        cs.order("bot1", "alice", 100.0)


def test_double_order_rejected():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    with pytest.raises(ValueError):
        cs.order("bot1", "alice", 100.0)


def test_order_amount_validation():
    cs = funded()
    with pytest.raises(ValueError):
        cs.order("bot1", "alice", 0.0)


def test_bill_consumes_order():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    assert cs.bill("bot1", 30.0) == 30.0
    assert cs.spent("bot1") == 30.0
    assert cs.get_order("bot1").remaining == 70.0


def test_bill_clamps_at_remaining():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    assert cs.bill("bot1", 80.0) == 80.0
    assert cs.bill("bot1", 80.0) == 20.0  # only 20 left
    assert not cs.has_credits("bot1")


def test_bill_without_order_is_zero():
    cs = CreditSystem()
    assert cs.bill("ghost", 10.0) == 0.0


def test_bill_negative_rejected():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    with pytest.raises(ValueError):
        cs.bill("bot1", -5.0)


def test_close_refunds_remaining():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    cs.bill("bot1", 25.0)
    spent, refund = cs.close("bot1")
    assert spent == 25.0
    assert refund == 75.0
    assert cs.balance("alice") == 975.0
    assert not cs.has_credits("bot1")


def test_close_idempotent():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    cs.close("bot1")
    spent, refund = cs.close("bot1")
    assert refund == 0.0


def test_close_unknown_order():
    cs = CreditSystem()
    with pytest.raises(KeyError):
        cs.close("ghost")


def test_billing_after_close_is_noop():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    cs.close("bot1")
    assert cs.bill("bot1", 10.0) == 0.0


def test_new_order_allowed_after_close():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    cs.close("bot1")
    cs.order("bot1", "alice", 50.0)
    assert cs.has_credits("bot1")


def test_ledger_records_operations():
    cs = funded()
    cs.order("bot1", "alice", 100.0)
    cs.bill("bot1", 10.0)
    cs.close("bot1")
    ops = [op for op, _, _ in cs.ledger]
    assert ops == ["deposit", "order", "bill", "close"]


# ----------------------------------------------------------------- deposit
def test_capped_daily_deposit_tops_up():
    cs = CreditSystem()
    policy = CappedDailyDeposit(cap=6000.0)
    assert policy.apply(cs, "alice") == 6000.0
    assert cs.balance("alice") == 6000.0
    cs.order("b", "alice", 2000.0)
    assert policy.apply(cs, "alice") == 2000.0
    assert cs.balance("alice") == 6000.0


def test_capped_deposit_never_overfills():
    cs = CreditSystem()
    cs.deposit("alice", 9000.0)
    policy = CappedDailyDeposit(cap=6000.0)
    assert policy.apply(cs, "alice") == 0.0
    assert cs.balance("alice") == 9000.0


# --------------------------------------------------------------- favors
def test_network_of_favors_balance():
    nof = NetworkOfFavors()
    nof.record_favor("lal", "lri", 100.0)
    nof.record_favor("lri", "lal", 30.0)
    assert nof.balance("lal", "lri") == pytest.approx(70.0)
    assert nof.balance("lri", "lal") == pytest.approx(-70.0)


def test_network_of_favors_allowance():
    nof = NetworkOfFavors()
    nof.record_favor("lal", "lri", 100.0)   # lal earned 100
    nof.record_favor("sztaki", "lal", 40.0)  # lal owes 40
    assert nof.deposit_allowance("lal", base=50.0) == pytest.approx(110.0)
    assert nof.deposit_allowance("lri", base=50.0) == pytest.approx(0.0)


def test_network_of_favors_validation():
    nof = NetworkOfFavors()
    with pytest.raises(ValueError):
        nof.record_favor("a", "b", -1.0)
