"""Strategy combinations: parsing, triggers, sizing (§3.5)."""

import numpy as np
import pytest

from repro.core.info import BoTMonitor
from repro.core.strategies import (
    ALL_COMBOS,
    DEPLOY_CLOUD_DUP,
    SIZE_CONSERVATIVE,
    SIZE_GREEDY,
    WHEN_ASSIGNMENT,
    WHEN_COMPLETION,
    WHEN_VARIANCE,
    StrategyCombo,
    parse_combo,
)
from repro.workload.bot import BagOfTasks, Task


def monitor(n=100, completions=(), assignments=None):
    bot = BagOfTasks(bot_id="b", tasks=[Task(i, 1000.0) for i in range(n)],
                     wall_clock=1.0)
    mon = BoTMonitor(bot, t0=0.0)
    assignments = assignments if assignments is not None else completions
    for i, t in enumerate(assignments):
        mon.on_task_first_assigned(("b", i), t)
    for i, t in enumerate(completions):
        mon.on_task_completed(("b", i), t)
    return mon


# ----------------------------------------------------------------- parsing
def test_parse_names_roundtrip():
    for combo in ALL_COMBOS:
        assert parse_combo(combo.name).name == combo.name


def test_all_combos_is_full_grid():
    assert len(ALL_COMBOS) == 18
    assert len({c.name for c in ALL_COMBOS}) == 18


def test_parse_case_insensitive():
    c = parse_combo("9a-g-d")
    assert c.when == WHEN_ASSIGNMENT
    assert c.size == SIZE_GREEDY
    assert c.deploy == DEPLOY_CLOUD_DUP


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_combo("9C-C")
    with pytest.raises(ValueError):
        parse_combo("XX-C-R")


def test_default_combo_is_papers_choice():
    c = StrategyCombo()
    assert c.name == "9C-C-R"
    assert c.threshold == 0.9


def test_combo_validation():
    with pytest.raises(ValueError):
        StrategyCombo(threshold=1.0)
    with pytest.raises(ValueError):
        StrategyCombo(variance_factor=1.0)


# ---------------------------------------------------------------- triggers
def test_completion_threshold_fires_at_90pct():
    combo = StrategyCombo(when=WHEN_COMPLETION)
    mon = monitor(100, completions=[float(i) for i in range(89)])
    assert not combo.should_start(mon)
    mon.on_task_completed(("b", 89), 89.0)
    assert combo.should_start(mon)


def test_assignment_threshold_fires_on_assignments():
    combo = StrategyCombo(when=WHEN_ASSIGNMENT)
    mon = monitor(100, completions=[],
                  assignments=[float(i) for i in range(90)])
    assert combo.should_start(mon)
    assert not StrategyCombo(when=WHEN_COMPLETION).should_start(mon)


def test_custom_threshold():
    combo = StrategyCombo(when=WHEN_COMPLETION, threshold=0.5)
    mon = monitor(100, completions=[float(i) for i in range(50)])
    assert combo.should_start(mon)


def test_variance_needs_half_completion():
    combo = StrategyCombo(when=WHEN_VARIANCE)
    mon = monitor(10, completions=[1.0, 2.0],
                  assignments=[0.5, 0.6])
    assert not combo.should_start(mon)


def test_variance_fires_when_lag_doubles():
    """First half: var(x) ~ 1 s; later completions lag 10 s behind
    their assignments -> trigger."""
    combo = StrategyCombo(when=WHEN_VARIANCE)
    n = 10
    assignments = [float(i) for i in range(n)]
    completions = [a + 1.0 for a in assignments[:5]] + \
                  [a + 10.0 for a in assignments[5:8]]
    mon = monitor(n, completions=completions, assignments=assignments)
    assert combo.should_start(mon)


def test_variance_quiet_execution_never_fires():
    combo = StrategyCombo(when=WHEN_VARIANCE)
    n = 10
    assignments = [float(i) for i in range(n)]
    completions = [a + 1.0 for a in assignments[:8]]
    mon = monitor(n, completions=completions, assignments=assignments)
    assert not combo.should_start(mon)


# ------------------------------------------------------------------ sizing
def test_greedy_starts_s_workers():
    combo = StrategyCombo(size=SIZE_GREEDY)
    mon = monitor(100, completions=[float(i) for i in range(90)])
    assert combo.workers_to_start(mon, cpu_hours=25.0, now=100.0) == 25


def test_greedy_minimum_one():
    combo = StrategyCombo(size=SIZE_GREEDY)
    mon = monitor(100, completions=[1.0])
    assert combo.workers_to_start(mon, cpu_hours=0.4, now=1.0) == 1


def test_conservative_caps_by_remaining_time():
    """90% done at t=3600 -> tr = 400 s (~0.111 h); S=25 cpu.h; budget
    allows 25/0.111 = 225 workers, capped at S=25."""
    combo = StrategyCombo(size=SIZE_CONSERVATIVE)
    mon = monitor(100, completions=list(np.linspace(40, 3600, 90)))
    n = combo.workers_to_start(mon, cpu_hours=25.0, now=3600.0)
    assert n == 25


def test_conservative_fewer_when_remaining_is_long():
    """50% done at t=7200 -> tr = 2 h; S=10 -> only 5 workers."""
    combo = StrategyCombo(size=SIZE_CONSERVATIVE)
    mon = monitor(100, completions=list(np.linspace(144, 7200, 50)))
    n = combo.workers_to_start(mon, cpu_hours=10.0, now=7200.0)
    assert n == 5


def test_conservative_literal_max_variant():
    combo = StrategyCombo(size=SIZE_CONSERVATIVE,
                          conservative_literal_max=True)
    mon = monitor(100, completions=list(np.linspace(144, 7200, 50)))
    n = combo.workers_to_start(mon, cpu_hours=10.0, now=7200.0)
    assert n == 10  # max(S/tr=5, S=10)


def test_conservative_without_progress_falls_back_to_greedy():
    combo = StrategyCombo(size=SIZE_CONSERVATIVE)
    mon = monitor(100)
    assert combo.workers_to_start(mon, cpu_hours=12.0, now=0.0) == 12


def test_with_threshold_returns_new_combo():
    c = StrategyCombo()
    c2 = c.with_threshold(0.8)
    assert c.threshold == 0.9 and c2.threshold == 0.8
    assert c2.name == c.name
