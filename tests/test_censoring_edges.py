"""Censoring edge paths: tenants past the horizon, empty-heap runs."""

import numpy as np
import pytest

from repro.experiments.config import (
    DCISpec,
    MultiTenantConfig,
    ScenarioConfig,
)
from repro.experiments.runner import run_federated, run_multi_tenant
from repro.simulator.engine import Simulation


# -------------------------------------------------- never-admitted tenants
def _two_tenant_cfg(**kw):
    base = dict(trace="nd", middleware="xwhep", seed=2, n_tenants=2,
                bot_size=20, strategy="9C-C-R", pool_fraction=0.10,
                horizon_days=0.5)
    base.update(kw)
    return MultiTenantConfig(**base)


def test_tenant_arriving_at_horizon_is_fully_censored():
    horizon = 0.5 * 86400.0
    cfg = _two_tenant_cfg(arrivals=(0.0, horizon))
    res = run_multi_tenant(cfg)
    admitted, skipped = res.tenants
    assert not admitted.censored and admitted.makespan > 0
    assert skipped.censored
    # arrival == horizon: zero service time, scored as an all-zero
    # profile with the neutral slowdown
    assert skipped.makespan == 0.0
    assert skipped.slowdown == 1.0
    assert skipped.credits_spent == 0.0
    assert skipped.workers_launched == 0
    assert res.censored_count == 1


def test_tenant_arriving_after_horizon_is_fully_censored():
    horizon = 0.5 * 86400.0
    res = run_multi_tenant(_two_tenant_cfg(arrivals=(0.0, horizon + 3600)))
    skipped = res.tenants[1]
    assert skipped.censored
    assert skipped.makespan == 0.0  # negative span clamps to zero


def test_unadmitted_tenant_still_counts_into_fairness_vector():
    horizon = 0.5 * 86400.0
    res = run_multi_tenant(_two_tenant_cfg(arrivals=(0.0, horizon)))
    assert res.slowdowns.shape == (2,)
    assert np.isfinite(res.fairness)


def test_federated_unadmitted_tenant_has_no_dci():
    horizon = 0.5 * 86400.0
    cfg = ScenarioConfig(
        dcis=(DCISpec(trace="nd", middleware="xwhep"),
              DCISpec(trace="g5klyo", middleware="xwhep")),
        seed=2, n_tenants=2, bot_size=20, horizon_days=0.5,
        arrivals=(0.0, horizon + 1.0))
    res = run_federated(cfg)
    admitted, skipped = res.tenants
    assert admitted.dci in cfg.dci_names()
    assert skipped.censored and skipped.dci == "-"
    # the router never saw the skipped tenant
    assert sum(d.tenants_assigned for d in res.dcis) == 1


# ------------------------------------------------------- empty-heap run()
def test_run_until_with_empty_heap_advances_to_bound():
    """Regression: a bounded run over a drained heap used to leave the
    clock stale, so a phased caller (tick loop) saw time stand still."""
    sim = Simulation(horizon=1000.0)
    assert sim.run(until=500.0) == 500.0
    assert sim.now == 500.0
    assert sim.events_processed == 0


def test_run_until_after_heap_drains_advances_to_bound():
    sim = Simulation(horizon=1000.0)
    sim.at(5.0, lambda: None)
    # the heap drains at t=5; the *bounded* run still reaches its bound
    assert sim.run(until=500.0) == 500.0
    # and phased calls keep advancing even with nothing queued
    assert sim.run(until=800.0) == 800.0
    assert sim.pending() == 0


def test_unbounded_run_rests_at_last_event_time():
    sim = Simulation(horizon=1000.0)
    sim.at(5.0, lambda: None)
    # no explicit bound: the clock rests where the last event left it
    # so completion timestamps stay exact
    assert sim.run() == 5.0
    assert sim.now == 5.0


def test_run_with_only_cancelled_events_processes_nothing():
    sim = Simulation(horizon=1000.0)
    ev = sim.at(5.0, lambda: pytest.fail("cancelled event ran"))
    ev.cancel()
    sim.run(until=100.0)
    assert sim.events_processed == 0
