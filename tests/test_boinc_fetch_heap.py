"""Property pins for the BOINC cloud-fetch candidate heap (PR 9).

``BoincServer.fetch_for_cloud`` used to argmin-scan every incomplete
workunit per fetch; it now pops a lazily-invalidated heap keyed
``(cloud_dups, first_assign_time|inf, gtid)``.  The heap pick is exact
iff every key mutation of an incomplete workunit pushes a fresh entry
— the sites are ``_enqueue_new`` (new candidate), ``_execute`` (first
assignment), ``_execute_cloud`` (duplicate started) and ``_finish``
(duplicate returned).  The hypothesis driver below replays random
interleavings of exactly those transitions — including completions,
retired entries and per-node ineligibility — and checks the heap pick
(:meth:`_fetch_candidate_pick`) against the naive scan
(:meth:`_fetch_candidate_scan`, the historical loop kept as the
reference) after every step.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infra.pool import NodePool
from repro.middleware.base import TaskState
from repro.middleware.boinc import BoincServer
from repro.simulator.engine import Simulation


def _server():
    sim = Simulation(horizon=1e9)
    return BoincServer(sim, NodePool((),))


def _node(nid):
    return SimpleNamespace(node_id=nid)


# Model of the real mutation sites: each helper applies the same state
# change the production code path does, followed by the same
# _note_fetch_candidate push.
def _new_wu(server, idx):
    st_ = TaskState(gtid=("b", idx), task=None)
    server.tasks[st_.gtid] = st_
    server._incomplete.add(st_)
    server._note_fetch_candidate(st_)          # _enqueue_new
    return st_


def _assign(server, wu, nid, t):
    fresh_fat = wu.first_assign_time is None
    wu.workers.add(nid)
    if fresh_fat:
        wu.first_assign_time = t
        server._note_fetch_candidate(wu)       # _execute / _mark_assigned


def _cloud_start(server, wu, nid, t):
    fresh_fat = wu.first_assign_time is None
    wu.workers.add(nid)
    if fresh_fat:
        wu.first_assign_time = t
    wu.cloud_dups += 1
    server._note_fetch_candidate(wu)           # _execute_cloud


def _cloud_finish(server, wu):
    if wu.cloud_dups <= 0:
        return
    wu.cloud_dups -= 1
    if not wu.done:
        server._note_fetch_candidate(wu)       # _finish (dup returned)


def _complete(server, wu):
    wu.done = True
    server._incomplete.discard(wu)             # entries retire lazily


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_heap_pick_matches_naive_scan_under_random_interleavings(data):
    server = _server()
    wus = []
    node_ids = [0, 1, 2, 3]
    n_steps = data.draw(st.integers(5, 40), label="steps")
    for step in range(n_steps):
        t = float(step)
        op = data.draw(st.sampled_from(
            ["new", "assign", "cloud_start", "cloud_finish",
             "complete", "pick", "pick", "pick"]), label=f"op{step}")
        live = [w for w in wus if not w.done]
        if op == "new" or not live:
            wus.append(_new_wu(server, len(wus)))
        elif op == "assign":
            _assign(server, data.draw(st.sampled_from(live)),
                    data.draw(st.sampled_from(node_ids)), t)
        elif op == "cloud_start":
            _cloud_start(server, data.draw(st.sampled_from(live)),
                         data.draw(st.sampled_from(node_ids)), t)
        elif op == "cloud_finish":
            _cloud_finish(server, data.draw(st.sampled_from(live)))
        elif op == "complete":
            _complete(server, data.draw(st.sampled_from(live)))
        else:
            node = _node(data.draw(st.sampled_from(node_ids)))
            expected = server._fetch_candidate_scan(node)
            got = server._fetch_candidate_pick(node)
            assert got is expected
    # a final pick per node: the heap must still agree after the dust
    # settles (stale entries dropped, stashed ones restored intact)
    for nid in node_ids:
        node = _node(nid)
        assert server._fetch_candidate_pick(node) \
            is server._fetch_candidate_scan(node)


def test_pick_on_empty_heap_returns_none():
    server = _server()
    assert server._fetch_candidate_pick(_node(0)) is None


def test_pick_prefers_fewest_cloud_dups_then_oldest_assignment():
    server = _server()
    a = _new_wu(server, 0)
    b = _new_wu(server, 1)
    c = _new_wu(server, 2)
    _assign(server, a, 7, t=5.0)
    _assign(server, b, 7, t=1.0)
    _cloud_start(server, c, 8, t=0.0)  # c has a duplicate already
    # b assigned earliest among the 0-dup candidates
    assert server._fetch_candidate_pick(_node(9)) is b
    # ineligible for node 7 (one-result-per-user): falls to never-
    # assigned?  No — a is also node 7's; c is eligible despite dups
    _assign(server, a, 9, t=6.0)
    _assign(server, b, 9, t=6.0)
    assert server._fetch_candidate_pick(_node(9)) is c


def test_stale_entries_are_dropped_not_resurrected():
    server = _server()
    a = _new_wu(server, 0)
    _cloud_start(server, a, 1, t=0.0)
    _cloud_start(server, a, 2, t=0.0)
    _cloud_finish(server, a)
    heap_before = len(server._fetch_heap)
    pick = server._fetch_candidate_pick(_node(5))
    assert pick is a
    # the stale (older-key) entries surfaced and were discarded
    assert len(server._fetch_heap) < heap_before


def test_compaction_bounds_heap_growth():
    server = _server()
    a = _new_wu(server, 0)
    for _ in range(300):  # churn one candidate's key repeatedly
        _cloud_start(server, a, 1, t=0.0)
        _cloud_finish(server, a)
    assert len(server._fetch_heap) > 64
    assert server._fetch_candidate_pick(_node(5)) is a
    # the pick triggered a rebuild: far fewer entries than pushes
    assert len(server._fetch_heap) <= 4 * max(1, len(server._incomplete)) + 1
