"""Edge-case regressions for the Oracle's α fit and success criterion.

``fit_alpha`` is a weighted-median solver; its contract at the edges
(no usable history, non-finite or non-positive entries, single sample,
ties at the 50 % weight boundary) and ``prediction_success`` exactly
at the ±20 % tolerance boundaries are pinned here.
"""

import math
import random

import numpy as np
import pytest

from repro.core.oracle import SUCCESS_TOLERANCE, fit_alpha, prediction_success


# ------------------------------------------------------------- fit_alpha
def test_fit_alpha_empty_history_returns_one():
    assert fit_alpha([], []) == 1.0


def test_fit_alpha_all_entries_unusable_returns_one():
    p = [0.0, -1.0, float("nan"), float("inf")]
    a = [10.0, 10.0, 10.0, 10.0]
    assert fit_alpha(p, a) == 1.0


def test_fit_alpha_filters_bad_entries_pairwise():
    # the one clean pair (p=2, a=6) should decide alpha alone
    p = [2.0, float("nan"), 5.0, 0.0, float("inf")]
    a = [6.0, 1.0, float("nan"), 1.0, 1.0]
    assert fit_alpha(p, a) == pytest.approx(3.0)


def test_fit_alpha_rejects_nonpositive_actuals():
    p = [1.0, 1.0, 4.0]
    a = [0.0, -2.0, 8.0]
    assert fit_alpha(p, a) == pytest.approx(2.0)


def test_fit_alpha_single_sample_is_exact_ratio():
    assert fit_alpha([4.0], [10.0]) == pytest.approx(2.5)


def test_fit_alpha_identical_ratios_any_weights():
    p = [1.0, 10.0, 100.0]
    a = [1.5, 15.0, 150.0]
    assert fit_alpha(p, a) == pytest.approx(1.5)


def test_fit_alpha_tie_at_half_weight_boundary():
    # two equal-weight samples, ratios 2 and 4: every alpha in [2, 4]
    # minimizes |a - 2| + |a - 4|; the solver picks the boundary where
    # cumulative weight first reaches exactly half the total
    assert fit_alpha([1.0, 1.0], [2.0, 4.0]) == pytest.approx(2.0)


def test_fit_alpha_weighted_median_prefers_heavy_sample():
    # ratio 1 carries weight 3, ratio 2 carries weight 1: the optimum
    # of |a*1 - 2| + |a*3 - 3| sits at the heavy sample's ratio
    assert fit_alpha([1.0, 3.0], [2.0, 3.0]) == pytest.approx(1.0)


@pytest.mark.parametrize("seed", range(6))
def test_fit_alpha_minimizes_least_absolute_error(seed):
    rng = random.Random(seed)
    p = [rng.uniform(0.5, 20.0) for _ in range(rng.randrange(1, 12))]
    a = [rng.uniform(0.5, 20.0) for _ in range(len(p))]
    alpha = fit_alpha(p, a)

    def loss(x):
        return sum(abs(x * pi - ai) for pi, ai in zip(p, a))

    # the optimum of a piecewise-linear convex loss: no nearby point,
    # and no other breakpoint (ratio), does better
    for x in [alpha * (1 + eps) for eps in (-1e-6, 1e-6)]:
        assert loss(alpha) <= loss(x) + 1e-9
    for ratio in (ai / pi for pi, ai in zip(p, a)):
        assert loss(alpha) <= loss(ratio) + 1e-9


def test_fit_alpha_accepts_numpy_arrays():
    p = np.array([1.0, 2.0, 3.0])
    a = np.array([2.0, 4.0, 6.0])
    assert fit_alpha(p, a) == pytest.approx(2.0)


# ---------------------------------------------------- prediction_success
def test_prediction_success_exact_lower_boundary_is_hit():
    assert prediction_success(100.0, 80.0)
    assert not prediction_success(100.0, math.nextafter(80.0, 0.0))


def test_prediction_success_exact_upper_boundary_is_hit():
    assert prediction_success(100.0, 120.0)
    assert not prediction_success(100.0, math.nextafter(120.0, math.inf))


def test_prediction_success_tolerance_is_twenty_percent():
    assert SUCCESS_TOLERANCE == pytest.approx(0.20)


def test_prediction_success_nonpositive_prediction_fails():
    assert not prediction_success(0.0, 0.0)
    assert not prediction_success(-5.0, 1.0)


def test_prediction_success_custom_tolerance_boundaries():
    assert prediction_success(200.0, 100.0, tolerance=0.5)
    assert prediction_success(200.0, 300.0, tolerance=0.5)
    assert not prediction_success(200.0, 99.999, tolerance=0.5)
    assert not prediction_success(200.0, 300.001, tolerance=0.5)
