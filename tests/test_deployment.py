"""EDGI deployment scenario and the 3G-Bridge (§5, Table 5)."""

import numpy as np
import pytest

from repro.deployment.bridge import ThreeGBridge
from repro.deployment.edgi import EDGIDeployment
from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.xwhep import XWHepServer
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks, Task


def bot_of(n, bot_id="b"):
    return BagOfTasks(bot_id=bot_id,
                      tasks=[Task(i, 1000.0) for i in range(n)],
                      wall_clock=1.0)


def make_server():
    sim = Simulation(horizon=1e6)
    nodes = [Node(i, 1000.0, np.array([0.0]), np.array([1e9]))
             for i in range(4)]
    pool = NodePool(nodes, rng=np.random.default_rng(0))
    return sim, XWHepServer(sim, pool)


# ------------------------------------------------------------------ bridge
def test_bridge_forwards_and_accounts():
    sim, srv = make_server()
    bridge = ThreeGBridge(srv)
    bridge.submit(bot_of(4, "egi-1"), "EGI", at=0.0)
    sim.run()
    assert bridge.completed_for("EGI") == 4
    assert srv.bot_completed("egi-1")


def test_bridge_separates_sources():
    sim, srv = make_server()
    bridge = ThreeGBridge(srv)
    bridge.submit(bot_of(2, "a"), "EGI", at=0.0)
    bridge.submit(bot_of(3, "b"), "Unicore", at=0.0)
    sim.run()
    assert bridge.completed_for("EGI") == 2
    assert bridge.completed_for("Unicore") == 3
    assert bridge.sources() == ["EGI", "Unicore"]


def test_bridge_ignores_native_submissions():
    sim, srv = make_server()
    bridge = ThreeGBridge(srv)
    srv.submit_bot(bot_of(3, "native"), at=0.0)
    sim.run()
    assert bridge.completed_for("EGI") == 0


def test_bridge_rejects_duplicate():
    sim, srv = make_server()
    bridge = ThreeGBridge(srv)
    bot = bot_of(2, "dup")
    bridge.submit(bot, "EGI", at=0.0)
    with pytest.raises(ValueError):
        bridge.submit(bot, "EGI", at=0.0)


# -------------------------------------------------------------- deployment
def test_edgi_accounting_shape():
    dep = EDGIDeployment(seed=5, horizon_days=3.0)
    summary = dep.run(duration_days=1.5, n_bots=8, bot_size=120)
    assert set(summary) == {"XW@LAL", "XW@LRI", "EGI", "StratusLab", "EC2"}
    # the DGs carry the bulk of the work
    assert summary["XW@LAL"] > 0
    assert summary["XW@LRI"] > 0
    dg_total = summary["XW@LAL"] + summary["XW@LRI"]
    cloud_total = summary["StratusLab"] + summary["EC2"]
    assert dg_total > 4 * cloud_total
    # bridged EGI tasks are a subset of XW@LAL's completions
    assert 0 < summary["EGI"] <= summary["XW@LAL"]


def test_edgi_deterministic_per_seed():
    a = EDGIDeployment(seed=9, horizon_days=2.0).run(
        duration_days=1.0, n_bots=6, bot_size=80)
    b = EDGIDeployment(seed=9, horizon_days=2.0).run(
        duration_days=1.0, n_bots=6, bot_size=80)
    assert a == b


def test_edgi_qos_consumes_cloud_somewhere():
    dep = EDGIDeployment(seed=5, horizon_days=3.0)
    summary = dep.run(duration_days=1.5, n_bots=10, bot_size=150)
    assert summary["StratusLab"] + summary["EC2"] > 0
