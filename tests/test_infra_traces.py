"""Trace synthesis: renewal, gantt gate, spot market, catalog, stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infra import intervals as iv
from repro.infra.catalog import TRACE_NAMES, get_trace_spec, list_trace_specs
from repro.infra.gantt import GanttTraceGenerator, gate_windows
from repro.infra.quantile import PiecewiseLogQuantile
from repro.infra.renewal import RenewalTraceGenerator, stationary_availability
from repro.infra.spot import SpotMarket, SpotMarketParams, spot_intervals, spot_nodes
from repro.infra.stats import available_count_series, measure_trace

DAY = 86400.0


def small_renewal(power_std=0.0):
    av = PiecewiseLogQuantile((100, 300, 900), tail_factor=10)
    un = PiecewiseLogQuantile((50, 150, 450), tail_factor=10)
    return RenewalTraceGenerator(av, un, 1000.0, power_std)


# ---------------------------------------------------------------- intervals
def test_intersect_basic():
    s, e = iv.intersect(np.array([0.0, 20.0]), np.array([10.0, 30.0]),
                        np.array([5.0]), np.array([25.0]))
    assert list(s) == [5.0, 20.0]
    assert list(e) == [10.0, 25.0]


def test_intersect_disjoint():
    s, e = iv.intersect(np.array([0.0]), np.array([10.0]),
                        np.array([20.0]), np.array([30.0]))
    assert s.size == 0


def test_intersect_identity():
    a_s, a_e = np.array([1.0, 5.0]), np.array([3.0, 9.0])
    s, e = iv.intersect(a_s, a_e, np.array([0.0]), np.array([100.0]))
    assert np.allclose(s, a_s) and np.allclose(e, a_e)


def test_validate_rejects_overlap():
    with pytest.raises(ValueError):
        iv.validate(np.array([0.0, 5.0]), np.array([6.0, 10.0]))


def test_total_length():
    assert iv.total_length(np.array([0.0, 10.0]),
                           np.array([5.0, 12.0])) == 7.0


# ----------------------------------------------------------------- renewal
def test_stationary_availability_formula():
    av = PiecewiseLogQuantile((10, 10, 10), tail_factor=1.0001)
    un = PiecewiseLogQuantile((30, 30, 30), tail_factor=1.0001)
    p = stationary_availability(av, un)
    assert p == pytest.approx(0.25, rel=0.05)


def test_nodes_for_mean_scales_inverse_to_p():
    gen = small_renewal()
    n = gen.nodes_for_mean(100)
    assert n == pytest.approx(100 / gen.p_avail, rel=0.02)


def test_generated_schedules_are_valid_interval_sets():
    gen = small_renewal()
    nodes = gen.generate(np.random.default_rng(0), 50, 2 * DAY)
    assert len(nodes) == 50
    for n in nodes:
        iv.validate(n.starts, n.ends)
        assert n.starts.size > 0
        assert n.ends[-1] <= 2 * DAY + 1e-9


def test_generated_mean_count_matches_target():
    gen = small_renewal()
    n_nodes = gen.nodes_for_mean(120)
    nodes = gen.generate(np.random.default_rng(1), n_nodes, 3 * DAY)
    counts = available_count_series(nodes, 3 * DAY, step=300.0)
    assert np.mean(counts) == pytest.approx(120, rel=0.15)


def test_generation_deterministic_per_seed():
    gen = small_renewal()
    a = gen.generate(np.random.default_rng(9), 5, DAY)
    b = gen.generate(np.random.default_rng(9), 5, DAY)
    for x, y in zip(a, b):
        assert np.allclose(x.starts, y.starts)
        assert np.allclose(x.ends, y.ends)


def test_power_heterogeneity():
    gen = small_renewal(power_std=250.0)
    powers = gen.draw_power(np.random.default_rng(2), 4000)
    assert np.mean(powers) == pytest.approx(1000, rel=0.05)
    assert np.std(powers) == pytest.approx(250, rel=0.1)
    assert powers.min() >= 50.0


def test_homogeneous_power():
    gen = small_renewal(power_std=0.0)
    powers = gen.draw_power(np.random.default_rng(3), 10)
    assert np.all(powers == 1000.0)


def test_invalid_generate_args():
    gen = small_renewal()
    with pytest.raises(ValueError):
        gen.generate(np.random.default_rng(0), 0, DAY)
    with pytest.raises(ValueError):
        gen.generate(np.random.default_rng(0), 5, 0.0)


# ------------------------------------------------------------------- gantt
def test_gate_windows_always_open_below_range():
    s, e = gate_windows(0.0, DAY, 0.0, 3 * DAY)
    assert list(s) == [0.0] and list(e) == [3 * DAY]


def test_gate_windows_never_open_above_range():
    s, e = gate_windows(1.0, DAY, 0.0, 3 * DAY)
    assert s.size == 0


def test_gate_windows_daily_arcs():
    s, e = gate_windows(0.5, DAY, 0.0, 3 * DAY)
    iv.validate(s, e)
    # threshold at the midline: open half of each day
    assert iv.total_length(s, e) == pytest.approx(1.5 * DAY, rel=0.02)
    assert 2 <= s.size <= 4


def test_gate_window_width_decreases_with_threshold():
    w = []
    for thr in (0.2, 0.5, 0.8):
        s, e = gate_windows(thr, DAY, 0.0, 10 * DAY)
        w.append(iv.total_length(s, e))
    assert w[0] > w[1] > w[2]


def test_gantt_generator_respects_gate():
    gen = GanttTraceGenerator(small_renewal(), gate_depth=1.0)
    nodes = gen.generate(np.random.default_rng(4), 40, 3 * DAY)
    for n in nodes:
        iv.validate(n.starts, n.ends)
    # high-threshold nodes participate less
    lo = iv.total_length(nodes[0].starts, nodes[0].ends)
    hi = iv.total_length(nodes[-1].starts, nodes[-1].ends)
    assert lo > hi


def test_gantt_depth_zero_is_plain_renewal():
    gen = GanttTraceGenerator(small_renewal(), gate_depth=0.0)
    nodes = gen.generate(np.random.default_rng(5), 10, DAY)
    assert all(n.starts.size > 0 for n in nodes)


def test_gantt_invalid_depth():
    with pytest.raises(ValueError):
        GanttTraceGenerator(small_renewal(), gate_depth=1.5)


# -------------------------------------------------------------------- spot
def test_spot_price_respects_floor():
    m = SpotMarket(np.random.default_rng(0), 10 * DAY)
    assert np.all(m.prices >= m.params.floor - 1e-12)


def test_spot_ladder_counts_are_floor_budget_over_price():
    m = SpotMarket(np.random.default_rng(1), DAY)
    counts = m.instance_counts(10.0)
    assert np.all(counts == np.floor(10.0 / m.prices))


def test_spot_ladder_cost_never_exceeds_budget():
    m = SpotMarket(np.random.default_rng(2), 5 * DAY)
    counts = m.instance_counts(10.0)
    assert np.all(counts * m.prices <= 10.0 + 1e-9)


def test_spot_intervals_nested_by_bid_level():
    """Slot i is live whenever slot i+1 is: lower bids are safer."""
    m = SpotMarket(np.random.default_rng(3), 5 * DAY)
    ivs = spot_intervals(m, 10.0, max_instances=20)
    lengths = [iv.total_length(s, e) for s, e in ivs]
    assert all(a >= b - 1e-9 for a, b in zip(lengths, lengths[1:]))


def test_spot_correlated_preemption():
    """A price spike kills the top of the ladder simultaneously."""
    params = SpotMarketParams(spike_rate=1.0 / DAY)
    rng = np.random.default_rng(11)
    m = SpotMarket(rng, 20 * DAY, params)
    counts = m.instance_counts(10.0)
    drops = np.diff(counts)
    assert drops.min() < -5  # mass terminations exist


def test_spot_nodes_power_distribution():
    m = SpotMarket(np.random.default_rng(4), DAY)
    nodes = spot_nodes(np.random.default_rng(5), m, 10.0, 3000.0, 300.0)
    powers = [n.power for n in nodes]
    assert np.mean(powers) == pytest.approx(3000, rel=0.1)


def test_spot_budget_validation():
    m = SpotMarket(np.random.default_rng(6), DAY)
    with pytest.raises(ValueError):
        spot_intervals(m, 0.0)


def test_spot_price_at_lookup():
    m = SpotMarket(np.random.default_rng(7), DAY)
    assert m.price_at(0.0) == m.prices[0]
    assert m.price_at(DAY * 10) == m.prices[-1]  # clamped


# ----------------------------------------------------------------- catalog
def test_catalog_has_all_six_traces():
    assert set(TRACE_NAMES) == {"seti", "nd", "g5klyo", "g5kgre",
                                "spot10", "spot100"}


def test_catalog_lookup_unknown():
    with pytest.raises(KeyError):
        get_trace_spec("lhc")


def test_catalog_table2_values_verbatim():
    seti = get_trace_spec("seti")
    assert seti.mean_nodes == 24391
    assert seti.avail_quartiles == (61, 531, 5407)
    assert seti.power_mean == 1000 and seti.power_std == 250
    g5k = get_trace_spec("g5klyo")
    assert g5k.power_std == 0
    spot = get_trace_spec("spot100")
    assert spot.spot_budget == 100.0


def test_every_spec_materializes_capped():
    rng = np.random.default_rng(8)
    for spec in list_trace_specs():
        nodes = spec.materialize(rng, DAY, max_nodes=30)
        assert 0 < len(nodes) <= 30
        for n in nodes:
            iv.validate(n.starts, n.ends)


def test_natural_node_count_scales():
    assert get_trace_spec("seti").natural_node_count() > 10000
    assert get_trace_spec("nd").natural_node_count() < 1000


def test_spot_natural_count_is_ladder_cap():
    assert get_trace_spec("spot10").natural_node_count() == int(10 / 0.114)


def test_participation_flags():
    assert get_trace_spec("seti").participation == 0.5   # diurnal gate
    assert get_trace_spec("nd").participation == 1.0
    assert get_trace_spec("g5klyo").participation == 0.5


# ------------------------------------------------------------------- stats
def test_available_count_series_simple():
    from repro.infra.node import Node
    n1 = Node(1, 1000, np.array([0.0]), np.array([1000.0]))
    n2 = Node(2, 1000, np.array([500.0]), np.array([1500.0]))
    counts = available_count_series([n1, n2], 2000.0, step=100.0)
    assert counts.max() == 2
    assert counts.min() >= 0


def test_measure_trace_censors_boundary_intervals():
    from repro.infra.node import Node
    # one giant censored interval + small inner ones
    n = Node(1, 1000,
             np.array([0.0, 5000.0, 5200.0, 5400.0]),
             np.array([4000.0, 5100.0, 5300.0, 6000.0]))
    st = measure_trace([n], 6000.0, step=100.0)
    # first (4000s) and last intervals excluded; inner are 100s each
    assert st.avail_quartiles[1] == pytest.approx(100.0)


def test_measure_trace_quartiles_close_to_targets():
    spec = get_trace_spec("nd")
    nodes = spec.materialize(np.random.default_rng(10), 4 * DAY)
    st = measure_trace(nodes, 4 * DAY)
    assert st.mean_nodes == pytest.approx(spec.mean_nodes, rel=0.15)
    assert st.avail_quartiles[1] == pytest.approx(
        spec.avail_quartiles[1], rel=0.5)
    assert st.power_mean == pytest.approx(1000, rel=0.1)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_renewal_intervals_sorted_disjoint(seed):
    gen = small_renewal()
    nodes = gen.generate(np.random.default_rng(seed), 3, DAY)
    for n in nodes:
        iv.validate(n.starts, n.ends)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), budget=st.floats(1.0, 200.0))
def test_property_spot_ladder_monotone(seed, budget):
    m = SpotMarket(np.random.default_rng(seed), DAY)
    counts = m.instance_counts(budget)
    assert np.all(counts >= 0)
    assert counts.max() <= budget / m.params.floor + 1
