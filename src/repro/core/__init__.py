"""The SpeQuloS service (paper §3).

Four cooperating modules, mirroring Figure 3's architecture:

* :mod:`repro.core.info` — **Information**: monitors BoT executions
  (completed / assigned / waiting time series) and archives execution
  history for statistical prediction;
* :mod:`repro.core.credit` — **Credit System**: banking-style accounts,
  QoS orders, billing at 15 credits per CPU·hour, deposit policies;
* :mod:`repro.core.oracle` — **Oracle**: completion-time prediction
  (``tp = α · tc(r)/r``) and the cloud-provisioning decision logic;
* :mod:`repro.core.scheduler` — **Scheduler**: starts, feeds, bills and
  stops Cloud workers for QoS-enabled BoTs.

:class:`repro.core.service.SpeQuloS` wires them together behind the
user-facing API of the paper's sequence diagram (registerQoS /
orderQoS / getPrediction).
"""

from repro.core.credit import (
    CappedDailyDeposit,
    CreditSystem,
    InsufficientCredits,
    NetworkOfFavors,
    CREDITS_PER_CPU_HOUR,
)
from repro.core.info import BoTMonitor, InformationModule
from repro.core.oracle import Oracle, Prediction, fit_alpha
from repro.core.scheduler import SchedulerConfig, SpeQuloSScheduler
from repro.core.service import SpeQuloS
from repro.core.storage import InMemoryHistoryStore, SQLiteHistoryStore
from repro.core.strategies import (
    ALL_COMBOS,
    DEPLOY_CLOUD_DUP,
    DEPLOY_FLAT,
    DEPLOY_RESCHEDULE,
    StrategyCombo,
    parse_combo,
)

__all__ = [
    "BoTMonitor",
    "InformationModule",
    "CreditSystem",
    "InsufficientCredits",
    "CappedDailyDeposit",
    "NetworkOfFavors",
    "CREDITS_PER_CPU_HOUR",
    "Oracle",
    "Prediction",
    "fit_alpha",
    "SchedulerConfig",
    "SpeQuloSScheduler",
    "SpeQuloS",
    "InMemoryHistoryStore",
    "SQLiteHistoryStore",
    "StrategyCombo",
    "parse_combo",
    "ALL_COMBOS",
    "DEPLOY_FLAT",
    "DEPLOY_RESCHEDULE",
    "DEPLOY_CLOUD_DUP",
]
