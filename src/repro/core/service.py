"""SpeQuloS service facade — the user-facing API of Figure 3.

Wires the four modules together and exposes the sequence-diagram verbs:

* ``connect_dci`` — register a BE-DCI (its DG server) and the Cloud
  that supports it; several DCIs and Clouds can be connected to a
  single SpeQuloS instance, as in the EDGI deployment (§5);
* ``register_qos`` — the user declares a BoT and gets a BoTId;
* ``order_qos`` — the user escrows credits for the BoT;
* ``get_prediction`` — predicted completion time + statistical
  uncertainty (§3.4);
* completion is observed automatically: the Scheduler finalizes the
  Cloud side and the service archives the execution trace into the
  Information module's history for future predictions.

Multi-tenant verbs (§5's shared-service regime): ``open_qos_pool``
escrows one shared credit provision, ``order_qos_pooled`` lets a
registered BoT bill against it, and an optional
:class:`~repro.core.scheduler.CloudArbiter` (constructor argument)
rations workers and pooled credits between the concurrent runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cloud.api import ComputeDriver
from repro.core.credit import CreditPool, CreditSystem
from repro.core.info import BoTMonitor, InformationModule
from repro.core.oracle import Oracle, Prediction
from repro.core.scheduler import (
    CloudArbiter,
    QoSRun,
    SchedulerConfig,
    SpeQuloSScheduler,
)
from repro.core.strategies import StrategyCombo
from repro.history import env_key_of
from repro.middleware.base import DGServer
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks

__all__ = ["SpeQuloS", "DCIBinding"]


@dataclass
class DCIBinding:
    """One BE-DCI known to the service and its supporting Cloud."""

    name: str
    server: DGServer
    driver: ComputeDriver


class SpeQuloS:
    """The complete QoS service (Information + Credit + Oracle +
    Scheduler) for one simulation."""

    def __init__(self, sim: Simulation,
                 info: Optional[InformationModule] = None,
                 credits: Optional[CreditSystem] = None,
                 scheduler_config: Optional[SchedulerConfig] = None,
                 arbiter: Optional[CloudArbiter] = None,
                 pricebook=None):
        self.sim = sim
        self.info = info or InformationModule()
        self.credits = credits or CreditSystem()
        self.scheduler = SpeQuloSScheduler(
            sim, self.info, self.credits, scheduler_config,
            on_run_finished=self._archive_run, arbiter=arbiter,
            pricebook=pricebook)
        self.dcis: Dict[str, DCIBinding] = {}
        self._bot_dci: Dict[str, str] = {}
        self._bot_env: Dict[str, str] = {}
        self._bot_combo: Dict[str, StrategyCombo] = {}

    # ------------------------------------------------------------------
    # infrastructure wiring
    # ------------------------------------------------------------------
    def connect_dci(self, name: str, server: DGServer,
                    driver: ComputeDriver) -> DCIBinding:
        """Attach a BE-DCI (DG server) and its supporting Cloud."""
        if name in self.dcis:
            raise ValueError(f"DCI {name!r} already connected")
        binding = DCIBinding(name=name, server=server, driver=driver)
        self.dcis[name] = binding
        return binding

    # ------------------------------------------------------------------
    # user API (sequence diagram, Figure 3)
    # ------------------------------------------------------------------
    def register_qos(self, bot: BagOfTasks, dci: str,
                     combo: Optional[StrategyCombo] = None,
                     submit_time: Optional[float] = None,
                     deadline: Optional[float] = None) -> str:
        """registerQoS(BoT) -> BoTId.

        Creates the Information monitor and attaches the Scheduler.
        ``submit_time`` defaults to the current simulation time; the
        BoT itself must be submitted to the DG server by the user (as
        in the paper, submission goes directly to the BE-DCI, tagged
        with the BoTId).  ``deadline`` (absolute virtual time) feeds
        the deadline-proximity arbitration policy, when one is active.
        """
        binding = self.dcis[dci]
        t0 = self.sim.now if submit_time is None else submit_time
        mon = self.info.register(bot, t0)
        binding.server.add_observer(mon)
        combo = combo or StrategyCombo()
        self._bot_dci[bot.bot_id] = dci
        self._bot_env[bot.bot_id] = self.env_key(dci, bot.category)
        self._bot_combo[bot.bot_id] = combo
        self.scheduler.attach(bot.bot_id, binding.server, binding.driver,
                              combo, deadline=deadline)
        return bot.bot_id

    def order_qos(self, bot_id: str, user: str, credits: float) -> None:
        """orderQoS(BoTId, credit): escrow credits for the BoT."""
        if bot_id not in self._bot_dci:
            raise KeyError(f"BoT {bot_id!r} is not QoS-registered")
        self.credits.order(bot_id, user, credits)

    # ------------------------------------------------------------------
    # multi-tenant API (shared-service regime, §5)
    # ------------------------------------------------------------------
    def open_qos_pool(self, pool_id: str, user: str, credits: float,
                      expected_members: Optional[int] = None) -> CreditPool:
        """Escrow one shared credit provision for several BoTs."""
        return self.credits.open_pool(pool_id, user, credits,
                                      expected_members=expected_members)

    def order_qos_pooled(self, bot_id: str, pool_id: str) -> None:
        """orderQoS against a shared pool instead of a private escrow."""
        if bot_id not in self._bot_dci:
            raise KeyError(f"BoT {bot_id!r} is not QoS-registered")
        self.credits.join_pool(bot_id, pool_id)

    def get_prediction(self, bot_id: str) -> Optional[Prediction]:
        """getQoSInformation(BoTId): predicted completion + uncertainty."""
        env = self._bot_env[bot_id]
        combo = self._bot_combo[bot_id]
        return Oracle(self.info, combo).predict(bot_id, env)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def env_key(dci: str, category: str) -> str:
        """History bucket: same BE-DCI + same BoT category (§4.3.3
        fits α per trace, middleware and category; the DCI name is
        expected to identify trace + middleware)."""
        return env_key_of(dci, category)

    @property
    def meter(self):
        """The scheduler's :class:`~repro.economics.billing.
        BillingMeter` — the per-provider credit accounting source."""
        return self.scheduler.meter

    def _archive_run(self, run: QoSRun) -> None:
        env = self._bot_env.get(run.bot_id)
        if env is None:
            return
        mon = self.info.monitor(run.bot_id)
        if mon.done:
            order = self.credits.get_order(run.bot_id)
            dci = self._bot_dci.get(run.bot_id)
            provider = (self.dcis[dci].driver.name
                        if dci in self.dcis else "")
            self.info.archive_execution(
                env, mon,
                credits_spent=order.spent if order is not None else 0.0,
                provider=provider)

    def monitor(self, bot_id: str) -> BoTMonitor:
        return self.info.monitor(bot_id)

    def run_for(self, bot_id: str) -> QoSRun:
        return self.scheduler.runs[bot_id]

    def credits_summary(self, bot_id: str) -> Dict[str, float]:
        """Provisioned / spent / refunded view for reports (Figure 5)."""
        order = self.credits.get_order(bot_id)
        if order is None:
            return {"provisioned": 0.0, "spent": 0.0, "remaining": 0.0}
        return {"provisioned": order.provisioned, "spent": order.spent,
                "remaining": self.credits.remaining_for(bot_id)}
