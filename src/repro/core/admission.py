"""Admission control for QoS orders against a shared credit pool.

The ROADMAP's federated open item: when N tenants' declared workloads
exceed what the pooled provision can cover, granting every QoS order
dilutes the pool until nobody's cloud supplement is worth anything.
Thai et al. ("Executing Bag of Distributed Tasks on Virtually
Unlimited Cloud Resources", PAPERS.md) motivate gating admission on
the *predicted completion cost*; the history plane supplies exactly
that prediction — the archived mean credits-per-task of the BoT's
environment times its declared size.

The :class:`AdmissionController` sits between ``registerQoS`` and
``orderQoS``: the BoT is always registered (monitored) and submitted
to its BE-DCI — best-effort execution is never denied — but its claim
on the pool is

* **granted** when the environment is cold (no archived cost — the
  paper initializes optimistically, as with α = 1) or the predicted
  cost fits the pool's uncommitted remainder;
* **rejected** (``mode="reject"``): the order is never opened; the
  BoT runs purely best-effort;
* **deferred** (``mode="defer"``): the order is postponed and
  re-evaluated every ``retry_period`` — once earlier tenants finish
  under their predictions (or the forecast cools), the pool's
  uncommitted remainder covers the claim and the order opens late.

The controller tracks the predicted cost of every claim it grants and
evaluates new claims against ``pool.remaining − outstanding
commitments``, so a burst of arrivals cannot all be admitted against
the same uncommitted credits.  A commitment is the claim's *unspent*
predicted cost: what a granted run has already billed is inside
``pool.spent`` (hence out of ``pool.remaining``), so only the
remainder of its forecast still reserves credits — without that
netting, an in-flight run would count twice and starve later
arrivals.  A claim's commitment is released when its run closes
(finished BoTs settle at their actual spend, which the pool already
accounts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.history.plane import HistoryPlane

__all__ = ["ADMISSION_MODES", "AdmissionController", "AdmissionDecision",
           "GRANTED", "REJECTED", "DEFERRED"]

ADMISSION_MODES = ("reject", "defer")

GRANTED = "granted"
REJECTED = "rejected"
DEFERRED = "deferred"


@dataclass(frozen=True)
class AdmissionDecision:
    """One evaluated QoS claim."""

    verdict: str                    # granted | rejected | deferred
    #: plane-predicted credit cost of the BoT (None = cold environment)
    predicted_cost: Optional[float]
    #: pool credits uncommitted at decision time
    available: float


class AdmissionController:
    """Gates QoS orders on the plane's predicted credit cost."""

    def __init__(self, plane: HistoryPlane, mode: str = "reject",
                 safety: float = 1.0, retry_period: float = 1800.0):
        if mode not in ADMISSION_MODES:
            raise ValueError(f"unknown admission mode {mode!r}; "
                             f"available: {', '.join(ADMISSION_MODES)}")
        if safety <= 0:
            raise ValueError("safety must be positive")
        if retry_period <= 0:
            raise ValueError("retry_period must be positive")
        self.plane = plane
        self.mode = mode
        #: multiplier on the predicted cost (>1 = conservative gate)
        self.safety = safety
        #: seconds between re-evaluations of a deferred claim
        self.retry_period = retry_period
        #: predicted cost committed per granted, still-open claim
        self._commitments: Dict[str, float] = {}
        #: decision log (bot_id -> latest decision) for reporting
        self.decisions: Dict[str, AdmissionDecision] = {}

    # ------------------------------------------------------------------
    def committed(self, credits=None) -> float:
        """Outstanding predicted cost of every granted, unreleased claim.

        With a :class:`~repro.core.credit.CreditSystem` each
        commitment is netted against what its order has already billed
        (that spend is in ``pool.spent`` already — see the module
        docstring); without one, the full predicted costs are summed.
        """
        if credits is None:
            return sum(self._commitments.values())
        total = 0.0
        for bot_id, cost in self._commitments.items():
            order = credits.get_order(bot_id)
            spent = order.spent if order is not None else 0.0
            total += max(0.0, cost - spent)
        return total

    def release(self, bot_id: str) -> None:
        """Drop a claim's commitment (its run closed; actual spend is
        already reflected in the pool)."""
        self._commitments.pop(bot_id, None)

    # ------------------------------------------------------------------
    def evaluate(self, bot_id: str, env_key: str, n_tasks: int,
                 pool, credits=None,
                 provider: Optional[str] = None) -> AdmissionDecision:
        """Decide one claim against a :class:`~repro.core.credit.
        CreditPool`; a granted claim's predicted cost is committed.
        Pass the scenario's :class:`~repro.core.credit.CreditSystem`
        so in-flight claims only reserve their unspent forecast.
        ``provider`` names the cloud that would supplement the BoT, so
        the forecast reads the plane's *per-cloud* learned cost (a
        heterogeneous price book makes the same DCI cheaper or dearer
        depending on who backs it)."""
        available = max(0.0, pool.remaining - self.committed(credits))
        cost = self.plane.predicted_cost(env_key, n_tasks,
                                         provider=provider)
        if cost is None or self.safety * cost <= available:
            verdict = GRANTED
            if cost is not None:
                self._commitments[bot_id] = self.safety * cost
        else:
            verdict = REJECTED if self.mode == "reject" else DEFERRED
        decision = AdmissionDecision(verdict=verdict, predicted_cost=cost,
                                     available=available)
        self.decisions[bot_id] = decision
        return decision

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Verdict histogram over every decided claim."""
        out = {GRANTED: 0, REJECTED: 0, DEFERRED: 0}
        for decision in self.decisions.values():
            out[decision.verdict] += 1
        return out
