"""Columnar worker-handle ledger: the Scheduler's per-tick billing state.

Algorithm 2 is a per-tick scan over every Cloud worker the service
manages, so its cost scales with the supplement size: the 10^5-node
profile showed ``_bill_and_manage`` and the per-handle
``BillingMeter.charge → PriceBook.rate`` chain consuming ~40 % of run
wall — thousands of Python calls per tick, each re-resolving a price
that never changes.  The :class:`HandleLedger` stores one run's
:class:`~repro.cloud.worker.CloudWorkerHandle` billing state as flat
NumPy columns —

* ``billed_busy`` — busy CPU·seconds already billed per handle;
* ``last_busy``   — last instant the handle was observed computing;
* ``ever_assigned`` / ``stopped`` — lifecycle flags;
* ``node_ids``    — the handles' node ids (bulk usage snapshots);

so the scheduler computes every handle's busy-second delta in one
vectorized pass and drops to Python only for the handles that actually
charge (``delta > 0``) or transition (idle-grace release).

Sync contract (load-bearing): the ledger columns are the scan's
working state, and the handle objects' attributes are kept *exactly*
mirrored — every mutation of ``billed_busy`` / ``last_busy`` /
``ever_assigned`` / ``stopped`` goes through a ledger method
(:meth:`set_billed`, :meth:`touch_busy`, :meth:`mark_stopped`, and
their bulk forms), which writes both sides.  External readers (tests,
reports) keep seeing plain handle attributes; writing a handle
attribute directly would desync the columns and is therefore reserved
to this module.  Charge *order* is equally load-bearing: bulk indices
are always processed ascending — the historical ``run.handles``
iteration order — so the per-handle ``credits.bill`` sequence (ledger
entries, escrow clamping) stays byte-identical to the scalar loop the
columns replaced (pinned by ``tests/test_ledger_billing.py``).

``by_node`` indexes handles by ``node_id`` so starvation callbacks
(:meth:`~repro.core.scheduler.SpeQuloSScheduler._stop_by_node`) stop
scanning the handle list.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = ["HandleLedger"]


class HandleLedger:
    """Flat-array mirror of one QoS run's worker handles."""

    __slots__ = ("handles", "by_node", "n", "active", "billed_busy",
                 "last_busy", "ever_assigned", "stopped", "node_ids",
                 "_live_idx", "_live_ids")

    def __init__(self, capacity: int = 8):
        #: the run's handles in launch order (the historical
        #: ``run.handles`` list — billing order depends on it)
        self.handles: List = []
        #: node_id -> handle (starvation stops, O(1))
        self.by_node: Dict[int, object] = {}
        self.n = 0
        #: handles not yet stopped (replaces the O(handles) sum)
        self.active = 0
        self.billed_busy = np.zeros(capacity, dtype=np.float64)
        self.last_busy = np.zeros(capacity, dtype=np.float64)
        self.ever_assigned = np.zeros(capacity, dtype=bool)
        self.stopped = np.zeros(capacity, dtype=bool)
        self.node_ids = np.zeros(capacity, dtype=np.int64)
        #: memoized live views — the live set only changes at launch /
        #: stop transitions, not on every billing tick
        self._live_idx: Optional[np.ndarray] = None
        self._live_ids: Optional[list] = None

    # ------------------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = max(need, 2 * len(self.billed_busy))
        for name in ("billed_busy", "last_busy", "ever_assigned",
                     "stopped", "node_ids"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[:self.n] = old[:self.n]
            setattr(self, name, new)

    def append(self, handle) -> int:
        """Register a freshly launched handle; returns its index."""
        i = self.n
        if i >= len(self.billed_busy):
            self._grow(i + 1)
        self.handles.append(handle)
        handle.ledger_index = i
        self.by_node[handle.node.node_id] = handle
        self.billed_busy[i] = handle.billed_busy
        self.last_busy[i] = handle.last_busy
        self.ever_assigned[i] = handle.ever_assigned
        self.stopped[i] = handle.stopped
        self.node_ids[i] = handle.node.node_id
        self.n = i + 1
        if not handle.stopped:
            self.active += 1
        self._live_idx = None
        self._live_ids = None
        return i

    def get_by_node(self, node_id: int):
        return self.by_node.get(node_id)

    # ------------------------------------------------------------------
    # mutations (write the column AND the mirrored handle attribute)
    # ------------------------------------------------------------------
    def set_billed(self, handle, total: float) -> None:
        """Scalar billed-busy update (stop-time settlements)."""
        self.billed_busy[handle.ledger_index] = total
        handle.billed_busy = total

    def set_billed_bulk(self, idx: np.ndarray, totals: np.ndarray) -> None:
        """Billed-busy update for the tick's charged handles.

        ``idx`` must be ascending — the historical charge order.
        """
        self.billed_busy[idx] = totals
        handles = self.handles
        for i, total in zip(idx.tolist(), totals.tolist()):
            handles[i].billed_busy = total

    def touch_busy(self, handle, now: float) -> None:
        """Scalar busy-mark (the reference per-handle loop)."""
        i = handle.ledger_index
        self.ever_assigned[i] = True
        self.last_busy[i] = now
        handle.ever_assigned = True
        handle.last_busy = now

    def touch_busy_bulk(self, idx: np.ndarray, now: float) -> None:
        """Mark the tick's busy handles (assignment + idle tracking)."""
        self.ever_assigned[idx] = True
        self.last_busy[idx] = now
        handles = self.handles
        for i in idx.tolist():
            h = handles[i]
            h.ever_assigned = True
            h.last_busy = now

    def mark_stopped(self, handle) -> None:
        i = handle.ledger_index
        if not self.stopped[i]:
            self.active -= 1
        self.stopped[i] = True
        handle.stopped = True
        self._live_idx = None
        self._live_ids = None

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def live_indices(self) -> np.ndarray:
        """Indices of not-yet-stopped handles, ascending (charge order).

        Memoized between launch/stop transitions; callers must treat
        the returned array as read-only.
        """
        if self._live_idx is None:
            self._live_idx = np.flatnonzero(~self.stopped[:self.n])
        return self._live_idx

    def live_node_ids(self, live: Optional[np.ndarray] = None) -> list:
        if live is None:
            if self._live_ids is None:
                self._live_ids = \
                    self.node_ids[self.live_indices()].tolist()
            return self._live_ids
        return self.node_ids[live].tolist()

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HandleLedger n={self.n} active={self.active}>"
