"""Credit System module: Cloud usage accounting and arbitration (§3.3).

"The Credit System module provides a simple credit system whose
interface is similar to banking.  It allows depositing, billing and
paying via virtual credits."  The fixed exchange rate is 15 credits per
CPU·hour of Cloud worker usage.

Life cycle of an order (mirrors the sequence diagram):

1. a user *deposits* (or an administrator's deposit policy does);
2. ``order(bot_id, user, amount)`` escrows credits for one BoT;
3. the Scheduler ``bill``\\ s the order as Cloud workers run;
4. ``close(bot_id)`` pays the spent part and refunds the rest to the
   user's account ("If the BoT execution was completed before all the
   credits have been spent, the Credit System transfers back the
   remaining credits").

Two deposit policies are provided: :class:`CappedDailyDeposit` (the
paper's 200-nodes-per-day style administrator cap) and
:class:`NetworkOfFavors`, the cooperation-between-institutions scheme
the paper cites (Andrade et al.) as the natural extension.  Their
*scheduled* forms — policies the scenario harness ticks over virtual
time, including pool top-ups and per-tenant rationing — live in
:mod:`repro.economics.deposits` and talk to this module through
:meth:`CreditSystem.fund_pool` and :meth:`CreditSystem.set_allowance`.

Pricing note: this module deliberately knows nothing about providers.
:data:`CREDITS_PER_CPU_HOUR` remains the paper's reference exchange
rate and the default everywhere, but the conversion from CPU time to
credits is owned by the economics plane
(:class:`~repro.economics.billing.BillingMeter` over a
:class:`~repro.economics.pricing.PriceBook`), which may quote a
different rate per cloud provider.

Multi-tenant extension (§5's shared-service regime): a
:class:`CreditPool` escrows one lump of credits that *several* BoT
orders draw from concurrently — the situation of the EDGI deployment,
where many users' QoS runs compete for the same cloud supplement.  A
pooled order bills against the pool's shared remainder (so total spend
can never exceed the pooled provision); how the remainder is *rationed*
between simultaneous runs is the arbitration policy's job
(:mod:`repro.core.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CreditSystem", "InsufficientCredits", "CreditOrder",
           "CreditPool", "CappedDailyDeposit", "NetworkOfFavors",
           "CREDITS_PER_CPU_HOUR"]

#: Fixed exchange rate (§3.3): 1 CPU·hour of Cloud worker = 15 credits.
CREDITS_PER_CPU_HOUR = 15.0


class InsufficientCredits(RuntimeError):
    """The user's account cannot cover the requested order."""


@dataclass
class CreditOrder:
    """Escrowed credits supporting one BoT's QoS.

    ``pool`` names the :class:`CreditPool` backing the order, when the
    BoT draws from a shared provision instead of a private escrow; a
    pooled order's own ``provisioned`` stays 0 and its spendable
    remainder is the pool's.
    """

    bot_id: str
    user: str
    provisioned: float
    spent: float = 0.0
    closed: bool = False
    pool: Optional[str] = None
    #: arbitration cap on this order's total spend (pooled orders only;
    #: None = may spend up to the whole pool remainder)
    allowance: Optional[float] = None

    @property
    def remaining(self) -> float:
        return max(0.0, self.provisioned - self.spent)


@dataclass
class CreditPool:
    """One shared escrow that several BoT orders bill against.

    ``expected_members`` declares how many BoTs will eventually join
    (a service admitting a known tenant stream sets it up front) so a
    fair-share arbiter can reserve slices for tenants that have not
    arrived yet.
    """

    pool_id: str
    user: str
    provisioned: float
    spent: float = 0.0
    closed: bool = False
    members: List[str] = field(default_factory=list)
    expected_members: Optional[int] = None

    @property
    def remaining(self) -> float:
        return max(0.0, self.provisioned - self.spent)


class CreditSystem:
    """Accounts, orders, billing — the banking interface of §3.3."""

    def __init__(self) -> None:
        self._accounts: Dict[str, float] = {}
        self._orders: Dict[str, CreditOrder] = {}
        self._pools: Dict[str, CreditPool] = {}
        #: audit log of (op, user/bot, amount) tuples
        self.ledger: List[Tuple[str, str, float]] = []

    # ---------------------------------------------------------- accounts
    def deposit(self, user: str, amount: float) -> float:
        """Credit a user account; returns the new balance."""
        if amount < 0:
            raise ValueError("deposit must be non-negative")
        self._accounts[user] = self._accounts.get(user, 0.0) + amount
        self.ledger.append(("deposit", user, amount))
        return self._accounts[user]

    def balance(self, user: str) -> float:
        return self._accounts.get(user, 0.0)

    # ------------------------------------------------------------ orders
    def order(self, bot_id: str, user: str, amount: float) -> CreditOrder:
        """Escrow ``amount`` credits from ``user`` for ``bot_id``."""
        if amount <= 0:
            raise ValueError("order amount must be positive")
        if bot_id in self._orders and not self._orders[bot_id].closed:
            raise ValueError(f"BoT {bot_id!r} already has an open order")
        if self.balance(user) < amount:
            raise InsufficientCredits(
                f"user {user!r} has {self.balance(user):.1f} credits, "
                f"needs {amount:.1f}")
        self._accounts[user] -= amount
        order = CreditOrder(bot_id=bot_id, user=user, provisioned=amount)
        self._orders[bot_id] = order
        self.ledger.append(("order", bot_id, amount))
        return order

    def get_order(self, bot_id: str) -> Optional[CreditOrder]:
        return self._orders.get(bot_id)

    def has_credits(self, bot_id: str) -> bool:
        """Scheduler's periodic question: any open provisioned credits?"""
        order = self._orders.get(bot_id)
        if order is None or order.closed:
            return False
        return self.remaining_for(bot_id) > 0

    def remaining_for(self, bot_id: str) -> float:
        """Spendable credits behind an order (pool-aware)."""
        order = self._orders.get(bot_id)
        if order is None or order.closed:
            return 0.0
        if order.pool is not None:
            pool = self._pools[order.pool]
            if pool.closed:
                return 0.0
            remaining = pool.remaining
            if order.allowance is not None:
                remaining = min(remaining,
                                max(0.0, order.allowance - order.spent))
            return remaining
        return order.remaining

    def bill(self, bot_id: str, amount: float) -> float:
        """Consume credits from the order; returns what was billable.

        Billing is clamped to the remaining escrow (the order's own, or
        the shared pool's for pooled orders) — the Scheduler stops
        Cloud workers when this returns less than asked.
        """
        if amount < 0:
            raise ValueError("bill amount must be non-negative")
        order = self._orders.get(bot_id)
        if order is None or order.closed:
            return 0.0
        billed = min(amount, self.remaining_for(bot_id))
        order.spent += billed
        if order.pool is not None:
            self._pools[order.pool].spent += billed
        if billed:
            self.ledger.append(("bill", bot_id, billed))
        return billed

    def bill_many(self, bot_id: str, amounts: List[float],
                  shortfall_tol: float = 0.0) -> Tuple[List[float], int]:
        """Bill a sequence of amounts as one batch.

        Float-identical to calling :meth:`bill` once per amount in
        order — the order/pool lookups and the remaining-escrow
        arithmetic are hoisted out of the loop, but every clamp,
        accumulation and ledger append happens in the same sequence
        the repeated scalar calls would produce.  Billing stops after
        the first shortfall (``billed < amount - shortfall_tol``),
        which is exactly where the Scheduler stops billing a run it is
        about to tear down.

        Returns ``(billed, fail)``: one billed value per *attempted*
        amount (the list is short when a shortfall stopped the batch),
        and the index of the shortfall, or ``-1`` if every amount was
        covered in full.
        """
        out: List[float] = []
        order = self._orders.get(bot_id)
        if order is None or order.closed:
            for amount in amounts:
                if amount < 0:
                    raise ValueError("bill amount must be non-negative")
                out.append(0.0)
                if 0.0 < amount - shortfall_tol:
                    return out, len(out) - 1
            return out, -1
        append = self.ledger.append
        spent = order.spent
        fail = -1
        if order.pool is None:
            provisioned = order.provisioned
            # fast path: when the escrow covers the whole batch with
            # margin (the same conservative bound the Scheduler's
            # vectorized scan uses), every clamp resolves to
            # ``billed == amount`` — sequential partial sums of
            # non-negative floats are monotone, so no prefix can
            # overshoot what the full sum (plus margin) fits.  The
            # accumulation below replays the identical float adds.
            if amounts and min(amounts) >= 0.0:
                total = 0.0
                for amount in amounts:
                    total += amount
                remaining = provisioned - spent
                if remaining >= total * (1.0 + 1e-9) + 1e-9:
                    for amount in amounts:
                        spent += amount
                    order.spent = spent
                    self.ledger.extend(
                        [("bill", bot_id, amount)
                         for amount in amounts if amount])
                    return list(amounts), -1
            for amount in amounts:
                if amount < 0:
                    raise ValueError("bill amount must be non-negative")
                remaining = provisioned - spent
                if remaining < 0.0:
                    remaining = 0.0
                billed = min(amount, remaining)
                spent += billed
                if billed:
                    append(("bill", bot_id, billed))
                out.append(billed)
                if billed < amount - shortfall_tol:
                    fail = len(out) - 1
                    break
            order.spent = spent
            return out, fail
        pool = self._pools[order.pool]
        pool_closed = pool.closed
        pool_provisioned = pool.provisioned
        pool_spent = pool.spent
        allowance = order.allowance
        if not pool_closed and amounts and min(amounts) >= 0.0:
            # same whole-batch-fits fast path, against the pooled
            # remainder (and the arbitration allowance, both of which
            # shrink by exactly the billed partial sums)
            total = 0.0
            for amount in amounts:
                total += amount
            remaining = pool_provisioned - pool_spent
            if remaining < 0.0:
                remaining = 0.0
            if allowance is not None:
                cap = allowance - spent
                if cap < 0.0:
                    cap = 0.0
                if cap < remaining:
                    remaining = cap
            if remaining >= total * (1.0 + 1e-9) + 1e-9:
                for amount in amounts:
                    spent += amount
                    pool_spent += amount
                order.spent = spent
                pool.spent = pool_spent
                self.ledger.extend(
                    [("bill", bot_id, amount)
                     for amount in amounts if amount])
                return list(amounts), -1
        for amount in amounts:
            if amount < 0:
                raise ValueError("bill amount must be non-negative")
            if pool_closed:
                remaining = 0.0
            else:
                remaining = pool_provisioned - pool_spent
                if remaining < 0.0:
                    remaining = 0.0
                if allowance is not None:
                    cap = allowance - spent
                    if cap < 0.0:
                        cap = 0.0
                    if cap < remaining:
                        remaining = cap
            billed = min(amount, remaining)
            spent += billed
            pool_spent += billed
            if billed:
                append(("bill", bot_id, billed))
            out.append(billed)
            if billed < amount - shortfall_tol:
                fail = len(out) - 1
                break
        order.spent = spent
        pool.spent = pool_spent
        return out, fail

    def close(self, bot_id: str) -> Tuple[float, float]:
        """Pay the order: returns (spent, refunded).

        A pooled order never refunds on its own — the shared remainder
        stays available to the pool's other members until
        :meth:`close_pool`.
        """
        order = self._orders.get(bot_id)
        if order is None:
            raise KeyError(f"no order for BoT {bot_id!r}")
        if order.closed:
            return order.spent, 0.0
        order.closed = True
        if order.pool is not None:
            self.ledger.append(("close", bot_id, 0.0))
            return order.spent, 0.0
        refund = order.remaining
        self._accounts[order.user] = self._accounts.get(order.user, 0.0) + refund
        self.ledger.append(("close", bot_id, refund))
        return order.spent, refund

    # ------------------------------------------------------------- pools
    def open_pool(self, pool_id: str, user: str, amount: float,
                  expected_members: Optional[int] = None) -> CreditPool:
        """Escrow ``amount`` from ``user`` into a shared pool."""
        if amount <= 0:
            raise ValueError("pool amount must be positive")
        if pool_id in self._pools and not self._pools[pool_id].closed:
            raise ValueError(f"pool {pool_id!r} is already open")
        if expected_members is not None and expected_members < 1:
            raise ValueError("expected_members must be >= 1 or None")
        if self.balance(user) < amount:
            raise InsufficientCredits(
                f"user {user!r} has {self.balance(user):.1f} credits, "
                f"needs {amount:.1f}")
        self._accounts[user] -= amount
        pool = CreditPool(pool_id=pool_id, user=user, provisioned=amount,
                          expected_members=expected_members)
        self._pools[pool_id] = pool
        self.ledger.append(("open_pool", pool_id, amount))
        return pool

    def fund_pool(self, pool_id: str, user: str, amount: float) -> float:
        """Deposit additional credits into an *open* pool from a user
        account (the scheduled deposit policies' verb — see
        :mod:`repro.economics.deposits`); returns the pool's new
        remaining balance."""
        pool = self._pools.get(pool_id)
        if pool is None or pool.closed:
            raise KeyError(f"no open pool {pool_id!r}")
        if amount < 0:
            raise ValueError("fund amount must be non-negative")
        if self.balance(user) < amount:
            raise InsufficientCredits(
                f"user {user!r} has {self.balance(user):.1f} credits, "
                f"needs {amount:.1f}")
        self._accounts[user] -= amount
        pool.provisioned += amount
        self.ledger.append(("fund_pool", pool_id, amount))
        return pool.remaining

    def join_pool(self, bot_id: str, pool_id: str) -> CreditOrder:
        """Open a pooled order: the BoT bills the shared escrow."""
        pool = self._pools.get(pool_id)
        if pool is None or pool.closed:
            raise KeyError(f"no open pool {pool_id!r}")
        if bot_id in self._orders and not self._orders[bot_id].closed:
            raise ValueError(f"BoT {bot_id!r} already has an open order")
        order = CreditOrder(bot_id=bot_id, user=pool.user, provisioned=0.0,
                            pool=pool_id)
        self._orders[bot_id] = order
        pool.members.append(bot_id)
        self.ledger.append(("join_pool", bot_id, 0.0))
        return order

    def get_pool(self, pool_id: str) -> Optional[CreditPool]:
        return self._pools.get(pool_id)

    def set_allowance(self, bot_id: str, allowance: Optional[float]) -> None:
        """Cap a pooled order's total spend (arbitration hook)."""
        order = self._orders.get(bot_id)
        if order is None:
            raise KeyError(f"no order for BoT {bot_id!r}")
        if allowance is not None and allowance < 0:
            raise ValueError("allowance must be >= 0 or None")
        order.allowance = allowance

    def close_pool(self, pool_id: str) -> Tuple[float, float]:
        """Close a pool and every member order: (spent, refunded)."""
        pool = self._pools.get(pool_id)
        if pool is None:
            raise KeyError(f"no pool {pool_id!r}")
        if pool.closed:
            return pool.spent, 0.0
        for bot_id in pool.members:
            order = self._orders.get(bot_id)
            if order is not None and not order.closed:
                order.closed = True
        refund = pool.remaining
        pool.closed = True
        self._accounts[pool.user] = self._accounts.get(pool.user, 0.0) + refund
        self.ledger.append(("close_pool", pool_id, refund))
        return pool.spent, refund

    # --------------------------------------------------------- reporting
    def spent(self, bot_id: str) -> float:
        order = self._orders.get(bot_id)
        return order.spent if order else 0.0

    def provisioned(self, bot_id: str) -> float:
        order = self._orders.get(bot_id)
        return order.provisioned if order else 0.0


@dataclass
class CappedDailyDeposit:
    """Administrator deposit policy: top accounts up to a daily cap.

    The paper's example — "a simple policy that limits SpeQuloS usage of
    a Cloud to 200 nodes per day" via a periodic deposit function — is
    implemented as intended: each application tops the account back up
    to ``cap`` credits (the literal formula printed in §3.3,
    ``max(6000, 6000 - spent)``, is constant; see DESIGN.md
    interpretation notes).
    """

    cap: float = 6000.0
    period: float = 86400.0

    def apply(self, credits: CreditSystem, user: str) -> float:
        """Run one deposit round; returns the amount deposited."""
        topup = max(0.0, self.cap - credits.balance(user))
        if topup:
            credits.deposit(user, topup)
        return topup


class NetworkOfFavors:
    """Inter-institution cooperation accounting (Andrade et al.).

    Each BE-DCI earns *favors* when its resources compute for another
    institution's users and spends them when the roles reverse; the
    balance modulates how much cloud credit an institution's users
    receive.  This is the extension §3.3 points at for multi-BE-DCI /
    multi-cloud cooperation.
    """

    def __init__(self) -> None:
        self._favors: Dict[Tuple[str, str], float] = {}

    def record_favor(self, donor: str, beneficiary: str,
                     amount: float) -> None:
        """``donor`` computed ``amount`` credits worth for ``beneficiary``."""
        if amount < 0:
            raise ValueError("favor amount must be non-negative")
        key = (donor, beneficiary)
        self._favors[key] = self._favors.get(key, 0.0) + amount

    def balance(self, a: str, b: str) -> float:
        """Net favors ``a`` holds over ``b`` (positive: b owes a)."""
        return (self._favors.get((a, b), 0.0)
                - self._favors.get((b, a), 0.0))

    def deposit_allowance(self, institution: str, base: float) -> float:
        """Deposit budget for an institution: base plus net favors
        earned across all peers (never below zero)."""
        earned = sum(v for (d, _b), v in self._favors.items()
                     if d == institution)
        owed = sum(v for (_d, b), v in self._favors.items()
                   if b == institution)
        return max(0.0, base + earned - owed)
