"""BoT-to-DCI routing policies for federated scenarios.

The paper's headline deployment (§5, Figure 8) runs *one* SpeQuloS
instance over several BE-DCIs backed by different clouds.  When a
federated scenario admits a stream of tenants, something has to decide
which DCI each arriving BoT is submitted to; this module provides that
decision as a small pluggable policy, mirroring how the arbitration
policies (:mod:`repro.core.scheduler`) ration the cloud side.

Three policies:

* ``round_robin`` — arrivals cycle over the DCIs in declaration order
  (the blind baseline; what the EDGI deployment's alternating
  submission loop does by hand);
* ``least_loaded`` — each arrival goes to the DCI with the lowest
  *live load ratio*: outstanding execution units (queued + running)
  divided by the live-worker count (busy workers plus currently
  available idle nodes).  A small volatile desktop grid therefore
  stops receiving BoTs once its few live workers are saturated while
  a large DCI keeps absorbing them;
* ``affinity`` — a category→DCI map pins BoT classes to
  infrastructures (e.g. BIG BoTs to the stable cluster harvest, SMALL
  ones to the desktop grid); unmapped categories fall back to round
  robin over all DCIs.

Routers are tiny stateful objects (the round-robin cursor); one router
instance serves one scenario.  They rank *targets*: any object with a
``name`` and a ``server`` exposing the :class:`~repro.middleware.base.
DGServer` load probes (``busy_count``/``backlog``) and a ``pool`` with
``idle_count``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

__all__ = ["ROUTING_POLICIES", "Router", "RoundRobinRouter",
           "LeastLoadedRouter", "AffinityRouter", "make_router"]

ROUTING_POLICIES = ("round_robin", "least_loaded", "affinity")


class Router:
    """Base router: picks the index of the DCI an arriving BoT joins."""

    name = "base"

    def route(self, category: str, targets: Sequence, now: float) -> int:
        """Index into ``targets`` for a BoT of ``category`` arriving now."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle over the DCIs in declaration order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        i = self._next % len(targets)
        self._next += 1
        return i


class LeastLoadedRouter(Router):
    """Pick the DCI with the lowest outstanding-work / live-worker ratio.

    Live workers = workers currently executing a unit plus idle nodes
    currently inside an availability interval; outstanding work =
    queued pending units plus the busy ones.  A DCI with *no* live
    workers (every node in an unavailability interval) ranks as
    infinitely loaded — work sent there stalls until nodes return.
    Ties (e.g. every DCI idle) resolve to the earliest-declared DCI,
    which keeps the policy deterministic.
    """

    name = "least_loaded"

    @staticmethod
    def load_of(target, now: float) -> float:
        server = target.server
        busy = server.busy_count()
        live = busy + server.pool.idle_count(now)
        if live == 0:
            return math.inf
        return (busy + server.backlog()) / live

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        loads = [self.load_of(t, now) for t in targets]
        return int(min(range(len(targets)), key=loads.__getitem__))


class AffinityRouter(Router):
    """Category→DCI pinning with a round-robin fallback.

    ``affinity`` maps upper-cased BoT categories to DCI *names*; a BoT
    whose category is unmapped (or mapped to a DCI absent from the
    scenario) falls back to round robin over every DCI.
    """

    name = "affinity"

    def __init__(self, affinity: Optional[Dict[str, str]] = None):
        self.affinity = {k.upper(): v for k, v in (affinity or {}).items()}
        self._fallback = RoundRobinRouter()

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        wanted = self.affinity.get(category.upper())
        if wanted is not None:
            for i, target in enumerate(targets):
                if target.name == wanted:
                    return i
        return self._fallback.route(category, targets, now)


def make_router(policy: str,
                affinity: Optional[Dict[str, str]] = None) -> Router:
    """Instantiate a routing policy by name."""
    if policy == "round_robin":
        return RoundRobinRouter()
    if policy == "least_loaded":
        return LeastLoadedRouter()
    if policy == "affinity":
        return AffinityRouter(affinity)
    raise ValueError(f"unknown routing policy {policy!r}; available: "
                     f"{', '.join(ROUTING_POLICIES)}")
