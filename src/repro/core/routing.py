"""BoT-to-DCI routing policies for federated scenarios.

The paper's headline deployment (§5, Figure 8) runs *one* SpeQuloS
instance over several BE-DCIs backed by different clouds.  When a
federated scenario admits a stream of tenants, something has to decide
which DCI each arriving BoT is submitted to; this module provides that
decision as a small pluggable policy, mirroring how the arbitration
policies (:mod:`repro.core.scheduler`) ration the cloud side.

Five policies:

* ``round_robin`` — arrivals cycle over the DCIs in declaration order
  (the blind baseline; what the EDGI deployment's alternating
  submission loop does by hand);
* ``least_loaded`` — each arrival goes to the DCI with the lowest
  *live load ratio*: outstanding execution units (queued + running)
  divided by the live-worker count (busy workers plus currently
  available idle nodes).  A small volatile desktop grid therefore
  stops receiving BoTs once its few live workers are saturated while
  a large DCI keeps absorbing them.  When the router is built over a
  :class:`~repro.history.plane.HistoryPlane` with archived executions
  for every candidate, the probe upgrades to the plane's *smoothed
  throughput estimate* — outstanding work divided by the tasks/second
  the DCI historically sustained, i.e. the expected drain time —
  which sees through momentary idleness on a chronically slow grid.
  Instantaneous counts remain the fallback and the default;
* ``history_weighted`` — the drain-time estimate of ``least_loaded``
  over the plane, additionally weighted by the archived mean tail
  slowdown of *this BoT's category* on each DCI, so a DCI that is
  nominally fast but historically serves the category badly (long
  tails) is de-prioritized.  Cold environments weight 1.0; with no
  history at all the policy degrades to instantaneous least-loaded;
* ``affinity`` — a category→DCI map pins BoT classes to
  infrastructures (e.g. BIG BoTs to the stable cluster harvest, SMALL
  ones to the desktop grid); unmapped categories fall back to round
  robin over all DCIs.  ``skip_dead=True`` additionally releases a
  pin whose DCI currently has zero live workers (every node inside an
  unavailability interval) to the fallback instead of stalling the
  BoT behind a dead grid;
* ``affinity_learned`` — affinity without the hand-written map: the
  category→DCI pins are *fitted from the archive*, each category
  pinned to the candidate DCI with the lowest archived mean tail
  slowdown for that category.  Categories the plane has never seen
  fall back to round robin;
* ``cheapest_drain`` — cost-aware routing over the economics plane:
  score = ``(1 + drain_seconds) × rate`` where the rate is the
  credits/CPU·h the DCI's cloud provider quotes in the scenario's
  :class:`~repro.economics.pricing.PriceBook`.  Warm (archived
  throughput on every live candidate) the drain estimate is the
  plane's, exactly as ``history_weighted``; cold it *degrades to
  least_loaded's instantaneous load ratio* as the drain proxy — still
  price-weighted, so a cheap provider is preferred from the first
  arrival and a uniform book reproduces ``least_loaded``'s decisions
  exactly (a constant factor preserves the argmin and its ties).

Routers are tiny stateful objects (the round-robin cursor); one router
instance serves one scenario.  They rank *targets*: any object with a
``name`` and a ``server`` exposing the :class:`~repro.middleware.base.
DGServer` load probes (``busy_count``/``backlog``) and a ``pool`` with
``idle_count``.  The history-fed policies additionally take the
scenario's plane (duck-typed; only ``dci_throughput`` and
``dci_slowdown`` are called), which :func:`make_router` threads
through.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["ROUTING_POLICIES", "Router", "RoundRobinRouter",
           "LeastLoadedRouter", "HistoryWeightedRouter", "AffinityRouter",
           "LearnedAffinityRouter", "CheapestDrainRouter", "make_router"]

ROUTING_POLICIES = ("round_robin", "least_loaded", "history_weighted",
                    "affinity", "affinity_learned", "cheapest_drain")


class Router:
    """Base router: picks the index of the DCI an arriving BoT joins."""

    name = "base"

    def route(self, category: str, targets: Sequence, now: float) -> int:
        """Index into ``targets`` for a BoT of ``category`` arriving now."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle over the DCIs in declaration order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        i = self._next % len(targets)
        self._next += 1
        return i


def _outstanding(target) -> int:
    """Outstanding execution units: busy workers plus queued backlog."""
    server = target.server
    return server.busy_count() + server.backlog()


def _drain_loads(targets: Sequence, plane,
                 now: float) -> Optional[List[float]]:
    """Expected drain seconds per target from the plane's smoothed
    throughput, or None unless *every* live target has usable history
    (a mixed instantaneous/historical ranking would compare unrelated
    units).  A target with zero live workers ranks as infinitely
    loaded regardless of its archived throughput — the dead-DCI
    invariant of the instantaneous probe carries over (history says
    how fast the DCI drains *when it has workers*; right now it has
    none)."""
    if plane is None:
        return None
    loads = []
    for target in targets:
        server = target.server
        if server.busy_count() + server.pool.idle_count(now) == 0:
            loads.append(math.inf)
            continue
        rate = plane.dci_throughput(target.name)
        if rate is None or rate <= 0:
            return None
        loads.append(_outstanding(target) / rate)
    return loads


class LeastLoadedRouter(Router):
    """Pick the DCI with the lowest outstanding-work / live-worker ratio.

    Live workers = workers currently executing a unit plus idle nodes
    currently inside an availability interval; outstanding work =
    queued pending units plus the busy ones.  A DCI with *no* live
    workers (every node in an unavailability interval) ranks as
    infinitely loaded — work sent there stalls until nodes return.
    Ties (e.g. every DCI idle) resolve to the earliest-declared DCI,
    which keeps the policy deterministic.

    With a history plane attached (and archived executions for every
    candidate) the ranking uses the smoothed-throughput drain estimate
    instead of the instantaneous live count; see the module docstring.
    """

    name = "least_loaded"

    def __init__(self, plane=None):
        self.plane = plane

    @staticmethod
    def load_of(target, now: float) -> float:
        server = target.server
        busy = server.busy_count()
        live = busy + server.pool.idle_count(now)
        if live == 0:
            return math.inf
        return (busy + server.backlog()) / live

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        loads = _drain_loads(targets, self.plane, now)
        if loads is None:
            loads = [self.load_of(t, now) for t in targets]
        return int(min(range(len(targets)), key=loads.__getitem__))


class HistoryWeightedRouter(Router):
    """Drain-time routing weighted by per-category archived slowdown.

    Score of a DCI = ``(1 + drain_seconds) × slowdown(category)``:
    the expected time to drain its outstanding work at the throughput
    the plane archived, inflated by how badly (mean tail slowdown)
    the DCI historically served this BoT category.  Environments the
    plane has not seen weight 1.0; when no target has throughput
    history at all, the policy degrades to instantaneous least-loaded
    ranking (so a cold scenario behaves exactly like ``least_loaded``).
    """

    name = "history_weighted"

    def __init__(self, plane=None):
        self.plane = plane

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        drains = _drain_loads(targets, self.plane, now)
        if drains is None:
            return LeastLoadedRouter().route(category, targets, now)
        scores = []
        for target, drain in zip(targets, drains):
            if math.isinf(drain):      # dead DCI: never preferred
                scores.append(math.inf)
                continue
            slowdown = self.plane.dci_slowdown(target.name, category)
            if slowdown is None or not math.isfinite(slowdown) \
                    or slowdown <= 0:
                slowdown = 1.0
            scores.append((1.0 + drain) * slowdown)
        return int(min(range(len(targets)), key=scores.__getitem__))


class AffinityRouter(Router):
    """Category→DCI pinning with a round-robin fallback.

    ``affinity`` maps upper-cased BoT categories to DCI *names*; a BoT
    whose category is unmapped (or mapped to a DCI absent from the
    scenario) falls back to round robin over every DCI.  With
    ``skip_dead=True`` a pin whose DCI has zero live workers at
    routing time also falls back (default off: the historical
    behavior honors the pin unconditionally).
    """

    name = "affinity"

    def __init__(self, affinity: Optional[Dict[str, str]] = None,
                 skip_dead: bool = False):
        self.affinity = {k.upper(): v for k, v in (affinity or {}).items()}
        self.skip_dead = skip_dead
        self._fallback = RoundRobinRouter()

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        wanted = self.affinity.get(category.upper())
        if wanted is not None:
            for i, target in enumerate(targets):
                if target.name == wanted:
                    if self.skip_dead and math.isinf(
                            LeastLoadedRouter.load_of(target, now)):
                        break
                    return i
        return self._fallback.route(category, targets, now)


class LearnedAffinityRouter(Router):
    """Affinity pins fitted from the archive instead of hand-written.

    Each arrival's category is pinned to the candidate DCI with the
    lowest archived mean tail slowdown for that category (ties to the
    earliest-declared DCI); categories without history on any
    candidate fall back to round robin.  The fit is re-read per
    arrival, so the pins sharpen as the archive fills — the ROADMAP's
    "affinity learning" item.
    """

    name = "affinity_learned"

    def __init__(self, plane=None):
        self.plane = plane
        self._fallback = RoundRobinRouter()

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        if self.plane is not None:
            best = None
            best_slowdown = math.inf
            for i, target in enumerate(targets):
                slowdown = self.plane.dci_slowdown(target.name, category)
                if slowdown is not None and slowdown < best_slowdown:
                    best, best_slowdown = i, slowdown
            if best is not None:
                return best
        return self._fallback.route(category, targets, now)


class CheapestDrainRouter(Router):
    """Cost-aware routing: expected drain time × provider price.

    Score of a DCI = ``(1 + drain) × rate``, with ``rate`` the
    credits/CPU·h its cloud provider quotes in the scenario's
    :class:`~repro.economics.pricing.PriceBook` and ``drain`` the
    plane's throughput-based estimate when every live candidate has
    history, else ``least_loaded``'s instantaneous load ratio (the
    cold degradation — see the module docstring).  A dead DCI (zero
    live workers) is never preferred whatever its price.  Targets
    without a ``driver`` (or an unpriced provider) are charged the
    book's default rate.
    """

    name = "cheapest_drain"

    def __init__(self, plane=None, pricebook=None):
        self.plane = plane
        if pricebook is None:
            from repro.economics.pricing import PriceBook
            pricebook = PriceBook()
        self.book = pricebook

    def _rate_of(self, target, now: float) -> float:
        driver = getattr(target, "driver", None)
        provider = getattr(driver, "name", None)
        if provider is None:
            return self.book.default
        return self.book.rate(provider, now)

    def route(self, category: str, targets: Sequence, now: float) -> int:
        if not targets:
            raise ValueError("no DCIs to route to")
        drains = _drain_loads(targets, self.plane, now)
        if drains is None:
            drains = [LeastLoadedRouter.load_of(t, now) for t in targets]
        scores = []
        for target, drain in zip(targets, drains):
            if math.isinf(drain):      # dead DCI: never preferred
                scores.append(math.inf)
                continue
            scores.append((1.0 + drain) * self._rate_of(target, now))
        return int(min(range(len(targets)), key=scores.__getitem__))


def make_router(policy: str,
                affinity: Optional[Dict[str, str]] = None,
                plane=None, pricebook=None) -> Router:
    """Instantiate a routing policy by name.

    ``plane`` (a :class:`~repro.history.plane.HistoryPlane`) feeds the
    history-driven policies and ``pricebook`` (a
    :class:`~repro.economics.pricing.PriceBook`) the cost-aware one;
    policies that ignore them accept them anyway so callers can thread
    the scenario's plane and book unconditionally.
    """
    if policy == "round_robin":
        return RoundRobinRouter()
    if policy == "least_loaded":
        # deliberately NOT plane-fed here: the named policy keeps its
        # historical instantaneous probes (drift-pinned scenarios);
        # construct LeastLoadedRouter(plane=...) directly — or pick
        # history_weighted — to opt into the throughput probe.
        return LeastLoadedRouter()
    if policy == "history_weighted":
        return HistoryWeightedRouter(plane=plane)
    if policy == "affinity":
        return AffinityRouter(affinity)
    if policy == "affinity_learned":
        return LearnedAffinityRouter(plane=plane)
    if policy == "cheapest_drain":
        return CheapestDrainRouter(plane=plane, pricebook=pricebook)
    raise ValueError(f"unknown routing policy {policy!r}; available: "
                     f"{', '.join(ROUTING_POLICIES)}")
