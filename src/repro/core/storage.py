"""History archive backends for the Information module.

The production SpeQuloS keeps BoT execution history in MySQL; the
reproduction offers an in-memory store (used by simulations) and a
SQLite store (stdlib, used when persistence across processes matters,
e.g. the prediction-service example).  Both implement the same
:class:`HistoryStore` interface, so the Oracle does not care.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Protocol

import numpy as np

__all__ = ["ExecutionRecord", "HistoryStore", "InMemoryHistoryStore",
           "SQLiteHistoryStore"]


@dataclass(frozen=True)
class ExecutionRecord:
    """Archived summary of one finished BoT execution.

    ``grid[i]`` is ``tc((i+1)/100)`` — elapsed seconds when (i+1) % of
    the BoT had completed — NaN-padded if the grid was truncated.
    """

    env_key: str
    n_tasks: int
    makespan: float
    grid: np.ndarray

    def tc_at(self, fraction: float) -> float:
        """tc(fraction) looked up on the percent grid (nearest cell)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        idx = min(99, max(0, int(round(fraction * 100)) - 1))
        return float(self.grid[idx])


class HistoryStore(Protocol):
    """Interface shared by archive backends."""

    def add(self, rec: ExecutionRecord) -> None: ...

    def fetch(self, env_key: str) -> List[ExecutionRecord]: ...

    def env_keys(self) -> List[str]: ...

    def __len__(self) -> int: ...


class InMemoryHistoryStore:
    """Dict-of-lists archive; the default for simulations."""

    def __init__(self) -> None:
        self._data: Dict[str, List[ExecutionRecord]] = {}
        self._count = 0

    def add(self, rec: ExecutionRecord) -> None:
        self._data.setdefault(rec.env_key, []).append(rec)
        self._count += 1

    def fetch(self, env_key: str) -> List[ExecutionRecord]:
        return list(self._data.get(env_key, ()))

    def env_keys(self) -> List[str]:
        return sorted(self._data)

    def __len__(self) -> int:
        return self._count


class SQLiteHistoryStore:
    """SQLite-backed archive (``:memory:`` or a file path)."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS executions (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        env_key TEXT NOT NULL,
        n_tasks INTEGER NOT NULL,
        makespan REAL NOT NULL,
        grid TEXT NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_env ON executions (env_key);
    """

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()

    def add(self, rec: ExecutionRecord) -> None:
        grid_json = json.dumps([None if np.isnan(v) else float(v)
                                for v in rec.grid])
        self._conn.execute(
            "INSERT INTO executions (env_key, n_tasks, makespan, grid) "
            "VALUES (?, ?, ?, ?)",
            (rec.env_key, rec.n_tasks, rec.makespan, grid_json))
        self._conn.commit()

    def fetch(self, env_key: str) -> List[ExecutionRecord]:
        rows = self._conn.execute(
            "SELECT env_key, n_tasks, makespan, grid FROM executions "
            "WHERE env_key = ? ORDER BY id", (env_key,)).fetchall()
        out = []
        for env, n, mk, grid_json in rows:
            grid = np.array([np.nan if v is None else v
                             for v in json.loads(grid_json)])
            out.append(ExecutionRecord(env, n, mk, grid))
        return out

    def env_keys(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT env_key FROM executions ORDER BY env_key")
        return [r[0] for r in rows.fetchall()]

    def __len__(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM executions").fetchone()
        return int(n)

    def close(self) -> None:
        self._conn.close()
