"""Compatibility shim: history backends moved to :mod:`repro.history`.

The archive backends grew into the history-plane subsystem
(:mod:`repro.history`): records and process-local stores in
:mod:`repro.history.records`, the cross-run salted store in
:mod:`repro.history.persistent`, the query façade in
:mod:`repro.history.plane`.  This module keeps the historical import
path alive for existing callers.
"""

from repro.history.records import (
    ExecutionRecord,
    HistoryStore,
    InMemoryHistoryStore,
    SQLiteHistoryStore,
)

__all__ = ["ExecutionRecord", "HistoryStore", "InMemoryHistoryStore",
           "SQLiteHistoryStore"]
