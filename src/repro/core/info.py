"""Information module: BoT execution monitoring and history (§3.2).

"The Information module stores in a database the BoT completion history
as a time series of the number of completed tasks, the number of tasks
assigned to workers and the number of tasks waiting in the scheduler
queue."  One :class:`BoTMonitor` per QoS-enabled BoT subscribes to the
DG server's observer protocol and records exactly that; the key design
point the paper stresses — *infrastructure idiosyncrasies are hidden*,
BOINC and XWHEP feed the same unified format — holds here because both
middleware emit the same events.

The archive side (used by the Oracle's statistical prediction, the
history-fed routers and the admission controller) stores, per finished
execution, the completion-time grid ``tc(x)`` for ``x = 1%..100%``
plus the credits the execution billed, under an *environment key*
(BE-DCI, middleware, BoT category), through the
:class:`~repro.history.plane.HistoryPlane` — whose backend is
pluggable (in-memory by default, persistent SQLite for cross-run
learning; see :mod:`repro.history`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

# GRID_FRACTIONS and tc_grid moved to repro.history.records; re-exported
# here because monitors produce the grids the archive consumes.
from repro.history import (
    GRID_FRACTIONS,
    ExecutionRecord,
    HistoryPlane,
    HistoryStore,
    tc_grid,
)
from repro.middleware.base import GTID
from repro.workload.bot import BagOfTasks

__all__ = ["BoTMonitor", "GRID_FRACTIONS", "InformationModule", "tc_grid"]


class BoTMonitor:
    """Per-BoT real-time execution record (one per registerQoS call).

    All times are *relative to the QoS registration / submission
    instant* (``t0``), matching the paper's completion-ratio curves.
    """

    def __init__(self, bot: BagOfTasks, t0: float):
        self.bot = bot
        self.bot_id = bot.bot_id
        self.t0 = float(t0)
        self.total = bot.size
        self.arrived = 0
        self.completion_times: List[float] = []   # sorted by construction
        self.assignment_times: List[float] = []   # first assignments
        #: sampled (t, completed, assigned, waiting) series
        self.series: List[Tuple[float, int, int, int]] = []
        self.completed_at_time: Optional[float] = None

    # ----------------------------------------------------------- events
    def on_task_arrived(self, gtid: GTID, t: float) -> None:
        if gtid[0] != self.bot_id:
            return
        self.arrived += 1

    def on_task_first_assigned(self, gtid: GTID, t: float) -> None:
        if gtid[0] != self.bot_id:
            return
        self.assignment_times.append(t - self.t0)

    def on_task_completed(self, gtid: GTID, t: float) -> None:
        if gtid[0] != self.bot_id:
            return
        self.completion_times.append(t - self.t0)

    def on_bot_completed(self, bot_id: str, t: float) -> None:
        if bot_id != self.bot_id:
            return
        self.completed_at_time = t - self.t0

    def sample(self, t: float) -> None:
        """Record a (t, completed, assigned, waiting) monitoring point."""
        rel = t - self.t0
        completed = len(self.completion_times)
        assigned = len(self.assignment_times)
        waiting = max(0, self.arrived - assigned)
        self.series.append((rel, completed, assigned, waiting))

    # ---------------------------------------------------------- queries
    @property
    def completed_count(self) -> int:
        return len(self.completion_times)

    @property
    def assigned_count(self) -> int:
        return len(self.assignment_times)

    @property
    def done(self) -> bool:
        return self.completed_count >= self.total

    def fraction_completed(self) -> float:
        return self.completed_count / self.total

    def fraction_assigned(self) -> float:
        return self.assigned_count / self.total

    def tc(self, fraction: float) -> Optional[float]:
        """Elapsed time when ``fraction`` of the BoT completed, or None."""
        return self._at_fraction(self.completion_times, fraction)

    def ta(self, fraction: float) -> Optional[float]:
        """Elapsed time when ``fraction`` of the BoT was assigned."""
        return self._at_fraction(self.assignment_times, fraction)

    def _at_fraction(self, series: List[float],
                     fraction: float) -> Optional[float]:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        k = max(1, math.ceil(fraction * self.total))
        if k > len(series):
            return None
        return series[k - 1]

    def execution_variance(self, fraction: float) -> Optional[float]:
        """``var(x) = tc(x) - ta(x)`` (§3.5, Execution Variance).

        The lag between assigning and completing the x-th fraction; a
        sudden growth signals the system left its steady state.
        """
        c = self.tc(fraction)
        a = self.ta(fraction)
        if c is None or a is None:
            return None
        return c - a

    def grid(self) -> np.ndarray:
        """Archived ``tc`` percent grid for this (finished) execution."""
        return tc_grid(self.completion_times, self.total)


class InformationModule:
    """Registry of live monitors plus the execution-history archive.

    ``store`` accepts a :class:`~repro.history.plane.HistoryPlane`
    (shared, possibly persistent) or any bare
    :class:`~repro.history.records.HistoryStore` backend, which is
    wrapped in a fresh plane; by default the archive is in-memory and
    private to this module, exactly as before the history plane
    existed.  ``self.plane`` is the query surface; ``self.store``
    remains the raw backend for callers that predate the plane.
    """

    def __init__(self, store: Union[HistoryPlane, HistoryStore,
                                    None] = None):
        self.monitors: Dict[str, BoTMonitor] = {}
        self.plane: HistoryPlane = HistoryPlane.ensure(store)
        self.store: HistoryStore = self.plane.backend

    # ------------------------------------------------------------- live
    def register(self, bot: BagOfTasks, t0: float) -> BoTMonitor:
        if bot.bot_id in self.monitors:
            raise ValueError(f"BoT {bot.bot_id!r} already registered")
        mon = BoTMonitor(bot, t0)
        self.monitors[bot.bot_id] = mon
        return mon

    def monitor(self, bot_id: str) -> BoTMonitor:
        return self.monitors[bot_id]

    # ---------------------------------------------------------- archive
    def archive_execution(self, env_key: str, mon: BoTMonitor,
                          credits_spent: float = 0.0,
                          provider: str = "") -> None:
        """Store a finished execution's profile for future predictions.

        ``provider`` tags the record with the cloud that supplemented
        the execution (the history plane's provider dimension: learned
        credit costs become per-cloud).
        """
        self.plane.archive(env_key, mon, credits_spent=credits_spent,
                           provider=provider)

    def history(self, env_key: str) -> List[ExecutionRecord]:
        return self.plane.fetch(env_key)
