"""Cloud resource provisioning strategies (paper §3.5).

A strategy combination answers three questions:

* **when** to start Cloud workers —
  ``9C`` Completion Threshold (90 % of tasks completed),
  ``9A`` Assignment Threshold (90 % of tasks assigned),
  ``D``  Execution Variance (the completion/assignment lag doubles
  versus its first-half maximum);
* **how many** to start, given credits worth ``S`` CPU·hours —
  ``G`` Greedy (all ``S`` at once, idle ones released immediately),
  ``C`` Conservative (enough to last the estimated remaining time:
  ``min(S/tr, S)``, see DESIGN.md on the paper's ``max`` typo);
* **how** to use them —
  ``F`` Flat (join the regular worker pool),
  ``R`` Reschedule (served pending tasks first, then duplicates of
  running ones),
  ``D`` Cloud duplication (separate cloud-side server executing copies
  of every uncompleted task).

Combination names follow the paper: ``9A-G-D`` = assignment threshold +
greedy + cloud duplication.  All 18 combinations are enumerated in
:data:`ALL_COMBOS`; the paper's recommended compromise is ``9C-C-R``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List

from repro.core.info import BoTMonitor

__all__ = [
    "StrategyCombo", "parse_combo", "ALL_COMBOS",
    "WHEN_COMPLETION", "WHEN_ASSIGNMENT", "WHEN_VARIANCE",
    "SIZE_GREEDY", "SIZE_CONSERVATIVE",
    "DEPLOY_FLAT", "DEPLOY_RESCHEDULE", "DEPLOY_CLOUD_DUP",
]

WHEN_COMPLETION = "9C"
WHEN_ASSIGNMENT = "9A"
WHEN_VARIANCE = "D"
SIZE_GREEDY = "G"
SIZE_CONSERVATIVE = "C"
DEPLOY_FLAT = "F"
DEPLOY_RESCHEDULE = "R"
DEPLOY_CLOUD_DUP = "D"

_WHEN = (WHEN_COMPLETION, WHEN_ASSIGNMENT, WHEN_VARIANCE)
_SIZE = (SIZE_GREEDY, SIZE_CONSERVATIVE)
_DEPLOY = (DEPLOY_FLAT, DEPLOY_RESCHEDULE, DEPLOY_CLOUD_DUP)


@dataclass(frozen=True)
class StrategyCombo:
    """One point of the 3 x 2 x 3 strategy space."""

    when: str = WHEN_COMPLETION
    size: str = SIZE_CONSERVATIVE
    deploy: str = DEPLOY_RESCHEDULE
    #: trigger fraction of the threshold strategies (paper: 0.9)
    threshold: float = 0.9
    #: variance trigger multiplier (paper: 2x the first-half maximum)
    variance_factor: float = 2.0
    #: use the paper's literal ``max(S/tr, S)`` conservative formula
    conservative_literal_max: bool = False

    def __post_init__(self) -> None:
        if self.when not in _WHEN:
            raise ValueError(f"unknown when-policy {self.when!r}")
        if self.size not in _SIZE:
            raise ValueError(f"unknown size-policy {self.size!r}")
        if self.deploy not in _DEPLOY:
            raise ValueError(f"unknown deploy-policy {self.deploy!r}")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if self.variance_factor <= 1.0:
            raise ValueError("variance_factor must exceed 1")

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Paper-style combination name, e.g. ``9C-C-R``."""
        return f"{self.when}-{self.size}-{self.deploy}"

    def with_threshold(self, threshold: float) -> "StrategyCombo":
        return replace(self, threshold=threshold)

    # ------------------------------------------------------- when-policy
    def should_start(self, mon: BoTMonitor) -> bool:
        """Evaluate the when-policy against live monitoring data."""
        if self.when == WHEN_COMPLETION:
            return mon.completed_count >= self.threshold * mon.total
        if self.when == WHEN_ASSIGNMENT:
            return mon.assigned_count >= self.threshold * mon.total
        return self._variance_trigger(mon)

    def _variance_trigger(self, mon: BoTMonitor) -> bool:
        """var(c) >= factor * max(var(x), x in (0, 50%]) (§3.5).

        Evaluated on the integer percent grid; needs the first half of
        the BoT completed before the reference maximum is defined.
        """
        c = mon.fraction_completed()
        if c <= 0.5:
            return False
        ref = 0.0
        for pct in range(1, 51):
            v = mon.execution_variance(pct / 100.0)
            if v is not None and v > ref:
                ref = v
        cur = mon.execution_variance(math.floor(c * 100) / 100.0)
        if cur is None or ref <= 0.0:
            return False
        return cur >= self.variance_factor * ref

    # ------------------------------------------------------- size-policy
    def workers_to_start(self, mon: BoTMonitor, cpu_hours: float,
                         now: float) -> int:
        """How many Cloud workers to launch, given ``S = cpu_hours``.

        Greedy: ``S`` workers at once.  Conservative: enough workers to
        run until the (constant-completion-rate) estimated end of the
        BoT without exhausting the escrow: ``min(S / tr, S)``.
        """
        s_workers = max(1, math.floor(cpu_hours))
        if self.size == SIZE_GREEDY:
            return s_workers
        xe = mon.fraction_completed()
        tc_xe = mon.tc(xe) if xe > 0 else None
        if not xe or tc_xe is None or tc_xe <= 0:
            return s_workers  # nothing to extrapolate from yet
        remaining = tc_xe / xe - tc_xe  # tr = tc(1) - tc(xe), §3.5
        tr_hours = max(remaining / 3600.0, 1e-6)
        by_budget = cpu_hours / tr_hours
        n = max(by_budget, s_workers) if self.conservative_literal_max \
            else min(by_budget, s_workers)
        return max(1, math.floor(n))


def parse_combo(name: str) -> StrategyCombo:
    """Parse a paper-style combination name like ``"9A-G-D"``."""
    parts = name.strip().upper().split("-")
    if len(parts) != 3:
        raise ValueError(f"expected WHEN-SIZE-DEPLOY, got {name!r}")
    when, size, deploy = parts
    return StrategyCombo(when=when, size=size, deploy=deploy)


def _all_combos() -> List[StrategyCombo]:
    return [StrategyCombo(when=w, size=s, deploy=d)
            for w in _WHEN for s in _SIZE for d in _DEPLOY]


#: the full 18-combination grid evaluated in Figures 4 and 5
ALL_COMBOS: List[StrategyCombo] = _all_combos()
