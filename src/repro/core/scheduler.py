"""Scheduler module: Cloud worker lifecycle management (§3.6).

The Scheduler periodically checks every QoS-enabled BoT (Algorithm 1):
if credits are provisioned and the Oracle's when-policy fires, it
starts the Oracle-sized batch of Cloud workers, connects them to the
BE-DCI according to the deployment strategy, and then (Algorithm 2)
keeps billing their usage each period, stopping workers that starve or
whose BoT completed, and stopping everything when the escrowed credits
run out.

Billing model: Cloud worker *usage* is billed — the CPU time actually
spent computing units (§3.3 prices "1 CPU.hour of Cloud worker usage"
at 15 credits) — measured exactly through the middleware's busy
accounting and charged each tick.  Pricing is owned by the economics
plane: the Scheduler charges usage through a
:class:`~repro.economics.billing.BillingMeter` reading per-provider
rates from the scenario's :class:`~repro.economics.pricing.PriceBook`
(default: a uniform book at ``config.credits_per_cpu_hour``, which is
float-for-float the historical inline formula).  Workers persist until the BoT
completes or the escrowed credits run out ("If all the credits
allocated to the BoT have been spent, or if the BoT execution is
completed, Cloud workers are stopped"); an optional ``idle_grace``
releases long-idle workers early, and never-assigned workers of a
Greedy launch are released after one tick (§3.5's release rule).
Stops are graceful: a unit already running on a stopped worker
completes, and its final partial billing is settled at stop time.

Multi-tenant arbitration (§5's shared-service regime): when several
QoS runs compete for one Cloud supplement — the EDGI deployment serves
many users' BoTs concurrently — a :class:`CloudArbiter` rations a
global worker budget and the shared credit pool between them.  Three
policies are provided:

* ``fifo`` — runs are served in registration order; whoever triggers
  first may take the whole budget (queueing discipline);
* ``fairshare`` — each pool member's total spend is capped at an equal
  split of the pooled provision, and the worker budget is divided
  evenly (max-min style fairness);
* ``deadline`` — earliest-deadline-first: runs closest to their
  deadline are served first (EDF over the FIFO allocation rule).

In a *federated* scenario (one SpeQuloS over several DCIs and clouds,
the paper's Figure 8 topology) the same arbiter spans every binding:
the global worker budget counts workers across all clouds, and
optional per-DCI caps (uniform or per binding) bound how much of the
supplement any single DCI may draw.

Without an arbiter the Scheduler behaves exactly as the single-BoT
paper algorithms.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.api import ComputeDriver, QuotaExceeded
from repro.cloud.worker import (
    CloudDuplicationCoordinator,
    CloudWorkerHandle,
    RescheduleAgent,
)
from repro.core.credit import CREDITS_PER_CPU_HOUR, CreditSystem
from repro.core.info import BoTMonitor, InformationModule
from repro.core.ledger import HandleLedger
from repro.economics.billing import BillingMeter
from repro.economics.pricing import PriceBook
from repro.core.oracle import Oracle
from repro.core.strategies import (
    DEPLOY_CLOUD_DUP,
    DEPLOY_FLAT,
    DEPLOY_RESCHEDULE,
    SIZE_GREEDY,
    StrategyCombo,
)
from repro.middleware.base import DGServer
from repro.simulator.engine import PRIORITY_MONITOR, Event, Simulation

__all__ = ["SchedulerConfig", "QoSRun", "SpeQuloSScheduler",
           "CloudArbiter", "ARBITRATION_POLICIES", "SCHED_TELEMETRY",
           "reset_sched_telemetry"]

#: per-tick telemetry (process-wide, reset by the engine bench):
#: ``ticks`` = scheduler ticks run, ``tick_wall`` = wall seconds spent
#: inside ``_tick``, ``scalar_fallbacks`` = billing scans routed to the
#: exact per-handle replay because a tick might exhaust the escrow.
SCHED_TELEMETRY = {"ticks": 0, "tick_wall": 0.0, "scalar_fallbacks": 0}


def reset_sched_telemetry() -> None:
    SCHED_TELEMETRY["ticks"] = 0
    SCHED_TELEMETRY["tick_wall"] = 0.0
    SCHED_TELEMETRY["scalar_fallbacks"] = 0


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler tuning knobs."""

    #: monitor / billing loop period (seconds)
    tick_period: float = 60.0
    credits_per_cpu_hour: float = CREDITS_PER_CPU_HOUR
    #: release workers idle longer than this (None: keep them until
    #: BoT completion / credit exhaustion, as the paper's Scheduler
    #: does — idle time costs nothing under usage billing)
    idle_grace: Optional[float] = None
    #: never-assigned workers of a *Greedy* launch stop after one tick
    #: ("Cloud workers that do not have tasks assigned stop
    #: immediately to release the credits", §3.5)
    greedy_release_grace: float = 60.0
    #: hard cap on workers per BoT (sanity bound below provider quota)
    max_workers: int = 500

    def __post_init__(self) -> None:
        if self.tick_period <= 0:
            raise ValueError("tick_period must be > 0")
        if self.idle_grace is not None and self.idle_grace < 0:
            raise ValueError("idle_grace must be >= 0 or None")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")


@dataclass
class QoSRun:
    """Scheduler-side state of one QoS-supported BoT."""

    bot_id: str
    server: DGServer
    driver: ComputeDriver
    monitor: BoTMonitor
    oracle: Oracle
    combo: StrategyCombo
    started: bool = False
    finished: bool = False
    started_at: Optional[float] = None
    workers_launched: int = 0
    handles: List[CloudWorkerHandle] = field(default_factory=list)
    coordinator: Optional[CloudDuplicationCoordinator] = None
    stop_reason: Optional[str] = None
    #: absolute completion deadline (deadline-proximity arbitration)
    deadline: Optional[float] = None
    #: columnar mirror of ``handles`` billing state (shares the list)
    ledger: HandleLedger = field(default_factory=HandleLedger)

    def __post_init__(self) -> None:
        # the ledger and the run expose ONE handle list: appends go
        # through ledger.append, which keeps the columns in sync
        self.ledger.handles = self.handles

    def active_workers(self) -> int:
        """Workers not yet stopped — O(1) via the ledger's counter."""
        return self.ledger.active


# ---------------------------------------------------------------------------
# multi-tenant arbitration
# ---------------------------------------------------------------------------
ARBITRATION_POLICIES = ("fifo", "fairshare", "deadline")


class CloudArbiter:
    """Rations Cloud workers and pooled credits across concurrent runs.

    Plugged into :class:`SpeQuloSScheduler`, it intercepts the two
    resource decisions of Algorithm 1 — how large a credit budget a
    launch may size against, and how many workers it may actually
    start — and orders the per-tick service sequence.  See the module
    docstring for the three policies.

    ``max_total_workers`` bounds *concurrently active* Cloud workers
    summed over every managed run (the limited cloud supplement);
    ``None`` leaves workers bounded only by per-run/provider caps.

    Cross-DCI federation (one arbiter over several bindings): the
    global budget already spans every run regardless of which DCI
    (server + cloud driver) it is bound to, because runs carry their
    own bindings.  Two optional *per-DCI* caps refine it:
    ``max_dci_workers`` bounds the concurrently active workers of the
    runs sharing any one DG server, and ``dci_caps`` overrides that
    bound for individually named servers (keyed by ``server.name``) —
    e.g. a small on-site StratusLab behind one DCI and a large EC2
    behind another.
    """

    def __init__(self, policy: str = "fairshare",
                 max_total_workers: Optional[int] = None,
                 max_dci_workers: Optional[int] = None,
                 dci_caps: Optional[Dict[str, int]] = None,
                 admission=None):
        if policy not in ARBITRATION_POLICIES:
            raise ValueError(f"unknown arbitration policy {policy!r}; "
                             f"available: {', '.join(ARBITRATION_POLICIES)}")
        if max_total_workers is not None and max_total_workers < 1:
            raise ValueError("max_total_workers must be >= 1 or None")
        if max_dci_workers is not None and max_dci_workers < 1:
            raise ValueError("max_dci_workers must be >= 1 or None")
        for name, cap in (dci_caps or {}).items():
            if cap < 1:
                raise ValueError(f"dci_caps[{name!r}] must be >= 1")
        self.policy = policy
        self.max_total_workers = max_total_workers
        self.max_dci_workers = max_dci_workers
        self.dci_caps = dict(dci_caps or {})
        #: optional :class:`~repro.core.admission.AdmissionController`
        #: gating pooled QoS orders on the history plane's predicted
        #: credit cost (the scenario harness consults it at admission
        #: time; the scheduler releases its commitments on finalize)
        self.admission = admission

    # ------------------------------------------------------------------
    def service_order(self, runs: Sequence[QoSRun],
                      now: float) -> List[QoSRun]:
        """Per-tick ordering: who gets first claim on free resources."""
        runs = list(runs)
        if self.policy == "deadline":
            runs.sort(key=lambda r: math.inf if r.deadline is None
                      else r.deadline)
        return runs

    def credit_budget(self, run: QoSRun, credits) -> float:
        """Spendable credits a launch may size against.

        ``credits`` is the scheduler's
        :class:`~repro.economics.billing.BillingMeter` (a bare
        :class:`~repro.core.credit.CreditSystem` also works — only the
        pool-aware ``remaining_for`` view is read).  FIFO/deadline
        runs see the full remaining escrow (first-come / most-urgent
        takes all); fair-share runs see their rebalanced allowance
        slice (see :meth:`rebalance`).
        """
        return credits.remaining_for(run.bot_id)

    def rebalance(self, scheduler: "SpeQuloSScheduler") -> None:
        """Fair share as progressive filling (max-min): each tick,
        every open pooled order's spend cap is reset to its equal
        slice of what the pool still holds.

        ``allowance_i = spent_i + remaining / k`` where ``k`` counts
        the claimants still entitled to a slice: open member orders
        plus declared members that have not joined yet.  Tenants that
        finish under their slice return the surplus to the split, so
        heavy tails can draw more once light ones complete — while no
        single run can raid the slices reserved for the others (the
        per-tick total of the caps never exceeds the remainder).
        """
        if self.policy != "fairshare":
            return
        credits = scheduler.credits
        by_pool: Dict[str, List] = {}
        for run in scheduler.runs.values():
            order = credits.get_order(run.bot_id)
            if order is None or order.closed or order.pool is None:
                continue
            by_pool.setdefault(order.pool, []).append(order)
        for pool_id, orders in by_pool.items():
            pool = credits.get_pool(pool_id)
            assert pool is not None
            open_members = sum(
                1 for m in pool.members
                if (o := credits.get_order(m)) is not None and not o.closed)
            unjoined = max(0, (pool.expected_members or 0)
                           - len(pool.members))
            k = max(1, open_members + unjoined)
            slice_ = pool.remaining / k
            for order in orders:
                credits.set_allowance(order.bot_id, order.spent + slice_)

    def _dci_cap(self, run: QoSRun) -> Optional[int]:
        """Per-DCI worker bound applying to this run's binding."""
        name = getattr(run.server, "name", None)
        if name is not None and name in self.dci_caps:
            return self.dci_caps[name]
        return self.max_dci_workers

    def worker_grant(self, run: QoSRun, desired: int,
                     scheduler: "SpeQuloSScheduler") -> int:
        """Workers the run may actually start, given the global budget
        and (in a federation) the per-DCI bound of its binding."""
        if desired <= 0:
            return 0
        dci_cap = self._dci_cap(run)
        if self.max_total_workers is None and dci_cap is None:
            return desired
        free = desired
        if self.max_total_workers is not None:
            # maintained at launch/stop — O(1) instead of O(runs×handles)
            active = scheduler.active_worker_total()
            free = max(0, self.max_total_workers - active)
            if self.policy == "fairshare":
                # finished tenants hand their worker slice back to the rest
                n_peers = max(1, sum(1 for r in scheduler.runs.values()
                                     if not r.finished))
                desired = min(desired,
                              max(1, self.max_total_workers // n_peers))
        if dci_cap is not None:
            active_here = scheduler.active_workers_on(run.server)
            free = min(free, max(0, dci_cap - active_here))
        return min(desired, free)


class SpeQuloSScheduler:
    """Algorithms 1 & 2 of the paper, over simulated clouds."""

    def __init__(self, sim: Simulation, info: InformationModule,
                 credits: CreditSystem,
                 config: Optional[SchedulerConfig] = None,
                 on_run_finished: Optional[Callable[[QoSRun], None]] = None,
                 arbiter: Optional[CloudArbiter] = None,
                 pricebook: Optional[PriceBook] = None):
        self.sim = sim
        self.info = info
        self.credits = credits
        self.config = config or SchedulerConfig()
        #: the economics plane's accounting source: every credit the
        #: scheduler bills flows through here, priced per provider
        #: (uniform at config.credits_per_cpu_hour unless the scenario
        #: attaches a price book)
        self.meter = BillingMeter(
            credits, pricebook if pricebook is not None
            else PriceBook.uniform(self.config.credits_per_cpu_hour))
        self.runs: Dict[str, QoSRun] = {}
        self._tick_ev: Optional[Event] = None
        self._on_run_finished = on_run_finished
        self.arbiter = arbiter
        # O(1) active-worker views for the arbiter, maintained at every
        # launch (+1) and stop transition (-1); per-server keyed by the
        # DGServer object identity (runs are never detached)
        self._active_total = 0
        self._active_by_server: Dict[DGServer, int] = {}

    def active_worker_total(self) -> int:
        """Concurrently active Cloud workers across every managed run."""
        return self._active_total

    def active_workers_on(self, server: DGServer) -> int:
        """Active Cloud workers of the runs bound to one DG server."""
        return self._active_by_server.get(server, 0)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def attach(self, bot_id: str, server: DGServer, driver: ComputeDriver,
               combo: StrategyCombo,
               deadline: Optional[float] = None) -> QoSRun:
        """Start managing QoS for a registered BoT."""
        if bot_id in self.runs:
            raise ValueError(f"BoT {bot_id!r} already managed")
        mon = self.info.monitor(bot_id)
        run = QoSRun(bot_id=bot_id, server=server, driver=driver,
                     monitor=mon, oracle=Oracle(self.info, combo),
                     combo=combo, deadline=deadline)
        self.runs[bot_id] = run
        server.add_observer(_CompletionWatcher(self, run))
        self._ensure_ticking()
        return run

    def _ensure_ticking(self) -> None:
        if self._tick_ev is None or self._tick_ev.cancelled:
            self._tick_ev = self.sim.schedule(
                self.config.tick_period, self._tick,
                priority=PRIORITY_MONITOR)

    # ------------------------------------------------------------------
    # monitor loop (Algorithms 1 and 2)
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        t0 = perf_counter()
        self._tick_ev = None
        runs: Sequence[QoSRun] = list(self.runs.values())
        if self.arbiter is not None:
            runs = self.arbiter.service_order(runs, self.sim.now)
            self.arbiter.rebalance(self)
        active = False
        for run in runs:
            if run.finished:
                continue
            active = True
            run.monitor.sample(self.sim.now)
            if run.monitor.done:
                self.finalize(run)
                continue
            if not run.started:
                if (self.credits.has_credits(run.bot_id)
                        and run.oracle.should_use_cloud(run.monitor)):
                    self._launch(run)
            else:
                self._bill_and_manage(run)
        if active:
            self._ensure_ticking()
        SCHED_TELEMETRY["ticks"] += 1
        SCHED_TELEMETRY["tick_wall"] += perf_counter() - t0

    # ------------------------------------------------------------------
    def _launch(self, run: QoSRun) -> None:
        """Size and start the Cloud worker batch (Algorithm 1)."""
        order = self.credits.get_order(run.bot_id)
        assert order is not None
        if self.arbiter is not None:
            budget = self.arbiter.credit_budget(run, self.meter)
        else:
            # pool-aware: a pooled order's own remaining is always 0
            budget = self.meter.remaining_for(run.bot_id)
        n = run.oracle.cloud_workers_to_start(
            run.monitor, budget,
            self.meter.rate_for(run.driver.name, self.sim.now),
            self.sim.now)
        n = min(n, self.config.max_workers)
        if self.arbiter is not None:
            n = self.arbiter.worker_grant(run, n, self)
        if n <= 0:
            return
        deploy = run.combo.deploy
        if deploy == DEPLOY_CLOUD_DUP:
            run.coordinator = CloudDuplicationCoordinator(
                self.sim, run.server, run.bot_id,
                on_starved=lambda coord, node, r=run:
                    self._stop_by_node(r, node))
            run.coordinator.sync()
        for _ in range(n):
            try:
                inst = run.driver.create_node(tag=f"speq-{run.bot_id}")
            except QuotaExceeded:
                break
            handle = CloudWorkerHandle(inst, deploy)
            if deploy == DEPLOY_FLAT:
                run.server.add_cloud_node(inst.node)
            elif deploy == DEPLOY_RESCHEDULE:
                agent = RescheduleAgent(
                    self.sim, run.server, inst.node,
                    on_starved=lambda a, r=run, h=handle:
                        self._stop_handle(r, h))
                handle.agent = agent
                agent.start()
            else:
                assert run.coordinator is not None
                run.coordinator.add_worker(inst.node)
            run.ledger.append(handle)  # appends to run.handles too
            run.workers_launched += 1
            self._active_total += 1
            self._active_by_server[run.server] = \
                self._active_by_server.get(run.server, 0) + 1
        run.started = True
        run.started_at = self.sim.now

    # ------------------------------------------------------------------
    def _handle_busy(self, run: QoSRun, handle: CloudWorkerHandle) -> bool:
        if handle.deploy_mode == DEPLOY_CLOUD_DUP:
            assert run.coordinator is not None
            return run.coordinator.busy(handle.node)
        return run.server.is_busy(handle.node)

    def _busy_seconds(self, run: QoSRun, handle: CloudWorkerHandle) -> float:
        if handle.deploy_mode == DEPLOY_CLOUD_DUP:
            assert run.coordinator is not None
            return run.coordinator.busy_seconds(handle.node)
        return run.server.cloud_busy_seconds(handle.node)

    def _bill_handle(self, run: QoSRun, handle: CloudWorkerHandle) -> bool:
        """Bill usage since the last tick; False when credits ran dry.

        Priced through the meter at the run's provider rate — the
        single per-provider accounting source of the economics plane.
        """
        total = self._busy_seconds(run, handle)
        delta = total - handle.billed_busy
        if delta <= 0:
            return True
        billed, asked = self.meter.charge(run.bot_id, run.driver.name,
                                          delta, self.sim.now)
        run.ledger.set_billed(handle, total)
        return billed >= asked - 1e-9

    def _usage_snapshot(self, run: QoSRun, node_ids: List[int]):
        """Bulk ``(busy_seconds, busy)`` for the run's deployment path
        (all handles of a run share one deploy mode)."""
        if run.combo.deploy == DEPLOY_CLOUD_DUP:
            assert run.coordinator is not None
            return run.coordinator.usage_of(node_ids, self.sim.now)
        return run.server.cloud_usage_of(node_ids, self.sim.now)

    def _bill_and_manage(self, run: QoSRun) -> None:
        """Algorithm 2, columnar: one vectorized busy-delta pass.

        Equivalence to the per-handle reference
        (:meth:`_bill_and_manage_scalar`, pinned by
        ``tests/test_ledger_billing.py``):

        * the usage snapshot may be taken upfront because stopping a
          handle never changes another handle's busy accounting within
          the tick;
        * charging all positive deltas first (ascending handle order,
          via :meth:`~repro.economics.billing.BillingMeter.charge_many`)
          is the reference ``credits.bill`` sequence exactly, because a
          grace-stop's settlement re-bill always sees ``delta == 0``
          (the tick's charge already advanced ``billed_busy`` to the
          snapshot total) — the only reordering risk is the exhaustion
          teardown, whose interleaving *does* matter;
        * therefore a tick that could exhaust the escrow (conservative
          pre-charge bound below) is routed to the scalar replay
          instead, keeping that path byte-identical too.
        """
        ledger = run.ledger
        live = ledger.live_indices()
        if live.size == 0:
            return
        now = self.sim.now
        totals, busy = self._usage_snapshot(run, ledger.live_node_ids())
        totals = np.asarray(totals, dtype=np.float64)
        deltas = totals - ledger.billed_busy[live]
        charge_mask = deltas > 0.0
        pos = deltas[charge_mask]
        if pos.size:
            rate = self.meter.rate_for(run.driver.name, now)
            asked_bound = float(pos.sum()) * rate / 3600.0
            if (self.meter.remaining_for(run.bot_id)
                    < asked_bound * (1.0 + 1e-9) + 1e-9):
                # the escrow might clamp a charge — replay the exact
                # historical loop (settlement interleaving matters here)
                SCHED_TELEMETRY["scalar_fallbacks"] += 1
                self._bill_and_manage_scalar(run)
                return
            fail = self.meter.charge_many(run.bot_id, run.driver.name,
                                          pos.tolist(), now)
            if pos.size == live.size:   # steady state: all charged
                idx, charged_totals = live, totals
            else:
                idx = live[charge_mask]
                charged_totals = totals[charge_mask]
            if fail >= 0:  # pragma: no cover - excluded by the bound
                ledger.set_billed_bulk(idx[:fail + 1],
                                       charged_totals[:fail + 1])
                self.stop_all(run, reason="credits exhausted")
                return
            ledger.set_billed_bulk(idx, charged_totals)
        if False not in busy:           # steady state: nobody idle
            ledger.touch_busy_bulk(live, now)
            return
        busy_arr = np.asarray(busy, dtype=bool)
        busy_idx = live[busy_arr]
        if busy_idx.size:
            ledger.touch_busy_bulk(busy_idx, now)
        idle_idx = live[~busy_arr]
        if idle_idx.size == 0:  # pragma: no cover - caught above
            return
        greedy = run.combo.size == SIZE_GREEDY
        idle_grace = self.config.idle_grace
        if greedy:
            grace = np.where(~ledger.ever_assigned[idle_idx],
                             self.config.greedy_release_grace,
                             np.inf if idle_grace is None else idle_grace)
        elif idle_grace is not None:
            grace = idle_grace
        else:
            return
        stop_mask = (now - ledger.last_busy[idle_idx]) >= grace
        if stop_mask.any():
            handles = ledger.handles
            for i in idle_idx[stop_mask].tolist():
                self._stop_handle(run, handles[i])

    def _bill_and_manage_scalar(self, run: QoSRun) -> None:
        """Algorithm 2, per-handle reference: bill, release idle
        workers, stop on exhaustion — the historical loop, kept both as
        the possibly-exhausting-tick path (where the order of tick
        charges vs teardown settlements is observable in the credit
        ledger) and as the oracle the property tests replay."""
        now = self.sim.now
        greedy = run.combo.size == SIZE_GREEDY
        ledger = run.ledger
        for handle in run.handles:
            if handle.stopped:
                continue
            if not self._bill_handle(run, handle):
                self.stop_all(run, reason="credits exhausted")
                return
            if self._handle_busy(run, handle):
                ledger.touch_busy(handle, now)
                continue
            if greedy and not handle.ever_assigned:
                grace = self.config.greedy_release_grace
            elif self.config.idle_grace is not None:
                grace = self.config.idle_grace
            else:
                continue
            if now - handle.last_busy >= grace:
                self._stop_handle(run, handle)

    # ------------------------------------------------------------------
    # stopping
    # ------------------------------------------------------------------
    def _stop_handle(self, run: QoSRun, handle: CloudWorkerHandle) -> None:
        if handle.stopped:
            return
        self._bill_handle(run, handle)
        run.ledger.mark_stopped(handle)
        self._active_total -= 1
        self._active_by_server[run.server] -= 1
        node = handle.node
        if handle.deploy_mode == DEPLOY_FLAT:
            run.server.remove_cloud_node(node)
        elif handle.deploy_mode == DEPLOY_RESCHEDULE:
            assert isinstance(handle.agent, RescheduleAgent)
            handle.agent.stop()
        else:
            assert run.coordinator is not None
            run.coordinator.remove_worker(node)
        run.driver.destroy_node(handle.instance)

    def _stop_by_node(self, run: QoSRun, node) -> None:
        handle = run.ledger.get_by_node(node.node_id)
        if handle is not None:
            self._stop_handle(run, handle)

    def _settle_bulk(self, run: QoSRun) -> None:
        """Pre-bill every live handle in one batch before a teardown.

        Same equivalence argument as :meth:`_bill_and_manage`: stopping
        a handle never changes another handle's busy accounting, so
        charging all positive deltas upfront (ascending handle order)
        produces the reference ``credits.bill`` sequence, and each
        subsequent per-handle settlement in :meth:`_stop_handle` sees
        ``delta == 0``.  When the escrow might clamp a charge this does
        nothing — the per-handle settlements then clamp in the exact
        historical interleaving.
        """
        ledger = run.ledger
        live = ledger.live_indices()
        if live.size == 0:
            return
        now = self.sim.now
        totals, _busy = self._usage_snapshot(run, ledger.live_node_ids())
        totals = np.asarray(totals, dtype=np.float64)
        deltas = totals - ledger.billed_busy[live]
        charge_mask = deltas > 0.0
        pos = deltas[charge_mask]
        if pos.size == 0:
            return
        rate = self.meter.rate_for(run.driver.name, now)
        asked_bound = float(pos.sum()) * rate / 3600.0
        if (self.meter.remaining_for(run.bot_id)
                < asked_bound * (1.0 + 1e-9) + 1e-9):
            return
        fail = self.meter.charge_many(run.bot_id, run.driver.name,
                                      pos.tolist(), now)
        if pos.size == live.size:
            idx, charged_totals = live, totals
        else:
            idx = live[charge_mask]
            charged_totals = totals[charge_mask]
        if fail >= 0:  # pragma: no cover - excluded by the bound
            ledger.set_billed_bulk(idx[:fail + 1],
                                   charged_totals[:fail + 1])
            return
        ledger.set_billed_bulk(idx, charged_totals)

    def stop_all(self, run: QoSRun, reason: str) -> None:
        """Stop every Cloud worker of the run (exhaustion/completion)."""
        if run.stop_reason is None:
            run.stop_reason = reason
        self._settle_bulk(run)
        for handle in run.handles:
            self._stop_handle(run, handle)

    def finalize(self, run: QoSRun) -> None:
        """BoT done: stop workers, pay the order, refund the rest."""
        if run.finished:
            return
        self.stop_all(run, reason="bot completed")
        run.finished = True
        if self.credits.get_order(run.bot_id) is not None:
            self.credits.close(run.bot_id)
        if self.arbiter is not None and self.arbiter.admission is not None:
            # the closed run's actual spend is settled in the pool, so
            # its predicted-cost commitment stops reserving credits
            self.arbiter.admission.release(run.bot_id)
        if self._on_run_finished is not None:
            self._on_run_finished(run)


class _CompletionWatcher:
    """Server observer that finalizes a run the instant its BoT ends
    (so credit accounting is settled even if the simulation stops on
    the completion event)."""

    def __init__(self, scheduler: SpeQuloSScheduler, run: QoSRun):
        self.scheduler = scheduler
        self.run = run

    def on_bot_completed(self, bot_id: str, t: float) -> None:
        if bot_id == self.run.bot_id:
            self.scheduler.finalize(self.run)
