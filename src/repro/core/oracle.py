"""Oracle module: QoS estimation and provisioning decisions (§3.4-3.5).

Prediction (§3.4): when a user asks, the Oracle reads the BoT's current
completion ratio ``r`` and elapsed time ``tc(r)`` from the Information
module and predicts the completion time as ``tp = α · tc(r) / r``.
The ``α`` factor is calibrated per execution environment from archived
history "to minimize the average difference between the predicted time
and the completion times actually observed"; the uncertainty returned
alongside is the historical success rate of ±20 % predictions.

Provisioning: the when/how-many questions are delegated to the
configured :class:`~repro.core.strategies.StrategyCombo`; the Oracle is
the module the Scheduler interrogates, matching Figure 3's
``shouldUseCloud`` / ``cloudWorkersToStart`` calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.info import BoTMonitor, InformationModule
from repro.core.strategies import StrategyCombo

__all__ = ["Oracle", "Prediction", "fit_alpha", "prediction_success"]

#: tolerance of the success criterion (§3.4: "± 20% tolerance")
SUCCESS_TOLERANCE = 0.20


def fit_alpha(base_predictions: Sequence[float],
              actuals: Sequence[float]) -> float:
    """Least-absolute-error scale factor.

    Minimizes ``sum_i |alpha * p_i - a_i|`` exactly: the optimum is the
    weighted median of the ratios ``a_i / p_i`` with weights ``p_i``
    (the derivative of the objective changes sign there).  Returns 1.0
    with no usable history, as the paper initializes α.
    """
    p = np.asarray(list(base_predictions), dtype=float)
    a = np.asarray(list(actuals), dtype=float)
    mask = np.isfinite(p) & np.isfinite(a) & (p > 0) & (a > 0)
    p, a = p[mask], a[mask]
    if p.size == 0:
        return 1.0
    ratios = a / p
    order = np.argsort(ratios)
    ratios, weights = ratios[order], p[order]
    cum = np.cumsum(weights)
    idx = int(np.searchsorted(cum, cum[-1] / 2.0))
    return float(ratios[min(idx, ratios.size - 1)])


def prediction_success(predicted: float, actual: float,
                       tolerance: float = SUCCESS_TOLERANCE) -> bool:
    """§3.4 criterion: actual within [80 %, 120 %] of the prediction."""
    if predicted <= 0:
        return False
    return (1 - tolerance) * predicted <= actual <= (1 + tolerance) * predicted


@dataclass(frozen=True)
class Prediction:
    """What getPrediction returns to the user."""

    bot_id: str
    predicted_completion: float     # seconds from BoT submission
    at_fraction: float              # completion ratio when predicted
    alpha: float                    # calibration factor used
    #: historical ±20 % success rate in this environment (0..1), or NaN
    uncertainty: float
    history_size: int


class Oracle:
    """Prediction + provisioning decisions over Information data."""

    def __init__(self, info: InformationModule,
                 combo: Optional[StrategyCombo] = None):
        self.info = info
        self.combo = combo or StrategyCombo()

    # ------------------------------------------------------- prediction
    def alpha_for(self, env_key: str, fraction: float) -> Tuple[float, int]:
        """Calibrated α for an environment at a completion ratio.

        Uses every archived execution of the environment: base
        prediction ``p_i = tc_i(fraction) / fraction``, actual
        ``a_i = makespan_i``.
        """
        history = self.info.history(env_key)
        if not history:
            return 1.0, 0
        p = [rec.tc_at(fraction) / fraction for rec in history]
        a = [rec.makespan for rec in history]
        return fit_alpha(p, a), len(history)

    def success_rate(self, env_key: str, fraction: float,
                     alpha: float) -> float:
        """Historical ±20 % success rate of α-scaled predictions."""
        history = self.info.history(env_key)
        if not history:
            return float("nan")
        hits = 0
        used = 0
        for rec in history:
            base = rec.tc_at(fraction)
            if not math.isfinite(base) or base <= 0:
                continue
            used += 1
            if prediction_success(alpha * base / fraction, rec.makespan):
                hits += 1
        return hits / used if used else float("nan")

    def predict(self, bot_id: str, env_key: str) -> Optional[Prediction]:
        """Predict the BoT completion time from live progress.

        Returns None while nothing has completed yet (no ratio to
        extrapolate).
        """
        mon = self.info.monitor(bot_id)
        r = mon.fraction_completed()
        if r <= 0.0:
            return None
        tc_r = mon.tc(r)
        if tc_r is None or tc_r <= 0:
            return None
        alpha, n_hist = self.alpha_for(env_key, r)
        tp = alpha * tc_r / r
        return Prediction(bot_id=bot_id, predicted_completion=tp,
                          at_fraction=r, alpha=alpha,
                          uncertainty=self.success_rate(env_key, r, alpha),
                          history_size=n_hist)

    # ----------------------------------------------------- provisioning
    def should_use_cloud(self, mon: BoTMonitor) -> bool:
        """Figure 3's ``shouldUseCloud``: the when-policy decision."""
        return self.combo.should_start(mon)

    def cloud_workers_to_start(self, mon: BoTMonitor, credits: float,
                               credits_per_cpu_hour: float,
                               now: float) -> int:
        """Figure 3's ``cloudWorkersToStart``: the size-policy decision."""
        if credits <= 0:
            return 0
        cpu_hours = credits / credits_per_cpu_hour
        return self.combo.workers_to_start(mon, cpu_hours, now)
