"""Oracle module: QoS estimation and provisioning decisions (§3.4-3.5).

Prediction (§3.4): when a user asks, the Oracle reads the BoT's current
completion ratio ``r`` and elapsed time ``tc(r)`` from the Information
module and predicts the completion time as ``tp = α · tc(r) / r``.
The ``α`` factor is calibrated per execution environment from archived
history "to minimize the average difference between the predicted time
and the completion times actually observed"; the uncertainty returned
alongside is the historical success rate of ±20 % predictions.

Provisioning: the when/how-many questions are delegated to the
configured :class:`~repro.core.strategies.StrategyCombo`; the Oracle is
the module the Scheduler interrogates, matching Figure 3's
``shouldUseCloud`` / ``cloudWorkersToStart`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.info import BoTMonitor, InformationModule
from repro.core.strategies import StrategyCombo
# the calibration statistics live with the archive they summarize
# (re-exported here for the historical import path)
from repro.history.calibration import (
    SUCCESS_TOLERANCE,
    fit_alpha,
    prediction_success,
)

__all__ = ["Oracle", "Prediction", "SUCCESS_TOLERANCE", "fit_alpha",
           "prediction_success"]


@dataclass(frozen=True)
class Prediction:
    """What getPrediction returns to the user."""

    bot_id: str
    predicted_completion: float     # seconds from BoT submission
    at_fraction: float              # completion ratio when predicted
    alpha: float                    # calibration factor used
    #: historical ±20 % success rate in this environment (0..1), or NaN
    uncertainty: float
    history_size: int


class Oracle:
    """Prediction + provisioning decisions over Information data."""

    def __init__(self, info: InformationModule,
                 combo: Optional[StrategyCombo] = None):
        self.info = info
        self.combo = combo or StrategyCombo()

    # ------------------------------------------------------- prediction
    def alpha_for(self, env_key: str, fraction: float) -> Tuple[float, int]:
        """Calibrated α for an environment at a completion ratio.

        Read through the history plane, so the calibration spans every
        archived execution the plane's backend holds — only the current
        process for the default in-memory backend, *cross-run* history
        when the scenario attaches the persistent archive.
        """
        return self.info.plane.alpha(env_key, fraction)

    def success_rate(self, env_key: str, fraction: float,
                     alpha: float) -> float:
        """Historical ±20 % success rate of α-scaled predictions."""
        return self.info.plane.success_rate(env_key, fraction, alpha)

    def predict(self, bot_id: str, env_key: str) -> Optional[Prediction]:
        """Predict the BoT completion time from live progress.

        Returns None while nothing has completed yet (no ratio to
        extrapolate).
        """
        mon = self.info.monitor(bot_id)
        r = mon.fraction_completed()
        if r <= 0.0:
            return None
        tc_r = mon.tc(r)
        if tc_r is None or tc_r <= 0:
            return None
        alpha, n_hist = self.alpha_for(env_key, r)
        tp = alpha * tc_r / r
        return Prediction(bot_id=bot_id, predicted_completion=tp,
                          at_fraction=r, alpha=alpha,
                          uncertainty=self.success_rate(env_key, r, alpha),
                          history_size=n_hist)

    # ----------------------------------------------------- provisioning
    def should_use_cloud(self, mon: BoTMonitor) -> bool:
        """Figure 3's ``shouldUseCloud``: the when-policy decision."""
        return self.combo.should_start(mon)

    def cloud_workers_to_start(self, mon: BoTMonitor, credits: float,
                               credits_per_cpu_hour: float,
                               now: float) -> int:
        """Figure 3's ``cloudWorkersToStart``: the size-policy decision."""
        if credits <= 0:
            return 0
        cpu_hours = credits / credits_per_cpu_hour
        return self.combo.workers_to_start(mon, cpu_hours, now)
