"""Command-line interface: ``python -m repro <command> ...``.

Nine subcommands cover the day-to-day uses of the reproduction:

* ``run``     — one BoT execution (optionally with SpeQuloS), printing
  the metrics the paper reports for it;
* ``compare`` — a paired with/without-SpeQuloS comparison (speedup,
  TRE, credit consumption);
* ``multi``   — a multi-tenant scenario: N users' BoTs sharing one
  BE-DCI, Cloud and credit pool under an arbitration policy, with
  per-tenant slowdown and fairness output;
* ``fed``     — a federated scenario: one SpeQuloS over several DCIs
  (each its own trace, middleware and cloud), a routing policy
  assigning arriving BoTs to DCIs, and one arbiter rationing the
  global worker budget and the shared pool across all bindings;
  ``--history persistent`` attaches the cross-run execution archive
  (Oracle α calibration and history-fed routing learn across runs),
  ``--admission reject|defer`` gates pooled QoS orders on the
  archive's predicted credit cost, and ``--pricing
  PROVIDER=RATE,...`` attaches a per-provider price book (the
  economics plane; pair with ``--routing cheapest_drain`` for
  cost-aware routing);
* ``report``  — regenerate any table/figure of the paper by name
  (``figure1`` .. ``figure7``, ``table1`` .. ``table5``,
  ``ablation_*``, ``contention``, ``federation``, plus ``learning``,
  the warm-vs-cold prediction study over the history plane, and
  ``economics``, credits-vs-slowdown across price books on the
  reference federation); ``--jobs`` sizes the campaign process pool
  and ``--no-cache`` bypasses the result store;
* ``sweep``   — run an ad-hoc declarative campaign grid straight from
  flags (comma-separated axes) through the sharded executor and the
  content-addressed store, with per-config rows and store stats;
  ``--n-dcis``/``--routings`` switch to the *federated matrix* syntax
  (``--n-dcis 1,2,4 --routings least_loaded,cheapest_drain``), which
  expands a FederatedSweepSpec through the same executor;
* ``store``   — inspect the content-addressed result store
  (``stats``: record counts, on-disk size and the in-process trace
  cache's LRU counters) or garbage-collect records orphaned by code
  edits (``gc``: drops rows whose salt no longer matches the current
  ``code_fingerprint()`` and reports reclaimed rows/bytes);
* ``history`` — inspect the persistent execution-history archive
  (``stats``: per-environment record counts, throughput, slowdown,
  cost per task — per provider where tagged — and calibrated α) or
  drop its stale-salt records (``gc``), mirroring the store commands;
  ``gc --max-per-env N`` / ``--max-age-days D`` additionally prune
  the archive by per-environment record caps and age;
* ``trace``   — synthesize a Table 2 trace and print its measured
  statistics, or export it to the FTA-style text format.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

_REPORTS = ("figure1", "figure2", "figure4", "figure5", "figure6",
            "figure7", "table1", "table2", "table3", "table4", "table5",
            "ablation_threshold", "ablation_budget", "ablation_middleware",
            "contention", "federation", "learning", "economics")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpeQuloS reproduction: QoS for Bag-of-Tasks on "
                    "best-effort distributed computing infrastructures")
    sub = parser.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", help="simulate one BoT execution")
    _add_env_args(runp)
    runp.add_argument("--strategy", default=None,
                      help="SpeQuloS combo (e.g. 9C-C-R); omit for none")
    runp.add_argument("--credit-fraction", type=float, default=0.10,
                      help="credits as a fraction of the workload")

    cmp_ = sub.add_parser("compare",
                          help="paired baseline vs SpeQuloS execution")
    _add_env_args(cmp_)
    cmp_.add_argument("--strategy", default="9C-C-R")

    multi = sub.add_parser(
        "multi", help="N concurrent tenants sharing one DCI and pool")
    multi.add_argument("--trace", default="seti")
    multi.add_argument("--middleware", default="boinc",
                       choices=("boinc", "xwhep"))
    multi.add_argument("--seed", type=int, default=1)
    multi.add_argument("--tenants", type=int, default=8)
    multi.add_argument("--categories", default="SMALL",
                       help="comma-separated mix cycled over tenants")
    multi.add_argument("--policy", default="fairshare",
                       choices=("fifo", "fairshare", "deadline"))
    multi.add_argument("--strategy", default="9C-C-R")
    multi.add_argument("--rate", type=float, default=2.0,
                       help="Poisson tenant arrivals per hour")
    multi.add_argument("--bot-size", type=int, default=None)
    multi.add_argument("--pool-fraction", type=float, default=0.10,
                       help="pooled credits / aggregate workload")
    multi.add_argument("--max-workers", type=int, default=None,
                       help="global cap on concurrent cloud workers")

    fed = sub.add_parser(
        "fed", help="a federated scenario: one SpeQuloS over several "
                    "DCIs and clouds")
    fed.add_argument("--traces", default="seti,nd",
                     help="comma-separated traces, one per DCI")
    fed.add_argument("--middlewares", default="boinc",
                     help="comma-separated middlewares, cycled over DCIs")
    fed.add_argument("--providers", default="simulation",
                     help="comma-separated cloud providers, cycled over "
                          "DCIs")
    fed.add_argument("--max-nodes", default=None,
                     help="comma-separated per-DCI node caps "
                          "('-' = automatic), cycled over DCIs")
    fed.add_argument("--seed", type=int, default=1)
    fed.add_argument("--tenants", type=int, default=8)
    fed.add_argument("--categories", default="SMALL",
                     help="comma-separated mix cycled over tenants")
    fed.add_argument("--routing", default="round_robin",
                     choices=("round_robin", "least_loaded",
                              "history_weighted", "affinity",
                              "affinity_learned", "cheapest_drain"),
                     help="BoT-to-DCI routing policy (cheapest_drain "
                          "weighs expected drain time by the provider "
                          "price)")
    fed.add_argument("--affinity", default=None,
                     help="category=dci pins for affinity routing, "
                          "comma-separated (e.g. SMALL=dci0-seti-boinc)")
    fed.add_argument("--policy", default="fairshare",
                     choices=("fifo", "fairshare", "deadline"),
                     help="cloud arbitration policy")
    fed.add_argument("--strategy", default="9C-C-R")
    fed.add_argument("--rate", type=float, default=2.0,
                     help="Poisson tenant arrivals per hour")
    fed.add_argument("--bot-size", type=int, default=None)
    fed.add_argument("--pool-fraction", type=float, default=0.10,
                     help="pooled credits / aggregate workload")
    fed.add_argument("--max-workers", type=int, default=None,
                     help="global cap on concurrent cloud workers")
    fed.add_argument("--dci-workers", type=int, default=None,
                     help="per-DCI cap on concurrent cloud workers")
    fed.add_argument("--history", default=None,
                     choices=("memory", "persistent"),
                     help="execution-history backend (persistent = the "
                          "cross-run archive next to the campaign store)")
    fed.add_argument("--admission", default=None,
                     choices=("reject", "defer"),
                     help="gate pooled QoS orders on the history "
                          "plane's predicted credit cost")
    fed.add_argument("--pricing", default=None, metavar="PAIRS",
                     help="per-provider price book, comma-separated "
                          "PROVIDER=RATE pairs in credits/CPU-hour "
                          "(e.g. stratuslab=6,ec2=18); omitted "
                          "providers charge the uniform paper rate")
    fed.add_argument("--horizon-days", type=float, default=15.0)

    rep = sub.add_parser("report", help="regenerate a paper table/figure")
    rep.add_argument("name", choices=_REPORTS)
    rep.add_argument("--save", action="store_true",
                     help="also write under benchmarks/results/")
    _add_campaign_args(rep)

    sweep = sub.add_parser(
        "sweep", help="run an ad-hoc campaign grid from flags")
    sweep.add_argument("--traces", default="seti",
                       help="comma-separated trace names")
    sweep.add_argument("--middlewares", default="boinc",
                       help="comma-separated middleware names")
    sweep.add_argument("--categories", default="SMALL",
                       help="comma-separated BoT categories")
    sweep.add_argument("--strategies", default=None,
                       help="comma-separated combos; 'none' = no "
                            "SpeQuloS (the default); the federated "
                            "matrix takes a single QoS combo")
    sweep.add_argument("--seeds", default=None,
                       help="comma-separated explicit seeds "
                            "(default: stable per-environment slots)")
    sweep.add_argument("--seed-slots", type=int, default=None,
                       help="stable seed slots per environment "
                            "(default 1; single-BoT grids only)")
    sweep.add_argument("--seed-base", type=int, default=None,
                       help="first stable-seed slot index "
                            "(default 0; single-BoT grids only)")
    sweep.add_argument("--thresholds", default=None,
                       help="comma-separated trigger thresholds "
                            "(default 0.9; the federated matrix "
                            "takes a single value)")
    sweep.add_argument("--credit-fractions", default=None,
                       help="comma-separated credit provisions "
                            "(default 0.10; single-BoT grids only — "
                            "federated pools use --pool-fraction)")
    sweep.add_argument("--bot-size", type=int, default=None,
                       help="task-count override for every category")
    sweep.add_argument("--horizon-days", type=float, default=15.0)
    sweep.add_argument("--save", action="store_true",
                       help="also write under benchmarks/results/")
    # federated matrix syntax: any of these flags switches the grid to
    # ScenarioConfig expansion through a FederatedSweepSpec (traces/
    # middlewares/providers become per-DCI templates, cycled)
    fed_grid = sweep.add_argument_group(
        "federated matrix", "expand a federated grid instead of "
        "single-BoT executions (activated by --n-dcis or --routings)")
    fed_grid.add_argument("--n-dcis", default=None,
                          help="comma-separated DCI counts "
                               "(e.g. 1,2,4)")
    fed_grid.add_argument("--routings", default=None,
                          help="comma-separated routing policies "
                               "(e.g. least_loaded,cheapest_drain)")
    fed_grid.add_argument("--policies", default="fairshare",
                          help="comma-separated arbitration policies")
    fed_grid.add_argument("--providers", default="simulation",
                          help="comma-separated cloud providers, "
                               "cycled over DCIs")
    fed_grid.add_argument("--pricing", default=None, metavar="PAIRS",
                          help="price book as PROVIDER=RATE pairs "
                               "(applies to every grid point)")
    fed_grid.add_argument("--tenants", type=int, default=8,
                          help="tenants per federated scenario")
    fed_grid.add_argument("--pool-fraction", type=float, default=0.10,
                          help="pooled credits / aggregate workload")
    fed_grid.add_argument("--max-workers", type=int, default=None,
                          help="global cap on concurrent cloud workers")
    _add_campaign_args(sweep)

    st = sub.add_parser(
        "store", help="inspect or garbage-collect the result store")
    st.add_argument("action", choices=("stats", "gc"),
                    help="stats: record counts and size; gc: drop "
                         "records whose code salt is stale and report "
                         "reclaimed rows/bytes")

    hist = sub.add_parser(
        "history",
        help="inspect or garbage-collect the persistent execution "
             "history archive")
    hist.add_argument("action", choices=("stats", "gc"),
                      help="stats: per-environment archive digests "
                           "(records, throughput, slowdown, cost/task, "
                           "calibrated alpha); gc: drop records whose "
                           "code salt is stale")
    hist.add_argument("--at", type=_fraction, default=0.5,
                      metavar="FRACTION",
                      help="completion fraction in (0, 1] for the "
                           "alpha column (default 0.5)")
    hist.add_argument("--max-per-env", type=int, default=None,
                      metavar="N",
                      help="with gc: additionally keep only the "
                           "newest N records per environment")
    hist.add_argument("--max-age-days", type=float, default=None,
                      metavar="D",
                      help="with gc: additionally drop records "
                           "archived more than D days ago")

    tr = sub.add_parser("trace", help="synthesize and inspect a trace")
    tr.add_argument("name", help="trace name (seti, nd, g5klyo, ...)")
    tr.add_argument("--days", type=float, default=4.0)
    tr.add_argument("--max-nodes", type=int, default=None)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--export", metavar="PATH", default=None,
                    help="write the trace in FTA-style text format")
    return parser


def _fraction(text: str) -> float:
    """argparse type: a completion fraction in (0, 1]."""
    value = float(text)
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"fraction must be in (0, 1], got {text}")
    return value


def _add_campaign_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="campaign worker processes (default: REPRO_JOBS "
                        "or machine-sized)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed result store")


def _parse_pricing_arg(text: Optional[str], command: str):
    """Shared ``--pricing PROVIDER=RATE,...`` parsing for fed/sweep."""
    if not text:
        return None
    from repro.economics.pricing import parse_pricing
    try:
        return parse_pricing(text)
    except ValueError as exc:
        raise SystemExit(f"repro {command}: --pricing: {exc}")


def _apply_campaign_args(args) -> None:
    from repro.campaign.executor import set_default_jobs
    from repro.campaign.store import set_cache_enabled
    if args.jobs is not None:
        set_default_jobs(args.jobs)
    if args.no_cache:
        set_cache_enabled(False)


def _print_store_stats() -> None:
    from repro.campaign.store import current_store
    from repro.experiments.harness import TRACE_CACHE
    store = current_store()
    if store is not None:
        print(f"[store] {store.stats.summary()} — {store.path}")
    if TRACE_CACHE.hits or TRACE_CACHE.misses:
        print(f"[trace cache] {TRACE_CACHE.summary()}")


def _add_env_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default="seti")
    p.add_argument("--middleware", default="boinc",
                   choices=("boinc", "xwhep"))
    p.add_argument("--category", default="SMALL",
                   choices=("SMALL", "BIG", "RANDOM"))
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--bot-size", type=int, default=None,
                   help="override the Table 3 task count")


def _print_result(res, label: str) -> None:
    print(f"{label}:")
    print(f"  makespan        {res.makespan:12.0f} s"
          f"{'   (censored at horizon)' if res.censored else ''}")
    print(f"  ideal time      {res.ideal_time:12.0f} s")
    print(f"  tail slowdown   {res.slowdown:12.2f} x")
    print(f"  tasks in tail   {res.pct_tasks_in_tail:12.1f} %")
    if res.credits_provisioned > 0:
        print(f"  cloud workers   {res.workers_launched:12d}")
        print(f"  credits spent   {res.credits_spent:12.1f} "
              f"({res.credits_used_pct:.1f} % of "
              f"{res.credits_provisioned:.0f})")


def _cmd_run(args) -> int:
    from repro.experiments import ExecutionConfig, run_execution
    cfg = ExecutionConfig(trace=args.trace, middleware=args.middleware,
                          category=args.category, seed=args.seed,
                          strategy=args.strategy,
                          credit_fraction=args.credit_fraction,
                          bot_size=args.bot_size)
    _print_result(run_execution(cfg), cfg.label())
    return 0


def _cmd_multi(args) -> int:
    from repro.experiments import MultiTenantConfig, run_multi_tenant
    cfg = MultiTenantConfig(
        trace=args.trace, middleware=args.middleware, seed=args.seed,
        n_tenants=args.tenants,
        categories=tuple(c.strip() for c in args.categories.split(",")),
        strategy=args.strategy, policy=args.policy,
        arrival_rate_per_hour=args.rate, bot_size=args.bot_size,
        pool_fraction=args.pool_fraction,
        max_total_workers=args.max_workers)
    res = run_multi_tenant(cfg)
    print(f"{cfg.label()}:")
    for t in res.tenants:
        cens = "  (censored)" if t.censored else ""
        print(f"  {t.user:<8} {t.category:<7} arr {t.arrival:9.0f} s  "
              f"makespan {t.makespan:9.0f} s  slowdown {t.slowdown:5.2f}x  "
              f"workers {t.workers_launched:2d}  "
              f"credits {t.credits_spent:7.1f}{cens}")
    print(f"  pool: {res.pool_spent:.1f} of {res.pool_provisioned:.1f} "
          f"credits spent ({res.pool_used_pct:.1f} %)")
    print(f"  fairness: max/min slowdown {res.slowdown_spread:.2f}, "
          f"jain index {res.fairness:.3f}")
    return 0


def _cmd_fed(args) -> int:
    from repro.experiments import DCISpec, ScenarioConfig, run_federated

    def _axis(text):
        return [v.strip() for v in text.split(",") if v.strip()]

    traces = _axis(args.traces)
    middlewares = _axis(args.middlewares)
    providers = _axis(args.providers)
    caps = [None if v == "-" else int(v)
            for v in _axis(args.max_nodes)] if args.max_nodes else [None]
    dcis = tuple(
        DCISpec(trace=traces[i],
                middleware=middlewares[i % len(middlewares)],
                provider=providers[i % len(providers)],
                max_nodes=caps[i % len(caps)])
        for i in range(len(traces)))
    affinity = None
    if args.affinity:
        pairs = []
        for pair in _axis(args.affinity):
            if "=" not in pair:
                raise SystemExit(
                    f"repro fed: --affinity entry {pair!r} must be "
                    f"CATEGORY=DCI (e.g. SMALL=dci0-seti-boinc)")
            pairs.append(tuple(pair.split("=", 1)))
        affinity = tuple(pairs)
    pricing = _parse_pricing_arg(args.pricing, "fed")
    cfg = ScenarioConfig(
        dcis=dcis, seed=args.seed, n_tenants=args.tenants,
        categories=tuple(_axis(args.categories)),
        strategy=args.strategy, policy=args.policy, routing=args.routing,
        affinity=affinity, arrival_rate_per_hour=args.rate,
        bot_size=args.bot_size, pool_fraction=args.pool_fraction,
        max_total_workers=args.max_workers,
        max_dci_workers=args.dci_workers,
        history=args.history, admission=args.admission,
        pricing=pricing, horizon_days=args.horizon_days)
    res = run_federated(cfg)
    print(f"{cfg.label()}:")
    for t in res.tenants:
        cens = "  (censored)" if t.censored else ""
        adm = f"  [{t.admission}]" if cfg.admission is not None else ""
        print(f"  {t.user:<8} {t.category:<7} -> {t.dci:<22} "
              f"arr {t.arrival:9.0f} s  makespan {t.makespan:9.0f} s  "
              f"slowdown {t.slowdown:5.2f}x  "
              f"credits {t.credits_spent:7.1f}{adm}{cens}")
    for d in res.dcis:
        rate = (f" @ {d.price_per_cpu_hour:g} cr/CPUh"
                if cfg.price_map() else "")
        print(f"  DCI {d.name:<22} ({d.trace}/{d.middleware}/"
              f"{d.provider}): {d.tenants_assigned} tenants, "
              f"{d.completions} DG tasks, {d.cloud_tasks} cloud tasks, "
              f"peak {d.workers_peak} workers, "
              f"{d.cloud_cpu_hours:.1f} cloud CPUh, "
              f"{d.credits_spent:.1f} credits{rate}")
    print(f"  pool: {res.pool_spent:.1f} of {res.pool_provisioned:.1f} "
          f"credits spent ({res.pool_used_pct:.1f} %)")
    print(f"  fairness: max/min slowdown {res.slowdown_spread:.2f}, "
          f"jain index {res.fairness:.3f}; "
          f"peak cloud workers {res.workers_peak}")
    if cfg.admission is not None:
        counts = res.admission_counts()
        print("  admission: " + ", ".join(
            f"{counts.get(v, 0)} {v}"
            for v in ("granted", "rejected", "deferred")))
    return 0


def _cmd_store(args) -> int:
    from repro.campaign.store import ResultStore, default_store_path
    from repro.experiments.harness import ASSEMBLY_CACHE, TRACE_CACHE
    from repro.experiments.trace_store import (
        TraceStore,
        default_trace_store_path,
    )
    store = ResultStore(default_store_path())
    # the trace store sits next to the result store; open it directly
    # (bypassing REPRO_NO_CACHE) so stats/gc work even when caching is
    # disabled for runs
    traces = TraceStore(default_trace_store_path())
    if args.action == "stats":
        print(f"store: {store.path}")
        print(f"  {len(store)} records, {store.file_bytes()} bytes on disk")
        for kind, counts in sorted(store.breakdown().items()):
            print(f"  {kind:<14} {counts['current']:6d} current  "
                  f"{counts['stale']:6d} stale")
        current, stale = traces.entries()
        print(f"trace store: {traces.root}")
        print(f"  {current} current + {stale} stale realizations, "
              f"{traces.file_bytes()} bytes on disk "
              f"(generator {traces.fingerprint})")
        # warm-run diagnostics in one place: the trace-cache LRU
        # counters next to the persistent store's accounting (the
        # cache is per process — the live numbers appear after report/
        # sweep runs, which print the same line)
        print(f"  trace cache (this process): {TRACE_CACHE.summary()}")
        print(f"  assembly cache (this process): "
              f"{ASSEMBLY_CACHE.summary()}")
        return 0
    rows, nbytes = store.gc()
    print(f"store gc: reclaimed {rows} stale rows "
          f"({nbytes} payload bytes) — {store.path}")
    print(f"  {len(store)} records remain, "
          f"{store.file_bytes()} bytes on disk")
    tfiles, tbytes = traces.gc()
    print(f"trace store gc: removed {tfiles} stale realizations "
          f"({tbytes} bytes) — {traces.root}")
    tcur, _ = traces.entries()
    print(f"  {tcur} realizations remain, "
          f"{traces.file_bytes()} bytes on disk")
    return 0


def _cmd_history(args) -> int:
    from repro.history import HistoryPlane, PersistentHistoryStore
    store = PersistentHistoryStore()
    plane = HistoryPlane(store)
    if args.action == "stats":
        print(f"history: {store.path}")
        print(f"  {len(store)} current records "
              f"({store.stale_count()} stale), "
              f"{store.file_bytes()} bytes on disk")
        if len(store):
            print(f"  {'environment':<36} {'recs':>5} {'mk (h)':>8} "
                  f"{'tput/h':>8} {'slowdn':>7} {'avail':>6} "
                  f"{'cost/task':>10} {'alpha':>6}")
        for env, summary in plane.summary().items():
            alpha, _n = plane.alpha(env, args.at)
            print(f"  {env:<36} {summary.records:>5d} "
                  f"{summary.mean_makespan / 3600.0:>8.2f} "
                  f"{summary.throughput_per_hour:>8.1f} "
                  f"{summary.mean_slowdown:>7.2f} "
                  f"{summary.availability:>6.2f} "
                  f"{summary.cost_per_task:>10.3f} {alpha:>6.2f}")
        provider_costs = plane.provider_costs()
        if provider_costs:
            print("  per-provider learned cost (economics plane):")
            for provider, (n, cost) in provider_costs.items():
                print(f"    {provider:<20} {n:>5d} recs  "
                      f"{cost:>10.3f} credits/task")
        return 0
    rows, nbytes = store.gc()
    print(f"history gc: reclaimed {rows} stale rows "
          f"({nbytes} grid bytes) — {store.path}")
    if args.max_per_env is not None or args.max_age_days is not None:
        pruned, pbytes = store.prune(max_per_env=args.max_per_env,
                                     max_age_days=args.max_age_days)
        policy = ", ".join(
            ([f"max {args.max_per_env}/env"]
             if args.max_per_env is not None else [])
            + ([f"max age {args.max_age_days:g}d"]
               if args.max_age_days is not None else []))
        print(f"history prune ({policy}): reclaimed {pruned} rows "
              f"({pbytes} grid bytes)")
    print(f"  {len(store)} records remain, "
          f"{store.file_bytes()} bytes on disk")
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis.metrics import tail_removal_efficiency
    from repro.experiments import ExecutionConfig, run_execution
    base_cfg = ExecutionConfig(trace=args.trace, middleware=args.middleware,
                               category=args.category, seed=args.seed,
                               bot_size=args.bot_size)
    base = run_execution(base_cfg)
    speq = run_execution(base_cfg.with_strategy(args.strategy))
    _print_result(base, "baseline (no SpeQuloS)")
    _print_result(speq, f"SpeQuloS {args.strategy}")
    print(f"\nspeedup: {base.makespan / max(speq.makespan, 1e-9):.2f}x")
    if base.makespan - base.ideal_time > 120.0:
        tre = tail_removal_efficiency(base.makespan, speq.makespan,
                                      base.ideal_time)
        print(f"tail removal efficiency: {tre:.1f} %")
    else:
        print("tail removal efficiency: n/a (baseline shows no tail)")
    return 0


def _cmd_report(args) -> int:
    _apply_campaign_args(args)
    from repro.experiments import figures
    builder = getattr(figures, f"{args.name}_report")
    report = builder()
    print(report.render())
    if args.save:
        print(f"saved to {report.save()}")
    _print_store_stats()
    return 0


def _cmd_sweep(args) -> int:
    import sys as _sys
    import time as _time

    _apply_campaign_args(args)
    from repro.campaign.progress import ProgressReporter
    from repro.campaign.spec import SweepSpec
    from repro.experiments.report import ExperimentReport, TextTable
    from repro.experiments.runner import run_campaign

    def _axis(text, conv=str):
        return tuple(conv(v.strip()) for v in text.split(",") if v.strip())

    if args.n_dcis or args.routings:
        return _cmd_sweep_federated(args, _axis)

    strategies = tuple(None if s.lower() in ("none", "-") else s
                       for s in _axis(args.strategies or "none"))
    categories = _axis(args.categories)
    spec = SweepSpec(
        traces=_axis(args.traces), middlewares=_axis(args.middlewares),
        categories=categories, strategies=strategies,
        seeds=_axis(args.seeds, int) if args.seeds else None,
        seed_slots=args.seed_slots if args.seed_slots is not None else 1,
        seed_base=args.seed_base if args.seed_base is not None else 0,
        thresholds=_axis(args.thresholds or "0.9", float),
        credit_fractions=_axis(args.credit_fractions or "0.10", float),
        bot_sizes=tuple((c, args.bot_size) for c in categories)
        if args.bot_size is not None else None,
        horizon_days=args.horizon_days)
    configs = spec.expand()
    wall0 = _time.perf_counter()
    results = run_campaign(
        configs, progress=ProgressReporter(len(configs), label="sweep",
                                           stream=_sys.stderr))
    wall = _time.perf_counter() - wall0

    rep = ExperimentReport("Sweep", f"ad-hoc campaign, {len(configs)} "
                                    f"configs in {wall:.1f}s")
    table = TextTable(
        "Per-config outcomes",
        ["config", "makespan (s)", "slowdown", "censored", "credits %"])
    for cfg, res in zip(configs, results):
        table.add_row(cfg.label(), f"{res.makespan:.0f}",
                      f"{res.slowdown:.2f}",
                      "yes" if res.censored else "no",
                      f"{res.credits_used_pct:.1f}"
                      if res.credits_provisioned > 0 else "-")
    rep.tables.append(table)
    print(rep.render())
    if args.save:
        print(f"saved to {rep.save('sweep.txt')}")
    _print_store_stats()
    return 0


def _cmd_sweep_federated(args, _axis) -> int:
    """The federated matrix syntax of ``repro sweep``: ``--n-dcis
    1,2,4 --routings least_loaded,cheapest_drain`` expands a
    :class:`~repro.campaign.spec.FederatedSweepSpec` through the same
    executor/store path as the single-BoT grid."""
    import sys as _sys
    import time as _time

    import numpy as np

    from repro.campaign.progress import ProgressReporter
    from repro.campaign.spec import FederatedSweepSpec
    from repro.experiments.report import ExperimentReport, TextTable
    from repro.experiments.runner import run_campaign

    # reject single-BoT-only axes loudly instead of silently running a
    # different experiment than the flags asked for
    if args.credit_fractions is not None:
        raise SystemExit("repro sweep: --credit-fractions does not "
                         "apply to the federated matrix (pooled "
                         "scenarios provision via --pool-fraction)")
    if args.seed_slots is not None or args.seed_base is not None:
        raise SystemExit("repro sweep: --seed-slots/--seed-base do "
                         "not apply to the federated matrix; pass "
                         "explicit --seeds")
    spec_defaults = FederatedSweepSpec.__dataclass_fields__
    strategy = spec_defaults["strategy"].default
    if args.strategies is not None:
        strategies = _axis(args.strategies)
        if len(strategies) != 1 or strategies[0].lower() in ("none", "-"):
            raise SystemExit("repro sweep: the federated matrix takes "
                             "a single QoS combo via --strategies "
                             "(federated scenarios are QoS-supported "
                             "by construction)")
        (strategy,) = strategies
    threshold = spec_defaults["strategy_threshold"].default
    if args.thresholds is not None:
        thresholds = _axis(args.thresholds, float)
        if len(thresholds) != 1:
            raise SystemExit("repro sweep: the federated matrix takes "
                             "a single --thresholds value")
        (threshold,) = thresholds
    spec = FederatedSweepSpec(
        dci_traces=_axis(args.traces),
        dci_middlewares=_axis(args.middlewares),
        dci_providers=_axis(args.providers),
        n_dcis=_axis(args.n_dcis, int) if args.n_dcis else (2,),
        routings=_axis(args.routings) if args.routings
        else ("round_robin",),
        policies=_axis(args.policies),
        pricings=(_parse_pricing_arg(args.pricing, "sweep"),),
        seeds=_axis(args.seeds, int) if args.seeds else (0,),
        n_tenants=args.tenants, categories=_axis(args.categories),
        strategy=strategy, strategy_threshold=threshold,
        bot_size=args.bot_size, pool_fraction=args.pool_fraction,
        max_total_workers=args.max_workers,
        horizon_days=args.horizon_days)
    configs = spec.expand()
    wall0 = _time.perf_counter()
    results = run_campaign(
        configs, progress=ProgressReporter(len(configs), label="fed sweep",
                                           stream=_sys.stderr))
    wall = _time.perf_counter() - wall0

    rep = ExperimentReport(
        "Federated sweep", f"ad-hoc federated matrix, {len(configs)} "
                           f"scenarios in {wall:.1f}s")
    table = TextTable(
        "Per-scenario outcomes",
        ["scenario", "mean slowdown", "max/min spread", "pool spent",
         "pool %", "censored"])
    for cfg, res in zip(configs, results):
        table.add_row(cfg.label(),
                      f"{float(np.mean(res.slowdowns)):.2f}",
                      f"{res.slowdown_spread:.2f}",
                      f"{res.pool_spent:.1f}",
                      f"{res.pool_used_pct:.1f}",
                      str(res.censored_count))
    rep.tables.append(table)
    print(rep.render())
    if args.save:
        print(f"saved to {rep.save('fed_sweep.txt')}")
    _print_store_stats()
    return 0


def _cmd_trace(args) -> int:
    from repro.infra.catalog import get_trace_spec
    from repro.infra.fta import save_trace
    from repro.infra.stats import measure_trace
    spec = get_trace_spec(args.name)
    horizon = args.days * 86400.0
    rng = np.random.default_rng(args.seed)
    nodes = spec.materialize(rng, horizon, max_nodes=args.max_nodes)
    stats = measure_trace(nodes, horizon)
    print(f"trace {spec.name} ({spec.dci_class}), {args.days:g} days, "
          f"{len(nodes)} nodes materialized")
    print(f"  paper target : mean {spec.mean_nodes:.0f}, "
          f"av quartiles {spec.avail_quartiles}")
    print(f"  measured     : {stats.row()}")
    if args.export:
        save_trace(nodes, args.export,
                   header=f"synthesized {spec.name}, seed {args.seed}, "
                          f"{args.days:g} days")
        print(f"  exported to {args.export}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"run": _cmd_run, "compare": _cmd_compare,
               "multi": _cmd_multi, "fed": _cmd_fed,
               "report": _cmd_report, "sweep": _cmd_sweep,
               "store": _cmd_store, "history": _cmd_history,
               "trace": _cmd_trace}[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
