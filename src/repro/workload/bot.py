"""Task and Bag-of-Tasks containers.

Follows the definition the paper adopts from Iosup et al. / Minh &
Wolters: a BoT is an ordered set of independent tasks
``β = {T1..Tn}`` with a common owner and application, each task having
an arrival time ``AT(Ti)`` non-decreasing in ``i`` and a cost in number
of operations.  The *wall-clock bound* per task (an estimated upper
bound on individual task execution time) sizes the credit provision:
the paper allocates credits worth 10 % of ``size × wall_clock`` CPU
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Task", "BagOfTasks"]


@dataclass(frozen=True)
class Task:
    """One independent unit of work.

    Attributes
    ----------
    task_id:
        Index within the BoT (0-based, ordered by arrival).
    nops:
        Cost in number of operations; a node of power ``p`` nops/s
        executes the task in ``nops / p`` seconds of availability.
    arrival:
        Submission time relative to the BoT submission instant.
    """

    task_id: int
    nops: float
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if self.nops <= 0:
            raise ValueError(f"task nops must be positive, got {self.nops}")
        if self.arrival < 0:
            raise ValueError("task arrival must be >= 0")

    def duration_on(self, power: float) -> float:
        """Execution time on a node of the given power (seconds)."""
        if power <= 0:
            raise ValueError("power must be positive")
        return self.nops / power


@dataclass
class BagOfTasks:
    """An ordered collection of tasks sharing owner and application.

    ``wall_clock`` is the per-task wall-clock bound used for credit
    provisioning (Table 3 discussion: 11000 s for SMALL, 180 s for BIG,
    2200 s for RANDOM).
    """

    bot_id: str
    tasks: List[Task]
    category: str = "custom"
    owner: str = "user"
    application: str = "app"
    wall_clock: float = 0.0

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a BoT must contain at least one task")
        arrivals = [t.arrival for t in self.tasks]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("tasks must be ordered by arrival time")
        if self.wall_clock < 0:
            raise ValueError("wall_clock must be >= 0")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    @property
    def size(self) -> int:
        """Number of tasks (Table 3's ``size``)."""
        return len(self.tasks)

    @property
    def total_nops(self) -> float:
        """Sum of task costs."""
        return sum(t.nops for t in self.tasks)

    @property
    def workload_cpu_hours(self) -> float:
        """Credit-provisioning workload: ``size × wall_clock`` in CPU·h.

        This is the paper's definition ("The BoT workload is given by
        its size multiplied by tasks' wall clock time"), *not* the sum
        of nops — the wall-clock bound is what a user declares before
        execution.
        """
        return self.size * self.wall_clock / 3600.0

    def arrival_span(self) -> float:
        """Time between first and last task arrival."""
        return self.tasks[-1].arrival - self.tasks[0].arrival

    @staticmethod
    def homogeneous(bot_id: str, size: int, nops: float,
                    wall_clock: float, category: str = "custom") -> "BagOfTasks":
        """All-same-cost BoT with simultaneous arrivals (SMALL/BIG shape)."""
        if size <= 0:
            raise ValueError("size must be positive")
        tasks = [Task(i, nops, 0.0) for i in range(size)]
        return BagOfTasks(bot_id=bot_id, tasks=tasks, category=category,
                          wall_clock=wall_clock)
