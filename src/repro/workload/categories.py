"""The three BoT categories of Table 3.

==========  ======================  ==========================  ==================
category    size                    nops / task                 arrival time
==========  ======================  ==========================  ==================
SMALL       1000                    3 600 000                   all at t=0
BIG         10000                   60 000                      all at t=0
RANDOM      ~ N(mu=1000, s=200)     ~ N(mu=60000, s=10000)      ~ Weib(91.98, 0.57)
==========  ======================  ==========================  ==================

Wall-clock bounds (used for credit provisioning, §4.1.3): SMALL
11000 s, BIG 180 s, RANDOM 2200 s.

The RANDOM arrival column is read as the distribution of *absolute*
arrival times (sorted draws): the alternative reading (inter-arrival
times) would stretch submission over ~40 hours, contradicting the
RANDOM completion times of Figure 6 (DESIGN.md §3, interpretation
notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["BotCategory", "BOT_CATEGORIES", "get_category"]


@dataclass(frozen=True)
class BotCategory:
    """Statistical description of one Table 3 row."""

    name: str
    #: fixed size, or None when drawn from ``size_normal``
    size: Optional[int]
    size_normal: Optional[Tuple[float, float]]  # (mu, sigma)
    #: fixed nops per task, or None when drawn from ``nops_normal``
    nops: Optional[float]
    nops_normal: Optional[Tuple[float, float]]
    #: Weibull (scale lambda, shape k) of absolute arrival times, or None
    arrival_weibull: Optional[Tuple[float, float]]
    #: per-task wall-clock bound, seconds (credit provisioning)
    wall_clock: float

    @property
    def heterogeneous(self) -> bool:
        """Whether task costs vary within a BoT."""
        return self.nops is None


BOT_CATEGORIES: Dict[str, BotCategory] = {
    "SMALL": BotCategory(
        name="SMALL", size=1000, size_normal=None,
        nops=3_600_000.0, nops_normal=None,
        arrival_weibull=None, wall_clock=11_000.0),
    "BIG": BotCategory(
        name="BIG", size=10_000, size_normal=None,
        nops=60_000.0, nops_normal=None,
        arrival_weibull=None, wall_clock=180.0),
    "RANDOM": BotCategory(
        name="RANDOM", size=None, size_normal=(1000.0, 200.0),
        nops=None, nops_normal=(60_000.0, 10_000.0),
        arrival_weibull=(91.98, 0.57), wall_clock=2_200.0),
}


def get_category(name: str) -> BotCategory:
    """Look up a Table 3 category by (case-insensitive) name."""
    try:
        return BOT_CATEGORIES[name.upper()]
    except KeyError:
        raise KeyError(f"unknown BoT category {name!r}; "
                       f"available: {', '.join(BOT_CATEGORIES)}") from None
