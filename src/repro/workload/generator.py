"""BoT instantiation from a Table 3 category."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.workload.bot import BagOfTasks, Task
from repro.workload.categories import BotCategory, get_category

__all__ = ["make_bot"]

#: Truncation floor for drawn task costs: a normal with mu=60000,
#: sigma=10000 has negligible mass below this, but a stray negative
#: draw would be unphysical.
_MIN_NOPS = 1_000.0
_MIN_SIZE = 10


def make_bot(category: "BotCategory | str", rng: np.random.Generator,
             bot_id: Optional[str] = None, size_override: Optional[int] = None,
             ) -> BagOfTasks:
    """Draw one BoT from a category.

    Parameters
    ----------
    category:
        A :class:`BotCategory` or its name (``"SMALL"``/``"BIG"``/``"RANDOM"``).
    rng:
        Random stream (only RANDOM consumes it).
    size_override:
        Force the task count (used by scaled-down campaign variants);
        the statistical attributes are untouched.
    """
    if isinstance(category, str):
        category = get_category(category)
    cat = category

    if size_override is not None:
        size = int(size_override)
    elif cat.size is not None:
        size = cat.size
    else:
        mu, sigma = cat.size_normal  # type: ignore[misc]
        size = int(round(rng.normal(mu, sigma)))
    size = max(_MIN_SIZE, size)

    if cat.nops is not None:
        nops = np.full(size, cat.nops)
    else:
        mu, sigma = cat.nops_normal  # type: ignore[misc]
        nops = np.maximum(rng.normal(mu, sigma, size), _MIN_NOPS)

    if cat.arrival_weibull is None:
        arrivals = np.zeros(size)
    else:
        lam, k = cat.arrival_weibull
        arrivals = np.sort(lam * rng.weibull(k, size))
        if size_override is not None and cat.size_normal is not None:
            # Scaled-down campaign variants shrink the arrival axis
            # proportionally: submission is a task stream of roughly
            # constant intensity, so a quarter-size BoT arrives in a
            # quarter of the time.  Without this, tiny BoTs would be
            # dominated by the (full-length) arrival tail, which no
            # scheduler can remove.
            arrivals *= size / cat.size_normal[0]

    bot_id = bot_id or f"{cat.name.lower()}-{rng.integers(1 << 31)}"
    tasks = [Task(i, float(nops[i]), float(arrivals[i])) for i in range(size)]
    return BagOfTasks(bot_id=bot_id, tasks=tasks, category=cat.name,
                      wall_clock=cat.wall_clock)
