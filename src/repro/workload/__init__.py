"""Bag-of-Tasks workload model (paper §4.1.2, Table 3).

A BoT is an ordered set of independent tasks with a common owner and
application; tasks carry a cost in number of operations (nops) and an
arrival time.  Three categories drive the evaluation: ``SMALL`` (1000
long homogeneous tasks), ``BIG`` (10000 short homogeneous tasks) and
``RANDOM`` (statistically generated heterogeneous BoTs following the
analysis of Minh & Wolters).

:mod:`repro.workload.tenants` layers multi-tenant traffic on top: a
reproducible stream of many users' BoTs (Poisson or trace-driven
arrivals, mixed categories) entering one shared SpeQuloS service.
"""

from repro.workload.bot import BagOfTasks, Task
from repro.workload.categories import (
    BOT_CATEGORIES,
    BotCategory,
    get_category,
)
from repro.workload.generator import make_bot
from repro.workload.tenants import (
    TenantSubmission,
    generate_tenants,
    poisson_arrivals,
)

__all__ = [
    "BagOfTasks",
    "Task",
    "BotCategory",
    "BOT_CATEGORIES",
    "get_category",
    "make_bot",
    "TenantSubmission",
    "generate_tenants",
    "poisson_arrivals",
]
