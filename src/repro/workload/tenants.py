"""Multi-tenant workload layer: many users' BoTs arriving over time.

The paper's deployment (§5, EDGI) runs SpeQuloS as a *shared service*:
several users submit QoS-enabled BoTs to the same BE-DCI and compete
for the same Cloud supplement.  This module synthesizes that traffic —
a stream of :class:`TenantSubmission`\\ s, one per user, with arrival
instants drawn from a Poisson process (exponential inter-arrivals) or
replayed from an explicit trace, and categories drawn from a
configurable mix.

Everything is driven by one :class:`numpy.random.Generator`, so a
tenant stream is exactly reproducible from its seed; the BoT of tenant
``i`` is drawn from a child stream spawned per tenant, which keeps the
draw independent of how many tenants precede it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.workload.bot import BagOfTasks
from repro.workload.generator import make_bot

__all__ = ["TenantSubmission", "poisson_arrivals", "generate_tenants"]


@dataclass(frozen=True)
class TenantSubmission:
    """One user's BoT entering the shared service."""

    user: str
    bot: BagOfTasks
    #: absolute submission instant (virtual seconds)
    arrival: float
    #: absolute completion deadline, or None (deadline arbitration)
    deadline: Optional[float] = None

    @property
    def bot_id(self) -> str:
        return self.bot.bot_id


def poisson_arrivals(rng: np.random.Generator, n: int,
                     rate_per_hour: float) -> np.ndarray:
    """``n`` arrival instants of a Poisson process (seconds from 0).

    The first tenant arrives at t=0 — a multi-tenant scenario always
    has an initial submission — and subsequent inter-arrival gaps are
    exponential with mean ``3600 / rate_per_hour``.
    """
    if n < 1:
        raise ValueError("need at least one tenant")
    if rate_per_hour <= 0:
        raise ValueError("rate_per_hour must be positive")
    gaps = rng.exponential(3600.0 / rate_per_hour, n - 1)
    return np.concatenate([[0.0], np.cumsum(gaps)])


def generate_tenants(rng: np.random.Generator, n: int,
                     categories: Sequence[str] = ("SMALL",),
                     rate_per_hour: float = 2.0,
                     arrivals: Optional[Sequence[float]] = None,
                     bot_size: Optional[int] = None,
                     deadline_factor: Optional[float] = None,
                     ) -> List[TenantSubmission]:
    """Draw a reproducible stream of ``n`` tenant submissions.

    Parameters
    ----------
    categories:
        Cycled over tenants (a mixed stream interleaves categories
        deterministically, so two policies see the same mix).
    rate_per_hour:
        Poisson arrival intensity; ignored when ``arrivals`` is given.
    arrivals:
        Explicit (trace-driven) absolute arrival instants, sorted,
        length ``n``.
    bot_size:
        Task-count override applied to every BoT (campaign scaling).
    deadline_factor:
        When set, tenant ``i`` gets an absolute deadline of
        ``arrival + deadline_factor x size x wall_clock`` — a loose
        per-BoT budget the deadline-proximity policy can rank on.
    """
    if arrivals is not None:
        times = np.asarray(list(arrivals), dtype=float)
        if times.shape != (n,):
            raise ValueError(f"need exactly {n} arrival instants")
        if np.any(np.diff(times) < 0) or (n and times[0] < 0):
            raise ValueError("arrivals must be sorted and non-negative")
    else:
        times = poisson_arrivals(rng, n, rate_per_hour)

    out: List[TenantSubmission] = []
    streams = rng.spawn(n)
    for i in range(n):
        category = categories[i % len(categories)]
        bot = make_bot(category, streams[i], bot_id=f"tenant{i}",
                       size_override=bot_size)
        deadline = None
        if deadline_factor is not None:
            deadline = float(times[i]) + (deadline_factor * bot.size
                                          * bot.wall_clock)
        out.append(TenantSubmission(user=f"user{i}", bot=bot,
                                    arrival=float(times[i]),
                                    deadline=deadline))
    return out
