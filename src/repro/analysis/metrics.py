"""BoT execution metrics (paper §2.2, §4.2.1, §4.3).

Central object: a :class:`CompletionProfile` — the sorted task
completion instants of one BoT execution, measured from BoT submission.
Everything the paper reports derives from it:

* ``tc(x)``: elapsed time when fraction ``x`` of the BoT is completed;
* *ideal completion time* ``tc(0.9) / 0.9`` — the makespan the
  execution would reach if the completion rate observed at 90 % were
  sustained (§2.2, Figure 1);
* *tail slowdown* = actual / ideal (Figure 2);
* *tail fractions* (Table 1): tasks completing after the ideal time,
  and the share of the makespan spent past the ideal time;
* *Tail Removal Efficiency* (Figure 4):
  ``TRE = 1 - (t_speq - t_ideal) / (t_nospeq - t_ideal)``.

Multi-tenant additions: per-tenant *fairness* measures over a vector
of per-BoT slowdowns (or any positive per-tenant quantity) — Jain's
fairness index and the max/min spread ratio — used by the arbitration
policies' contention sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "CompletionProfile",
    "ideal_completion_time",
    "tail_slowdown",
    "tail_fraction_of_tasks",
    "tail_fraction_of_time",
    "tail_removal_efficiency",
    "normalized_times",
    "jain_fairness_index",
    "max_min_ratio",
]

#: Completion fraction at which the steady completion rate is measured
#: (§2.2: "the ideal completion time is computed at 90 % of completion
#: because ... the BoT completion rate remains approximately constant
#: up to this stage").
IDEAL_FRACTION = 0.9


@dataclass(frozen=True)
class CompletionProfile:
    """Sorted completion times (relative to submission) of one BoT run."""

    times: np.ndarray

    @staticmethod
    def from_times(times: Sequence[float]) -> "CompletionProfile":
        arr = np.sort(np.asarray(list(times), dtype=float))
        if arr.size == 0:
            raise ValueError("a completion profile needs at least one task")
        if arr[0] < 0:
            raise ValueError("completion times must be >= 0")
        return CompletionProfile(arr)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self.times.shape[0])

    @property
    def makespan(self) -> float:
        """Actual BoT completion time (last task)."""
        return float(self.times[-1])

    def tc(self, fraction: float) -> float:
        """Elapsed time at which ``fraction`` of the BoT is completed.

        ``tc(x)`` is the completion instant of task ``ceil(x*n)``
        (1-based), matching the paper's discrete completion-ratio
        curve of Figure 1.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        k = max(1, int(math.ceil(fraction * self.size)))
        return float(self.times[k - 1])

    def completed_at(self, t: float) -> int:
        """Number of tasks completed by time ``t``."""
        return int(np.searchsorted(self.times, t, side="right"))


def ideal_completion_time(profile: CompletionProfile,
                          fraction: float = IDEAL_FRACTION) -> float:
    """``tc(0.9) / 0.9`` — the no-tail makespan extrapolation (§2.2)."""
    return profile.tc(fraction) / fraction


def tail_slowdown(profile: CompletionProfile,
                  fraction: float = IDEAL_FRACTION) -> float:
    """Actual makespan divided by the ideal completion time (Figure 2).

    1.0 means no tail; the paper observes medians around 1.3 and worst
    cases of 4 (XWHEP) to 10 (BOINC).
    """
    ideal = ideal_completion_time(profile, fraction)
    if ideal <= 0:
        return 1.0
    return max(1.0, profile.makespan / ideal)


def tail_fraction_of_tasks(profile: CompletionProfile,
                           fraction: float = IDEAL_FRACTION) -> float:
    """Share of tasks completing after the ideal time (Table 1, "% of
    BoT in tail")."""
    ideal = ideal_completion_time(profile, fraction)
    in_tail = profile.size - profile.completed_at(ideal)
    return in_tail / profile.size


def tail_fraction_of_time(profile: CompletionProfile,
                          fraction: float = IDEAL_FRACTION) -> float:
    """Share of the makespan spent past the ideal time (Table 1, "% of
    execution time in tail")."""
    ideal = ideal_completion_time(profile, fraction)
    if profile.makespan <= 0:
        return 0.0
    return max(0.0, profile.makespan - ideal) / profile.makespan


def tail_removal_efficiency(t_nospeq: float, t_speq: float,
                            t_ideal: float) -> float:
    """``TRE = 1 - (t_speq - t_ideal)/(t_nospeq - t_ideal)`` (§4.2.1).

    100 % ⇒ SpeQuloS removed the tail entirely; 0 % ⇒ no improvement.
    Negative values (SpeQuloS made it worse) are clamped to 0 and a
    completion faster than ideal is clamped to 100, matching the
    percentage axis of Figure 4.  Raises if the baseline had no tail
    (``t_nospeq <= t_ideal``) — such executions are excluded upstream.
    """
    denom = t_nospeq - t_ideal
    if denom <= 0:
        raise ValueError("baseline execution has no tail; TRE undefined")
    tre = 1.0 - (t_speq - t_ideal) / denom
    return float(min(1.0, max(0.0, tre)) * 100.0)


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every tenant experiences the same value; ``1/n`` when one
    tenant takes everything.  The conventional measure for allocation
    fairness in shared systems (Jain, Chiu & Hawe, 1984).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("fairness needs at least one value")
    if np.any(arr < 0):
        raise ValueError("fairness values must be non-negative")
    denom = arr.size * float(np.sum(arr ** 2))
    if denom == 0:
        return 1.0
    return float(np.sum(arr)) ** 2 / denom


def max_min_ratio(values: Sequence[float]) -> float:
    """Spread of a per-tenant quantity: ``max / min`` (>= 1).

    Applied to per-tenant slowdowns it reads as "how many times worse
    the worst-served tenant fares than the best-served one" — the
    figure of merit the arbitration policies compete on.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("ratio needs at least one value")
    lo = float(np.min(arr))
    if lo <= 0:
        raise ValueError("values must be positive")
    return float(np.max(arr)) / lo


def normalized_times(makespans: Sequence[float]) -> np.ndarray:
    """Makespans divided by their environment mean (Figure 7).

    The paper plots the repartition of completion times normalized by
    the average observed in the same environment: a distribution
    concentrated around 1 denotes stable executions.
    """
    arr = np.asarray(list(makespans), dtype=float)
    if arr.size == 0:
        return arr
    mean = float(np.mean(arr))
    if mean <= 0:
        raise ValueError("makespans must be positive")
    return arr / mean
