"""Metrics and distribution helpers used across the evaluation.

Implements the paper's measures verbatim: ideal completion time and
tail slowdown (§2.2), tail task/time fractions (Table 1), Tail Removal
Efficiency (§4.2.1), completion-time stability (§4.3.2), and the
prediction success criterion (§4.3.3).
"""

from repro.analysis.cdf import ccdf, ecdf, histogram_fractions
from repro.analysis.metrics import (
    CompletionProfile,
    ideal_completion_time,
    normalized_times,
    tail_fraction_of_tasks,
    tail_fraction_of_time,
    tail_removal_efficiency,
    tail_slowdown,
)

__all__ = [
    "CompletionProfile",
    "ccdf",
    "ecdf",
    "histogram_fractions",
    "ideal_completion_time",
    "normalized_times",
    "tail_fraction_of_tasks",
    "tail_fraction_of_time",
    "tail_removal_efficiency",
    "tail_slowdown",
]
