"""Empirical distribution helpers for the figure benches.

The paper's figures are CDFs (Figure 2), complementary CDFs (Figure 4)
and binned repartition functions (Figure 7); these helpers turn raw
sample vectors into the plotted series so benches can print them as
text tables.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["ecdf", "ccdf", "histogram_fractions", "sample_series"]


def ecdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, P[X <= value])."""
    x = np.sort(np.asarray(list(samples), dtype=float))
    if x.size == 0:
        return x, x
    y = np.arange(1, x.size + 1) / x.size
    return x, y


def ccdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Complementary CDF: returns (sorted values, P[X > value])."""
    x, y = ecdf(samples)
    return x, 1.0 - y


def ccdf_at(samples: Sequence[float], thresholds: Sequence[float],
            strict: bool = False) -> np.ndarray:
    """P[X >= threshold] (or strict >) for each threshold.

    Figure 4 reads "fraction of BoT executions where tail removal
    efficiency is greater than P"; with efficiencies saturating at
    exactly 100 %, the non-strict version keeps the mass at 100 visible.
    """
    x = np.sort(np.asarray(list(samples), dtype=float))
    th = np.asarray(list(thresholds), dtype=float)
    if x.size == 0:
        return np.zeros_like(th)
    side = "right" if strict else "left"
    idx = np.searchsorted(x, th, side=side)
    return 1.0 - idx / x.size


def histogram_fractions(samples: Sequence[float], lo: float, hi: float,
                        bins: int) -> Tuple[np.ndarray, np.ndarray]:
    """Fraction of samples per bin over [lo, hi] (Figure 7 repartition).

    Returns (bin centers, fraction of all samples in each bin).
    Samples outside the range land in the edge bins, so the fractions
    always sum to 1.
    """
    if bins <= 0 or hi <= lo:
        raise ValueError("need bins > 0 and hi > lo")
    arr = np.clip(np.asarray(list(samples), dtype=float), lo, hi)
    counts, edges = np.histogram(arr, bins=bins, range=(lo, hi))
    centers = (edges[:-1] + edges[1:]) / 2.0
    total = counts.sum()
    frac = counts / total if total else counts.astype(float)
    return centers, frac


def sample_series(x: np.ndarray, y: np.ndarray, n_points: int = 25
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Downsample a monotone series for compact text output."""
    if x.size <= n_points:
        return x, y
    idx = np.unique(np.linspace(0, x.size - 1, n_points).astype(int))
    return x[idx], y[idx]
