"""The University Paris-XI corner of the EDGI infrastructure (§5).

Topology reproduced from Figure 8:

* **XW@LAL** — XtremWeb-HEP over the LAL laboratory desktop grid
  (``nd``-like churn, a few hundred desktop nodes), supported by a
  local **StratusLab** (OpenNebula) cloud;
* **XW@LRI** — XtremWeb-HEP harvesting **Grid'5000** best-effort nodes
  (``g5klyo`` trace, bounded to 200 nodes as in the paper), supported
  by **Amazon EC2**;
* **EGI** users reach XW@LAL through the **3G-Bridge**;
* one **SpeQuloS** instance serves both DCIs.

The deployment is a :class:`~repro.experiments.harness.ScenarioHarness`
preset: the harness owns the simulation, the DCI registry, the shared
SpeQuloS instance and the cloud accounting probes, while this module
keeps only what is EDGI-specific — the historical trace/pool/driver RNG
streams (drift-pinned: Table 5 regenerates byte-identically), the
3G-Bridge, and the mixed native/bridged, QoS/non-QoS submission stream.

Campaign integration: :class:`EDGIConfig` is the frozen declarative
form of one deployment run and :func:`run_edgi` its runner, so the
Table 5 report (and any EDGI sweep) flows through the campaign engine —
content-addressed caching, dedup and the process pool included.

:data:`EDGI_DCIS` exports the same two DCIs as declarative
:class:`~repro.experiments.config.DCISpec` entries — the reference
federation the federated scenario family
(:func:`~repro.experiments.runner.run_federated`) and its report build
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cloud.registry import get_driver
from repro.core.credit import CREDITS_PER_CPU_HOUR
from repro.core.strategies import StrategyCombo
from repro.deployment.bridge import ThreeGBridge
from repro.experiments.config import DCISpec, ScenarioConfig
from repro.experiments.harness import ScenarioHarness
from repro.infra.catalog import get_trace_spec
from repro.infra.pool import NodePool
from repro.middleware.xwhep import XWHepServer
from repro.workload.generator import make_bot

__all__ = ["EDGIConfig", "EDGIDeployment", "EDGI_DCIS", "EDGI_PRICING",
           "edgi_scenario", "run_edgi"]

#: Figure 8's two DCIs in declarative form (federated scenario preset):
#: XW@LAL = nd-like desktop grid + StratusLab, XW@LRI = Grid'5000
#: harvest bounded to 200 nodes + EC2.
EDGI_DCIS = (
    DCISpec(trace="nd", middleware="xwhep", provider="stratuslab",
            name="XW@LAL", max_nodes=180),
    DCISpec(trace="g5klyo", middleware="xwhep", provider="ec2",
            name="XW@LRI", max_nodes=200),
)

#: The reference *heterogeneous* price book over that federation: the
#: on-site StratusLab charges a third of the commercial EC2 rate
#: (credits/CPU·h) — the cost asymmetry the economics report's
#: ``cheapest_drain`` routing exploits.  Deployments keep the paper's
#: uniform 15 unless a scenario opts in (``pricing=EDGI_PRICING``).
EDGI_PRICING = (("stratuslab", 6.0), ("ec2", 18.0))


def edgi_scenario(seed: int = 5, n_tenants: int = 8,
                  routing: str = "round_robin",
                  policy: str = "fairshare",
                  **overrides) -> ScenarioConfig:
    """A federated :class:`ScenarioConfig` over the EDGI topology.

    This is the *tenant-stream* view of the deployment (N users' QoS
    BoTs routed over the two DCIs); :class:`EDGIConfig` below is the
    *Table 5* view (mixed native/bridged traffic, partial QoS).
    """
    return ScenarioConfig(dcis=EDGI_DCIS, seed=seed, n_tenants=n_tenants,
                          routing=routing, policy=policy, **overrides)


@dataclass(frozen=True)
class EDGIConfig:
    """One Table 5-style deployment run, declaratively.

    Frozen and hashable so the campaign engine can content-address it:
    ``run_cached(EDGIConfig(...))`` simulates at most once per store
    lifetime, and grids of these sweep/parallelize like any other
    config family.
    """

    seed: int = 5
    lal_nodes: int = 180
    lri_nodes: int = 200
    horizon_days: float = 7.0
    duration_days: float = 2.0
    n_bots: int = 12
    bot_size: int = 220
    egi_fraction: float = 0.25
    qos_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.lal_nodes < 1 or self.lri_nodes < 1:
            raise ValueError("node counts must be >= 1")
        if self.horizon_days <= 0 or self.duration_days <= 0:
            raise ValueError("horizon/duration must be positive")
        if self.n_bots < 1 or self.bot_size < 1:
            raise ValueError("n_bots and bot_size must be >= 1")
        if not 0.0 <= self.egi_fraction <= 1.0:
            raise ValueError("egi_fraction must be in [0, 1]")
        if not 0.0 <= self.qos_fraction <= 1.0:
            raise ValueError("qos_fraction must be in [0, 1]")

    def label(self) -> str:
        return (f"edgi/{self.n_bots}x{self.bot_size}"
                f"/{self.duration_days:g}d/s{self.seed}")


def run_edgi(cfg: EDGIConfig) -> Dict[str, int]:
    """Run one EDGI deployment; returns the Table 5 accounting row."""
    dep = EDGIDeployment(seed=cfg.seed, lal_nodes=cfg.lal_nodes,
                         lri_nodes=cfg.lri_nodes,
                         horizon_days=cfg.horizon_days)
    return dep.run(duration_days=cfg.duration_days, n_bots=cfg.n_bots,
                   bot_size=cfg.bot_size, egi_fraction=cfg.egi_fraction,
                   qos_fraction=cfg.qos_fraction)


class EDGIDeployment:
    """Simulated Paris-XI EDGI deployment (two DGs, two clouds, bridge)."""

    def __init__(self, seed: int = 5, lal_nodes: int = 180,
                 lri_nodes: int = 200, horizon_days: float = 7.0):
        self.seed = seed
        self.horizon = horizon_days * 86400.0
        self.harness = ScenarioHarness(self.horizon)
        self.sim = self.harness.sim
        # Historical RNG layout (drift-pinned): one shared stream
        # realizes both traces sequentially, pools and drivers draw
        # from small numbered streams.  The generic
        # ScenarioHarness.build_dci uses per-DCI labelled streams
        # instead; changing this would shift every Table 5 number.
        rng = np.random.default_rng([seed, 0xED61])

        # XW@LAL: desktop grid with nd-like churn.
        lal_trace = get_trace_spec("nd").materialize(
            rng, self.horizon, max_nodes=lal_nodes)
        self.lal_pool = NodePool(lal_trace,
                                 rng=np.random.default_rng([seed, 1]))
        self.xw_lal = XWHepServer(self.sim, self.lal_pool, name="XW@LAL")

        # XW@LRI: Grid'5000 best-effort, bounded to 200 nodes (§5).
        lri_trace = get_trace_spec("g5klyo").materialize(
            rng, self.horizon, max_nodes=lri_nodes)
        self.lri_pool = NodePool(lri_trace,
                                 rng=np.random.default_rng([seed, 2]))
        self.xw_lri = XWHepServer(self.sim, self.lri_pool, name="XW@LRI")

        # Clouds: StratusLab backs LAL, EC2 backs LRI (Figure 8).
        self.stratuslab = get_driver("stratuslab", self.sim,
                                     rng=np.random.default_rng([seed, 3]))
        self.ec2 = get_driver("ec2", self.sim,
                              rng=np.random.default_rng([seed, 4]))

        # One SpeQuloS instance serves both DCIs (harness-connected).
        self.harness.add_dci("XW@LAL", self.xw_lal, self.stratuslab,
                             self.lal_pool)
        self.harness.add_dci("XW@LRI", self.xw_lri, self.ec2,
                             self.lri_pool)
        self.speq = self.harness.service

        # EGI reaches XW@LAL through the 3G-Bridge.
        self.bridge = ThreeGBridge(self.xw_lal, name="3g-bridge")

        self._rng = np.random.default_rng([seed, 0xB075])
        self._counter = 0

    # ------------------------------------------------------------------
    def _next_bot(self, size: int):
        self._counter += 1
        return make_bot("RANDOM", self._rng,
                        bot_id=f"edgi-{self._counter}",
                        size_override=size)

    def run(self, duration_days: float = 2.0, n_bots: int = 12,
            bot_size: int = 220, egi_fraction: float = 0.25,
            qos_fraction: float = 0.5,
            combo: Optional[StrategyCombo] = None) -> Dict[str, int]:
        """Drive a BoT stream through the deployment; Table 5 output.

        * ``egi_fraction`` of the BoTs arrive through the 3G-Bridge
          (EGI users), the rest are native XtremWeb submissions;
        * ``qos_fraction`` of all BoTs buy SpeQuloS QoS (credits worth
          10 % of their workload, the paper's provisioning);
        * BoTs alternate between XW@LAL (which also serves the bridged
          ones) and XW@LRI.
        """
        duration = duration_days * 86400.0
        combo = combo or StrategyCombo()  # 9C-C-R
        self.speq.credits.deposit("edgi-users", 1e9)
        submit_times = np.sort(self._rng.random(n_bots) * duration * 0.5)
        # Deterministic round-robin: exact fractions regardless of the
        # (possibly small) BoT count.
        egi_every = max(1, round(1.0 / egi_fraction)) if egi_fraction else 0
        qos_every = max(1, round(1.0 / qos_fraction)) if qos_fraction else 0
        for k in range(n_bots):
            bot = self._next_bot(bot_size)
            at = float(submit_times[k])
            bridged = bool(egi_every) and k % egi_every == 0
            if bridged:
                dci, server = "XW@LAL", self.xw_lal
            elif k % 2 == 0:
                dci, server = "XW@LAL", self.xw_lal
            else:
                dci, server = "XW@LRI", self.xw_lri
            # Alternate QoS in two-bot blocks so both DCIs get QoS and
            # non-QoS traffic regardless of the DCI round-robin parity.
            qos = bool(qos_every) and (k // 2) % qos_every == 0
            if qos:
                self.speq.register_qos(bot, dci, combo, submit_time=at)
                provision = (0.10 * bot.workload_cpu_hours
                             * CREDITS_PER_CPU_HOUR)
                self.speq.order_qos(bot.bot_id, "edgi-users", provision)
            if bridged:
                self.bridge.submit(bot, "EGI", at=at)
            else:
                server.submit_bot(bot, at=at)
        self.harness.run(until=duration)
        return self.accounting()

    # ------------------------------------------------------------------
    def accounting(self) -> Dict[str, int]:
        """Table 5's row: tasks executed per infrastructure component.

        DG counts are tasks completed by each XtremWeb server (bridged
        EGI tasks included, as in the paper); the EGI row counts the
        bridged subset; cloud rows count tasks *assigned* to each
        cloud's workers by SpeQuloS (the harness folds the
        Cloud-duplication coordinators' completions in).
        """
        return {
            "XW@LAL": self.xw_lal.stats.completions,
            "XW@LRI": self.xw_lri.stats.completions,
            "EGI": self.bridge.completed_for("EGI"),
            "StratusLab": self.harness.cloud_task_count("XW@LAL"),
            "EC2": self.harness.cloud_task_count("XW@LRI"),
        }
