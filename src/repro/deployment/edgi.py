"""The University Paris-XI corner of the EDGI infrastructure (§5).

Topology reproduced from Figure 8:

* **XW@LAL** — XtremWeb-HEP over the LAL laboratory desktop grid
  (``nd``-like churn, a few hundred desktop nodes), supported by a
  local **StratusLab** (OpenNebula) cloud;
* **XW@LRI** — XtremWeb-HEP harvesting **Grid'5000** best-effort nodes
  (``g5klyo`` trace, bounded to 200 nodes as in the paper), supported
  by **Amazon EC2**;
* **EGI** users reach XW@LAL through the **3G-Bridge**;
* one **SpeQuloS** instance serves both DCIs.

:meth:`EDGIDeployment.run` pushes a stream of RANDOM-class BoTs through
the deployment (a fraction bridged from EGI, a fraction QoS-enabled)
and returns Table 5-style task accounting.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cloud.registry import get_driver
from repro.core.credit import CREDITS_PER_CPU_HOUR
from repro.core.service import SpeQuloS
from repro.core.strategies import StrategyCombo
from repro.deployment.bridge import ThreeGBridge
from repro.experiments.config import ExecutionConfig  # noqa: F401 (doc link)
from repro.infra.catalog import get_trace_spec
from repro.infra.pool import NodePool
from repro.middleware.xwhep import XWHepServer
from repro.simulator.engine import Simulation
from repro.workload.generator import make_bot

__all__ = ["EDGIDeployment"]


class EDGIDeployment:
    """Simulated Paris-XI EDGI deployment (two DGs, two clouds, bridge)."""

    def __init__(self, seed: int = 5, lal_nodes: int = 180,
                 lri_nodes: int = 200, horizon_days: float = 7.0):
        self.seed = seed
        self.horizon = horizon_days * 86400.0
        self.sim = Simulation(horizon=self.horizon)
        rng = np.random.default_rng([seed, 0xED61])

        # XW@LAL: desktop grid with nd-like churn.
        lal_trace = get_trace_spec("nd").materialize(
            rng, self.horizon, max_nodes=lal_nodes)
        self.lal_pool = NodePool(lal_trace,
                                 rng=np.random.default_rng([seed, 1]))
        self.xw_lal = XWHepServer(self.sim, self.lal_pool, name="XW@LAL")

        # XW@LRI: Grid'5000 best-effort, bounded to 200 nodes (§5).
        lri_trace = get_trace_spec("g5klyo").materialize(
            rng, self.horizon, max_nodes=lri_nodes)
        self.lri_pool = NodePool(lri_trace,
                                 rng=np.random.default_rng([seed, 2]))
        self.xw_lri = XWHepServer(self.sim, self.lri_pool, name="XW@LRI")

        # Clouds: StratusLab backs LAL, EC2 backs LRI (Figure 8).
        self.stratuslab = get_driver("stratuslab", self.sim,
                                     rng=np.random.default_rng([seed, 3]))
        self.ec2 = get_driver("ec2", self.sim,
                              rng=np.random.default_rng([seed, 4]))

        # One SpeQuloS instance serves both DCIs.
        self.speq = SpeQuloS(self.sim)
        self.speq.connect_dci("XW@LAL", self.xw_lal, self.stratuslab)
        self.speq.connect_dci("XW@LRI", self.xw_lri, self.ec2)

        # EGI reaches XW@LAL through the 3G-Bridge.
        self.bridge = ThreeGBridge(self.xw_lal, name="3g-bridge")

        self._rng = np.random.default_rng([seed, 0xB075])
        self._counter = 0

    # ------------------------------------------------------------------
    def _next_bot(self, size: int):
        self._counter += 1
        return make_bot("RANDOM", self._rng,
                        bot_id=f"edgi-{self._counter}",
                        size_override=size)

    def run(self, duration_days: float = 2.0, n_bots: int = 12,
            bot_size: int = 220, egi_fraction: float = 0.25,
            qos_fraction: float = 0.5,
            combo: Optional[StrategyCombo] = None) -> Dict[str, int]:
        """Drive a BoT stream through the deployment; Table 5 output.

        * ``egi_fraction`` of the BoTs arrive through the 3G-Bridge
          (EGI users), the rest are native XtremWeb submissions;
        * ``qos_fraction`` of all BoTs buy SpeQuloS QoS (credits worth
          10 % of their workload, the paper's provisioning);
        * BoTs alternate between XW@LAL (which also serves the bridged
          ones) and XW@LRI.
        """
        duration = duration_days * 86400.0
        combo = combo or StrategyCombo()  # 9C-C-R
        self.speq.credits.deposit("edgi-users", 1e9)
        submit_times = np.sort(self._rng.random(n_bots) * duration * 0.5)
        # Deterministic round-robin: exact fractions regardless of the
        # (possibly small) BoT count.
        egi_every = max(1, round(1.0 / egi_fraction)) if egi_fraction else 0
        qos_every = max(1, round(1.0 / qos_fraction)) if qos_fraction else 0
        for k in range(n_bots):
            bot = self._next_bot(bot_size)
            at = float(submit_times[k])
            bridged = bool(egi_every) and k % egi_every == 0
            if bridged:
                dci, server = "XW@LAL", self.xw_lal
            elif k % 2 == 0:
                dci, server = "XW@LAL", self.xw_lal
            else:
                dci, server = "XW@LRI", self.xw_lri
            # Alternate QoS in two-bot blocks so both DCIs get QoS and
            # non-QoS traffic regardless of the DCI round-robin parity.
            qos = bool(qos_every) and (k // 2) % qos_every == 0
            if qos:
                self.speq.register_qos(bot, dci, combo, submit_time=at)
                provision = (0.10 * bot.workload_cpu_hours
                             * CREDITS_PER_CPU_HOUR)
                self.speq.order_qos(bot.bot_id, "edgi-users", provision)
            if bridged:
                self.bridge.submit(bot, "EGI", at=at)
            else:
                server.submit_bot(bot, at=at)
        self.sim.run(until=duration)
        return self.accounting()

    # ------------------------------------------------------------------
    def accounting(self) -> Dict[str, int]:
        """Table 5's row: tasks executed per infrastructure component.

        DG counts are tasks completed by each XtremWeb server (bridged
        EGI tasks included, as in the paper); the EGI row counts the
        bridged subset; cloud rows count tasks *assigned* to each
        cloud's workers by SpeQuloS.
        """
        lal_cloud = self.xw_lal.stats.cloud_assignments
        lri_cloud = self.xw_lri.stats.cloud_assignments
        # Cloud-duplication completions are tracked by coordinators.
        for run in self.speq.scheduler.runs.values():
            if run.coordinator is not None:
                if run.server is self.xw_lal:
                    lal_cloud += run.coordinator.completions
                else:
                    lri_cloud += run.coordinator.completions
        return {
            "XW@LAL": self.xw_lal.stats.completions,
            "XW@LRI": self.xw_lri.stats.completions,
            "EGI": self.bridge.completed_for("EGI"),
            "StratusLab": lal_cloud,
            "EC2": lri_cloud,
        }
