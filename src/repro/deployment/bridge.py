"""3G-Bridge model: Grid → Desktop Grid task forwarding (§3.7, §5).

In EDGI, jobs submitted to a regular Grid computing element can be
transparently redirected to a Desktop Grid by SZTAKI's 3G-Bridge; the
bridge was extended to carry the SpeQuloS BoT identifier so bridged
BoTs stay QoS-eligible.  The simulation model forwards a BoT from a
named source grid (e.g. ``EGI``) into a target DG server, preserving
the BoT id, and accounts how many bridged tasks the DG completed —
that accounting is the ``EGI`` column of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.middleware.base import DGServer, GTID
from repro.workload.bot import BagOfTasks

__all__ = ["ThreeGBridge", "BridgedBoT"]


@dataclass
class BridgedBoT:
    """Bookkeeping for one BoT forwarded through the bridge."""

    bot: BagOfTasks
    source_grid: str
    submitted_at: float
    completed_tasks: int = 0


class ThreeGBridge:
    """Forwards Grid BoTs into a Desktop Grid server.

    The bridge is an *observer* of the DG server: it recognizes the
    tasks it forwarded and counts their completions per source grid.
    """

    def __init__(self, server: DGServer, name: str = "3g-bridge"):
        self.server = server
        self.name = name
        self.bridged: Dict[str, BridgedBoT] = {}
        self._by_source: Dict[str, List[str]] = {}
        server.add_observer(self)

    # ------------------------------------------------------------------
    def submit(self, bot: BagOfTasks, source_grid: str,
               at: float = 0.0) -> str:
        """Forward a Grid BoT to the DG; returns the preserved BoT id.

        The SpeQuloS BoT identifier travels with the submission (the
        3G-Bridge was "adapted to store the identifier used by SpeQuloS
        to recognize a QoS-enabled BoT").
        """
        if bot.bot_id in self.bridged:
            raise ValueError(f"BoT {bot.bot_id!r} already bridged")
        self.bridged[bot.bot_id] = BridgedBoT(bot=bot,
                                              source_grid=source_grid,
                                              submitted_at=at)
        self._by_source.setdefault(source_grid, []).append(bot.bot_id)
        self.server.submit_bot(bot, at=at)
        return bot.bot_id

    # ------------------------------------------------- observer protocol
    def on_task_completed(self, gtid: GTID, t: float) -> None:
        rec = self.bridged.get(gtid[0])
        if rec is not None:
            rec.completed_tasks += 1

    # ------------------------------------------------------------------
    def completed_for(self, source_grid: str) -> int:
        """Tasks completed on the DG on behalf of a source grid."""
        return sum(self.bridged[b].completed_tasks
                   for b in self._by_source.get(source_grid, ()))

    def sources(self) -> List[str]:
        return sorted(self._by_source)
