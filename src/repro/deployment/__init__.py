"""EDGI-style deployment scenario (paper §5).

The paper reports a production deployment in the European Desktop Grid
Infrastructure: two XtremWeb-HEP desktop grids at University Paris-XI
(XW@LAL on the lab's desktop machines, XW@LRI harvesting Grid'5000
best-effort nodes), EGI grid jobs bridged onto the DGs through the
3G-Bridge, and SpeQuloS provisioning QoS cloud workers from StratusLab
(for LAL) and Amazon EC2 (for LRI).  This package reproduces that
topology in simulation and regenerates Table 5's task accounting.
"""

from repro.deployment.bridge import BridgedBoT, ThreeGBridge
from repro.deployment.edgi import (
    EDGI_DCIS,
    EDGIConfig,
    EDGIDeployment,
    edgi_scenario,
    run_edgi,
)

__all__ = ["ThreeGBridge", "BridgedBoT", "EDGIConfig", "EDGIDeployment",
           "EDGI_DCIS", "edgi_scenario", "run_edgi"]
