"""Deterministic discrete-event simulation engine.

Design notes
------------
The whole reproduction is trace-driven simulation (paper §4): BOINC and
XtremWeb-HEP servers, tens of thousands of volatile workers, the
SpeQuloS monitor loop and cloud workers all advance a shared virtual
clock.  The engine below is a classic event-heap:

* events are ``(time, priority, seq)``-ordered — ``priority`` lets
  infrastructure events (a node dying) run before policy events (the
  SpeQuloS tick) scheduled at the same instant, and ``seq`` makes
  FIFO order among equal keys deterministic;
* events are cancellable in O(1) (lazy deletion: the heap entry stays,
  the callback is dropped when popped);
* time never goes backwards; scheduling in the past raises.

Same-timestamp coalescing: the heap holds *buckets* — one per
``(time, priority)`` key — rather than individual events.  A volunteer
DCI is bursty at scale (thousands of nodes churn on the same monitor
tick), and with per-event heap entries every one of those k events
pays an O(log n) sift; a bucket pays one sift and k list appends.
Events append to their key's open bucket in ``seq`` order, so draining
a bucket front-to-back replays the exact ``(time, priority, seq)``
total order of the flat heap.  The one subtlety is a callback
scheduling an event that must run *before* the remainder of the bucket
being drained (same time, lower priority — e.g. a node death raised
from a policy callback's own instant): before each event the drain
loop compares the heap top against the event's key and, when the top
precedes it, pushes the bucket remainder back and switches.  Same-key
buckets can therefore coexist in the heap; their seq ranges are
disjoint and ordered, so bucket ``first_seq`` ordering stays exact.
Heap entries are plain ``(time, priority, first_seq, bucket)`` tuples
— ``first_seq`` is globally unique, so every heap comparison resolves
in C without ever touching the bucket object.

Batched dispatch: a drained bucket whose consecutive events share one
callable can be handed to a *batch handler* registered via
:meth:`Simulation.register_batch` — one Python call with the argument
list instead of k calls.  The contract (enforced, not assumed) is that
the batch call must be indistinguishable from running the k events
front-to-back:

* the run is maximal-consecutive: an interleaved event with a
  different callable splits the batch, preserving seq order;
* events cancelled before the run starts are excluded exactly like the
  per-event path skips them;
* a batch handler must not cancel an event inside its own run (the
  per-event path could honour it mid-way; the engine checks after the
  call and raises), must not :meth:`stop` the simulation (per-event
  stop() halts mid-bucket; raises immediately), and must not schedule
  a same-time *higher-urgency* event (the per-event path would preempt
  the remainder of the run; :meth:`at` raises).  Handlers that need
  any of those behaviours simply stay unregistered and keep exact
  per-event dispatch.
* ``events_processed`` counts every event of the run; ``now`` is the
  bucket time throughout.  Mid-batch introspection (``pending()``)
  sees the whole run as already consumed — handlers that introspect
  the queue should not be batch-registered.

There is deliberately no wall-clock access and no global state: one
:class:`Simulation` per execution, so campaigns can run executions in
parallel processes without interference.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Event", "Simulation", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulation.schedule` /
    :meth:`Simulation.at`.  Keeping a reference allows cancellation;
    dropping it is fine (the engine owns the heap entry).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # heapq relies on this total order; seq breaks all remaining ties.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} p={self.priority} {name} {state}>"


#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Infrastructure events (node up/down) that must precede policy at equal t.
PRIORITY_INFRA = -10
#: Monitoring / accounting events that must observe a settled state.
PRIORITY_MONITOR = 10


class _Bucket:
    """All queued events sharing one ``(time, priority)`` key.

    ``events`` is append-only and seq-sorted by construction (events
    are created with a monotonic counter and appended immediately).
    The bucket's heap entry carries ``first_seq`` to break ties between
    same-key buckets — their seq ranges are disjoint (a remainder
    pushed back mid-drain always precedes any bucket opened later), so
    comparing the first element orders the whole lists.  Trimming
    cancelled leaders (:meth:`Simulation.peek`) keeps ranges within
    their original bounds, so the frozen entry seq stays order-exact.
    """

    __slots__ = ("time", "priority", "events")

    def __init__(self, time: float, priority: int):
        self.time = time
        self.priority = priority
        self.events: list[Event] = []


#: heap entry: (time, priority, first_seq, bucket) — compared in C
_HeapEntry = Tuple[float, int, int, _Bucket]


class Simulation:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    horizon:
        Hard stop (virtual seconds).  :meth:`run` never advances the
        clock past it; executions that would exceed it are reported as
        censored by the experiment runner.
    """

    def __init__(self, horizon: float = math.inf):
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        self.now: float = 0.0
        self.horizon = float(horizon)
        self._heap: list[_HeapEntry] = []
        #: (time, priority) -> the bucket still accepting appends
        self._open: dict[tuple[float, int], _Bucket] = {}
        #: bucket currently being drained by run() (its remaining
        #: events live outside the heap) + drain position
        self._active: Optional[_Bucket] = None
        self._active_idx = 0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._in_batch = False
        #: callable -> batch handler (see register_batch)
        self._batch: Dict[Callable[..., Any], Callable[[list], Any]] = {}
        #: callbacks fired when run() exits via stop() (see add_stop_hook)
        self._stop_hooks: List[Callable[[], None]] = []
        self.events_processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.at(self.now + delay, fn, *args, priority=priority)

    def at(self, time: float, fn: Callable[..., Any], *args: Any,
           priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self.now!r}")
        if self._in_batch:
            active = self._active
            if time == active.time and priority < active.priority:
                raise SimulationError(
                    f"batch handler for {fn!r} scheduled a same-time "
                    f"higher-urgency event (priority {priority} < "
                    f"{active.priority}); per-event dispatch would preempt "
                    "the rest of the batch — unregister the batch handler")
        ev = Event(float(time), priority, next(self._seq), fn, args)
        key = (ev.time, priority)
        bucket = self._open.get(key)
        if bucket is None:
            bucket = _Bucket(ev.time, priority)
            self._open[key] = bucket
            heapq.heappush(self._heap, (ev.time, priority, ev.seq, bucket))
        bucket.events.append(ev)
        return ev

    def schedule_batch(self, delay: float, fn: Callable[..., Any],
                       argslist: Sequence[tuple],
                       priority: int = PRIORITY_NORMAL) -> List[Event]:
        """Schedule ``fn(*args)`` once per args tuple, all at one instant.

        The events share one ``(time, priority)`` bucket in seq order,
        so a batch handler registered for ``fn`` receives them as a
        single call when the bucket drains.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        t = self.now + delay
        return [self.at(t, fn, *args, priority=priority)
                for args in argslist]

    # ------------------------------------------------------------------
    # batch-handler registry
    # ------------------------------------------------------------------
    def register_batch(self, fn: Callable[..., Any],
                       batch_fn: Callable[[list], Any]) -> None:
        """Register ``batch_fn(argslist)`` as the batched form of ``fn``.

        When a drained bucket holds two or more consecutive live events
        for ``fn``, the engine makes one ``batch_fn([args, ...])`` call
        (args tuples in seq order) instead of per-event calls.  The
        handler must be observationally identical to running the events
        one by one — see the module docstring for the enforced contract.
        Bound methods are fine as keys (they hash by instance+function).
        """
        if not callable(fn) or not callable(batch_fn):
            raise SimulationError("register_batch expects two callables")
        self._batch[fn] = batch_fn

    def unregister_batch(self, fn: Callable[..., Any]) -> None:
        self._batch.pop(fn, None)

    def add_stop_hook(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` when :meth:`run` returns because of :meth:`stop`.

        Hooks fire after the event loop has exited, so they may cancel
        or discard still-scheduled events without affecting the
        transcript (those events were never going to execute).  They
        are for terminal cleanup — e.g. the harness cancelling dead
        dispatch wake-up timers once a campaign's watcher stops the
        run.  Hooks do not fire on a horizon/`until` drain (the run
        may legitimately be continued in phases).
        """
        if not callable(fn):
            raise SimulationError("add_stop_hook expects a callable")
        self._stop_hooks.append(fn)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events in order until the heap drains.

        ``until`` (absolute time) bounds this call; the overall
        ``horizon`` bounds the simulation.  Returns the clock value when
        the run stops.  May be called repeatedly to advance in phases.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        limit = self.horizon if until is None else min(float(until), self.horizon)
        self._running = True
        self._stopped = False
        try:
            heap = self._heap
            while heap:
                if heap[0][0] > limit:
                    break
                bucket = heapq.heappop(heap)[3]
                # Detach from appends: events scheduled at this key while
                # it drains open a fresh bucket (their seqs are larger, so
                # they run after the remainder — exact flat-heap order).
                key = (bucket.time, bucket.priority)
                if self._open.get(key) is bucket:
                    del self._open[key]
                self._drain(bucket, heap)
                if self._stopped:
                    break
            if not self._stopped and until is not None and limit > self.now \
                    and (not heap or heap[0][0] > limit):
                # Bounded run with nothing left before the bound: the
                # clock advances to the bound even on a drained heap, so
                # phased callers (tick loops) see time move.  Unbounded
                # runs still rest at the last event time so completion
                # timestamps stay exact.
                self.now = limit
            if self._stopped:
                for fn in self._stop_hooks:
                    fn()
            return self.now
        finally:
            self._running = False
            self._active = None

    def _drain(self, bucket: _Bucket, heap: list) -> None:
        """Run one bucket's events front-to-back (seq order).

        Before each event, yields to the heap top if a callback queued
        something that precedes the rest of this bucket (same time,
        lower priority, or same key with smaller first_seq can't happen
        — remainders keep the smallest seqs); the live remainder is
        pushed back as its own bucket.  Also pushes the remainder back
        on :meth:`stop` so a later run resumes mid-bucket correctly.

        Consecutive live events sharing a batch-registered callable are
        collapsed into one handler call; the heap-top check before the
        run covers every event in it, because nothing a contract-abiding
        batch handler schedules can precede the run's own key (same-time
        higher-urgency scheduling raises in :meth:`at`, and same-key
        events get strictly larger seqs).
        """
        events = bucket.events
        time, priority = bucket.time, bucket.priority
        self._active = bucket
        batch_table = self._batch
        i = 0
        n = len(events)  # fixed: detached buckets never grow
        while i < n:
            ev = events[i]
            if ev.cancelled:
                i += 1
                self._active_idx = i
                continue
            if heap:
                top = heap[0]
                tt = top[0]
                if tt < time or (tt == time and (
                        top[1] < priority
                        or (top[1] == priority and top[2] < ev.seq))):
                    self._push_remainder(events, i)
                    break
            fn = ev.fn
            if batch_table and i + 1 < n:
                batch_fn = batch_table.get(fn)
                if batch_fn is not None:
                    # Maximal consecutive run of live events for fn
                    # (interior cancelled events are skipped exactly like
                    # the per-event path skips them).
                    j = i + 1
                    while j < n and (events[j].cancelled
                                     or events[j].fn == fn):
                        j += 1
                    run = [e for e in events[i:j] if not e.cancelled]
                    if len(run) > 1:
                        i = j
                        self._active_idx = j
                        self.now = time
                        self.events_processed += len(run)
                        self._in_batch = True
                        try:
                            batch_fn([e.args for e in run])
                        finally:
                            self._in_batch = False
                        for e in run:
                            if e.cancelled:
                                raise SimulationError(
                                    f"batch handler for {fn!r} cancelled "
                                    f"{e!r} inside its own batch; the "
                                    "per-event path would have honoured "
                                    "the cancellation mid-run — "
                                    "unregister the batch handler")
                        continue
            i += 1
            self._active_idx = i
            self.now = ev.time
            self.events_processed += 1
            fn(*ev.args)
            if self._stopped:
                self._push_remainder(events, i)
                break
        self._active = None
        self._active_idx = 0

    def _push_remainder(self, events: list[Event], i: int) -> None:
        """Re-queue the undrained tail of the active bucket."""
        tail = [ev for ev in events[i:] if not ev.cancelled]
        if not tail:
            return
        first = tail[0]
        bucket = _Bucket(first.time, first.priority)
        bucket.events = tail
        heapq.heappush(self._heap,
                       (first.time, first.priority, first.seq, bucket))

    def stop(self) -> None:
        """Stop the current :meth:`run` after the active callback returns."""
        if self._in_batch:
            raise SimulationError(
                "stop() called from inside a batch handler; the per-event "
                "path would halt mid-bucket — unregister the batch handler "
                "for callbacks that may stop the simulation")
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Prunes cancelled entries while counting (the same garbage
        :meth:`peek` pops from the top): a heap churned by
        cancellations used to keep every dead event in memory until
        its time came around.  The heap list object is mutated in
        place — :meth:`run` holds an alias to it.  Mid-run, the
        remainder of the bucket being drained counts too (those events
        live outside the heap until re-queued).
        """
        heap = self._heap
        live = [ev for _, _, _, b in heap for ev in b.events
                if not ev.cancelled]
        if len(live) != sum(len(b.events) for _, _, _, b in heap):
            # Rebuild one seq-sorted bucket per key; a sorted entry list
            # is a valid heap, and merging same-key bucket splits is safe
            # (their seq ranges are disjoint, the merge stays sorted).
            live.sort(key=lambda ev: (ev.time, ev.priority, ev.seq))
            buckets: list[_Bucket] = []
            for ev in live:
                if (not buckets or buckets[-1].time != ev.time
                        or buckets[-1].priority != ev.priority):
                    buckets.append(_Bucket(ev.time, ev.priority))
                buckets[-1].events.append(ev)
            heap[:] = [(b.events[0].time, b.priority, b.events[0].seq, b)
                       for b in buckets]
            self._open = {(b.time, b.priority): b for b in buckets}
        count = len(live)
        if self._active is not None:
            count += sum(1 for ev in self._active.events[self._active_idx:]
                         if not ev.cancelled)
        return count

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is drained."""
        active = self._active
        if active is not None and any(
                not ev.cancelled
                for ev in active.events[self._active_idx:]):
            # Mid-run the drained bucket's tail lives outside the heap,
            # and its time (== now) can't be beaten by anything queued.
            return active.time
        heap = self._heap
        while heap:
            bucket = heap[0][3]
            events = bucket.events
            skip = 0
            while skip < len(events) and events[skip].cancelled:
                skip += 1
            if skip < len(events):
                if skip:
                    # Trimming cancelled leaders keeps same-key bucket
                    # seq ranges inside their original bounds, so the
                    # frozen entry first_seq still orders the heap.
                    del events[:skip]
                return bucket.time
            heapq.heappop(heap)
            if self._open.get((bucket.time, bucket.priority)) is bucket:
                del self._open[(bucket.time, bucket.priority)]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        queued = sum(len(b.events) for _, _, _, b in self._heap)
        return (f"<Simulation t={self.now:.3f} pending={queued} "
                f"processed={self.events_processed}>")
