"""Deterministic discrete-event simulation engine.

Design notes
------------
The whole reproduction is trace-driven simulation (paper §4): BOINC and
XtremWeb-HEP servers, tens of thousands of volatile workers, the
SpeQuloS monitor loop and cloud workers all advance a shared virtual
clock.  The engine below is a classic event-heap:

* events are ``(time, priority, seq)``-ordered — ``priority`` lets
  infrastructure events (a node dying) run before policy events (the
  SpeQuloS tick) scheduled at the same instant, and ``seq`` makes
  FIFO order among equal keys deterministic;
* events are cancellable in O(1) (lazy deletion: the heap entry stays,
  the callback is dropped when popped);
* time never goes backwards; scheduling in the past raises.

Same-timestamp coalescing: the heap holds *buckets* — one per
``(time, priority)`` key — rather than individual events.  A volunteer
DCI is bursty at scale (thousands of nodes churn on the same monitor
tick), and with per-event heap entries every one of those k events
pays an O(log n) sift; a bucket pays one sift and k list appends.
Events append to their key's open bucket in ``seq`` order, so draining
a bucket front-to-back replays the exact ``(time, priority, seq)``
total order of the flat heap.  The one subtlety is a callback
scheduling an event that must run *before* the remainder of the bucket
being drained (same time, lower priority — e.g. a node death raised
from a policy callback's own instant): before each event the drain
loop compares the heap top against the event's key and, when the top
precedes it, pushes the bucket remainder back and switches.  Same-key
buckets can therefore coexist in the heap; their seq ranges are
disjoint and ordered, so bucket ``first_seq`` ordering stays exact.

There is deliberately no wall-clock access and no global state: one
:class:`Simulation` per execution, so campaigns can run executions in
parallel processes without interference.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulation", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulation.schedule` /
    :meth:`Simulation.at`.  Keeping a reference allows cancellation;
    dropping it is fine (the engine owns the heap entry).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # heapq relies on this total order; seq breaks all remaining ties.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} p={self.priority} {name} {state}>"


#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Infrastructure events (node up/down) that must precede policy at equal t.
PRIORITY_INFRA = -10
#: Monitoring / accounting events that must observe a settled state.
PRIORITY_MONITOR = 10


class _Bucket:
    """All queued events sharing one ``(time, priority)`` key.

    ``events`` is append-only and seq-sorted by construction (events
    are created with a monotonic counter and appended immediately).
    ``first_seq`` breaks heap ties between same-key buckets — their
    seq ranges are disjoint (a remainder pushed back mid-drain always
    precedes any bucket opened later), so comparing the first element
    orders the whole lists.
    """

    __slots__ = ("time", "priority", "first_seq", "events")

    def __init__(self, time: float, priority: int, first_seq: int):
        self.time = time
        self.priority = priority
        self.first_seq = first_seq
        self.events: list[Event] = []

    def __lt__(self, other: "_Bucket") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.first_seq < other.first_seq


class Simulation:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    horizon:
        Hard stop (virtual seconds).  :meth:`run` never advances the
        clock past it; executions that would exceed it are reported as
        censored by the experiment runner.
    """

    def __init__(self, horizon: float = math.inf):
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        self.now: float = 0.0
        self.horizon = float(horizon)
        self._heap: list[_Bucket] = []
        #: (time, priority) -> the bucket still accepting appends
        self._open: dict[tuple[float, int], _Bucket] = {}
        #: bucket currently being drained by run() (its remaining
        #: events live outside the heap) + drain position
        self._active: Optional[_Bucket] = None
        self._active_idx = 0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.at(self.now + delay, fn, *args, priority=priority)

    def at(self, time: float, fn: Callable[..., Any], *args: Any,
           priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self.now!r}")
        ev = Event(float(time), priority, next(self._seq), fn, args)
        key = (ev.time, priority)
        bucket = self._open.get(key)
        if bucket is None:
            bucket = _Bucket(ev.time, priority, ev.seq)
            self._open[key] = bucket
            heapq.heappush(self._heap, bucket)
        bucket.events.append(ev)
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events in order until the heap drains.

        ``until`` (absolute time) bounds this call; the overall
        ``horizon`` bounds the simulation.  Returns the clock value when
        the run stops.  May be called repeatedly to advance in phases.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        limit = self.horizon if until is None else min(float(until), self.horizon)
        self._running = True
        self._stopped = False
        try:
            heap = self._heap
            while heap:
                bucket = heap[0]
                if bucket.time > limit:
                    break
                heapq.heappop(heap)
                # Detach from appends: events scheduled at this key while
                # it drains open a fresh bucket (their seqs are larger, so
                # they run after the remainder — exact flat-heap order).
                if self._open.get((bucket.time, bucket.priority)) is bucket:
                    del self._open[(bucket.time, bucket.priority)]
                self._drain(bucket, heap)
                if self._stopped:
                    break
            if not self._stopped and until is not None and limit > self.now \
                    and (not heap or heap[0].time > limit):
                # Bounded run with nothing left before the bound: the
                # clock advances to the bound even on a drained heap, so
                # phased callers (tick loops) see time move.  Unbounded
                # runs still rest at the last event time so completion
                # timestamps stay exact.
                self.now = limit
            return self.now
        finally:
            self._running = False
            self._active = None

    def _drain(self, bucket: _Bucket, heap: list[_Bucket]) -> None:
        """Run one bucket's events front-to-back (seq order).

        Before each event, yields to the heap top if a callback queued
        something that precedes the rest of this bucket (same time,
        lower priority, or same key with smaller first_seq can't happen
        — remainders keep the smallest seqs); the live remainder is
        pushed back as its own bucket.  Also pushes the remainder back
        on :meth:`stop` so a later run resumes mid-bucket correctly.
        """
        events = bucket.events
        time, priority = bucket.time, bucket.priority
        self._active = bucket
        i = 0
        n = len(events)  # fixed: detached buckets never grow
        while i < n:
            ev = events[i]
            if ev.cancelled:
                i += 1
                self._active_idx = i
                continue
            if heap:
                top = heap[0]
                if (top.time, top.priority, top.first_seq) < \
                        (time, priority, ev.seq):
                    self._push_remainder(events, i)
                    break
            i += 1
            self._active_idx = i
            self.now = ev.time
            self.events_processed += 1
            ev.fn(*ev.args)
            if self._stopped:
                self._push_remainder(events, i)
                break
        self._active = None
        self._active_idx = 0

    def _push_remainder(self, events: list[Event], i: int) -> None:
        """Re-queue the undrained tail of the active bucket."""
        tail = [ev for ev in events[i:] if not ev.cancelled]
        if not tail:
            return
        bucket = _Bucket(tail[0].time, tail[0].priority, tail[0].seq)
        bucket.events = tail
        heapq.heappush(self._heap, bucket)

    def stop(self) -> None:
        """Stop the current :meth:`run` after the active callback returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Prunes cancelled entries while counting (the same garbage
        :meth:`peek` pops from the top): a heap churned by
        cancellations used to keep every dead event in memory until
        its time came around.  The heap list object is mutated in
        place — :meth:`run` holds an alias to it.  Mid-run, the
        remainder of the bucket being drained counts too (those events
        live outside the heap until re-queued).
        """
        heap = self._heap
        live = [ev for b in heap for ev in b.events if not ev.cancelled]
        if len(live) != sum(len(b.events) for b in heap):
            # Rebuild one seq-sorted bucket per key; a sorted list is a
            # valid heap, and merging same-key bucket splits is safe
            # (their seq ranges are disjoint, the merge stays sorted).
            live.sort(key=lambda ev: (ev.time, ev.priority, ev.seq))
            buckets: list[_Bucket] = []
            for ev in live:
                if (not buckets or buckets[-1].time != ev.time
                        or buckets[-1].priority != ev.priority):
                    buckets.append(_Bucket(ev.time, ev.priority, ev.seq))
                buckets[-1].events.append(ev)
            heap[:] = buckets
            self._open = {(b.time, b.priority): b for b in heap}
        count = len(live)
        if self._active is not None:
            count += sum(1 for ev in self._active.events[self._active_idx:]
                         if not ev.cancelled)
        return count

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is drained."""
        active = self._active
        if active is not None and any(
                not ev.cancelled
                for ev in active.events[self._active_idx:]):
            # Mid-run the drained bucket's tail lives outside the heap,
            # and its time (== now) can't be beaten by anything queued.
            return active.time
        heap = self._heap
        while heap:
            bucket = heap[0]
            events = bucket.events
            skip = 0
            while skip < len(events) and events[skip].cancelled:
                skip += 1
            if skip < len(events):
                if skip:
                    # Trimming cancelled leaders keeps same-key bucket
                    # seq ranges disjoint, so heap order is unaffected.
                    del events[:skip]
                    bucket.first_seq = events[0].seq
                return bucket.time
            heapq.heappop(heap)
            if self._open.get((bucket.time, bucket.priority)) is bucket:
                del self._open[(bucket.time, bucket.priority)]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        queued = sum(len(b.events) for b in self._heap)
        return (f"<Simulation t={self.now:.3f} pending={queued} "
                f"processed={self.events_processed}>")
