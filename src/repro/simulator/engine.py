"""Deterministic discrete-event simulation engine.

Design notes
------------
The whole reproduction is trace-driven simulation (paper §4): BOINC and
XtremWeb-HEP servers, tens of thousands of volatile workers, the
SpeQuloS monitor loop and cloud workers all advance a shared virtual
clock.  The engine below is a classic event-heap:

* events are ``(time, priority, seq)``-ordered — ``priority`` lets
  infrastructure events (a node dying) run before policy events (the
  SpeQuloS tick) scheduled at the same instant, and ``seq`` makes
  FIFO order among equal keys deterministic;
* events are cancellable in O(1) (lazy deletion: the heap entry stays,
  the callback is dropped when popped);
* time never goes backwards; scheduling in the past raises.

There is deliberately no wall-clock access and no global state: one
:class:`Simulation` per execution, so campaigns can run executions in
parallel processes without interference.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulation", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulation.schedule` /
    :meth:`Simulation.at`.  Keeping a reference allows cancellation;
    dropping it is fine (the engine owns the heap entry).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # heapq relies on this total order; seq breaks all remaining ties.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} p={self.priority} {name} {state}>"


#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Infrastructure events (node up/down) that must precede policy at equal t.
PRIORITY_INFRA = -10
#: Monitoring / accounting events that must observe a settled state.
PRIORITY_MONITOR = 10


class Simulation:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    horizon:
        Hard stop (virtual seconds).  :meth:`run` never advances the
        clock past it; executions that would exceed it are reported as
        censored by the experiment runner.
    """

    def __init__(self, horizon: float = math.inf):
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        self.now: float = 0.0
        self.horizon = float(horizon)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.at(self.now + delay, fn, *args, priority=priority)

    def at(self, time: float, fn: Callable[..., Any], *args: Any,
           priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self.now!r}")
        ev = Event(float(time), priority, next(self._seq), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events in order until the heap drains.

        ``until`` (absolute time) bounds this call; the overall
        ``horizon`` bounds the simulation.  Returns the clock value when
        the run stops.  May be called repeatedly to advance in phases.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        limit = self.horizon if until is None else min(float(until), self.horizon)
        self._running = True
        self._stopped = False
        try:
            heap = self._heap
            while heap:
                ev = heap[0]
                if ev.time > limit:
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                self.events_processed += 1
                ev.fn(*ev.args)
                if self._stopped:
                    break
            else:
                # Heap drained: clock rests where the last event left it.
                pass
            if not self._stopped and (not heap or heap[0].time > limit):
                # Advance to the bound only if explicitly bounded; a
                # drained heap leaves `now` at the last event time so
                # completion timestamps are exact.
                if until is not None and limit > self.now and heap:
                    self.now = limit
            return self.now
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the active callback returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Prunes cancelled entries while counting (the same garbage
        :meth:`peek` pops from the top): a heap churned by
        cancellations used to keep every dead event in memory until
        its time came around.  The heap list object is mutated in
        place — :meth:`run` holds an alias to it.
        """
        heap = self._heap
        live = [ev for ev in heap if not ev.cancelled]
        if len(live) != len(heap):
            heapq.heapify(live)
            heap[:] = live
        return len(heap)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is drained."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulation t={self.now:.3f} pending={len(self._heap)} "
                f"processed={self.events_processed}>")
