"""Discrete-event simulation engine underlying every experiment.

The engine is intentionally minimal: a monotone event heap with
cancellable events and deterministic tie-breaking.  All simulated
components (node pools, middleware servers, the SpeQuloS scheduler,
cloud workers) schedule callbacks through a single :class:`Simulation`
instance, so a whole BoT execution is reproducible from one seed.
"""

from repro.simulator.engine import Event, Simulation, SimulationError

__all__ = ["Event", "Simulation", "SimulationError"]
