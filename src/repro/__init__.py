"""SpeQuloS reproduction — QoS for Bag-of-Tasks on best-effort DCIs.

Public entry points:

* :mod:`repro.infra` — BE-DCI availability substrate (Table 2 traces);
* :mod:`repro.workload` — BoT workloads (Table 3 categories);
* :mod:`repro.middleware` — BOINC / XtremWeb-HEP simulators;
* :mod:`repro.cloud` — simulated IaaS providers and cloud workers;
* :mod:`repro.core` — the SpeQuloS service itself;
* :mod:`repro.analysis` — tail metrics;
* :mod:`repro.experiments` — campaign runner and figure/table builders;
* :mod:`repro.deployment` — the EDGI multi-infrastructure scenario.

Quickstart::

    from repro.experiments import ExecutionConfig, run_execution
    base = ExecutionConfig(trace="seti", middleware="xwhep",
                           category="SMALL", seed=42)
    res = run_execution(base)
    speq = run_execution(base.with_strategy("9C-C-R"))
    print(res.makespan, "->", speq.makespan)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
