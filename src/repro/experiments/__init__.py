"""Experiment harness: configurations, runner, figure/table builders.

The paper's evaluation (§4) is a campaign of >25 000 BoT executions
over the cross product (6 BE-DCI traces) x (2 middleware) x (3 BoT
categories) x (submission offsets) x (19 SpeQuloS variants: none + 18
strategy combinations).  This package runs scaled-down versions of the
same grid:

* :class:`ExecutionConfig` fully determines one execution (one seed =
  one trace realization + one workload draw + one pool shuffle), so a
  with/without-SpeQuloS pair shares its environment exactly, as the
  paper's seeded simulator does;
* :func:`run_execution` executes one configuration and returns an
  :class:`ExecutionResult` with everything the figures need;
* :func:`run_campaign` fans configurations out through the campaign
  engine (:mod:`repro.campaign`): results already in the
  content-addressed store are reused, the rest are sharded over a
  process pool and persisted;
* :mod:`repro.experiments.figures` rebuilds every table and figure
  from declarative :class:`~repro.campaign.spec.SweepSpec` grids.

``REPRO_SCALE=quick|full`` selects the campaign size (see
:mod:`repro.experiments.config`).
"""

from repro.experiments.config import (
    CampaignScale,
    DCISpec,
    ExecutionConfig,
    MultiTenantConfig,
    ScenarioConfig,
    get_scale,
)
from repro.experiments.harness import ScenarioHarness
from repro.experiments.runner import (
    DCIOutcome,
    ExecutionResult,
    FederatedResult,
    FederatedTenantOutcome,
    MultiTenantResult,
    TenantOutcome,
    run_campaign,
    run_execution,
    run_federated,
    run_multi_tenant,
)

__all__ = [
    "CampaignScale",
    "DCIOutcome",
    "DCISpec",
    "ExecutionConfig",
    "ExecutionResult",
    "FederatedResult",
    "FederatedTenantOutcome",
    "MultiTenantConfig",
    "MultiTenantResult",
    "ScenarioConfig",
    "ScenarioHarness",
    "TenantOutcome",
    "get_scale",
    "run_campaign",
    "run_execution",
    "run_federated",
    "run_multi_tenant",
]
