"""Execution runners: one config in, one result out — plus the parallel
campaign fan-out.

All world assembly lives in the :class:`~repro.experiments.harness.
ScenarioHarness`: each entry point below builds its DCIs, service and
submission stream through the harness and only keeps its own result
shaping.  Three scenario families share the path:

* :func:`run_execution` — one BoT on one BE-DCI (optionally with
  SpeQuloS), the paper's §4 campaign unit;
* :func:`run_multi_tenant` — N users' BoTs arriving over time on *one*
  shared BE-DCI + Cloud + credit pool under an arbitration policy —
  the contention regime of the EDGI deployment (§5);
* :func:`run_federated` — N users' BoTs over *several* DCIs, each its
  own trace realization, middleware and cloud, with a routing policy
  assigning BoTs to DCIs and one arbiter policing the global worker
  budget and the shared pool — the paper's headline topology (Figure
  8) as a reproducible scenario family.

Trace realizations are cached per (trace, seed-stream, cap, horizon)
with true LRU eviction (``REPRO_TRACE_CACHE`` entries, hit/miss
counters on :data:`~repro.experiments.harness.TRACE_CACHE`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from repro.analysis.metrics import (
    CompletionProfile,
    ideal_completion_time,
    jain_fairness_index,
    max_min_ratio,
    tail_fraction_of_tasks,
    tail_fraction_of_time,
    tail_slowdown,
)
from repro.core.admission import AdmissionController
from repro.core.credit import CREDITS_PER_CPU_HOUR
from repro.core.routing import make_router
from repro.core.scheduler import CloudArbiter
from repro.core.service import SpeQuloS
from repro.core.strategies import StrategyCombo, parse_combo
from repro.economics.pricing import PriceBook
from repro.experiments.config import (
    ExecutionConfig,
    MultiTenantConfig,
    ScenarioConfig,
)
from repro.experiments.harness import ScenarioHarness
from repro.history import open_history_plane
from repro.workload.generator import make_bot
from repro.workload.tenants import TenantSubmission, generate_tenants

__all__ = ["ExecutionResult", "run_execution", "run_campaign",
           "TenantOutcome", "MultiTenantResult", "run_multi_tenant",
           "DCIOutcome", "FederatedTenantOutcome", "FederatedResult",
           "run_federated"]


@dataclass
class ExecutionResult:
    """Everything the figures/tables need from one execution."""

    config: ExecutionConfig
    makespan: float
    censored: bool
    n_tasks: int
    completion_times: np.ndarray
    #: tc(x) for x = 1..100 % (prediction benches re-fit alpha on this)
    tc_grid: np.ndarray
    ideal_time: float
    slowdown: float
    pct_tasks_in_tail: float
    pct_time_in_tail: float
    credits_provisioned: float
    credits_spent: float
    workers_launched: int
    cloud_cpu_hours: float
    cloud_completions: int
    events: int
    wall_seconds: float
    server_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def profile(self) -> CompletionProfile:
        return CompletionProfile(self.completion_times)

    @property
    def credits_used_pct(self) -> float:
        """Figure 5's metric: spent / provisioned, in percent."""
        if self.credits_provisioned <= 0:
            return 0.0
        return 100.0 * self.credits_spent / self.credits_provisioned


# ---------------------------------------------------------------------------
# shared outcome collection
# ---------------------------------------------------------------------------
def _observed_profile(mon, horizon: float):
    """(completion profile, censored?) of one monitored BoT.

    A censored BoT scores its unfinished tasks at the horizon,
    relative to its own submission instant.
    """
    censored = not mon.done
    if censored:
        missing = mon.total - mon.completed_count
        times = np.concatenate([np.asarray(mon.completion_times),
                                np.full(missing, horizon - mon.t0)])
    else:
        times = np.asarray(mon.completion_times)
    return CompletionProfile(np.sort(times)), censored


def _resolve_combo(strategy: str, threshold: float) -> StrategyCombo:
    combo = parse_combo(strategy)
    if threshold != combo.threshold:
        combo = combo.with_threshold(threshold)
    return combo


# ---------------------------------------------------------------------------
def run_execution(cfg: ExecutionConfig,
                  middleware_config: Optional[object] = None
                  ) -> ExecutionResult:
    """Simulate one BoT execution and collect its metrics.

    ``middleware_config`` optionally overrides the standard BOINC/XWHEP
    parameters (ablation studies); pass a
    :class:`~repro.middleware.boinc.BoincConfig` or
    :class:`~repro.middleware.xwhep.XWHepConfig` matching
    ``cfg.middleware``.
    """
    wall0 = time.perf_counter()
    horizon = cfg.horizon

    harness = ScenarioHarness(horizon)
    dci = harness.build_dci(cfg.env_name(), cfg.trace, cfg.middleware,
                            cfg.seed, cfg.node_cap(),
                            provider=cfg.provider,
                            middleware_config=middleware_config)
    server = dci.server
    bot = make_bot(cfg.category, np.random.default_rng([cfg.seed, 0xB07]),
                   bot_id=f"bot-{cfg.seed}", size_override=cfg.bot_size)

    service: Optional[SpeQuloS] = None
    bot_id = bot.bot_id
    if cfg.strategy is not None:
        combo = _resolve_combo(cfg.strategy, cfg.strategy_threshold)
        service = harness.service
        service.register_qos(bot, cfg.env_name(), combo)
        provision = (cfg.credit_fraction * bot.workload_cpu_hours
                     * CREDITS_PER_CPU_HOUR)
        service.credits.deposit("user", provision)
        service.order_qos(bot_id, "user", provision)
    else:
        # Plain monitoring (no QoS): reuse the Information monitor as a
        # standalone observer so both arms record identical series.
        from repro.core.info import BoTMonitor
        monitor = BoTMonitor(bot, 0.0)
        server.add_observer(monitor)

    harness.stop_when_complete([bot_id])
    server.submit_bot(bot, at=0.0)
    harness.run()

    mon = service.monitor(bot_id) if service is not None else monitor
    profile, censored = _observed_profile(mon, horizon)

    credits_prov = credits_spent = 0.0
    workers = 0
    cloud_hours = 0.0
    cloud_completions = 0
    if service is not None:
        run = service.run_for(bot_id)
        service.scheduler.finalize(run)  # settle accounts if censored
        order = service.credits.get_order(bot_id)
        if order is not None:
            credits_prov, credits_spent = order.provisioned, order.spent
        workers = run.workers_launched
        cloud_hours = run.driver.total_cpu_hours()
        cloud_completions = (run.coordinator.completions
                             if run.coordinator is not None else 0)

    from repro.core.info import tc_grid as _grid
    return ExecutionResult(
        config=cfg,
        makespan=profile.makespan,
        censored=censored,
        n_tasks=bot.size,
        completion_times=profile.times,
        tc_grid=_grid(list(profile.times), bot.size),
        ideal_time=ideal_completion_time(profile),
        slowdown=tail_slowdown(profile),
        pct_tasks_in_tail=100.0 * tail_fraction_of_tasks(profile),
        pct_time_in_tail=100.0 * tail_fraction_of_time(profile),
        credits_provisioned=credits_prov,
        credits_spent=credits_spent,
        workers_launched=workers,
        cloud_cpu_hours=cloud_hours,
        cloud_completions=cloud_completions,
        events=harness.sim.events_processed,
        wall_seconds=time.perf_counter() - wall0,
        server_stats=vars(server.stats).copy(),
    )


# ---------------------------------------------------------------------------
# multi-tenant scenarios (shared-service regime, §5)
# ---------------------------------------------------------------------------
@dataclass
class TenantOutcome:
    """What one tenant experienced inside a shared scenario."""

    user: str
    bot_id: str
    category: str
    arrival: float
    deadline: Optional[float]
    n_tasks: int
    #: completion time relative to this tenant's own submission
    makespan: float
    censored: bool
    ideal_time: float
    slowdown: float
    credits_spent: float
    workers_launched: int


def _tenant_outcome(service: SpeQuloS, sub: TenantSubmission,
                    horizon: float, cls: Type = TenantOutcome,
                    **extra) -> TenantOutcome:
    """Collect one admitted tenant's outcome (settling its accounts)."""
    run = service.run_for(sub.bot_id)
    service.scheduler.finalize(run)  # settle accounts if censored
    mon = service.monitor(sub.bot_id)
    profile, censored = _observed_profile(mon, horizon)
    order = service.credits.get_order(sub.bot_id)
    return cls(
        user=sub.user, bot_id=sub.bot_id, category=sub.bot.category,
        arrival=sub.arrival, deadline=sub.deadline, n_tasks=sub.bot.size,
        makespan=profile.makespan, censored=censored,
        ideal_time=ideal_completion_time(profile),
        slowdown=tail_slowdown(profile),
        credits_spent=order.spent if order is not None else 0.0,
        workers_launched=run.workers_launched, **extra)


def _unadmitted_outcome(sub: TenantSubmission, horizon: float,
                        cls: Type = TenantOutcome, **extra) -> TenantOutcome:
    """A tenant never admitted before the horizon: fully censored."""
    span = max(0.0, horizon - sub.arrival)
    profile = CompletionProfile(np.full(sub.bot.size, span))
    return cls(
        user=sub.user, bot_id=sub.bot_id, category=sub.bot.category,
        arrival=sub.arrival, deadline=sub.deadline, n_tasks=sub.bot.size,
        makespan=profile.makespan, censored=True,
        ideal_time=ideal_completion_time(profile),
        slowdown=tail_slowdown(profile),
        credits_spent=0.0, workers_launched=0, **extra)


@dataclass
class MultiTenantResult:
    """Scenario-level outcome: per-tenant records + shared accounting."""

    config: MultiTenantConfig
    tenants: List[TenantOutcome]
    pool_provisioned: float
    pool_spent: float
    #: peak number of simultaneously alive Cloud workers (arbitration
    #: must keep this within the configured global budget)
    workers_peak: int
    events: int
    wall_seconds: float

    @property
    def slowdowns(self) -> np.ndarray:
        return np.asarray([t.slowdown for t in self.tenants])

    @property
    def makespans(self) -> np.ndarray:
        return np.asarray([t.makespan for t in self.tenants])

    @property
    def censored_count(self) -> int:
        return sum(1 for t in self.tenants if t.censored)

    @property
    def slowdown_spread(self) -> float:
        """Max/min per-tenant slowdown — the arbitration fairness
        figure of merit (1.0 = perfectly even service)."""
        return max_min_ratio(self.slowdowns)

    @property
    def fairness(self) -> float:
        """Jain's index over per-tenant slowdowns."""
        return jain_fairness_index(self.slowdowns)

    @property
    def pool_used_pct(self) -> float:
        if self.pool_provisioned <= 0:
            return 0.0
        return 100.0 * self.pool_spent / self.pool_provisioned


def run_multi_tenant(cfg: MultiTenantConfig) -> MultiTenantResult:
    """Simulate N concurrent tenants sharing one DCI, Cloud and pool.

    One simulation hosts every tenant: BoTs are QoS-registered and
    submitted at their arrival instants, all bill the same credit pool,
    and the configured :class:`~repro.core.scheduler.CloudArbiter`
    polices the shared worker budget.  The run stops when every BoT
    completes (or at the horizon — stragglers are censored).
    """
    wall0 = time.perf_counter()
    horizon = cfg.horizon

    arbiter = CloudArbiter(cfg.policy,
                           max_total_workers=cfg.max_total_workers)
    harness = ScenarioHarness(horizon, arbiter=arbiter)
    dci = harness.build_dci(cfg.env_name(), cfg.trace, cfg.middleware,
                            cfg.seed, cfg.node_cap(),
                            provider=cfg.provider)
    service = harness.service

    combo = _resolve_combo(cfg.strategy, cfg.strategy_threshold)
    tenants = generate_tenants(
        np.random.default_rng([cfg.seed, 0x7E7]), cfg.n_tenants,
        categories=cfg.categories,
        rate_per_hour=cfg.arrival_rate_per_hour,
        arrivals=cfg.arrivals, bot_size=cfg.bot_size,
        deadline_factor=cfg.deadline_factor)

    total_cpu_hours = sum(sub.bot.workload_cpu_hours for sub in tenants)
    provision = cfg.pool_fraction * total_cpu_hours * CREDITS_PER_CPU_HOUR
    pool_id = f"pool-{cfg.seed}"
    service.credits.deposit("tenants", provision)
    service.open_qos_pool(pool_id, "tenants", provision,
                          expected_members=cfg.n_tenants)

    harness.stop_when_complete(sub.bot_id for sub in tenants)

    def _admit(sub: TenantSubmission) -> None:
        harness.admit_pooled(sub, cfg.env_name(), combo, pool_id)

    for sub in tenants:
        if sub.arrival < horizon:
            harness.sim.at(sub.arrival, _admit, sub)
    harness.run()

    outcomes: List[TenantOutcome] = []
    for sub in tenants:
        if sub.bot_id not in service.scheduler.runs:
            outcomes.append(_unadmitted_outcome(sub, horizon))
        else:
            outcomes.append(_tenant_outcome(service, sub, horizon))

    spent, _refund = service.credits.close_pool(pool_id)
    return MultiTenantResult(
        config=cfg, tenants=outcomes,
        pool_provisioned=provision, pool_spent=spent,
        workers_peak=dci.driver.peak_concurrency(),
        events=harness.sim.events_processed,
        wall_seconds=time.perf_counter() - wall0)


# ---------------------------------------------------------------------------
# federated scenarios (one SpeQuloS over many DCIs and clouds, §5 Fig. 8)
# ---------------------------------------------------------------------------
@dataclass
class FederatedTenantOutcome(TenantOutcome):
    """A tenant's outcome plus the DCI its BoT was routed to."""

    #: resolved DCI name, or "-" when never admitted before the horizon
    dci: str = "-"
    #: admission verdict on the QoS order ("granted" | "rejected" |
    #: "deferred"; "-" when the tenant never arrived before the horizon)
    admission: str = "granted"


@dataclass
class DCIOutcome:
    """Per-DCI accounting of one federated scenario."""

    name: str
    trace: str
    middleware: str
    provider: str
    #: tenants the router assigned here
    tenants_assigned: int
    #: tasks the DG server completed (DG + Flat/Reschedule cloud paths)
    completions: int
    #: tasks executed by this DCI's cloud workers (all deploy modes)
    cloud_tasks: int
    workers_launched: int
    #: peak concurrently alive workers on this DCI's cloud
    workers_peak: int
    cloud_cpu_hours: float
    #: credits the runs routed here billed (economics plane: the
    #: per-cloud slice of the pool's spend)
    credits_spent: float = 0.0
    #: the provider's effective rate in the scenario's price book
    #: (quoted at t=0 for time-varying books)
    price_per_cpu_hour: float = CREDITS_PER_CPU_HOUR


@dataclass
class FederatedResult:
    """Federated scenario outcome: per-tenant + per-DCI accounting."""

    config: ScenarioConfig
    tenants: List[FederatedTenantOutcome]
    dcis: List[DCIOutcome]
    pool_provisioned: float
    pool_spent: float
    #: exact peak of concurrently alive cloud workers over every cloud
    #: (arbitration must keep this within the global worker budget)
    workers_peak: int
    events: int
    wall_seconds: float

    @property
    def slowdowns(self) -> np.ndarray:
        return np.asarray([t.slowdown for t in self.tenants])

    @property
    def censored_count(self) -> int:
        return sum(1 for t in self.tenants if t.censored)

    @property
    def slowdown_spread(self) -> float:
        """Max/min per-tenant slowdown across the whole federation —
        the cross-DCI fairness figure of merit (routing + arbitration
        together)."""
        return max_min_ratio(self.slowdowns)

    @property
    def fairness(self) -> float:
        """Jain's index over per-tenant slowdowns."""
        return jain_fairness_index(self.slowdowns)

    @property
    def pool_used_pct(self) -> float:
        if self.pool_provisioned <= 0:
            return 0.0
        return 100.0 * self.pool_spent / self.pool_provisioned

    def credits_by_provider(self) -> Dict[str, float]:
        """Pool spend split per cloud provider (economics plane view);
        DCIs sharing a provider accumulate into one bucket."""
        out: Dict[str, float] = {}
        for d in self.dcis:
            out[d.provider] = out.get(d.provider, 0.0) + d.credits_spent
        return out

    def tenants_on(self, dci_name: str) -> List[FederatedTenantOutcome]:
        return [t for t in self.tenants if t.dci == dci_name]

    def admission_counts(self) -> Dict[str, int]:
        """Verdict histogram over the tenants that arrived in time."""
        out: Dict[str, int] = {}
        for t in self.tenants:
            if t.admission != "-":
                out[t.admission] = out.get(t.admission, 0) + 1
        return out


def run_federated(cfg: ScenarioConfig) -> FederatedResult:
    """Simulate N tenants over a federation of DCIs and clouds.

    One simulation hosts everything: each DCI realizes its own trace
    (independent RNG stream per DCI index), the routing policy assigns
    every arriving BoT to a DCI, and a single
    :class:`~repro.core.scheduler.CloudArbiter` rations the global
    worker budget, the optional per-DCI caps and the one shared credit
    pool across all bindings.

    The scenario's history plane (``cfg.history``: fresh in-memory by
    default, the shared persistent archive on request) feeds the
    Oracle's α calibration, the history-driven routing policies and
    — when ``cfg.admission`` is set — the admission controller gating
    pooled QoS orders on predicted credit cost.
    """
    wall0 = time.perf_counter()
    horizon = cfg.horizon

    names = cfg.dci_names()
    dci_caps = {name: spec.worker_cap
                for name, spec in zip(names, cfg.dcis)
                if spec.worker_cap is not None}
    plane = open_history_plane(cfg.history)
    controller = (AdmissionController(plane, mode=cfg.admission)
                  if cfg.admission is not None else None)
    arbiter = CloudArbiter(cfg.policy,
                           max_total_workers=cfg.max_total_workers,
                           max_dci_workers=cfg.max_dci_workers,
                           dci_caps=dci_caps,
                           admission=controller)
    # the scenario's economy: per-provider rates from the declarative
    # price map (None entries → the paper's uniform rate) feed the
    # billing meter, admission forecasts and cost-aware routing
    book = PriceBook.from_pairs(cfg.price_map().items())
    harness = ScenarioHarness(horizon, arbiter=arbiter, history=plane,
                              pricebook=book)
    for i, spec in enumerate(cfg.dcis):
        harness.build_dci(names[i], spec.trace, spec.middleware, cfg.seed,
                          cfg.node_cap_for(spec), provider=spec.provider,
                          stream=(i,))
    service = harness.service

    combo = _resolve_combo(cfg.strategy, cfg.strategy_threshold)
    tenants = generate_tenants(
        np.random.default_rng([cfg.seed, 0x7E7]), cfg.n_tenants,
        categories=cfg.categories,
        rate_per_hour=cfg.arrival_rate_per_hour,
        arrivals=cfg.arrivals, bot_size=cfg.bot_size,
        deadline_factor=cfg.deadline_factor)

    total_cpu_hours = sum(sub.bot.workload_cpu_hours for sub in tenants)
    provision = cfg.pool_fraction * total_cpu_hours * CREDITS_PER_CPU_HOUR
    pool_id = f"fedpool-{cfg.seed}"
    service.credits.deposit("tenants", provision)
    service.open_qos_pool(pool_id, "tenants", provision,
                          expected_members=cfg.n_tenants)

    harness.stop_when_complete(sub.bot_id for sub in tenants)

    router = make_router(cfg.routing, affinity=cfg.affinity_map(),
                         plane=plane, pricebook=book)
    targets = harness.routing_targets()
    routed: Dict[str, str] = {}
    admissions: Dict[str, str] = {}

    def _admit(sub: TenantSubmission) -> None:
        index = router.route(sub.bot.category, targets, harness.sim.now)
        dci_name = targets[index].name
        routed[sub.bot_id] = dci_name
        admissions[sub.bot_id] = harness.admit_pooled(sub, dci_name,
                                                     combo, pool_id)

    for sub in tenants:
        if sub.arrival < horizon:
            harness.sim.at(sub.arrival, _admit, sub)
    harness.run()

    outcomes: List[FederatedTenantOutcome] = []
    for sub in tenants:
        if sub.bot_id not in service.scheduler.runs:
            outcomes.append(_unadmitted_outcome(
                sub, horizon, cls=FederatedTenantOutcome,
                admission="-"))
        else:
            outcomes.append(_tenant_outcome(
                service, sub, horizon, cls=FederatedTenantOutcome,
                dci=routed[sub.bot_id],
                admission=admissions[sub.bot_id]))

    dci_outcomes: List[DCIOutcome] = []
    for name, spec in zip(names, cfg.dcis):
        dci = harness.dcis[name]
        runs = harness.runs_for_server(dci.server)
        dci_outcomes.append(DCIOutcome(
            name=name, trace=spec.trace, middleware=spec.middleware,
            provider=spec.provider,
            tenants_assigned=sum(1 for d in routed.values() if d == name),
            completions=dci.server.stats.completions,
            cloud_tasks=harness.cloud_task_count(name),
            workers_launched=sum(r.workers_launched for r in runs),
            workers_peak=dci.driver.peak_concurrency(),
            cloud_cpu_hours=dci.driver.total_cpu_hours(),
            # a BoT bills only while on its routed DCI, so per-run
            # order spend sums to this DCI's slice of the pool
            credits_spent=sum(service.credits.spent(r.bot_id)
                              for r in runs),
            price_per_cpu_hour=book.rate(spec.provider, 0.0)))

    spent, _refund = service.credits.close_pool(pool_id)
    return FederatedResult(
        config=cfg, tenants=outcomes, dcis=dci_outcomes,
        pool_provisioned=provision, pool_spent=spent,
        workers_peak=harness.workers_peak(),
        events=harness.sim.events_processed,
        wall_seconds=time.perf_counter() - wall0)


# ---------------------------------------------------------------------------
def run_execution_with_middleware(cfg: ExecutionConfig,
                                  delay_bound: Optional[float] = None,
                                  worker_timeout: Optional[float] = None,
                                  **kwargs) -> ExecutionResult:
    """Ablation entry point: run with overridden middleware knobs."""
    if cfg.middleware == "boinc":
        from repro.middleware.boinc import BoincConfig
        base = BoincConfig()
        mw_cfg = BoincConfig(
            target_nresults=kwargs.get("target_nresults",
                                       base.target_nresults),
            min_quorum=kwargs.get("min_quorum", base.min_quorum),
            delay_bound=delay_bound if delay_bound is not None
            else base.delay_bound,
            one_result_per_user_per_wu=kwargs.get(
                "one_result_per_user_per_wu",
                base.one_result_per_user_per_wu))
    else:
        from repro.middleware.xwhep import XWHepConfig
        base = XWHepConfig()
        mw_cfg = XWHepConfig(
            keep_alive_period=kwargs.get("keep_alive_period",
                                         base.keep_alive_period),
            worker_timeout=worker_timeout if worker_timeout is not None
            else base.worker_timeout)
    return run_execution(cfg, middleware_config=mw_cfg)


# ---------------------------------------------------------------------------
def run_campaign(configs: Sequence[object], n_jobs: Optional[int] = None,
                 store: object = "default",
                 progress: Optional[object] = None) -> List[object]:
    """Run many executions through the campaign engine.

    Thin wrapper over
    :class:`~repro.campaign.executor.CampaignExecutor`: configs already
    in the content-addressed store are answered from it, the rest are
    sharded by trace realization over a process pool (falling back to
    serial execution if the pool cannot start or breaks mid-run), and
    every finished result is persisted so interrupted campaigns resume.

    Accepts :class:`ExecutionConfig`, :class:`MultiTenantConfig`,
    :class:`ScenarioConfig` and
    :class:`~repro.deployment.edgi.EDGIConfig` entries (mixed freely);
    results come back in input order.  ``n_jobs=None`` defers to
    ``REPRO_JOBS`` / the machine size; ``store=None`` bypasses caching.
    """
    from repro.campaign.executor import CampaignExecutor
    return CampaignExecutor(store=store, n_jobs=n_jobs,
                            progress=progress).run(configs)
