"""Execution runner: one config in, one result out — plus the parallel
campaign fan-out.

The runner assembles the full stack for each execution: synthesize the
BE-DCI trace, build the middleware server over a node pool, draw the
BoT, optionally stand up a complete SpeQuloS service (Information +
Credit + Oracle + Scheduler + cloud driver), submit, and simulate to
completion (or to the horizon, in which case the result is censored).

Trace realizations are cached per (trace, seed, cap, horizon) within a
process, with true LRU eviction: the paired with/without runs and the
18-combination strategy grid replay the same environment, so
regeneration would be pure waste.  Only the raw interval arrays are
cached — Node objects carry a scan cursor and are rebuilt per
execution.

Multi-tenant entry point: :func:`run_multi_tenant` simulates N users'
BoTs arriving over time on *one* shared BE-DCI + Cloud + credit pool,
under a chosen arbitration policy, and reports per-tenant slowdown and
fairness — the contention regime of the EDGI deployment (§5).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import (
    CompletionProfile,
    ideal_completion_time,
    jain_fairness_index,
    max_min_ratio,
    tail_fraction_of_tasks,
    tail_fraction_of_time,
    tail_slowdown,
)
from repro.cloud.registry import get_driver
from repro.core.credit import CREDITS_PER_CPU_HOUR
from repro.core.scheduler import CloudArbiter
from repro.core.service import SpeQuloS
from repro.core.strategies import parse_combo
from repro.experiments.config import ExecutionConfig, MultiTenantConfig
from repro.infra.catalog import get_trace_spec
from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware import make_server
from repro.simulator.engine import Simulation
from repro.workload.generator import make_bot
from repro.workload.tenants import generate_tenants

__all__ = ["ExecutionResult", "run_execution", "run_campaign",
           "TenantOutcome", "MultiTenantResult", "run_multi_tenant"]


@dataclass
class ExecutionResult:
    """Everything the figures/tables need from one execution."""

    config: ExecutionConfig
    makespan: float
    censored: bool
    n_tasks: int
    completion_times: np.ndarray
    #: tc(x) for x = 1..100 % (prediction benches re-fit alpha on this)
    tc_grid: np.ndarray
    ideal_time: float
    slowdown: float
    pct_tasks_in_tail: float
    pct_time_in_tail: float
    credits_provisioned: float
    credits_spent: float
    workers_launched: int
    cloud_cpu_hours: float
    cloud_completions: int
    events: int
    wall_seconds: float
    server_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def profile(self) -> CompletionProfile:
        return CompletionProfile(self.completion_times)

    @property
    def credits_used_pct(self) -> float:
        """Figure 5's metric: spent / provisioned, in percent."""
        if self.credits_provisioned <= 0:
            return 0.0
        return 100.0 * self.credits_spent / self.credits_provisioned


# ---------------------------------------------------------------------------
# trace realization cache (per process, true LRU)
# ---------------------------------------------------------------------------
_TraceKey = Tuple[str, int, int, float]
_trace_cache: "OrderedDict[_TraceKey, List[Tuple[np.ndarray, np.ndarray, float, str]]]" = OrderedDict()
_TRACE_CACHE_MAX = 6


def _materialize_cached(trace: str, seed: int, cap: int,
                        horizon: float) -> List[Node]:
    key = (trace, seed, cap, horizon)
    raw = _trace_cache.get(key)
    if raw is None:
        rng = np.random.default_rng([seed, 0xACE])
        nodes = get_trace_spec(trace).materialize(rng, horizon, cap)
        raw = [(n.starts, n.ends, n.power, n.tag) for n in nodes]
        while len(_trace_cache) >= _TRACE_CACHE_MAX:
            _trace_cache.popitem(last=False)
        _trace_cache[key] = raw
    else:
        # LRU: a hit refreshes the entry so hot environments survive
        # campaign sweeps that touch more traces than the cache holds.
        _trace_cache.move_to_end(key)
    return [Node(i, power, starts, ends, tag=tag)
            for i, (starts, ends, power, tag) in enumerate(raw)]


# ---------------------------------------------------------------------------
def run_execution(cfg: ExecutionConfig,
                  middleware_config: Optional[object] = None
                  ) -> ExecutionResult:
    """Simulate one BoT execution and collect its metrics.

    ``middleware_config`` optionally overrides the standard BOINC/XWHEP
    parameters (ablation studies); pass a
    :class:`~repro.middleware.boinc.BoincConfig` or
    :class:`~repro.middleware.xwhep.XWHepConfig` matching
    ``cfg.middleware``.
    """
    wall0 = time.perf_counter()
    horizon = cfg.horizon

    nodes = _materialize_cached(cfg.trace, cfg.seed, cfg.node_cap(), horizon)
    sim = Simulation(horizon=horizon)
    pool = NodePool(nodes, rng=np.random.default_rng([cfg.seed, 0xB00]))
    server = make_server(cfg.middleware, sim, pool,
                         config=middleware_config)
    bot = make_bot(cfg.category, np.random.default_rng([cfg.seed, 0xB07]),
                   bot_id=f"bot-{cfg.seed}", size_override=cfg.bot_size)

    service: Optional[SpeQuloS] = None
    bot_id = bot.bot_id
    if cfg.strategy is not None:
        combo = parse_combo(cfg.strategy)
        if cfg.strategy_threshold != combo.threshold:
            combo = combo.with_threshold(cfg.strategy_threshold)
        service = SpeQuloS(sim)
        driver = get_driver(cfg.provider, sim,
                            rng=np.random.default_rng([cfg.seed, 0xC10]))
        service.connect_dci(cfg.env_name(), server, driver)
        service.register_qos(bot, cfg.env_name(), combo)
        provision = (cfg.credit_fraction * bot.workload_cpu_hours
                     * CREDITS_PER_CPU_HOUR)
        service.credits.deposit("user", provision)
        service.order_qos(bot_id, "user", provision)
    else:
        # Plain monitoring (no QoS): reuse the Information monitor as a
        # standalone observer so both arms record identical series.
        from repro.core.info import BoTMonitor
        monitor = BoTMonitor(bot, 0.0)
        server.add_observer(monitor)

    class _Stop:
        def on_bot_completed(self, bid: str, t: float) -> None:
            if bid == bot_id:
                sim.stop()

    server.add_observer(_Stop())
    server.submit_bot(bot, at=0.0)
    sim.run()

    mon = service.monitor(bot_id) if service is not None else monitor
    censored = not mon.done
    if censored:
        # Horizon reached: score unfinished tasks at the horizon.
        missing = mon.total - mon.completed_count
        times = np.concatenate([np.asarray(mon.completion_times),
                                np.full(missing, horizon)])
    else:
        times = np.asarray(mon.completion_times)
    profile = CompletionProfile(np.sort(times))

    credits_prov = credits_spent = 0.0
    workers = 0
    cloud_hours = 0.0
    cloud_completions = 0
    if service is not None:
        run = service.run_for(bot_id)
        service.scheduler.finalize(run)  # settle accounts if censored
        order = service.credits.get_order(bot_id)
        if order is not None:
            credits_prov, credits_spent = order.provisioned, order.spent
        workers = run.workers_launched
        cloud_hours = run.driver.total_cpu_hours()
        cloud_completions = (run.coordinator.completions
                             if run.coordinator is not None else 0)

    from repro.core.info import tc_grid as _grid
    return ExecutionResult(
        config=cfg,
        makespan=profile.makespan,
        censored=censored,
        n_tasks=bot.size,
        completion_times=profile.times,
        tc_grid=_grid(list(profile.times), bot.size),
        ideal_time=ideal_completion_time(profile),
        slowdown=tail_slowdown(profile),
        pct_tasks_in_tail=100.0 * tail_fraction_of_tasks(profile),
        pct_time_in_tail=100.0 * tail_fraction_of_time(profile),
        credits_provisioned=credits_prov,
        credits_spent=credits_spent,
        workers_launched=workers,
        cloud_cpu_hours=cloud_hours,
        cloud_completions=cloud_completions,
        events=sim.events_processed,
        wall_seconds=time.perf_counter() - wall0,
        server_stats=vars(server.stats).copy(),
    )


# ---------------------------------------------------------------------------
# multi-tenant scenarios (shared-service regime, §5)
# ---------------------------------------------------------------------------
@dataclass
class TenantOutcome:
    """What one tenant experienced inside a shared scenario."""

    user: str
    bot_id: str
    category: str
    arrival: float
    deadline: Optional[float]
    n_tasks: int
    #: completion time relative to this tenant's own submission
    makespan: float
    censored: bool
    ideal_time: float
    slowdown: float
    credits_spent: float
    workers_launched: int


@dataclass
class MultiTenantResult:
    """Scenario-level outcome: per-tenant records + shared accounting."""

    config: MultiTenantConfig
    tenants: List[TenantOutcome]
    pool_provisioned: float
    pool_spent: float
    #: peak number of simultaneously alive Cloud workers (arbitration
    #: must keep this within the configured global budget)
    workers_peak: int
    events: int
    wall_seconds: float

    @property
    def slowdowns(self) -> np.ndarray:
        return np.asarray([t.slowdown for t in self.tenants])

    @property
    def makespans(self) -> np.ndarray:
        return np.asarray([t.makespan for t in self.tenants])

    @property
    def censored_count(self) -> int:
        return sum(1 for t in self.tenants if t.censored)

    @property
    def slowdown_spread(self) -> float:
        """Max/min per-tenant slowdown — the arbitration fairness
        figure of merit (1.0 = perfectly even service)."""
        return max_min_ratio(self.slowdowns)

    @property
    def fairness(self) -> float:
        """Jain's index over per-tenant slowdowns."""
        return jain_fairness_index(self.slowdowns)

    @property
    def pool_used_pct(self) -> float:
        if self.pool_provisioned <= 0:
            return 0.0
        return 100.0 * self.pool_spent / self.pool_provisioned


def run_multi_tenant(cfg: MultiTenantConfig) -> MultiTenantResult:
    """Simulate N concurrent tenants sharing one DCI, Cloud and pool.

    One simulation hosts every tenant: BoTs are QoS-registered and
    submitted at their arrival instants, all bill the same credit pool,
    and the configured :class:`~repro.core.scheduler.CloudArbiter`
    polices the shared worker budget.  The run stops when every BoT
    completes (or at the horizon — stragglers are censored).
    """
    wall0 = time.perf_counter()
    horizon = cfg.horizon

    nodes = _materialize_cached(cfg.trace, cfg.seed, cfg.node_cap(), horizon)
    sim = Simulation(horizon=horizon)
    pool = NodePool(nodes, rng=np.random.default_rng([cfg.seed, 0xB00]))
    server = make_server(cfg.middleware, sim, pool)
    arbiter = CloudArbiter(cfg.policy,
                           max_total_workers=cfg.max_total_workers)
    service = SpeQuloS(sim, arbiter=arbiter)
    driver = get_driver(cfg.provider, sim,
                        rng=np.random.default_rng([cfg.seed, 0xC10]))
    service.connect_dci(cfg.env_name(), server, driver)

    combo = parse_combo(cfg.strategy)
    if cfg.strategy_threshold != combo.threshold:
        combo = combo.with_threshold(cfg.strategy_threshold)
    tenants = generate_tenants(
        np.random.default_rng([cfg.seed, 0x7E7]), cfg.n_tenants,
        categories=cfg.categories,
        rate_per_hour=cfg.arrival_rate_per_hour,
        arrivals=cfg.arrivals, bot_size=cfg.bot_size,
        deadline_factor=cfg.deadline_factor)

    total_cpu_hours = sum(sub.bot.workload_cpu_hours for sub in tenants)
    provision = cfg.pool_fraction * total_cpu_hours * CREDITS_PER_CPU_HOUR
    pool_id = f"pool-{cfg.seed}"
    service.credits.deposit("tenants", provision)
    service.open_qos_pool(pool_id, "tenants", provision,
                          expected_members=cfg.n_tenants)

    pending = {sub.bot_id for sub in tenants}

    class _StopWhenAllDone:
        def on_bot_completed(self, bot_id: str, t: float) -> None:
            pending.discard(bot_id)
            if not pending:
                sim.stop()

    server.add_observer(_StopWhenAllDone())

    def _admit(sub) -> None:
        service.register_qos(sub.bot, cfg.env_name(), combo,
                             deadline=sub.deadline)
        service.order_qos_pooled(sub.bot_id, pool_id)
        server.submit_bot(sub.bot, at=sim.now)

    for sub in tenants:
        if sub.arrival < horizon:
            sim.at(sub.arrival, _admit, sub)
    sim.run()

    outcomes: List[TenantOutcome] = []
    for sub in tenants:
        if sub.bot_id not in service.scheduler.runs:
            # never admitted before the horizon: fully censored
            span = max(0.0, horizon - sub.arrival)
            profile = CompletionProfile(np.full(sub.bot.size, span))
            outcomes.append(TenantOutcome(
                user=sub.user, bot_id=sub.bot_id,
                category=sub.bot.category, arrival=sub.arrival,
                deadline=sub.deadline, n_tasks=sub.bot.size,
                makespan=profile.makespan, censored=True,
                ideal_time=ideal_completion_time(profile),
                slowdown=tail_slowdown(profile),
                credits_spent=0.0, workers_launched=0))
            continue
        run = service.run_for(sub.bot_id)
        service.scheduler.finalize(run)  # settle accounts if censored
        mon = service.monitor(sub.bot_id)
        censored = not mon.done
        if censored:
            missing = mon.total - mon.completed_count
            times = np.concatenate([np.asarray(mon.completion_times),
                                    np.full(missing, horizon - mon.t0)])
        else:
            times = np.asarray(mon.completion_times)
        profile = CompletionProfile(np.sort(times))
        order = service.credits.get_order(sub.bot_id)
        outcomes.append(TenantOutcome(
            user=sub.user, bot_id=sub.bot_id, category=sub.bot.category,
            arrival=sub.arrival, deadline=sub.deadline,
            n_tasks=sub.bot.size,
            makespan=profile.makespan, censored=censored,
            ideal_time=ideal_completion_time(profile),
            slowdown=tail_slowdown(profile),
            credits_spent=order.spent if order is not None else 0.0,
            workers_launched=run.workers_launched))

    spent, _refund = service.credits.close_pool(pool_id)
    return MultiTenantResult(
        config=cfg, tenants=outcomes,
        pool_provisioned=provision, pool_spent=spent,
        workers_peak=_peak_concurrency(driver),
        events=sim.events_processed,
        wall_seconds=time.perf_counter() - wall0)


def _peak_concurrency(driver) -> int:
    """Max simultaneously alive instances over the driver's history."""
    deltas: List[Tuple[float, int]] = []
    for inst in driver.instances.values():
        deltas.append((inst.created_at, 1))
        if inst.destroyed_at is not None:
            deltas.append((inst.destroyed_at, -1))
    peak = cur = 0
    for _t, d in sorted(deltas):
        cur += d
        peak = max(peak, cur)
    return peak


# ---------------------------------------------------------------------------
def run_execution_with_middleware(cfg: ExecutionConfig,
                                  delay_bound: Optional[float] = None,
                                  worker_timeout: Optional[float] = None,
                                  **kwargs) -> ExecutionResult:
    """Ablation entry point: run with overridden middleware knobs."""
    if cfg.middleware == "boinc":
        from repro.middleware.boinc import BoincConfig
        base = BoincConfig()
        mw_cfg = BoincConfig(
            target_nresults=kwargs.get("target_nresults",
                                       base.target_nresults),
            min_quorum=kwargs.get("min_quorum", base.min_quorum),
            delay_bound=delay_bound if delay_bound is not None
            else base.delay_bound,
            one_result_per_user_per_wu=kwargs.get(
                "one_result_per_user_per_wu",
                base.one_result_per_user_per_wu))
    else:
        from repro.middleware.xwhep import XWHepConfig
        base = XWHepConfig()
        mw_cfg = XWHepConfig(
            keep_alive_period=kwargs.get("keep_alive_period",
                                         base.keep_alive_period),
            worker_timeout=worker_timeout if worker_timeout is not None
            else base.worker_timeout)
    return run_execution(cfg, middleware_config=mw_cfg)


# ---------------------------------------------------------------------------
def run_campaign(configs: Sequence[object], n_jobs: Optional[int] = None,
                 store: object = "default",
                 progress: Optional[object] = None) -> List[object]:
    """Run many executions through the campaign engine.

    Thin wrapper over
    :class:`~repro.campaign.executor.CampaignExecutor`: configs already
    in the content-addressed store are answered from it, the rest are
    sharded by trace realization over a process pool (falling back to
    serial execution if the pool cannot start or breaks mid-run), and
    every finished result is persisted so interrupted campaigns resume.

    Accepts :class:`ExecutionConfig` and :class:`MultiTenantConfig`
    entries (mixed freely); results come back in input order.
    ``n_jobs=None`` defers to ``REPRO_JOBS`` / the machine size;
    ``store=None`` bypasses caching.
    """
    from repro.campaign.executor import CampaignExecutor
    return CampaignExecutor(store=store, n_jobs=n_jobs,
                            progress=progress).run(configs)
