"""Execution runner: one config in, one result out — plus the parallel
campaign fan-out.

The runner assembles the full stack for each execution: synthesize the
BE-DCI trace, build the middleware server over a node pool, draw the
BoT, optionally stand up a complete SpeQuloS service (Information +
Credit + Oracle + Scheduler + cloud driver), submit, and simulate to
completion (or to the horizon, in which case the result is censored).

Trace realizations are cached per (trace, seed, cap, horizon) within a
process: the paired with/without runs and the 18-combination strategy
grid replay the same environment, so regeneration would be pure waste.
Only the raw interval arrays are cached — Node objects carry a scan
cursor and are rebuilt per execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import (
    CompletionProfile,
    ideal_completion_time,
    tail_fraction_of_tasks,
    tail_fraction_of_time,
    tail_slowdown,
)
from repro.cloud.registry import get_driver
from repro.core.credit import CREDITS_PER_CPU_HOUR
from repro.core.service import SpeQuloS
from repro.core.strategies import parse_combo
from repro.experiments.config import ExecutionConfig
from repro.infra.catalog import get_trace_spec
from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware import make_server
from repro.simulator.engine import Simulation
from repro.workload.generator import make_bot

__all__ = ["ExecutionResult", "run_execution", "run_campaign"]


@dataclass
class ExecutionResult:
    """Everything the figures/tables need from one execution."""

    config: ExecutionConfig
    makespan: float
    censored: bool
    n_tasks: int
    completion_times: np.ndarray
    #: tc(x) for x = 1..100 % (prediction benches re-fit alpha on this)
    tc_grid: np.ndarray
    ideal_time: float
    slowdown: float
    pct_tasks_in_tail: float
    pct_time_in_tail: float
    credits_provisioned: float
    credits_spent: float
    workers_launched: int
    cloud_cpu_hours: float
    cloud_completions: int
    events: int
    wall_seconds: float
    server_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def profile(self) -> CompletionProfile:
        return CompletionProfile(self.completion_times)

    @property
    def credits_used_pct(self) -> float:
        """Figure 5's metric: spent / provisioned, in percent."""
        if self.credits_provisioned <= 0:
            return 0.0
        return 100.0 * self.credits_spent / self.credits_provisioned


# ---------------------------------------------------------------------------
# trace realization cache (per process)
# ---------------------------------------------------------------------------
_TraceKey = Tuple[str, int, int, float]
_trace_cache: Dict[_TraceKey, List[Tuple[np.ndarray, np.ndarray, float, str]]] = {}
_TRACE_CACHE_MAX = 6


def _materialize_cached(trace: str, seed: int, cap: int,
                        horizon: float) -> List[Node]:
    key = (trace, seed, cap, horizon)
    raw = _trace_cache.get(key)
    if raw is None:
        rng = np.random.default_rng([seed, 0xACE])
        nodes = get_trace_spec(trace).materialize(rng, horizon, cap)
        raw = [(n.starts, n.ends, n.power, n.tag) for n in nodes]
        if len(_trace_cache) >= _TRACE_CACHE_MAX:
            _trace_cache.pop(next(iter(_trace_cache)))
        _trace_cache[key] = raw
    return [Node(i, power, starts, ends, tag=tag)
            for i, (starts, ends, power, tag) in enumerate(raw)]


# ---------------------------------------------------------------------------
def run_execution(cfg: ExecutionConfig,
                  middleware_config: Optional[object] = None
                  ) -> ExecutionResult:
    """Simulate one BoT execution and collect its metrics.

    ``middleware_config`` optionally overrides the standard BOINC/XWHEP
    parameters (ablation studies); pass a
    :class:`~repro.middleware.boinc.BoincConfig` or
    :class:`~repro.middleware.xwhep.XWHepConfig` matching
    ``cfg.middleware``.
    """
    wall0 = time.perf_counter()
    horizon = cfg.horizon

    nodes = _materialize_cached(cfg.trace, cfg.seed, cfg.node_cap(), horizon)
    sim = Simulation(horizon=horizon)
    pool = NodePool(nodes, rng=np.random.default_rng([cfg.seed, 0xB00]))
    server = make_server(cfg.middleware, sim, pool,
                         config=middleware_config)
    bot = make_bot(cfg.category, np.random.default_rng([cfg.seed, 0xB07]),
                   bot_id=f"bot-{cfg.seed}", size_override=cfg.bot_size)

    service: Optional[SpeQuloS] = None
    bot_id = bot.bot_id
    if cfg.strategy is not None:
        combo = parse_combo(cfg.strategy)
        if cfg.strategy_threshold != combo.threshold:
            combo = combo.with_threshold(cfg.strategy_threshold)
        service = SpeQuloS(sim)
        driver = get_driver(cfg.provider, sim,
                            rng=np.random.default_rng([cfg.seed, 0xC10]))
        service.connect_dci(cfg.env_name(), server, driver)
        service.register_qos(bot, cfg.env_name(), combo)
        provision = (cfg.credit_fraction * bot.workload_cpu_hours
                     * CREDITS_PER_CPU_HOUR)
        service.credits.deposit("user", provision)
        service.order_qos(bot_id, "user", provision)
    else:
        # Plain monitoring (no QoS): reuse the Information monitor as a
        # standalone observer so both arms record identical series.
        from repro.core.info import BoTMonitor
        monitor = BoTMonitor(bot, 0.0)
        server.add_observer(monitor)

    class _Stop:
        def on_bot_completed(self, bid: str, t: float) -> None:
            if bid == bot_id:
                sim.stop()

    server.add_observer(_Stop())
    server.submit_bot(bot, at=0.0)
    sim.run()

    mon = service.monitor(bot_id) if service is not None else monitor
    censored = not mon.done
    if censored:
        # Horizon reached: score unfinished tasks at the horizon.
        missing = mon.total - mon.completed_count
        times = np.concatenate([np.asarray(mon.completion_times),
                                np.full(missing, horizon)])
    else:
        times = np.asarray(mon.completion_times)
    profile = CompletionProfile(np.sort(times))

    credits_prov = credits_spent = 0.0
    workers = 0
    cloud_hours = 0.0
    cloud_completions = 0
    if service is not None:
        run = service.run_for(bot_id)
        service.scheduler.finalize(run)  # settle accounts if censored
        order = service.credits.get_order(bot_id)
        if order is not None:
            credits_prov, credits_spent = order.provisioned, order.spent
        workers = run.workers_launched
        cloud_hours = run.driver.total_cpu_hours()
        cloud_completions = (run.coordinator.completions
                             if run.coordinator is not None else 0)

    from repro.core.info import tc_grid as _grid
    return ExecutionResult(
        config=cfg,
        makespan=profile.makespan,
        censored=censored,
        n_tasks=bot.size,
        completion_times=profile.times,
        tc_grid=_grid(list(profile.times), bot.size),
        ideal_time=ideal_completion_time(profile),
        slowdown=tail_slowdown(profile),
        pct_tasks_in_tail=100.0 * tail_fraction_of_tasks(profile),
        pct_time_in_tail=100.0 * tail_fraction_of_time(profile),
        credits_provisioned=credits_prov,
        credits_spent=credits_spent,
        workers_launched=workers,
        cloud_cpu_hours=cloud_hours,
        cloud_completions=cloud_completions,
        events=sim.events_processed,
        wall_seconds=time.perf_counter() - wall0,
        server_stats=vars(server.stats).copy(),
    )


# ---------------------------------------------------------------------------
def run_execution_with_middleware(cfg: ExecutionConfig,
                                  delay_bound: Optional[float] = None,
                                  worker_timeout: Optional[float] = None,
                                  **kwargs) -> ExecutionResult:
    """Ablation entry point: run with overridden middleware knobs."""
    if cfg.middleware == "boinc":
        from repro.middleware.boinc import BoincConfig
        base = BoincConfig()
        mw_cfg = BoincConfig(
            target_nresults=kwargs.get("target_nresults",
                                       base.target_nresults),
            min_quorum=kwargs.get("min_quorum", base.min_quorum),
            delay_bound=delay_bound if delay_bound is not None
            else base.delay_bound,
            one_result_per_user_per_wu=kwargs.get(
                "one_result_per_user_per_wu",
                base.one_result_per_user_per_wu))
    else:
        from repro.middleware.xwhep import XWHepConfig
        base = XWHepConfig()
        mw_cfg = XWHepConfig(
            keep_alive_period=kwargs.get("keep_alive_period",
                                         base.keep_alive_period),
            worker_timeout=worker_timeout if worker_timeout is not None
            else base.worker_timeout)
    return run_execution(cfg, middleware_config=mw_cfg)


# ---------------------------------------------------------------------------
def run_campaign(configs: Sequence[ExecutionConfig],
                 n_jobs: Optional[int] = None) -> List[ExecutionResult]:
    """Run many executions, optionally across processes.

    Results come back in input order.  ``n_jobs=None`` picks a
    process count from the machine (1 disables multiprocessing, which
    is also the fallback when the pool cannot start).
    """
    configs = list(configs)
    if n_jobs is None:
        import os
        n_jobs = max(1, min(8, (os.cpu_count() or 2) - 1))
    if n_jobs <= 1 or len(configs) < 4:
        return [run_execution(c) for c in configs]
    try:
        from concurrent.futures import ProcessPoolExecutor
        # Sort so executions sharing a trace realization land in the
        # same worker often enough for the cache to help; restore order
        # afterwards.
        order = sorted(range(len(configs)),
                       key=lambda i: (configs[i].trace, configs[i].seed))
        chunk = max(1, len(configs) // (n_jobs * 4))
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            shuffled = [configs[i] for i in order]
            done = list(pool.map(run_execution, shuffled, chunksize=chunk))
        results: List[Optional[ExecutionResult]] = [None] * len(configs)
        for pos, res in zip(order, done):
            results[pos] = res
        return results  # type: ignore[return-value]
    except (OSError, ImportError):  # pragma: no cover - env dependent
        return [run_execution(c) for c in configs]
