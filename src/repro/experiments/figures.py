"""Builders regenerating every table and figure of the paper (§2, §4, §5).

Each ``*_report`` function runs (or reuses) the campaign it needs and
returns an :class:`~repro.experiments.report.ExperimentReport` whose
rendering mirrors the paper's table/figure.  Campaigns are memoized per
(campaign, scale) within the process so benches that share data
(Figures 4 and 5; Figures 6, 7 and Table 4) pay for it once.

Campaign grids (scaled by :class:`~repro.experiments.config.CampaignScale`):

* **baseline grid** (Figure 2, Table 1): every trace x middleware x
  category, no SpeQuloS;
* **strategy grid** (Figures 4, 5): paired executions for all 18
  strategy combinations;
* **headline grid** (Figures 6, 7, Table 4): paired executions with the
  paper's recommended ``9C-C-R`` combination;
* **contention sweep** (beyond the paper's grid): 1→N concurrent
  tenants sharing one DCI + Cloud + credit pool under each arbitration
  policy, reporting per-tenant slowdown and fairness;
* **federation sweep** (§5's Figure 8 regime): one SpeQuloS over
  growing heterogeneous federations of DCIs and clouds, under each
  BoT-to-DCI routing policy, reporting cross-DCI fairness and pool
  usage;
* **economics sweep** (the economics plane): uniform vs heterogeneous
  per-provider price books on the reference federation, under blind
  load balancing vs cost-aware ``cheapest_drain`` routing, reporting
  credits spent, the per-cloud spend split and slowdown.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cdf import ccdf_at, histogram_fractions
from repro.analysis.metrics import tail_removal_efficiency
from repro.campaign.executor import run_cached
from repro.campaign.spec import (
    FederatedSweepSpec,
    MultiTenantSweepSpec,
    SweepSpec,
    scaled_bot_sizes,
)
from repro.core.strategies import ALL_COMBOS
from repro.history import (
    ExecutionRecord,
    HistoryPlane,
    env_key_of,
    fit_alpha,
    prediction_success,
)
from repro.experiments.config import CampaignScale, ExecutionConfig, get_scale
from repro.experiments.report import ExperimentReport, Series, TextTable
from repro.experiments.runner import ExecutionResult, run_campaign
from repro.infra.catalog import TRACE_NAMES, get_trace_spec, list_trace_specs
from repro.infra.stats import measure_trace
from repro.workload.categories import BOT_CATEGORIES
from repro.workload.generator import make_bot

__all__ = [
    "figure1_report", "figure2_report", "table1_report", "table2_report",
    "table3_report", "figure4_report", "figure5_report", "figure6_report",
    "figure7_report", "table4_report", "table5_report",
    "ablation_threshold_report", "ablation_budget_report",
    "ablation_middleware_report", "contention_report",
    "federation_report", "federation_sweep", "economics_report",
    "economics_sweep", "learning_report", "learning_rates",
]

MIDDLEWARE = ("boinc", "xwhep")
CATEGORIES = ("SMALL", "BIG", "RANDOM")
#: the paper's recommended compromise (§4.3)
HEADLINE_COMBO = "9C-C-R"
#: minimum baseline tail (seconds) for a TRE to be well-defined
MIN_TAIL = 120.0


def has_material_tail(res: ExecutionResult) -> bool:
    """Whether a baseline execution's tail is large enough to score.

    TRE compares against cloud provisioning whose granularity is the
    scheduler tick plus one cloud task execution (minutes); a tail
    below ~10 % of the ideal time (or two ticks) is within that
    granularity and would only add TRE~0 noise, so Figure 4 excludes
    it — the paper's full-size tails are far above this threshold.
    """
    tail = res.makespan - res.ideal_time
    return tail > max(MIN_TAIL, 0.10 * res.ideal_time)

_memo: Dict[Tuple[str, str], object] = {}


def _memoized(key: str, scale: CampaignScale, build):
    k = (key, scale.name)
    if k not in _memo:
        _memo[k] = build()
    return _memo[k]


# ---------------------------------------------------------------------------
# campaign sweeps (declarative grids; see repro.campaign.spec)
# ---------------------------------------------------------------------------
def baseline_sweep(scale: CampaignScale,
                   categories: Sequence[str] = CATEGORIES,
                   traces: Sequence[str] = TRACE_NAMES) -> SweepSpec:
    """Every trace x middleware x category, no SpeQuloS (Fig. 2, Tab. 1)."""
    return SweepSpec(traces=tuple(traces), middlewares=MIDDLEWARE,
                     categories=tuple(categories),
                     seed_slots=scale.seeds_per_env,
                     bot_sizes=scaled_bot_sizes(scale, categories))


def baseline_grid(scale: CampaignScale,
                  categories: Sequence[str] = CATEGORIES,
                  traces: Sequence[str] = TRACE_NAMES,
                  ) -> List[ExecutionConfig]:
    return baseline_sweep(scale, categories, traces).expand()


def _run_baselines(scale: CampaignScale) -> List[ExecutionResult]:
    return _memoized("baselines", scale,
                     lambda: run_campaign(baseline_grid(scale)))


def strategy_sweep(scale: CampaignScale) -> SweepSpec:
    """Environments for the 18-combination grid (Figures 4/5).

    Quick scale keeps SMALL and RANDOM (the classes where the tail
    dominates, §4.3.1); full scale adds BIG as the paper does.  Slots
    start at 1000 so the grid never shares seeds with the baseline
    sweep.
    """
    cats = CATEGORIES if scale.size_factor >= 1.0 else ("SMALL", "RANDOM")
    return SweepSpec(middlewares=MIDDLEWARE, categories=cats,
                     seed_slots=scale.seeds_strategy_grid, seed_base=1000,
                     bot_sizes=scaled_bot_sizes(scale, cats))


def _run_strategy_campaign(scale: CampaignScale) -> Tuple[
        List[ExecutionResult], Dict[str, List[ExecutionResult]]]:
    """(baselines, {combo name: paired results in baseline order})."""
    def build():
        combos = [c.name for c in ALL_COMBOS]
        sweep = strategy_sweep(scale).with_strategies(None, *combos)
        results = run_campaign(sweep.expand())
        n = len(results) // (len(combos) + 1)
        base_res = results[:n]
        per_combo = {name: results[n * (k + 1): n * (k + 2)]
                     for k, name in enumerate(combos)}
        return base_res, per_combo
    return _memoized("strategy", scale, build)  # type: ignore[return-value]


def _run_headline_campaign(scale: CampaignScale) -> Tuple[
        List[ExecutionResult], List[ExecutionResult]]:
    """Paired (no SpeQuloS, 9C-C-R) over the full environment grid."""
    def build():
        sweep = baseline_sweep(scale).with_strategies(None, HEADLINE_COMBO)
        results = run_campaign(sweep.expand())
        n = len(results) // 2
        return results[:n], results[n:]
    return _memoized("headline", scale, build)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Figure 1 — example execution profile with tail
# ---------------------------------------------------------------------------
def figure1_report(scale: Optional[CampaignScale] = None) -> ExperimentReport:
    """One BoT execution's completion-ratio curve and the ideal-time
    construction of §2.2 (the paper's illustrative Figure 1)."""
    scale = scale or get_scale()
    cfg = ExecutionConfig(trace="seti", middleware="boinc", category="SMALL",
                          seed=11, bot_size=scale.bot_size("SMALL"))
    res = run_cached(cfg)
    profile = res.profile
    xs, ys = [], []
    for pct in range(1, 101):
        xs.append(profile.tc(pct / 100.0))
        ys.append(pct / 100.0)
    rep = ExperimentReport(
        "Figure 1", "Example of BoT execution with noteworthy values")
    rep.series.append(Series("BoT completion ratio over time (t, ratio)",
                             xs, ys))
    table = TextTable("Noteworthy values", ["quantity", "value"])
    table.add_row("actual completion time (s)", f"{res.makespan:.0f}")
    table.add_row("ideal completion time tc(0.9)/0.9 (s)",
                  f"{res.ideal_time:.0f}")
    table.add_row("tail duration (s)", f"{res.makespan - res.ideal_time:.0f}")
    table.add_row("tail slowdown", f"{res.slowdown:.2f}")
    rep.tables.append(table)
    rep.notes.append(f"environment: {cfg.label()}")
    return rep


# ---------------------------------------------------------------------------
# Figure 2 — CDF of tail slowdown per middleware
# ---------------------------------------------------------------------------
def figure2_report(scale: Optional[CampaignScale] = None) -> ExperimentReport:
    scale = scale or get_scale()
    results = _run_baselines(scale)
    rep = ExperimentReport(
        "Figure 2", "Tail slowdown CDF in BE-DCIs (no SpeQuloS)")
    thresholds = [1.0, 1.1, 1.25, 1.33, 1.5, 2.0, 3.0, 4.0, 6.0, 10.0, 20.0]
    table = TextTable(
        "Fraction of executions with tail slowdown <= S",
        ["S"] + [mw.upper() for mw in MIDDLEWARE],
        note="paper: ~half of executions below 1.33; slowdown of 2 for "
             "25% (XWHEP) to 33% (BOINC); worst 5%: 4x (XWHEP), 10x (BOINC)")
    by_mw = {mw: [r.slowdown for r in results
                  if r.config.middleware == mw] for mw in MIDDLEWARE}
    for s in thresholds:
        row = [f"{s:g}"]
        for mw in MIDDLEWARE:
            vals = np.asarray(by_mw[mw])
            row.append(f"{float((vals <= s).mean()):.2f}")
        table.add_row(*row)
    rep.tables.append(table)
    for mw in MIDDLEWARE:
        med = float(np.median(by_mw[mw]))
        p95 = float(np.percentile(by_mw[mw], 95))
        rep.notes.append(f"{mw}: median slowdown {med:.2f}, "
                         f"95th percentile {p95:.2f}, n={len(by_mw[mw])}")
    return rep


# ---------------------------------------------------------------------------
# Table 1 — tail fractions per DCI class and middleware
# ---------------------------------------------------------------------------
def table1_report(scale: Optional[CampaignScale] = None) -> ExperimentReport:
    scale = scale or get_scale()
    results = _run_baselines(scale)
    rep = ExperimentReport(
        "Table 1", "Average fraction of BoT in tail / execution time in tail")
    table = TextTable(
        "Tail fractions by BE-DCI class",
        ["BE-DCI class", "%BoT tail BOINC", "%BoT tail XWHEP",
         "%time tail BOINC", "%time tail XWHEP"],
        note="paper: %BoT in tail 2.9-6.4; %time in tail 16-52 "
             "(largest for Desktop Grids)")
    groups: Dict[str, Dict[str, List[ExecutionResult]]] = defaultdict(
        lambda: defaultdict(list))
    for r in results:
        klass = get_trace_spec(r.config.trace).dci_class
        groups[klass][r.config.middleware].append(r)
    for klass in ("Desktop Grids", "Best Effort Grids", "Spot Instances"):
        row = [klass]
        for metric in ("pct_tasks_in_tail", "pct_time_in_tail"):
            for mw in MIDDLEWARE:
                vals = [getattr(r, metric) for r in groups[klass][mw]]
                row.append(f"{float(np.mean(vals)):.2f}" if vals else "-")
        table.add_row(*row)
    rep.tables.append(table)
    return rep


# ---------------------------------------------------------------------------
# Table 2 — trace statistics (synthesis targets vs measured)
# ---------------------------------------------------------------------------
def table2_report(horizon_days: float = 4.0,
                  step: float = 600.0) -> ExperimentReport:
    rep = ExperimentReport(
        "Table 2", "Summary of the Best Effort DCI traces "
                   "(paper target vs synthesized)")
    table = TextTable(
        "Trace statistics",
        ["trace", "", "mean", "std", "min", "max",
         "av.quartiles (s)", "unav.quartiles (s)", "power", "p.std"],
        note="targets are the paper's Table 2; measured rows come from "
             f"full-size synthesized traces over {horizon_days:g} days")
    rng = np.random.default_rng(2012)
    for spec in list_trace_specs():
        table.add_row(
            spec.name, "target", f"{spec.mean_nodes:.0f}",
            f"{spec.std_nodes:.0f}", spec.min_nodes, spec.max_nodes,
            ",".join(f"{q:.0f}" for q in spec.avail_quartiles),
            ",".join(f"{q:.0f}" for q in spec.unavail_quartiles),
            f"{spec.power_mean:.0f}", f"{spec.power_std:.0f}")
        nodes = spec.materialize(rng, horizon_days * 86400.0)
        st = measure_trace(nodes, horizon_days * 86400.0, step)
        table.add_row(
            "", "measured", f"{st.mean_nodes:.0f}", f"{st.std_nodes:.0f}",
            st.min_nodes, st.max_nodes,
            ",".join(f"{q:.0f}" for q in st.avail_quartiles),
            ",".join(f"{q:.0f}" for q in st.unavail_quartiles),
            f"{st.power_mean:.0f}", f"{st.power_std:.0f}")
    rep.tables.append(table)
    rep.notes.append(
        "synthesized duration quartiles match by construction (quantile-"
        "fitted); count min/max for g5k traces depend on the day/night "
        "gate model — see DESIGN.md substitution notes")
    return rep


# ---------------------------------------------------------------------------
# Table 3 — BoT workload characteristics
# ---------------------------------------------------------------------------
def table3_report(n_draws: int = 25) -> ExperimentReport:
    rep = ExperimentReport("Table 3", "Characteristics of BoT workloads")
    table = TextTable(
        "BoT categories (target vs generated)",
        ["category", "", "size", "nops/task", "arrival span (s)",
         "wall clock (s)"])
    rng = np.random.default_rng(77)
    for name, cat in BOT_CATEGORIES.items():
        size = str(cat.size) if cat.size else \
            f"norm({cat.size_normal[0]:.0f},{cat.size_normal[1]:.0f})"
        nops = f"{cat.nops:.0f}" if cat.nops else \
            f"norm({cat.nops_normal[0]:.0f},{cat.nops_normal[1]:.0f})"
        arr = "0" if not cat.arrival_weibull else \
            f"weib({cat.arrival_weibull[0]},{cat.arrival_weibull[1]})"
        table.add_row(name, "target", size, nops, arr,
                      f"{cat.wall_clock:.0f}")
        sizes, means, spans = [], [], []
        for _ in range(n_draws):
            bot = make_bot(cat, rng)
            sizes.append(bot.size)
            means.append(bot.total_nops / bot.size)
            spans.append(bot.arrival_span())
        table.add_row(
            "", "generated",
            f"{np.mean(sizes):.0f}±{np.std(sizes):.0f}",
            f"{np.mean(means):.0f}",
            f"{np.mean(spans):.0f}", f"{cat.wall_clock:.0f}")
    rep.tables.append(table)
    return rep


# ---------------------------------------------------------------------------
# Figures 4a/4b/4c — Tail Removal Efficiency CCDFs, 18 combinations
# ---------------------------------------------------------------------------
def _tre_samples(bases: List[ExecutionResult],
                 speq: List[ExecutionResult]) -> List[float]:
    """Paired TRE values where the baseline exhibits a material tail."""
    out = []
    for b, s in zip(bases, speq):
        if not has_material_tail(b):
            continue
        out.append(tail_removal_efficiency(b.makespan, s.makespan,
                                           b.ideal_time))
    return out


def figure4_report(scale: Optional[CampaignScale] = None) -> ExperimentReport:
    scale = scale or get_scale()
    bases, per_combo = _run_strategy_campaign(scale)
    rep = ExperimentReport(
        "Figure 4", "Tail Removal Efficiency CCDF per strategy combination")
    thresholds = list(range(0, 101, 10))
    for deploy, sub in (("F", "4a Flat"), ("R", "4b Reschedule"),
                        ("D", "4c Cloud duplication")):
        table = TextTable(
            f"Figure {sub}: fraction of executions with TRE >= P",
            ["combo"] + [f"{p}%" for p in thresholds],
            note="paper: best combos (9x-x-D / 9x-x-R) remove the tail "
                 "entirely in ~half of executions and halve it in ~80%; "
                 "Flat and Execution-Variance clearly weaker")
        for combo in ALL_COMBOS:
            if combo.deploy != deploy:
                continue
            tre = _tre_samples(bases, per_combo[combo.name])
            if not tre:
                table.add_row(combo.name, *["-"] * len(thresholds))
                continue
            fr = ccdf_at(tre, thresholds)
            table.add_row(combo.name, *[f"{v:.2f}" for v in fr])
        rep.tables.append(table)
    n_tail = len(_tre_samples(bases, per_combo[HEADLINE_COMBO]))
    rep.notes.append(f"executions with measurable baseline tail: {n_tail} "
                     f"of {len(bases)}")
    return rep


# ---------------------------------------------------------------------------
# Figure 5 — credit consumption per strategy combination
# ---------------------------------------------------------------------------
def figure5_report(scale: Optional[CampaignScale] = None) -> ExperimentReport:
    scale = scale or get_scale()
    _bases, per_combo = _run_strategy_campaign(scale)
    rep = ExperimentReport(
        "Figure 5", "Credits consumed per strategy combination "
                    "(percent of provisioned)")
    table = TextTable(
        "Average % of provisioned credits spent",
        ["combo", "% spent", "workers avg"],
        note="paper: mostly < 25% spent (=> < 2.5% of workload offloaded); "
             "Reschedule > Flat > Cloud-duplication; Assignment threshold "
             "spends more (starts earlier); Conservative saves vs Greedy")
    for combo in ALL_COMBOS:
        rs = per_combo[combo.name]
        pct = float(np.mean([r.credits_used_pct for r in rs]))
        wk = float(np.mean([r.workers_launched for r in rs]))
        table.add_row(combo.name, f"{pct:.1f}", f"{wk:.1f}")
    rep.tables.append(table)
    return rep


# ---------------------------------------------------------------------------
# Figure 6 — completion times with and without SpeQuloS (6 panels)
# ---------------------------------------------------------------------------
def figure6_report(scale: Optional[CampaignScale] = None) -> ExperimentReport:
    scale = scale or get_scale()
    bases, speq = _run_headline_campaign(scale)
    rep = ExperimentReport(
        "Figure 6", f"Average completion time with/without SpeQuloS "
                    f"({HEADLINE_COMBO})")
    panels = [(mw, cat) for mw in MIDDLEWARE for cat in CATEGORIES]
    for mw, cat in panels:
        table = TextTable(
            f"Figure 6 panel: {mw.upper()} & {cat} BoT",
            ["BE-DCI", "no SpeQuloS (s)", "SpeQuloS (s)", "speedup"],
            note="paper: SpeQuloS reduces completion time everywhere; "
                 "largest gains on volatile DCIs (seti, nd, g5klyo)")
        for trace in TRACE_NAMES:
            b = [r.makespan for r in bases
                 if r.config.trace == trace and r.config.middleware == mw
                 and r.config.category == cat]
            s = [r.makespan for r in speq
                 if r.config.trace == trace and r.config.middleware == mw
                 and r.config.category == cat]
            if not b:
                continue
            mb, ms = float(np.mean(b)), float(np.mean(s))
            table.add_row(trace.upper(), f"{mb:.0f}", f"{ms:.0f}",
                          f"{mb / ms:.2f}x" if ms > 0 else "-")
        rep.tables.append(table)
    return rep


# ---------------------------------------------------------------------------
# Figure 7 — execution stability (normalized completion repartition)
# ---------------------------------------------------------------------------
def figure7_report(scale: Optional[CampaignScale] = None) -> ExperimentReport:
    scale = scale or get_scale()
    bases, speq = _run_headline_campaign(scale)
    rep = ExperimentReport(
        "Figure 7", "Repartition of completion times normalized by the "
                    "environment average")
    bins = 20
    lo, hi = 0.0, 5.0

    def normalized(results: List[ExecutionResult], mw: str) -> List[float]:
        env: Dict[Tuple[str, str], List[float]] = defaultdict(list)
        for r in results:
            if r.config.middleware == mw:
                env[(r.config.trace, r.config.category)].append(r.makespan)
        out: List[float] = []
        for vals in env.values():
            mean = float(np.mean(vals))
            if mean > 0:
                out.extend(v / mean for v in vals)
        return out

    for mw in MIDDLEWARE:
        table = TextTable(
            f"Figure 7 panel: {mw.upper()} (fraction of executions per "
            "normalized-completion bin)",
            ["bin center", "no SpeQuloS", "SpeQuloS"],
            note="paper: BOINC stability improves markedly with SpeQuloS "
                 "(mass concentrates near 1); XWHEP already stable")
        centers, f_base = histogram_fractions(normalized(bases, mw),
                                              lo, hi, bins)
        _, f_speq = histogram_fractions(normalized(speq, mw), lo, hi, bins)
        for c, fb, fs in zip(centers, f_base, f_speq):
            table.add_row(f"{c:.2f}", f"{fb:.3f}", f"{fs:.3f}")
        rep.tables.append(table)
        for label, samples in (("no SpeQuloS", normalized(bases, mw)),
                               ("SpeQuloS", normalized(speq, mw))):
            arr = np.asarray(samples)
            rep.notes.append(
                f"{mw} {label}: std of normalized completion "
                f"{float(np.std(arr)):.3f}")
    return rep


# ---------------------------------------------------------------------------
# Table 4 — completion time prediction success
# ---------------------------------------------------------------------------
def table4_report(scale: Optional[CampaignScale] = None,
                  fraction: float = 0.5) -> ExperimentReport:
    scale = scale or get_scale()
    _bases, speq = _run_headline_campaign(scale)
    rep = ExperimentReport(
        "Table 4", "SpeQuloS completion-time prediction success (+-20%), "
                   f"predicted at {fraction:.0%} completion")
    idx = min(99, max(0, int(round(fraction * 100)) - 1))
    env: Dict[Tuple[str, str, str], List[ExecutionResult]] = defaultdict(list)
    for r in speq:
        env[(r.config.trace, r.config.middleware,
             r.config.category)].append(r)

    table = TextTable(
        "Prediction success rate (%)",
        ["BE-DCI"] + [f"{c} {mw.upper()}" for c in CATEGORIES
                      for mw in MIDDLEWARE] + ["mixed"],
        note="paper: >90% success overall; RANDOM BoTs and spot100/XWHEP "
             "notably harder")
    overall_hits = overall_n = 0
    for trace in TRACE_NAMES:
        row = [trace]
        t_hits = t_n = 0
        for cat in CATEGORIES:
            for mw in MIDDLEWARE:
                rs = env.get((trace, mw, cat), [])
                bases_p = [r.tc_grid[idx] / fraction for r in rs]
                actuals = [r.makespan for r in rs]
                alpha = fit_alpha(bases_p, actuals)
                hits = sum(
                    1 for p, a in zip(bases_p, actuals)
                    if math.isfinite(p) and prediction_success(alpha * p, a))
                n = sum(1 for p in bases_p if math.isfinite(p))
                row.append(f"{100.0 * hits / n:.0f}" if n else "-")
                t_hits += hits
                t_n += n
        row.append(f"{100.0 * t_hits / t_n:.1f}" if t_n else "-")
        overall_hits += t_hits
        overall_n += t_n
        table.add_row(*row)
    if overall_n:
        table.add_row("mixed", *[""] * (len(CATEGORIES) * len(MIDDLEWARE)),
                      f"{100.0 * overall_hits / overall_n:.1f}")
    rep.tables.append(table)
    rep.notes.append("alpha fitted per environment with perfect knowledge "
                     "of the other executions, as in §4.3.3")
    return rep


# ---------------------------------------------------------------------------
# Table 5 — EDGI deployment accounting
# ---------------------------------------------------------------------------
def table5_report(duration_days: float = 2.0, seed: int = 5,
                  n_bots: int = 12) -> ExperimentReport:
    from repro.deployment.edgi import EDGIConfig
    summary = run_cached(EDGIConfig(seed=seed, duration_days=duration_days,
                                    n_bots=n_bots))
    rep = ExperimentReport(
        "Table 5", "EDGI-style deployment: tasks executed per "
                   "infrastructure component")
    table = TextTable(
        "Task accounting",
        ["component", "#tasks"],
        note="paper (first half of 2011): XW@LAL 557002, XW@LRI 129630, "
             "EGI 10371, StratusLab 3974, EC2 119 — shape to match: DGs "
             "carry the bulk, clouds a small QoS fraction")
    for name, count in summary.items():
        table.add_row(name, count)
    rep.tables.append(table)
    return rep


# ---------------------------------------------------------------------------
# Ablations (design-choice sweeps beyond the paper's grid)
# ---------------------------------------------------------------------------
_ABLATION_ENVS = (("seti", "boinc"), ("nd", "xwhep"))


def _ablation_bases(scale: CampaignScale, seed0: int
                    ) -> Dict[Tuple[str, str, int], ExecutionResult]:
    seeds = [seed0 + i for i in range(max(2, scale.seeds_per_env - 1))]
    out = {}
    for trace, mw in _ABLATION_ENVS:
        for s in seeds:
            cfg = ExecutionConfig(trace=trace, middleware=mw,
                                  category="SMALL", seed=s,
                                  bot_size=scale.bot_size("SMALL"))
            out[(trace, mw, s)] = run_cached(cfg)
    return out


def ablation_threshold_report(scale: Optional[CampaignScale] = None
                              ) -> ExperimentReport:
    """Sweep the completion-threshold trigger — the paper fixes 90%;
    this quantifies the TRE/spend trade-off around that choice."""
    scale = scale or get_scale()
    rep = ExperimentReport(
        "Ablation A1", "Completion-threshold sweep (9C-C-R variants)")
    table = TextTable(
        "Trigger threshold vs outcome (seti/boinc + nd/xwhep, SMALL)",
        ["threshold", "mean TRE %", "mean credits %"],
        note="the paper fixes 90%: earlier triggers buy little extra TRE "
             "for noticeably more credits")
    bases = _ablation_bases(scale, 2000)
    for thr in (0.80, 0.85, 0.90, 0.95):
        tres, spends = [], []
        for key, base in bases.items():
            res = run_cached(
                base.config.with_strategy(HEADLINE_COMBO, threshold=thr))
            if has_material_tail(base):
                tres.append(tail_removal_efficiency(
                    base.makespan, res.makespan, base.ideal_time))
            spends.append(res.credits_used_pct)
        table.add_row(f"{thr:.0%}",
                      f"{float(np.mean(tres)):.1f}" if tres else "-",
                      f"{float(np.mean(spends)):.1f}")
    rep.tables.append(table)
    return rep


def ablation_budget_report(scale: Optional[CampaignScale] = None
                           ) -> ExperimentReport:
    """Sweep the credit provision (2.5-20% of the workload) — the paper
    fixes 10%; this shows where the tail removal saturates."""
    scale = scale or get_scale()
    rep = ExperimentReport(
        "Ablation A2", "Credit-budget sweep (9C-C-R, fraction of workload)")
    table = TextTable(
        "Provision vs outcome (seti/boinc + nd/xwhep, SMALL)",
        ["provision %", "mean TRE %", "mean credits spent (abs)"],
        note="the paper provisions 10% of the workload and spends <25% of "
             "it; TRE saturates well below the full budget")
    bases = _ablation_bases(scale, 3000)
    for frac in (0.025, 0.05, 0.10, 0.20):
        tres, spent = [], []
        for key, base in bases.items():
            res = run_cached(base.config.with_strategy(HEADLINE_COMBO)
                             .with_credit_fraction(frac))
            if has_material_tail(base):
                tres.append(tail_removal_efficiency(
                    base.makespan, res.makespan, base.ideal_time))
            spent.append(res.credits_spent)
        table.add_row(f"{frac:.1%}",
                      f"{float(np.mean(tres)):.1f}" if tres else "-",
                      f"{float(np.mean(spent)):.0f}")
    rep.tables.append(table)
    return rep


# ---------------------------------------------------------------------------
# Contention sweep — multi-tenant arbitration (beyond the paper's grid)
# ---------------------------------------------------------------------------
def contention_report(scale: Optional[CampaignScale] = None,
                      trace: str = "seti", middleware: str = "boinc",
                      ) -> ExperimentReport:
    """1→N concurrent BoTs per DCI under each arbitration policy.

    The scenario family §5's shared deployment implies but the paper
    never measures: N tenants' BoTs share one BE-DCI, one Cloud
    supplement and one credit pool sized for 5 % of *one* tenant's
    workload — so contention grows with N — under ``fifo``,
    ``fairshare`` and ``deadline`` arbitration.
    """
    from repro.core.scheduler import ARBITRATION_POLICIES
    scale = scale or get_scale()
    tenant_counts = (1, 2, 4, 8) if scale.size_factor < 1.0 \
        else (1, 2, 4, 8, 16, 32, 64)
    seeds = [6000 + i for i in range(max(2, scale.seeds_per_env - 1))]
    sweep = MultiTenantSweepSpec(
        traces=(trace,), middlewares=(middleware,),
        policies=ARBITRATION_POLICIES, tenant_counts=tenant_counts,
        seeds=tuple(seeds), bot_size=40, strategy="9C-C-D",
        pool_fraction=0.05, pool_scaling="per-tenant",
        worker_budget=8, worker_budget_scaling="at-least-tenants",
        deadline_factor=0.5)
    cfgs = sweep.expand()
    # key by scenario axes rather than relying on expansion order
    by_axes = {(c.policy, c.n_tenants, c.seed): r
               for c, r in zip(cfgs, run_campaign(cfgs))}
    rep = ExperimentReport(
        "Contention", "Per-tenant slowdown and fairness under concurrent "
                      f"QoS runs ({trace}/{middleware}, shared pool)")
    table = TextTable(
        "Contention sweep (mean over seeds)",
        ["policy", "tenants", "mean slowdown", "max/min spread",
         "jain index", "pool spent %", "censored"],
        note="pool = 5% of one tenant's workload regardless of N, so "
             "N tenants share 1/N of the single-tenant provision each; "
             "fairshare trades a little mean slowdown for a much "
             "tighter spread once the pool is contended")
    for policy in sweep.policies:
        for n in sweep.tenant_counts:
            slows, spreads, jains, spents, cens = [], [], [], [], 0
            for seed in sweep.seeds:
                res = by_axes[(policy, n, seed)]
                slows.append(float(np.mean(res.slowdowns)))
                spreads.append(res.slowdown_spread)
                jains.append(res.fairness)
                spents.append(res.pool_used_pct)
                cens += res.censored_count
            table.add_row(policy, str(n),
                          f"{float(np.mean(slows)):.2f}",
                          f"{float(np.mean(spreads)):.2f}",
                          f"{float(np.mean(jains)):.3f}",
                          f"{float(np.mean(spents)):.1f}",
                          str(cens))
    rep.tables.append(table)
    rep.notes.append(f"seeds per point: {len(seeds)}; BoT size 40 "
                     f"(SMALL tasks); strategy 9C-C-D")
    return rep


# ---------------------------------------------------------------------------
# Federation sweep — one SpeQuloS over many DCIs and clouds (§5, Fig. 8)
# ---------------------------------------------------------------------------
FEDERATION_ROUTINGS = ("round_robin", "least_loaded")


def federation_sweep(scale: CampaignScale) -> FederatedSweepSpec:
    """The federation report's grid: DCI count x routing x seed.

    DCI templates grow a heterogeneous federation — a huge volatile
    desktop grid (seti/boinc), a tiny 10-node lab grid (nd/xwhep, the
    one round-robin drowns) and a Grid'5000 harvest bounded to 200
    nodes as in the paper's XW@LRI.  The two-DCI point is the
    *reference federated scenario*: 8 tenants' 100-task BoTs with a
    pool worth 2 % of the aggregate workload and an 8-worker global
    budget, where routing quality shows directly in the max/min
    slowdown spread.
    """
    seeds = tuple(6000 + i for i in range(max(2, scale.seeds_per_env - 1)))
    return FederatedSweepSpec(
        dci_traces=("seti", "nd", "g5klyo"),
        dci_middlewares=("boinc", "xwhep", "xwhep"),
        dci_max_nodes=(None, 10, 200),
        n_dcis=(1, 2, 3),
        routings=FEDERATION_ROUTINGS,
        policies=("fairshare",),
        seeds=seeds,
        n_tenants=8, bot_size=100, strategy="9C-C-R",
        pool_fraction=0.02, max_total_workers=8,
        arrival_rate_per_hour=2.0, deadline_factor=0.5,
        horizon_days=2.0)


def federation_report(scale: Optional[CampaignScale] = None
                      ) -> ExperimentReport:
    """Slowdown and pool usage vs DCI count and routing policy.

    The scenario family the paper's Figure 8 deployment implies but
    never measures: the same tenant stream over growing federations,
    under blind round-robin vs live-load routing, with one arbiter
    rationing the shared pool and worker budget across every binding.
    """
    scale = scale or get_scale()
    sweep = federation_sweep(scale)
    cfgs = sweep.expand()
    by_axes = {(c.routing, len(c.dcis), c.seed): r
               for c, r in zip(cfgs, run_campaign(cfgs))}
    rep = ExperimentReport(
        "Federation", "One SpeQuloS over many DCIs and clouds: slowdown "
                      "and pool usage vs DCI count and routing policy")
    table = TextTable(
        "Federation sweep (mean over seeds)",
        ["routing", "DCIs", "mean slowdown", "max/min spread",
         "jain index", "pool spent %", "peak workers", "censored"],
        note="heterogeneous DCIs (seti/boinc + nd/xwhep@10 + g5klyo/"
             "xwhep@200); live-load routing avoids drowning the tiny "
             "desktop grid that blind round-robin overloads")
    for routing in sweep.routings:
        for n in sweep.n_dcis:
            rs = [by_axes[(routing, n, s)] for s in sweep.seeds]
            table.add_row(
                routing, str(n),
                f"{float(np.mean([np.mean(r.slowdowns) for r in rs])):.2f}",
                f"{float(np.mean([r.slowdown_spread for r in rs])):.2f}",
                f"{float(np.mean([r.fairness for r in rs])):.3f}",
                f"{float(np.mean([r.pool_used_pct for r in rs])):.1f}",
                f"{float(np.mean([r.workers_peak for r in rs])):.1f}",
                str(sum(r.censored_count for r in rs)))
    rep.tables.append(table)

    # per-DCI accounting of the largest federation (first seed)
    n_max = max(sweep.n_dcis)
    for routing in sweep.routings:
        res = by_axes[(routing, n_max, sweep.seeds[0])]
        table = TextTable(
            f"Per-DCI accounting, {n_max} DCIs, {routing} "
            f"(seed {sweep.seeds[0]})",
            ["DCI", "trace", "cloud", "tenants", "DG tasks",
             "cloud tasks", "peak workers", "cloud CPUh"])
        for d in res.dcis:
            table.add_row(d.name, d.trace, d.provider,
                          str(d.tenants_assigned), str(d.completions),
                          str(d.cloud_tasks), str(d.workers_peak),
                          f"{d.cloud_cpu_hours:.1f}")
        rep.tables.append(table)

    ref_n = 2
    spreads = {
        routing: float(np.mean([by_axes[(routing, ref_n, s)].slowdown_spread
                                for s in sweep.seeds]))
        for routing in sweep.routings}
    winner = min(spreads, key=spreads.get)
    rep.notes.append(
        f"reference scenario ({ref_n} DCIs): max/min slowdown spread "
        + ", ".join(f"{r} {v:.2f}" for r, v in spreads.items())
        + f" — {winner} routing serves the tenants most evenly")
    rep.notes.append(f"seeds per point: {len(sweep.seeds)}; "
                     f"{sweep.n_tenants} tenants x {sweep.bot_size} tasks; "
                     f"strategy {sweep.strategy}; pool "
                     f"{sweep.pool_fraction:.0%} of aggregate workload; "
                     f"global budget {sweep.max_total_workers} workers")
    return rep


# ---------------------------------------------------------------------------
# Economics report — credits vs slowdown under per-provider pricing
# ---------------------------------------------------------------------------
ECONOMICS_ROUTINGS = ("least_loaded", "cheapest_drain")


def economics_sweep(scale: CampaignScale) -> FederatedSweepSpec:
    """The economics report's grid: routing x price book x seed over
    the reference heterogeneous federation.

    The two DCIs carry the EDGI preset's provider mapping (nd/xwhep
    backed by the on-site StratusLab, g5klyo/xwhep backed by EC2) over
    *capacity-equalized* realizations — 150 nodes each, so blind load
    balancing has no capacity excuse and the provider price is the only
    systematic differentiator.  The price-book axis pairs the paper's
    uniform economy against :data:`~repro.deployment.edgi.EDGI_PRICING`
    (StratusLab at a third of the EC2 rate).  Routing quality shows
    directly in credits spent: ``cheapest_drain`` steers BoTs (and
    their cloud supplements) toward the cheap provider,
    ``least_loaded`` cannot see prices at all.
    """
    from repro.deployment.edgi import EDGI_PRICING
    seeds = tuple(6000 + i for i in range(max(2, scale.seeds_per_env - 1)))
    return FederatedSweepSpec(
        dci_traces=("nd", "g5klyo"),
        dci_middlewares=("xwhep",),
        dci_providers=("stratuslab", "ec2"),
        dci_max_nodes=(150, 150),
        n_dcis=(2,),
        routings=ECONOMICS_ROUTINGS,
        policies=("fairshare",),
        pricings=(None, EDGI_PRICING),
        seeds=seeds,
        n_tenants=8, bot_size=100, strategy="9C-C-R",
        pool_fraction=0.10, max_total_workers=8,
        arrival_rate_per_hour=2.0, deadline_factor=0.5,
        horizon_days=2.0)


def economics_report(scale: Optional[CampaignScale] = None
                     ) -> ExperimentReport:
    """Credits spent vs slowdown across uniform/heterogeneous price
    books on the reference federation.

    The acceptance scenario: under the uniform paper economy
    ``cheapest_drain`` reproduces ``least_loaded`` decision-for-
    decision while the scenario's history plane is cold (a constant
    price factor preserves every argmin), while under the
    heterogeneous book it routes toward the cheap on-site cloud and
    spends measurably fewer credits at comparable slowdown.  Warm
    store = zero new simulations.
    """
    scale = scale or get_scale()
    sweep = economics_sweep(scale)
    cfgs = sweep.expand()
    by_axes = {(c.routing, c.pricing is not None, c.seed): r
               for c, r in zip(cfgs, run_campaign(cfgs))}
    rep = ExperimentReport(
        "Economics", "Per-provider pricing and cost-aware routing: "
                     "credits spent vs slowdown on the reference "
                     "federation")
    table = TextTable(
        "Price book x routing (mean over seeds)",
        ["price book", "routing", "credits spent", "pool %",
         "mean slowdown", "max/min spread", "censored"],
        note="uniform book: the routings decide identically while the "
             "plane is cold; heterogeneous book (stratuslab 6 / ec2 "
             "18 credits per CPU-hour): cheapest_drain steers work "
             "to the cheap provider")
    spends: Dict[Tuple[str, bool], float] = {}
    slowdowns: Dict[Tuple[str, bool], float] = {}
    for heterogeneous in (False, True):
        for routing in sweep.routings:
            rs = [by_axes[(routing, heterogeneous, s)]
                  for s in sweep.seeds]
            spend = float(np.mean([r.pool_spent for r in rs]))
            slow = float(np.mean([np.mean(r.slowdowns) for r in rs]))
            spends[(routing, heterogeneous)] = spend
            slowdowns[(routing, heterogeneous)] = slow
            table.add_row(
                "heterogeneous" if heterogeneous else "uniform",
                routing, f"{spend:.1f}",
                f"{float(np.mean([r.pool_used_pct for r in rs])):.1f}",
                f"{slow:.2f}",
                f"{float(np.mean([r.slowdown_spread for r in rs])):.2f}",
                str(sum(r.censored_count for r in rs)))
    rep.tables.append(table)

    # per-provider split of the heterogeneous runs (first seed)
    for routing in sweep.routings:
        res = by_axes[(routing, True, sweep.seeds[0])]
        table = TextTable(
            f"Per-DCI credit accounting, heterogeneous book, {routing} "
            f"(seed {sweep.seeds[0]})",
            ["DCI", "provider", "rate cr/CPUh", "tenants",
             "credits spent", "cloud CPUh"])
        for d in res.dcis:
            table.add_row(d.name, d.provider,
                          f"{d.price_per_cpu_hour:g}",
                          str(d.tenants_assigned),
                          f"{d.credits_spent:.1f}",
                          f"{d.cloud_cpu_hours:.1f}")
        rep.tables.append(table)

    cheap = spends[("cheapest_drain", True)]
    blind = spends[("least_loaded", True)]
    saving = 100.0 * (1.0 - cheap / blind) if blind > 0 else 0.0
    rep.notes.append(
        f"heterogeneous book: cheapest_drain spends {cheap:.1f} "
        f"credits vs least_loaded's {blind:.1f} ({saving:.0f}% saved) "
        f"at mean slowdown {slowdowns[('cheapest_drain', True)]:.2f} "
        f"vs {slowdowns[('least_loaded', True)]:.2f}")
    rep.notes.append(
        f"uniform book sanity: cheapest_drain "
        f"{spends[('cheapest_drain', False)]:.1f} vs least_loaded "
        f"{spends[('least_loaded', False)]:.1f} credits — while the "
        f"scenario's history plane is cold the two policies decide "
        f"identically (a constant price factor preserves every "
        f"argmin); they only diverge once archived throughput warms "
        f"the drain estimates")
    rep.notes.append(f"seeds per point: {len(sweep.seeds)}; "
                     f"{sweep.n_tenants} tenants x {sweep.bot_size} "
                     f"tasks; pool {sweep.pool_fraction:.0%} of the "
                     f"aggregate workload; global budget "
                     f"{sweep.max_total_workers} workers")
    return rep


# ---------------------------------------------------------------------------
# Learning report — warm-vs-cold prediction over the history plane
# ---------------------------------------------------------------------------
#: reference environment of the learning study (trace, middleware,
#: category, strategy) and the completion fraction predictions are
#: made at — 25 %, early enough that the uncalibrated tc(r)/r
#: extrapolation overshoots (SpeQuloS removes the tail *later*), which
#: is exactly what a warm α corrects
LEARNING_ENV = ("seti", "boinc", "SMALL", HEADLINE_COMBO)
LEARNING_FRACTION = 0.25


def _learning_data(scale: CampaignScale) -> dict:
    """The learning study's raw numbers (memoized per scale).

    Replays a seed sequence of reference executions through a
    :class:`~repro.history.plane.HistoryPlane` exactly as a deployed
    service would see them: execution *i* is predicted with the α
    calibrated from the `i` executions archived before it.  Three
    success rates fall out:

    * **cold** — every prediction uses α = 1 (a service whose archive
      is wiped between executions: the pre-plane reality);
    * **growing** — the sequential replay above (the archive fills);
    * **warm** — each execution predicted with the α of a full archive
      (leave-one-out, so no execution predicts itself).

    Executions come from the campaign store (warm report = zero new
    simulations).
    """
    def build():
        trace, mw, cat, strategy = LEARNING_ENV
        n = 12 if scale.size_factor < 1.0 else 20
        cfgs = [ExecutionConfig(trace=trace, middleware=mw, category=cat,
                                seed=7000 + i, strategy=strategy,
                                bot_size=scale.bot_size(cat))
                for i in range(n)]
        results = run_campaign(cfgs)
        fraction = LEARNING_FRACTION
        env = env_key_of(f"{trace}-{mw}", cat)
        records = [ExecutionRecord(env, r.n_tasks, r.makespan, r.tc_grid,
                                   credits_spent=r.credits_spent)
                   for r in results]
        # the same grid lookup the Oracle uses (no third copy of the
        # percent-index formula)
        bases = [rec.tc_at(fraction) / fraction for rec in records]
        actuals = [rec.makespan for rec in records]

        plane = HistoryPlane()
        rows = []
        for res, rec, base, actual in zip(results, records, bases,
                                          actuals):
            alpha, archived = plane.alpha(env, fraction)
            rows.append({
                "seed": res.config.seed,
                "archived": archived,
                "alpha": alpha,
                "cold_ok": prediction_success(base, actual),
                "seq_ok": prediction_success(alpha * base, actual),
            })
            plane.add(rec)
        warm_ok = []
        for i in range(len(records)):
            alpha = fit_alpha([b for j, b in enumerate(bases) if j != i],
                              [a for j, a in enumerate(actuals) if j != i])
            warm_ok.append(prediction_success(alpha * bases[i],
                                              actuals[i]))
        for row, ok in zip(rows, warm_ok):
            row["warm_ok"] = ok
        return {
            "rows": rows,
            "env": env,
            "records": records,
            "cold_rate": float(np.mean([r["cold_ok"] for r in rows])),
            "seq_rate": float(np.mean([r["seq_ok"] for r in rows])),
            "warm_rate": float(np.mean(warm_ok)),
        }
    return _memoized("learning", scale, build)  # type: ignore[return-value]


def learning_rates(scale: Optional[CampaignScale] = None
                   ) -> Tuple[float, float, float]:
    """(cold, growing-archive, warm) ±20 % prediction success rates on
    the reference learning scenario."""
    scale = scale or get_scale()
    data = _learning_data(scale)
    return data["cold_rate"], data["seq_rate"], data["warm_rate"]


def learning_report(scale: Optional[CampaignScale] = None
                    ) -> ExperimentReport:
    """Warm-vs-cold prediction success over the history plane.

    The §3.4 claim end to end: the Oracle's α-calibrated predictions
    improve as the Information module's archive fills.  The sequential
    trajectory shows the success probability climbing execution by
    execution; the summary pins cold (α = 1, the always-cold
    pre-plane service) against warm (a filled persistent archive).
    As a side effect the study's records are replayed into the
    persistent history archive (idempotently), so ``repro history
    stats`` shows the same environment the report scores.
    """
    scale = scale or get_scale()
    data = _learning_data(scale)
    trace, mw, cat, strategy = LEARNING_ENV
    rep = ExperimentReport(
        "Learning", "Prediction success vs archive fill "
                    f"({trace}/{mw}/{cat}, {strategy}, predicted at "
                    f"{LEARNING_FRACTION:.0%} completion)")
    table = TextTable(
        "Sequential replay: each execution predicted from the archive "
        "as of its start",
        ["execution", "seed", "archived", "alpha", "cold ok",
         "calibrated ok"],
        note="alpha is fitted from the executions archived so far; "
             "'cold ok' scores the same prediction with alpha = 1")
    for i, row in enumerate(data["rows"]):
        table.add_row(str(i + 1), str(row["seed"]), str(row["archived"]),
                      f"{row['alpha']:.2f}",
                      "yes" if row["cold_ok"] else "no",
                      "yes" if row["seq_ok"] else "no")
    rep.tables.append(table)

    summary = TextTable(
        "Prediction success rate (+-20 %)",
        ["archive regime", "success rate %"],
        note="the acceptance bar: a warm persistent archive must "
             "strictly beat the cold start")
    summary.add_row("cold start (alpha = 1, archive wiped each run)",
                    f"{100.0 * data['cold_rate']:.1f}")
    summary.add_row("growing archive (sequential replay)",
                    f"{100.0 * data['seq_rate']:.1f}")
    summary.add_row("warm archive (leave-one-out over full history)",
                    f"{100.0 * data['warm_rate']:.1f}")
    rep.tables.append(summary)

    # replay the study into the shared persistent archive (idempotent:
    # records are content-addressed) so `repro history stats` sees it
    from repro.history import PersistentHistoryStore
    persistent = HistoryPlane(PersistentHistoryStore())
    for rec in data["records"]:
        persistent.add(rec)
    rep.notes.append(
        f"{len(data['records'])} executions of {data['env']} replayed "
        f"into the persistent archive (repro history stats)")
    rep.notes.append(
        "predictions extrapolate tc(r)/r at r = "
        f"{LEARNING_FRACTION:.0%}; with SpeQuloS the tail is removed "
        "after that point, so uncalibrated early predictions "
        "overshoot — exactly the bias a warm alpha corrects")
    return rep


def ablation_middleware_report(scale: Optional[CampaignScale] = None
                               ) -> ExperimentReport:
    """Sweep the middleware volatility knobs the tail depends on:
    BOINC's ``delay_bound`` and XWHEP's ``worker_timeout``."""
    scale = scale or get_scale()
    rep = ExperimentReport(
        "Ablation A3", "Middleware timeout knobs vs tail slowdown "
                       "(no SpeQuloS)")
    from repro.experiments.runner import run_execution_with_middleware
    table = TextTable(
        "Tail slowdown sensitivity",
        ["middleware", "knob", "value (s)", "mean slowdown"],
        note="BOINC's day-long delay_bound is the root of its 10x tails "
             "(§2.2); XWHEP's 900s detection keeps tails shorter")
    seeds = [4000 + i for i in range(max(2, scale.seeds_per_env - 1))]
    # the timeout knobs live outside ExecutionConfig, so they enter the
    # store digest through run_cached's extra-parameters key
    for db in (21600.0, 86400.0, 172800.0):
        slows = []
        for s in seeds:
            cfg = ExecutionConfig(trace="seti", middleware="boinc",
                                  category="SMALL", seed=s,
                                  bot_size=scale.bot_size("SMALL"))
            res = run_cached(
                cfg, extra={"delay_bound": db},
                compute=lambda: run_execution_with_middleware(
                    cfg, delay_bound=db))
            slows.append(res.slowdown)
        table.add_row("boinc", "delay_bound", f"{db:.0f}",
                      f"{float(np.mean(slows)):.2f}")
    for wt in (300.0, 900.0, 3600.0):
        slows = []
        for s in seeds:
            cfg = ExecutionConfig(trace="g5klyo", middleware="xwhep",
                                  category="SMALL", seed=s,
                                  bot_size=scale.bot_size("SMALL"))
            res = run_cached(
                cfg, extra={"worker_timeout": wt},
                compute=lambda: run_execution_with_middleware(
                    cfg, worker_timeout=wt))
            slows.append(res.slowdown)
        table.add_row("xwhep", "worker_timeout", f"{wt:.0f}",
                      f"{float(np.mean(slows)):.2f}")
    rep.tables.append(table)
    return rep
