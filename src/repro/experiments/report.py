"""Plain-text rendering of experiment outputs.

The paper's tables and figures are regenerated as ASCII tables and
(x, y) series; every bench writes its output both to stdout and to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote
paper-vs-measured numbers from a stable location.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["TextTable", "Series", "ExperimentReport", "results_dir"]


def results_dir() -> str:
    """Directory where benches drop their text outputs."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        here = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        root = os.path.join(here, "benchmarks", "results")
    os.makedirs(root, exist_ok=True)
    return root


@dataclass
class TextTable:
    """A fixed-width table with a title and optional note."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)
    note: Optional[str] = None

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i])
                                   for i, cell in enumerate(row)))
        if self.note:
            lines.append("")
            lines.append(f"note: {self.note}")
        return "\n".join(lines)


@dataclass
class Series:
    """One plotted curve, rendered as aligned (x, y) pairs."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def render(self, x_fmt: str = "{:.3g}", y_fmt: str = "{:.3f}") -> str:
        pairs = "  ".join(f"({x_fmt.format(x)},{y_fmt.format(y)})"
                          for x, y in zip(self.x, self.y))
        return f"{self.label}: {pairs}"


@dataclass
class ExperimentReport:
    """Everything one experiment prints/saves: tables + series + notes."""

    experiment_id: str
    title: str
    tables: List[TextTable] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"### {self.experiment_id}: {self.title}"]
        for table in self.tables:
            parts.append(table.render())
        for s in self.series:
            parts.append(s.render())
        for n in self.notes:
            parts.append(f"note: {n}")
        return "\n\n".join(parts) + "\n"

    def save(self, filename: Optional[str] = None) -> str:
        """Write the rendered report under the results directory."""
        name = filename or f"{self.experiment_id.lower().replace(' ', '_')}.txt"
        path = os.path.join(results_dir(), name)
        with open(path, "w") as fh:
            fh.write(self.render())
        return path

    def show(self) -> None:
        print(self.render())
