"""Execution configuration and campaign scaling.

One :class:`ExecutionConfig` = one simulated BoT execution.  The
``seed`` drives four independent RNG streams (trace realization, node
pool shuffling, workload draw, cloud worker powers), so two configs
differing only in ``strategy`` replay the *same* environment — the
paper's paired with/without-SpeQuloS protocol ("using the same seed
value allows a fair comparison", §4.1.3).

Campaign scaling: the paper simulated >25 000 executions on a cluster;
a laptop benchmark run cannot.  :class:`CampaignScale` shrinks BoT
sizes and seed counts proportionally (``quick``, the default) or keeps
the paper's sizes (``full``, selected with ``REPRO_SCALE=full``).
Scaling the BoT preserves every *relative* quantity the figures report
(tail slowdown, TRE, credit percentages) because tasks stay identical
(same nops) — only their count changes.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.cloud.registry import PROVIDER_NAMES
from repro.core.admission import ADMISSION_MODES
from repro.core.routing import ROUTING_POLICIES
from repro.core.scheduler import ARBITRATION_POLICIES
from repro.history import HISTORY_MODES
from repro.infra.catalog import TRACE_NAMES, get_trace_spec
from repro.middleware import MIDDLEWARE_NAMES
from repro.workload.categories import BOT_CATEGORIES

__all__ = ["DCISpec", "ExecutionConfig", "MultiTenantConfig",
           "ScenarioConfig", "CampaignScale", "get_scale", "SCALES"]

#: hard ceiling on materialized trace nodes per execution — above this
#: extra nodes only deepen the idle pool (DESIGN.md §4)
HARD_NODE_CAP = 4000


def _category_size(category: str, override: Optional[int]) -> int:
    """Nominal task count of one BoT (RANDOM uses its mean)."""
    if override is not None:
        return override
    cat = BOT_CATEGORIES[category.upper()]
    if cat.size is not None:
        return cat.size
    return int(cat.size_normal[0])  # type: ignore[index]


def _auto_node_cap(trace: str, middleware: str, expected_tasks: int) -> int:
    """Materialized node count for one DCI.

    1.3x the peak concurrent demand (task replicas), bounded by the
    trace's natural size and a hard ceiling; extra nodes beyond the
    peak demand never receive work and only slow the simulation.
    Gated traces only field ~participation of their population at any
    instant, so the cap is raised to keep the same effective worker
    supply.
    """
    replicas = expected_tasks * (3 if middleware == "boinc" else 1)
    spec = get_trace_spec(trace)
    cap = max(64, math.ceil(1.3 * replicas / spec.participation))
    return min(cap, spec.natural_node_count(), HARD_NODE_CAP)


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything needed to reproduce one BoT execution."""

    trace: str
    middleware: str
    category: str
    seed: int
    #: strategy combination name ("9C-C-R", ...) or None = no SpeQuloS
    strategy: Optional[str] = None
    #: trigger fraction of the threshold when-policies (paper: 0.9)
    strategy_threshold: float = 0.9
    #: credits worth this fraction of the BoT workload (paper: 10 %)
    credit_fraction: float = 0.10
    #: task-count override (campaign scaling); None = Table 3 size
    bot_size: Optional[int] = None
    #: materialized node cap; None = automatic (see node_cap())
    max_nodes: Optional[int] = None
    horizon_days: float = 15.0
    provider: str = "simulation"

    def __post_init__(self) -> None:
        if self.trace not in TRACE_NAMES:
            raise ValueError(f"unknown trace {self.trace!r}")
        if self.middleware not in MIDDLEWARE_NAMES:
            raise ValueError(f"unknown middleware {self.middleware!r}")
        if self.category.upper() not in BOT_CATEGORIES:
            raise ValueError(f"unknown BoT category {self.category!r}")
        if not 0.0 < self.credit_fraction <= 1.0:
            raise ValueError("credit_fraction must be in (0, 1]")
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")

    # ------------------------------------------------------------------
    def with_strategy(self, strategy: Optional[str],
                      threshold: float = 0.9) -> "ExecutionConfig":
        """The paired configuration with a (different) SpeQuloS setup."""
        return replace(self, strategy=strategy,
                       strategy_threshold=threshold)

    def with_seed(self, seed: int) -> "ExecutionConfig":
        return replace(self, seed=seed)

    def with_credit_fraction(self, fraction: float) -> "ExecutionConfig":
        return replace(self, credit_fraction=fraction)

    @property
    def horizon(self) -> float:
        return self.horizon_days * 86400.0

    def expected_size(self) -> int:
        """Nominal task count (RANDOM uses its mean)."""
        return _category_size(self.category, self.bot_size)

    def node_cap(self) -> int:
        """Materialized node count for this execution (see
        :func:`_auto_node_cap`)."""
        if self.max_nodes is not None:
            return self.max_nodes
        return _auto_node_cap(self.trace, self.middleware,
                              self.expected_size())

    def env_name(self) -> str:
        """DCI label: trace + middleware (the history/prediction bucket
        together with the category)."""
        return f"{self.trace}-{self.middleware}"

    def label(self) -> str:
        strat = self.strategy or "nospeq"
        return (f"{self.trace}/{self.middleware}/{self.category}"
                f"/{strat}/s{self.seed}")


@dataclass(frozen=True)
class MultiTenantConfig:
    """One multi-tenant scenario: N users' BoTs sharing one BE-DCI,
    one Cloud supplement and one credit pool.

    The ``seed`` fixes the trace realization, the pool shuffle, the
    tenant stream (arrival instants + workload draws) and the cloud
    worker powers, so two configs differing only in ``policy`` replay
    the same contended environment — the multi-tenant analogue of the
    paper's paired-seed protocol (§4.1.3).
    """

    trace: str
    middleware: str
    seed: int
    n_tenants: int = 8
    #: cycled over tenants (deterministic category mix)
    categories: Tuple[str, ...] = ("SMALL",)
    strategy: str = "9C-C-R"
    strategy_threshold: float = 0.9
    #: arbitration policy: fifo | fairshare | deadline
    policy: str = "fairshare"
    #: Poisson arrival intensity (tenants per hour); ignored when
    #: ``arrivals`` pins explicit instants
    arrival_rate_per_hour: float = 2.0
    arrivals: Optional[Tuple[float, ...]] = None
    #: task-count override per BoT (campaign scaling)
    bot_size: Optional[int] = None
    #: pooled credits as a fraction of the aggregate declared workload
    pool_fraction: float = 0.10
    #: global cap on concurrently active Cloud workers (the limited
    #: supplement the tenants compete for); None = uncapped
    max_total_workers: Optional[int] = None
    #: when set, tenant deadlines = arrival + factor x declared
    #: workload (feeds the deadline-proximity policy)
    deadline_factor: Optional[float] = None
    horizon_days: float = 15.0
    provider: str = "simulation"
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.trace not in TRACE_NAMES:
            raise ValueError(f"unknown trace {self.trace!r}")
        if self.middleware not in MIDDLEWARE_NAMES:
            raise ValueError(f"unknown middleware {self.middleware!r}")
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if not self.categories:
            raise ValueError("categories must be non-empty")
        for cat in self.categories:
            if cat.upper() not in BOT_CATEGORIES:
                raise ValueError(f"unknown BoT category {cat!r}")
        if self.policy not in ARBITRATION_POLICIES:
            raise ValueError(f"unknown arbitration policy {self.policy!r}")
        if self.arrival_rate_per_hour <= 0:
            raise ValueError("arrival_rate_per_hour must be positive")
        if self.arrivals is not None and len(self.arrivals) != self.n_tenants:
            raise ValueError("arrivals must list one instant per tenant")
        if not 0.0 < self.pool_fraction <= 1.0:
            raise ValueError("pool_fraction must be in (0, 1]")
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")

    # ------------------------------------------------------------------
    def with_policy(self, policy: str) -> "MultiTenantConfig":
        """The paired scenario under a different arbitration policy."""
        return replace(self, policy=policy)

    @property
    def horizon(self) -> float:
        return self.horizon_days * 86400.0

    def expected_total_size(self) -> int:
        """Nominal aggregate task count across the tenant stream."""
        return sum(
            _category_size(self.categories[i % len(self.categories)],
                           self.bot_size)
            for i in range(self.n_tenants))

    def node_cap(self) -> int:
        """Materialized node count — same rule as
        :meth:`ExecutionConfig.node_cap`, sized for the aggregate
        concurrent demand of all tenants."""
        if self.max_nodes is not None:
            return self.max_nodes
        return _auto_node_cap(self.trace, self.middleware,
                              self.expected_total_size())

    def env_name(self) -> str:
        return f"{self.trace}-{self.middleware}"

    def label(self) -> str:
        cats = "+".join(c.upper() for c in self.categories)
        return (f"{self.trace}/{self.middleware}/{cats}"
                f"/x{self.n_tenants}/{self.policy}/s{self.seed}")


@dataclass(frozen=True)
class DCISpec:
    """One BE-DCI of a federated scenario, declaratively.

    A spec names the environment (trace + middleware), the cloud
    provider that supplements it, and optional caps: ``max_nodes``
    bounds the materialized trace realization, ``worker_cap`` bounds
    the concurrently active cloud workers the arbiter may grant runs
    bound to this DCI (overriding the scenario-wide
    ``max_dci_workers``).  ``price`` quotes this DCI's provider in
    credits per CPU·hour, overriding the scenario price book for that
    provider (None: the book's — ultimately the paper's uniform —
    rate).
    """

    trace: str
    middleware: str
    provider: str = "simulation"
    #: DCI label; None derives ``dci<i>-<trace>-<middleware>``
    name: Optional[str] = None
    max_nodes: Optional[int] = None
    worker_cap: Optional[int] = None
    #: credits/CPU·h of this DCI's provider (economics plane override)
    price: Optional[float] = None

    def __post_init__(self) -> None:
        if self.trace not in TRACE_NAMES:
            raise ValueError(f"unknown trace {self.trace!r}")
        if self.middleware not in MIDDLEWARE_NAMES:
            raise ValueError(f"unknown middleware {self.middleware!r}")
        if self.provider.lower() not in PROVIDER_NAMES:
            raise ValueError(f"unknown cloud provider {self.provider!r}")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1 or None")
        if self.worker_cap is not None and self.worker_cap < 1:
            raise ValueError("worker_cap must be >= 1 or None")
        if self.price is not None and self.price <= 0:
            raise ValueError("price must be positive or None")

    def resolved_name(self, index: int) -> str:
        return self.name or f"dci{index}-{self.trace}-{self.middleware}"


@dataclass(frozen=True)
class ScenarioConfig:
    """One federated scenario: N tenants' BoTs over N DCIs and clouds.

    The paper's headline deployment (§5, Figure 8): one SpeQuloS
    instance serving several BE-DCIs, each backed by its own cloud.  A
    routing policy (:mod:`repro.core.routing`) assigns each arriving
    BoT to a DCI; one :class:`~repro.core.scheduler.CloudArbiter`
    polices a single global worker budget and one shared credit pool
    across every binding.

    The ``seed`` fixes every DCI's trace realization (independent
    streams per DCI index), the pool shuffles, the tenant stream and
    the cloud worker powers, so two configs differing only in
    ``routing`` or ``policy`` replay the same federated environment —
    the cross-DCI analogue of the paper's paired-seed protocol
    (§4.1.3).
    """

    dcis: Tuple[DCISpec, ...]
    seed: int
    n_tenants: int = 8
    #: cycled over tenants (deterministic category mix)
    categories: Tuple[str, ...] = ("SMALL",)
    strategy: str = "9C-C-R"
    strategy_threshold: float = 0.9
    #: cloud arbitration policy: fifo | fairshare | deadline
    policy: str = "fairshare"
    #: BoT→DCI routing policy: round_robin | least_loaded | affinity
    routing: str = "round_robin"
    #: category→DCI-name pins for affinity routing ((category, name)
    #: pairs; unmapped categories fall back to round robin)
    affinity: Optional[Tuple[Tuple[str, str], ...]] = None
    arrival_rate_per_hour: float = 2.0
    arrivals: Optional[Tuple[float, ...]] = None
    bot_size: Optional[int] = None
    #: pooled credits as a fraction of the aggregate declared workload
    pool_fraction: float = 0.10
    #: global cap on concurrently active cloud workers over all DCIs
    max_total_workers: Optional[int] = None
    #: uniform per-DCI worker cap (DCISpec.worker_cap overrides)
    max_dci_workers: Optional[int] = None
    deadline_factor: Optional[float] = None
    horizon_days: float = 15.0
    #: execution-history backend feeding the Oracle, the history-fed
    #: routing policies and admission control: None/"memory" = a fresh
    #: in-memory archive per run (the default — results stay pure
    #: functions of the config), "persistent" = the shared cross-run
    #: archive next to the campaign store (REPRO_HISTORY overrides its
    #: path).  NOTE: a persistent-history run depends on the archive's
    #: state, so the campaign store records whatever the *first*
    #: execution of the config observed.
    history: Optional[str] = None
    #: admission control on pooled QoS orders: None = admit everyone,
    #: "reject" = drop orders whose plane-predicted credit cost
    #: exceeds the pool's uncommitted remainder (the BoT still runs
    #: best-effort), "defer" = retry such orders periodically
    admission: Optional[str] = None
    #: scenario price book as hashable (provider, credits/CPU·h)
    #: pairs; providers absent from the pairs (and None, the default)
    #: quote the paper's uniform rate — default scenarios stay
    #: bit-identical to the fixed-exchange-rate economy.  Per-DCI
    #: ``DCISpec.price`` entries override their provider's pair.
    pricing: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dcis", tuple(self.dcis))
        object.__setattr__(self, "categories", tuple(self.categories))
        if self.affinity is not None:
            object.__setattr__(self, "affinity",
                               tuple((c, d) for c, d in self.affinity))
        if self.arrivals is not None:
            object.__setattr__(self, "arrivals", tuple(self.arrivals))
        if not self.dcis:
            raise ValueError("a federated scenario needs at least one DCI")
        names = self.dci_names()
        if len(set(names)) != len(names):
            raise ValueError(f"DCI names must be unique, got {names}")
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if not self.categories:
            raise ValueError("categories must be non-empty")
        for cat in self.categories:
            if cat.upper() not in BOT_CATEGORIES:
                raise ValueError(f"unknown BoT category {cat!r}")
        if self.policy not in ARBITRATION_POLICIES:
            raise ValueError(f"unknown arbitration policy {self.policy!r}")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {self.routing!r}")
        for cat, dci in self.affinity or ():
            if cat.upper() not in BOT_CATEGORIES:
                raise ValueError(f"unknown BoT category {cat!r} in affinity")
            if dci not in names:
                raise ValueError(f"affinity target {dci!r} is not a DCI "
                                 f"of this scenario ({names})")
        if self.arrival_rate_per_hour <= 0:
            raise ValueError("arrival_rate_per_hour must be positive")
        if self.arrivals is not None and len(self.arrivals) != self.n_tenants:
            raise ValueError("arrivals must list one instant per tenant")
        if not 0.0 < self.pool_fraction <= 1.0:
            raise ValueError("pool_fraction must be in (0, 1]")
        if (self.max_total_workers is not None
                and self.max_total_workers < 1):
            raise ValueError("max_total_workers must be >= 1 or None")
        if self.max_dci_workers is not None and self.max_dci_workers < 1:
            raise ValueError("max_dci_workers must be >= 1 or None")
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        if self.history is not None and self.history not in HISTORY_MODES:
            raise ValueError(f"unknown history mode {self.history!r}; "
                             f"available: {', '.join(HISTORY_MODES)}")
        if self.admission is not None \
                and self.admission not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {self.admission!r}; "
                f"available: {', '.join(ADMISSION_MODES)}")
        if self.pricing is not None:
            object.__setattr__(self, "pricing",
                               tuple((p, float(r)) for p, r in self.pricing))
            for provider, rate in self.pricing:
                if provider.lower() not in PROVIDER_NAMES:
                    raise ValueError(f"unknown cloud provider "
                                     f"{provider!r} in pricing")
                if rate <= 0:
                    raise ValueError(f"pricing rate for {provider!r} "
                                     f"must be positive")
        seen_prices: dict = {}
        for spec in self.dcis:
            if spec.price is None:
                continue
            key = spec.provider.lower()
            if key in seen_prices and seen_prices[key] != spec.price:
                raise ValueError(
                    f"conflicting DCISpec prices for provider {key!r}: "
                    f"{seen_prices[key]} vs {spec.price} (pricing is "
                    f"per provider)")
            seen_prices[key] = spec.price

    # ------------------------------------------------------------------
    def with_routing(self, routing: str) -> "ScenarioConfig":
        """The paired scenario under a different routing policy."""
        return replace(self, routing=routing)

    def with_policy(self, policy: str) -> "ScenarioConfig":
        """The paired scenario under a different arbitration policy."""
        return replace(self, policy=policy)

    def with_admission(self, admission: Optional[str]) -> "ScenarioConfig":
        """The paired scenario under a different admission mode."""
        return replace(self, admission=admission)

    def with_pricing(self, pricing) -> "ScenarioConfig":
        """The paired scenario under a different price book."""
        return replace(self, pricing=tuple(pricing)
                       if pricing is not None else None)

    def price_map(self) -> dict:
        """Effective per-provider rates (lower-cased provider →
        credits/CPU·h): scenario ``pricing`` pairs first, per-DCI
        ``DCISpec.price`` overrides on top.  Empty = uniform paper
        economy."""
        rates = {p.lower(): r for p, r in self.pricing or ()}
        for spec in self.dcis:
            if spec.price is not None:
                rates[spec.provider.lower()] = spec.price
        return rates

    @property
    def horizon(self) -> float:
        return self.horizon_days * 86400.0

    def dci_names(self) -> Tuple[str, ...]:
        return tuple(spec.resolved_name(i)
                     for i, spec in enumerate(self.dcis))

    def affinity_map(self) -> dict:
        return {cat.upper(): dci for cat, dci in self.affinity or ()}

    def expected_total_size(self) -> int:
        """Nominal aggregate task count across the tenant stream."""
        return sum(
            _category_size(self.categories[i % len(self.categories)],
                           self.bot_size)
            for i in range(self.n_tenants))

    def node_cap_for(self, spec: DCISpec) -> int:
        """Materialized node count for one DCI of the federation.

        Sized for the *aggregate* demand: affinity (and a pathological
        least-loaded run) may route every tenant to the same DCI, so
        each realization must be able to absorb the whole stream.
        ``DCISpec.max_nodes`` takes precedence (the EDGI preset bounds
        XW@LRI to 200 nodes, as the paper does).
        """
        if spec.max_nodes is not None:
            return spec.max_nodes
        return _auto_node_cap(spec.trace, spec.middleware,
                              self.expected_total_size())

    def label(self) -> str:
        cats = "+".join(c.upper() for c in self.categories)
        # priced scenarios are labelled so store rows and report
        # tables distinguish them from the uniform-economy pair
        priced = "/priced" if self.price_map() else ""
        return (f"fed{len(self.dcis)}/{self.routing}/{self.policy}"
                f"/{cats}/x{self.n_tenants}{priced}/s{self.seed}")


@dataclass(frozen=True)
class CampaignScale:
    """Campaign sizing knobs (quick vs full)."""

    name: str
    #: multiplies Table 3 BoT sizes (tasks keep their nops)
    size_factor: float
    #: executions (seeds) per environment for distribution figures
    seeds_per_env: int
    #: seeds for the heavy 18-combo strategy grid (Figures 4/5)
    seeds_strategy_grid: int

    def bot_size(self, category: str) -> Optional[int]:
        """Scaled task count for a category (None = unscaled)."""
        if self.size_factor >= 1.0:
            return None
        cat = BOT_CATEGORIES[category.upper()]
        base = cat.size if cat.size is not None \
            else int(cat.size_normal[0])  # type: ignore[index]
        return max(30, int(round(base * self.size_factor)))


SCALES = {
    "quick": CampaignScale(name="quick", size_factor=0.25,
                           seeds_per_env=3, seeds_strategy_grid=2),
    "full": CampaignScale(name="full", size_factor=1.0,
                          seeds_per_env=10, seeds_strategy_grid=4),
}


def get_scale(name: Optional[str] = None) -> CampaignScale:
    """Campaign scale from the argument or ``REPRO_SCALE`` (default
    ``quick``)."""
    key = (name or os.environ.get("REPRO_SCALE", "quick")).lower()
    try:
        return SCALES[key]
    except KeyError:
        raise KeyError(f"unknown scale {key!r}; available: "
                       f"{', '.join(SCALES)}") from None
