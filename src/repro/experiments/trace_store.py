"""Content-addressed on-disk store of trace realizations (L2 tier).

The in-process :class:`~repro.experiments.harness.TraceCache` (L1, an
LRU of raw interval arrays) dies with its process, so every campaign
shard — the executor shards by ``(trace, seed)`` precisely so each
worker materializes a given environment once — still paid the dominant
regeneration cost the first time it touched a realization.  This module
is the second tier: every materialized realization is archived as one
``.npz`` file next to the campaign result store, keyed by a SHA-256
digest of ``(trace, seed-stream, cap, horizon)`` plus a *generator
fingerprint* (a hash of every ``repro/infra`` source file), so shards,
processes and CI runs share realizations instead of regenerating them,
and any edit to trace-generation code automatically orphans stale
entries — exactly the invalidation discipline of the result store.

Load path: the ``.npz`` members are written uncompressed (``np.savez``
uses ``ZIP_STORED``), so the big ``starts``/``ends`` arrays are
*memory-mapped* straight out of the archive — a 10⁴-node realization
comes back as zero-copy read-only views in milliseconds instead of the
seconds of renewal/gantt synthesis.  If the zip layout ever defeats the
mmap fast path the loader falls back to a plain (still read-only)
``np.load``.

Storage layout per entry (one realization of N nodes):

* ``starts`` / ``ends`` — all nodes' intervals concatenated (float64);
* ``bounds`` — int64 offsets of length N+1 (node ``i`` owns
  ``starts[bounds[i]:bounds[i+1]]``);
* ``powers`` — per-node computing power (float64, length N);
* ``tags`` — per-node tag strings.

``REPRO_TRACE_STORE`` overrides the directory; ``REPRO_NO_CACHE=1``
disables the tier entirely (the same kill switch as the result store).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import zipfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TraceStore", "default_trace_store", "default_trace_store_path",
           "generator_fingerprint", "set_default_trace_store"]

#: raw realization: one (starts, ends, power, tag) tuple per node
RawNodes = List[Tuple[np.ndarray, np.ndarray, float, str]]
#: cache key: (trace, seed-stream, cap, horizon)
TraceKey = Tuple[str, Tuple[int, ...], int, float]

#: manual escape hatch mirroring the result store's CODE_VERSION
TRACE_STORE_VERSION = "traces-v1"

_fingerprint: Optional[str] = None


def generator_fingerprint() -> str:
    """Hash of every trace-generation source file (cached per process).

    Covers the whole ``repro.infra`` package — renewal, gantt, spot,
    quantile, catalog, intervals, node — so an edit to any generator
    makes old on-disk realizations unreachable without a manual bump.
    """
    global _fingerprint
    if _fingerprint is None:
        infra = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "infra")
        digest = hashlib.sha256(TRACE_STORE_VERSION.encode())
        for dirpath, _dirs, files in sorted(os.walk(infra)):
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, infra).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _fingerprint = digest.hexdigest()[:12]
    return _fingerprint


def _key_digest(key: TraceKey, fingerprint: str) -> str:
    trace, stream, cap, horizon = key
    body = json.dumps({"trace": trace, "stream": list(stream),
                       "cap": cap, "horizon": horizon,
                       "generator": fingerprint}, sort_keys=True)
    return hashlib.sha256(body.encode()).hexdigest()[:24]


# ---------------------------------------------------------------------------
# npz memory-mapping
# ---------------------------------------------------------------------------
def _mmap_npz(path: str, names: Sequence[str]) -> Dict[str, np.ndarray]:
    """Memory-map selected members of an *uncompressed* ``.npz``.

    A stored (non-deflated) zip member is a verbatim ``.npy`` file at a
    known offset, so its array data can be mapped read-only without
    decompressing or copying.  Raises on any layout surprise — the
    caller falls back to a plain load.
    """
    wanted = set(names)
    out: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf:
        infos = {i.filename: i for i in zf.infolist()}
        for name in names:
            info = infos[name + ".npy"]
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError("compressed member cannot be mapped")
            with open(path, "rb") as fh:
                fh.seek(info.header_offset)
                local = fh.read(30)
                if local[:4] != b"PK\x03\x04":
                    raise ValueError("bad local file header")
                n_name, n_extra = struct.unpack("<HH", local[26:30])
                fh.seek(info.header_offset + 30 + n_name + n_extra)
                version = np.lib.format.read_magic(fh)
                if version == (1, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_1_0(fh)
                else:
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_2_0(fh)
                if dtype.hasobject:
                    raise ValueError("object arrays cannot be mapped")
                out[name] = np.memmap(path, dtype=dtype, mode="r",
                                      offset=fh.tell(), shape=shape,
                                      order="F" if fortran else "C")
        missing = wanted - set(out)
        if missing:
            raise KeyError(f"missing members: {sorted(missing)}")
    return out


# ---------------------------------------------------------------------------
class TraceStore:
    """On-disk content-addressed archive of trace realizations."""

    _ARRAYS = ("starts", "ends", "bounds", "powers", "tags")

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_trace_store_path()
        os.makedirs(self.root, exist_ok=True)
        self.fingerprint = generator_fingerprint()
        # per-process-lifetime counters (mirrors StoreStats)
        self.loads = 0          # realizations served from disk
        self.misses = 0         # lookups that found no file
        self.saves = 0          # realizations written
        self.mmap_fallbacks = 0  # loads that fell back to np.load

    # ------------------------------------------------------------------
    def path_for(self, key: TraceKey) -> str:
        digest = _key_digest(key, self.fingerprint)
        return os.path.join(self.root,
                            f"{key[0]}-{digest}-{self.fingerprint}.npz")

    def load_flat(self, key: TraceKey) -> Optional[Tuple]:
        """The stored realization in its on-disk flat layout, or None.

        Returns ``(starts, ends, bounds, powers, tags)`` — the interval
        arrays memory-mapped read-only, tags as a plain str tuple.
        This is the zero-loop fast path for columnar consumers
        (:meth:`~repro.infra.columns.NodeColumns.from_flat`); a 10^5
        -host load is five array handles instead of 10^5 per-node
        view constructions.
        """
        path = self.path_for(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            arrays = _mmap_npz(path, ("starts", "ends", "bounds"))
        except Exception:
            self.mmap_fallbacks += 1
            with np.load(path, allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in ("starts", "ends",
                                                       "bounds")}
            for arr in arrays.values():
                arr.setflags(write=False)
        with np.load(path, allow_pickle=False) as npz:
            powers = npz["powers"]
            tags = npz["tags"]
        self.loads += 1
        return (arrays["starts"], arrays["ends"], arrays["bounds"],
                powers, tuple(tags.tolist()))

    def load(self, key: TraceKey) -> Optional[RawNodes]:
        """The stored realization as read-only per-node views, or None."""
        flat = self.load_flat(key)
        if flat is None:
            return None
        starts, ends, bounds, powers, tags = flat
        raw: RawNodes = []
        for i in range(bounds.shape[0] - 1):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            # plain-ndarray views (not memmap subclass instances) so a
            # Node rebuild's asarray() is an identity no-op and every
            # execution shares the exact same array objects
            raw.append((np.asarray(starts[lo:hi]), np.asarray(ends[lo:hi]),
                        float(powers[i]), str(tags[i])))
        return raw

    def save(self, key: TraceKey, raw: RawNodes) -> str:
        """Archive one realization atomically; returns its path."""
        path = self.path_for(key)
        if os.path.exists(path):
            return path
        bounds = np.zeros(len(raw) + 1, dtype=np.int64)
        for i, (s, _e, _p, _t) in enumerate(raw):
            bounds[i + 1] = bounds[i] + s.shape[0]
        starts = (np.concatenate([s for s, _e, _p, _t in raw])
                  if raw else np.empty(0))
        ends = (np.concatenate([e for _s, e, _p, _t in raw])
                if raw else np.empty(0))
        powers = np.array([p for _s, _e, p, _t in raw], dtype=float)
        tags = np.array([t for _s, _e, _p, t in raw])
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, starts=np.ascontiguousarray(starts, dtype=float),
                         ends=np.ascontiguousarray(ends, dtype=float),
                         bounds=bounds, powers=powers, tags=tags)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.saves += 1
        return path

    # ------------------------------------------------------------------
    # accounting / maintenance
    # ------------------------------------------------------------------
    def _files(self) -> List[str]:
        try:
            return sorted(name for name in os.listdir(self.root)
                          if name.endswith(".npz"))
        except OSError:
            return []

    def _is_current(self, name: str) -> bool:
        return name.endswith(f"-{self.fingerprint}.npz")

    def entries(self) -> Tuple[int, int]:
        """(current, stale) entry counts by generator fingerprint."""
        files = self._files()
        current = sum(1 for name in files if self._is_current(name))
        return current, len(files) - current

    def file_bytes(self) -> int:
        """Total on-disk size of every archived realization."""
        total = 0
        for name in self._files():
            try:
                total += os.path.getsize(os.path.join(self.root, name))
            except OSError:
                pass
        return total

    def gc(self) -> Tuple[int, int]:
        """Drop realizations whose generator fingerprint is stale.

        Stale files are unreachable anyway (every lookup path embeds
        the current fingerprint); GC reclaims the disk.  Returns
        ``(files, bytes)`` removed.
        """
        removed = 0
        nbytes = 0
        for name in self._files():
            if self._is_current(name):
                continue
            path = os.path.join(self.root, name)
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            nbytes += size
        return removed, nbytes

    def summary(self) -> str:
        current, stale = self.entries()
        text = (f"{self.loads} disk hits, {self.misses} disk misses, "
                f"{self.saves} saved; {current} current "
                f"+ {stale} stale entries, {self.file_bytes()} bytes")
        if self.mmap_fallbacks:
            text += f", {self.mmap_fallbacks} mmap fallbacks"
        return text


# ---------------------------------------------------------------------------
# process-wide default store
# ---------------------------------------------------------------------------
_default_trace_store: Optional[TraceStore] = None
_disabled = os.environ.get("REPRO_NO_CACHE", "").lower() \
    not in ("", "0", "false")


def default_trace_store_path() -> str:
    """``REPRO_TRACE_STORE`` or
    ``<repo>/benchmarks/.campaign_store/traces`` (beside the result
    store, so CI's ``actions/cache`` of that directory covers both)."""
    env = os.environ.get("REPRO_TRACE_STORE")
    if env:
        return env
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(root, "benchmarks", ".campaign_store", "traces")


def default_trace_store() -> Optional[TraceStore]:
    """The process-wide trace store (lazily opened), or None when
    caching is off (``REPRO_NO_CACHE=1``)."""
    global _default_trace_store
    if _disabled:
        return None
    if _default_trace_store is None:
        _default_trace_store = TraceStore()
    return _default_trace_store


def set_default_trace_store(store: Optional[TraceStore]
                            ) -> Optional[TraceStore]:
    """Swap the process-wide trace store; returns the previous one.

    Passing an explicit store also re-enables the tier for the process
    (tests point it at tmp directories regardless of the env)."""
    global _default_trace_store, _disabled
    previous, _default_trace_store = _default_trace_store, store
    if store is not None:
        _disabled = False
    return previous
