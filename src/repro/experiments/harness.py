"""Scenario harness: the single world-assembly path for all executions.

Every execution family — single-BoT (:func:`~repro.experiments.runner.
run_execution`), multi-tenant (:func:`~repro.experiments.runner.
run_multi_tenant`), federated (:func:`~repro.experiments.runner.
run_federated`) and the EDGI deployment preset — used to assemble its
world by hand: synthesize trace realizations, wrap them in node pools,
stand up middleware servers, cloud drivers and one SpeQuloS service,
wire completion observers, and collect accounting afterwards.  The
:class:`ScenarioHarness` centralizes that assembly so the entry points
are thin specializations of one federated-capable path: N DCIs (each a
trace realization + middleware server + cloud driver), one lazily
created SpeQuloS over all of them, shared stop-on-completion watchers
and per-DCI accounting probes.

RNG discipline (drift-critical): every component draws from an
independent, explicitly labelled stream —

* trace realization   ``[seed, *stream, 0xACE]``
* node-pool shuffle   ``[seed, *stream, 0xB00]``
* cloud worker powers ``[seed, *stream, 0xC10]``

where ``stream`` is empty for single-DCI scenarios (bit-identical to
the historical layout) and ``(dci_index,)`` in a federation, so two
DCIs sharing a trace name still realize *different* environments.

Trace-realization cache (two tiers): materialized interval arrays are
cached per ``(trace, seed-stream, cap, horizon)``.  L1 is a true-LRU
in-process dict — paired with/without runs, the 18-combination
strategy grid and every DCI of a federated sweep replay the same
environments, so regeneration would be pure waste.  Capacity comes
from ``REPRO_TRACE_CACHE`` (default 6; federated scenarios materialize
several traces per execution and would silently thrash a smaller
cache).  L2 is the content-addressed on-disk
:class:`~repro.experiments.trace_store.TraceStore` shared across
processes: an L1 miss first tries the store (memory-mapped, no
regeneration), and fresh realizations are archived on the way in, so
`CampaignExecutor` shards — keyed by ``(trace, seed)`` — land on warm
entries by construction.  Hit/miss/eviction counters are kept on the
cache object; ``disk_hits`` counts L2 promotions.  Only raw interval
arrays are cached, and they are **read-only** (a mutating consumer
fails loudly instead of silently corrupting every future execution
sharing the realization) — Node objects carry a scan cursor and are
rebuilt per execution.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.api import ComputeDriver
from repro.cloud.registry import get_driver
from repro.core.admission import DEFERRED, GRANTED
from repro.core.info import InformationModule
from repro.core.scheduler import CloudArbiter, SchedulerConfig
from repro.core.service import SpeQuloS
from repro.experiments.trace_store import default_trace_store
from repro.history import HistoryPlane
from repro.infra.catalog import get_trace_spec
from repro.infra.columns import NodeColumns
from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.base import DGServer
from repro.simulator.engine import Simulation

__all__ = ["TraceCache", "TRACE_CACHE", "AssemblyCache", "ASSEMBLY_CACHE",
           "HarnessDCI", "ScenarioHarness"]


# ---------------------------------------------------------------------------
# trace realization cache (per process, true LRU)
# ---------------------------------------------------------------------------
_TraceKey = Tuple[str, Tuple[int, ...], int, float]
_RawNodes = List[Tuple[np.ndarray, np.ndarray, float, str]]


class _CacheEntry:
    """One cached realization: flat store-layout arrays and/or the
    per-node raw view list, whichever was cheapest to obtain.

    Disk hits arrive flat (five array handles); the per-node views are
    only built if an object-Node consumer actually asks
    (:meth:`TraceCache.materialize`) — columnar consumers go straight
    to :meth:`~repro.infra.columns.NodeColumns.from_flat` and never
    pay the 10^5-iteration split.  Generated realizations arrive raw.
    """

    __slots__ = ("flat", "_raw")

    def __init__(self, flat: Optional[Tuple] = None,
                 raw: Optional[_RawNodes] = None):
        self.flat = flat
        self._raw = raw

    @property
    def raw(self) -> _RawNodes:
        if self._raw is None:
            starts, ends, bounds, powers, tags = self.flat
            self._raw = [
                (np.asarray(starts[bounds[i]:bounds[i + 1]]),
                 np.asarray(ends[bounds[i]:bounds[i + 1]]),
                 float(powers[i]), tags[i])
                for i in range(bounds.shape[0] - 1)]
        return self._raw


class TraceCache:
    """Two-tier cache of materialized trace realizations (raw arrays).

    L1: in-process LRU of raw per-node arrays.  L2: the shared
    content-addressed on-disk :class:`~repro.experiments.trace_store.
    TraceStore` (disabled under ``REPRO_NO_CACHE=1``).  All cached
    arrays are read-only; Node rebuilds share them zero-copy.
    """

    def __init__(self) -> None:
        self._entries: "OrderedDict[_TraceKey, _CacheEntry]" = OrderedDict()
        #: columnar form of an entry, built lazily on first columnar
        #: request and evicted together with its raw entry
        self._columns: dict[_TraceKey, NodeColumns] = {}
        #: t=0 pool filing skeleton per columns template, captured on
        #: the first pool build and evicted with its raw entry
        self._filings: dict[_TraceKey, dict] = {}
        self.hits = 0
        self.misses = 0       # L1 misses (may still hit disk)
        self.disk_hits = 0    # L1 misses served by the on-disk store
        self.evictions = 0

    @staticmethod
    def capacity() -> int:
        """Entry cap from ``REPRO_TRACE_CACHE`` (default 6, min 1)."""
        return max(1, int(os.environ.get("REPRO_TRACE_CACHE", "6")))

    def materialize(self, trace: str, seed: int, cap: int, horizon: float,
                    stream: Sequence[int] = ()) -> List[Node]:
        """Nodes of one trace realization, rebuilt from cached arrays.

        ``stream`` extends the RNG label (a federated scenario passes
        the DCI index so same-trace DCIs realize independently); the
        empty stream reproduces the historical single-DCI layout.
        """
        raw = self._raw_for((trace, (seed, *stream), cap, horizon))
        return [Node(i, power, starts, ends, tag=tag)
                for i, (starts, ends, power, tag) in enumerate(raw)]

    def materialize_columns(self, trace: str, seed: int, cap: int,
                            horizon: float,
                            stream: Sequence[int] = ()) -> NodeColumns:
        """One realization as columnar storage (the pool's fast path).

        The flattened :class:`~repro.infra.columns.NodeColumns` form is
        built once per cache entry and shared; each call returns a
        :meth:`~repro.infra.columns.NodeColumns.fresh` per-execution
        instance (immutable interval/offset/power columns zero-copy,
        its own cursor array), so warm executions skip the per-node
        object rebuild entirely.
        """
        key = (trace, (seed, *stream), cap, horizon)
        template = self._columns.get(key)
        if template is None:
            entry = self._entry_for(key)
            if entry.flat is not None:
                template = NodeColumns.from_flat(*entry.flat)
            else:
                template = NodeColumns.from_raw(entry.raw)
            self._columns[key] = template
        else:
            self._entry_for(key)  # LRU touch keeps columns+entry paired
        return template.fresh()

    def materialize_pool(self, trace: str, seed: int, cap: int,
                         horizon: float, stream: Sequence[int] = (),
                         rng: Optional[np.random.Generator] = None
                         ) -> NodePool:
        """A freshly filed :class:`~repro.infra.pool.NodePool` over one
        realization — the ``build_dci`` fast path.

        The t=0 filing of a columns template is deterministic and
        cursor-independent (only the vectorized
        ``NodePool._init_columns`` path qualifies — degenerate traces
        re-file every time), so it is computed once per cache entry and
        restored onto each execution's fresh cursor copy.  The restored
        pool is structurally identical to a freshly filed one — same
        draw-list order, same heaps — so the RNG draw sequence, and
        every fixed-seed golden, is unchanged.
        """
        key = (trace, (seed, *stream), cap, horizon)
        cols = self.materialize_columns(trace, seed, cap, horizon, stream)
        filing = self._filings.get(key)
        if filing is not None:
            return NodePool.from_filing(cols, filing, rng=rng)
        pool = NodePool(cols, rng=rng)
        if pool.vector_filed:
            self._filings[key] = pool.capture_filing()
        return pool

    def _raw_for(self, key: _TraceKey) -> _RawNodes:
        """L1 lookup with LRU accounting (shared by both materializers)."""
        return self._entry_for(key).raw

    def _entry_for(self, key: _TraceKey) -> "_CacheEntry":
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            entry = self._materialize_miss(key)
            while len(self._entries) >= self.capacity():
                evicted, _ = self._entries.popitem(last=False)
                self._columns.pop(evicted, None)
                self._filings.pop(evicted, None)
                self.evictions += 1
            self._entries[key] = entry
        else:
            # LRU: a hit refreshes the entry so hot environments survive
            # campaign sweeps that touch more traces than the cache holds.
            self.hits += 1
            self._entries.move_to_end(key)
        return entry

    def _materialize_miss(self, key: _TraceKey) -> "_CacheEntry":
        """L1 miss: promote from the disk store, else generate + archive.

        Disk promotions stay in the store's flat layout (per-node views
        are only split off lazily, see :class:`_CacheEntry`).  The
        generated arrays are frozen before anything else sees them:
        every execution rebuilt from this entry shares them zero-copy,
        so a mutating consumer must fail loudly.
        """
        trace, (seed, *stream), cap, horizon = key
        store = default_trace_store()
        if store is not None:
            flat = store.load_flat(key)
            if flat is not None:
                self.disk_hits += 1
                return _CacheEntry(flat=flat)
        rng = np.random.default_rng([seed, *stream, 0xACE])
        nodes = get_trace_spec(trace).materialize(rng, horizon, cap)
        raw = [(n.starts, n.ends, n.power, n.tag) for n in nodes]
        for starts, ends, _power, _tag in raw:
            starts.setflags(write=False)
            ends.setflags(write=False)
        if store is not None:
            try:
                store.save(key, raw)
            except OSError:
                pass  # a full/read-only disk must not fail the run
        return _CacheEntry(raw=raw)

    # ------------------------------------------------------------------
    def keys(self) -> List[_TraceKey]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._columns.clear()
        self._filings.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = self.disk_hits = self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def summary(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses "
                f"({self.disk_hits} from disk), "
                f"{self.evictions} evictions, {len(self)} entries "
                f"(cap {self.capacity()})")


    def columns_template(self, trace: str, seed: int, cap: int,
                         horizon: float,
                         stream: Sequence[int] = ()) -> NodeColumns:
        """The *shared immutable* columns template for one realization
        (no per-execution cursor copy) — the assembly cache pins this
        so sweeps larger than the LRU don't thrash templates."""
        key = (trace, (seed, *stream), cap, horizon)
        template = self._columns.get(key)
        if template is None:
            self.materialize_columns(trace, seed, cap, horizon, stream)
            template = self._columns[key]
        return template


#: process-wide cache shared by every runner entry point
TRACE_CACHE = TraceCache()


# ---------------------------------------------------------------------------
# assembly-skeleton cache (per process)
# ---------------------------------------------------------------------------
class _AssemblySkeleton:
    """Everything :meth:`ScenarioHarness.build_dci` can reuse across
    executions of one DCI spec: the resolved server class, the shared
    columns template and the captured t=0 pool filing.  All three are
    execution-independent; only the simulation, the RNGs and the pool
    cursors are fresh per run."""

    __slots__ = ("server_cls", "template", "filing")

    def __init__(self, server_cls, template: NodeColumns,
                 filing: Optional[dict]):
        self.server_cls = server_cls
        self.template = template
        self.filing = filing


class AssemblyCache:
    """Per-process cache of world-assembly skeletons.

    One level above the trace cache's pool-filing cache: keyed by the
    full DCI spec — ``(trace key, middleware, config digest,
    provider)`` — so repeated sweep shards (the same
    ``run_federated`` configuration re-executed across seeds of a
    campaign, or warm bench rounds) skip middleware resolution and the
    trace-cache lookup chain entirely.  Skeletons pin their columns
    template beyond the trace LRU; the map is bounded by the number of
    distinct DCI specs a process touches.
    """

    def __init__(self) -> None:
        self._skeletons: dict = {}
        self.hits = 0
        self.misses = 0

    def skeleton(self, trace: str, seed: int, cap: int, horizon: float,
                 stream: Sequence[int], middleware: str,
                 middleware_config, provider: str) -> _AssemblySkeleton:
        from repro.middleware import resolve_server
        key = (trace, (seed, *stream), cap, horizon,
               middleware.lower(), repr(middleware_config), provider)
        skel = self._skeletons.get(key)
        if skel is not None:
            self.hits += 1
            return skel
        self.misses += 1
        server_cls = resolve_server(middleware)
        template = TRACE_CACHE.columns_template(trace, seed, cap,
                                                horizon, stream)
        probe = NodePool(template.fresh())
        filing = probe.capture_filing() if probe.vector_filed else None
        skel = _AssemblySkeleton(server_cls, template, filing)
        self._skeletons[key] = skel
        return skel

    def clear(self) -> None:
        self._skeletons.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = 0

    def __len__(self) -> int:
        return len(self._skeletons)

    def summary(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses, "
                f"{len(self)} skeletons")


#: process-wide assembly-skeleton cache (see AssemblyCache)
ASSEMBLY_CACHE = AssemblyCache()


# ---------------------------------------------------------------------------
@dataclass
class HarnessDCI:
    """One assembled BE-DCI: server over a node pool + supporting cloud.

    Doubles as a routing target (:mod:`repro.core.routing` reads
    ``name`` and the ``server`` load probes).
    """

    name: str
    server: DGServer
    driver: ComputeDriver
    pool: NodePool


class ScenarioHarness:
    """Builds and drives one simulated world of N DCIs + one SpeQuloS.

    The harness owns the :class:`Simulation` and the DCI registry;
    the SpeQuloS service is created lazily (plain-monitoring baselines
    never pay for one) and automatically connected to every DCI, in
    declaration order.  Entry points remain responsible for their own
    submission streams — the harness provides the shared verbs:
    :meth:`build_dci`/:meth:`add_dci` assembly, :meth:`admit_pooled`
    QoS admission, :meth:`stop_when_complete` watchers, and the
    accounting probes (:meth:`cloud_task_count`, :meth:`workers_peak`).
    """

    def __init__(self, horizon: float,
                 arbiter: Optional[CloudArbiter] = None,
                 scheduler_config: Optional[SchedulerConfig] = None,
                 history=None, pricebook=None):
        self.sim = Simulation(horizon=horizon)
        self.arbiter = arbiter
        self.scheduler_config = scheduler_config
        #: the scenario's history plane: a fresh in-memory archive by
        #: default (bit-identical to the pre-plane behavior), or the
        #: shared persistent plane when the scenario opts in — the
        #: SpeQuloS Information module archives into it and the
        #: Oracle / routers / admission controller read through it
        self.history: HistoryPlane = HistoryPlane.ensure(history)
        #: the scenario's price book (economics plane): None keeps the
        #: paper's uniform exchange rate; the SpeQuloS billing meter
        #: and cost-aware routing read per-provider rates from it
        self.pricebook = pricebook
        self.dcis: "OrderedDict[str, HarnessDCI]" = OrderedDict()
        self._service: Optional[SpeQuloS] = None

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def add_dci(self, name: str, server: DGServer, driver: ComputeDriver,
                pool: Optional[NodePool] = None) -> HarnessDCI:
        """Register pre-built DCI parts (deployment presets build their
        own servers/pools to preserve historical RNG streams)."""
        if name in self.dcis:
            raise ValueError(f"DCI {name!r} already assembled")
        dci = HarnessDCI(name=name, server=server, driver=driver,
                         pool=pool if pool is not None else server.pool)
        self.dcis[name] = dci
        if self._service is not None:
            self._service.connect_dci(name, server, driver)
        return dci

    def build_dci(self, name: str, trace: str, middleware: str, seed: int,
                  cap: int, provider: str = "simulation",
                  stream: Sequence[int] = (),
                  middleware_config: Optional[object] = None) -> HarnessDCI:
        """Assemble one DCI from its declarative description.

        Served from the :data:`ASSEMBLY_CACHE` skeleton for the spec:
        a skeleton hit restores the pool from the captured filing onto
        a fresh cursor copy and constructs the server class directly —
        structurally identical to the uncached path (same draw-list
        order, same RNG streams), just without re-deriving anything.
        """
        skel = ASSEMBLY_CACHE.skeleton(trace, seed, cap, self.sim.horizon,
                                       stream, middleware,
                                       middleware_config, provider)
        rng = np.random.default_rng([seed, *stream, 0xB00])
        if skel.filing is not None:
            pool = NodePool.from_filing(skel.template.fresh(),
                                        skel.filing, rng=rng)
        else:  # degenerate trace: the filing isn't capturable
            pool = TRACE_CACHE.materialize_pool(
                trace, seed, cap, self.sim.horizon, stream, rng=rng)
        server = skel.server_cls(self.sim, pool, config=middleware_config,
                                 name=name)
        driver = get_driver(provider, self.sim,
                            rng=np.random.default_rng([seed, *stream, 0xC10]))
        return self.add_dci(name, server, driver, pool)

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    @property
    def service(self) -> SpeQuloS:
        """The SpeQuloS instance over every DCI (created on first use)."""
        if self._service is None:
            self._service = SpeQuloS(
                self.sim, info=InformationModule(store=self.history),
                arbiter=self.arbiter,
                scheduler_config=self.scheduler_config,
                pricebook=self.pricebook)
            for dci in self.dcis.values():
                self._service.connect_dci(dci.name, dci.server, dci.driver)
        return self._service

    @property
    def has_service(self) -> bool:
        return self._service is not None

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def admit_pooled(self, sub, dci_name: str, combo,
                     pool_id: str) -> str:
        """Admit one tenant submission on a DCI against a shared pool.

        Returns the admission verdict: ``"granted"`` (a pooled QoS
        order is opened), or — when the arbiter carries an
        :class:`~repro.core.admission.AdmissionController` whose
        predicted cost exceeds the pool's uncommitted remainder —
        ``"rejected"`` (no order, the BoT runs best-effort) or
        ``"deferred"`` (the order is retried every ``retry_period``
        until the pool can cover it).  The BoT is registered
        (monitored) and submitted to its BE-DCI in every case.
        """
        service = self.service
        service.register_qos(sub.bot, dci_name, combo,
                             deadline=sub.deadline)
        ctrl = self.arbiter.admission if self.arbiter is not None else None
        verdict = GRANTED
        if ctrl is not None:
            pool = service.credits.get_pool(pool_id)
            env = service.env_key(dci_name, sub.bot.category)
            verdict = ctrl.evaluate(
                sub.bot_id, env, sub.bot.size, pool,
                credits=service.credits,
                provider=self.dcis[dci_name].driver.name).verdict
        if verdict == GRANTED:
            service.order_qos_pooled(sub.bot_id, pool_id)
        elif verdict == DEFERRED:
            self.sim.at(self.sim.now + ctrl.retry_period,
                        self._retry_deferred, sub, dci_name, pool_id)
        self.dcis[dci_name].server.submit_bot(sub.bot, at=self.sim.now)
        return verdict

    def _retry_deferred(self, sub, dci_name: str, pool_id: str) -> None:
        """Re-evaluate a deferred QoS claim; keep retrying until the
        pool covers it, the BoT completes, or the horizon ends."""
        service = self.service
        ctrl = self.arbiter.admission if self.arbiter is not None else None
        if ctrl is None:
            return
        pool = service.credits.get_pool(pool_id)
        if pool is None or pool.closed or service.monitor(sub.bot_id).done:
            return
        env = service.env_key(dci_name, sub.bot.category)
        decision = ctrl.evaluate(sub.bot_id, env, sub.bot.size, pool,
                                 credits=service.credits,
                                 provider=self.dcis[dci_name].driver.name)
        if decision.verdict == GRANTED:
            service.order_qos_pooled(sub.bot_id, pool_id)
        else:
            self.sim.at(self.sim.now + ctrl.retry_period,
                        self._retry_deferred, sub, dci_name, pool_id)

    def schedule_deposits(self, policies):
        """Tick deposit policies over the scenario's virtual time.

        Promotes the one-off deposit helpers into scheduled economics
        objects: each policy (:class:`~repro.economics.deposits.
        AccountTopUp`, :class:`~repro.economics.deposits.PoolTopUp`,
        :class:`~repro.economics.deposits.AllowanceRation`, or
        anything with ``period`` + ``apply(credits, now)``) fires
        every ``period`` simulated seconds against the service's
        credit system.  Returns the started
        :class:`~repro.economics.deposits.DepositSchedule`.
        """
        from repro.economics.deposits import DepositSchedule
        return DepositSchedule(self.sim, self.service.credits,
                               policies).start()

    def stop_when_complete(self, bot_ids: Iterable[str]) -> None:
        """Stop the simulation once every listed BoT has completed.

        One shared watcher is attached to every assembled server, so
        completions count no matter which DCI hosts the BoT.  The stop
        is terminal for the scenario, so a stop hook tears the servers
        down (cancelling dead dispatch wake-up timers) once the event
        loop has exited — transcript-invisible by construction, since
        post-stop events never execute.
        """
        pending = set(bot_ids)
        sim = self.sim

        class _StopWhenAllDone:
            def on_bot_completed(self, bot_id: str, t: float) -> None:
                pending.discard(bot_id)
                if not pending:
                    sim.stop()

        watcher = _StopWhenAllDone()
        for dci in self.dcis.values():
            dci.server.add_observer(watcher)
        sim.add_stop_hook(self._teardown_servers)

    def _teardown_servers(self) -> None:
        for dci in self.dcis.values():
            dci.server.teardown()

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # accounting probes
    # ------------------------------------------------------------------
    def cloud_task_count(self, name: str) -> int:
        """Tasks executed by the DCI's cloud workers.

        Flat/Reschedule cloud assignments are counted by the server;
        Cloud-duplication completions are tracked per coordinator, so
        runs bound to this DCI's server contribute theirs.
        """
        dci = self.dcis[name]
        total = dci.server.stats.cloud_assignments
        if self._service is not None:
            for run in self._service.scheduler.runs.values():
                if run.server is dci.server and run.coordinator is not None:
                    total += run.coordinator.completions
        return total

    def workers_peak(self) -> int:
        """Exact peak of concurrently alive cloud workers, all clouds.

        One delta-sweep over every driver's instance history — the
        number a federation's *global* worker budget is checked
        against (summing per-driver peaks would over-count, since each
        cloud peaks at a different time).
        """
        from repro.cloud.api import peak_concurrency
        return peak_concurrency(inst for dci in self.dcis.values()
                                for inst in dci.driver.instances.values())

    def runs_for_server(self, server: DGServer) -> List:
        """QoS runs bound to one DCI's server (accounting helper)."""
        if self._service is None:
            return []
        return [run for run in self._service.scheduler.runs.values()
                if run.server is server]

    def routing_targets(self) -> List[HarnessDCI]:
        """The DCIs as an ordered routing-target list."""
        return list(self.dcis.values())
