"""Named cloud providers (the set SpeQuloS supports, paper §3.7).

"Thanks to the versatility of the libcloud library, SpeQuloS supports
the following IaaS Cloud technologies: Amazon EC2 and Eucalyptus,
Rackspace, OpenNebula and StratusLab, and Nimbus.  In addition, we have
developed a new driver ... so that SpeQuloS can use Grid5000 as an IaaS
cloud."  Each entry below is a simulated stand-in with a plausible boot
latency; the ``simulation`` provider boots instantly and is what the
evaluation campaigns use (the paper's simulator does not model boot
time either).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cloud.api import ComputeDriver, ProviderProfile
from repro.simulator.engine import Simulation

__all__ = ["PROVIDER_NAMES", "get_driver", "list_providers"]

_PROFILES: Dict[str, ProviderProfile] = {
    p.name: p for p in (
        ProviderProfile("simulation", boot_delay=0.0),
        ProviderProfile("ec2", boot_delay=120.0),
        ProviderProfile("eucalyptus", boot_delay=150.0),
        ProviderProfile("rackspace", boot_delay=180.0),
        ProviderProfile("opennebula", boot_delay=90.0, region="on-site"),
        ProviderProfile("stratuslab", boot_delay=90.0, region="on-site"),
        ProviderProfile("nimbus", boot_delay=120.0, region="sciences"),
        ProviderProfile("grid5000", boot_delay=60.0, power_std=0.0,
                        region="fr", max_instances=200),
    )
}

PROVIDER_NAMES: Tuple[str, ...] = tuple(_PROFILES)


def list_providers() -> List[ProviderProfile]:
    """All known provider profiles."""
    return [_PROFILES[n] for n in PROVIDER_NAMES]


def get_driver(name: str, sim: Simulation,
               rng: Optional[np.random.Generator] = None) -> ComputeDriver:
    """Instantiate a driver for a named provider, libcloud-style."""
    try:
        profile = _PROFILES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown cloud provider {name!r}; available: "
                       f"{', '.join(PROVIDER_NAMES)}") from None
    return ComputeDriver(profile, sim, rng)
