"""Provider-agnostic IaaS compute API (simulated libcloud).

The real SpeQuloS drives heterogeneous clouds through libcloud's
``create_node`` / ``destroy_node`` verbs; the simulation keeps exactly
that surface so the SpeQuloS Scheduler is written against an interface,
not a provider.  A :class:`ComputeDriver` turns virtual money into
:class:`~repro.infra.node.Node` objects that are *stable* (single
``[boot_end, inf)`` availability interval) and typically 3x faster than
the average desktop node (Table 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.infra.node import Node
from repro.simulator.engine import Simulation

__all__ = ["CloudError", "QuotaExceeded", "CloudInstance", "ComputeDriver",
           "ProviderProfile", "peak_concurrency"]

#: Cloud worker node ids live far above trace node ids.
_CLOUD_ID_BASE = 10_000_000
_cloud_id_counter = itertools.count(_CLOUD_ID_BASE)


class CloudError(RuntimeError):
    """Base class for cloud API failures."""


class QuotaExceeded(CloudError):
    """The provider refused to start more instances."""


@dataclass(frozen=True)
class ProviderProfile:
    """Static characteristics of one simulated provider."""

    name: str
    #: seconds from create_node to the worker accepting tasks
    boot_delay: float
    #: worker power distribution (nops/s); Table 2: clouds ~ N(3000, 300)
    power_mean: float = 3000.0
    power_std: float = 300.0
    #: provider-side cap on simultaneously running instances
    max_instances: int = 10_000
    #: descriptive only — deployment accounting (Table 5 flavour)
    region: str = "eu-west"
    #: on-demand list price in credits per CPU·hour (the paper's
    #: uniform §3.3 rate unless a profile overrides it); scenario
    #: price books may override per provider without touching profiles
    price_per_cpu_hour: float = 15.0
    #: optional spot-tier list price (None: provider quotes on-demand
    #: for spot requests); a scenario's PriceBook can instead attach a
    #: time-varying spot trace (repro.economics.pricing.spot_rate)
    spot_price_per_cpu_hour: Optional[float] = None


@dataclass
class CloudInstance:
    """A running (or booting) cloud worker instance."""

    instance_id: int
    provider: str
    node: Node
    created_at: float
    boot_end: float
    destroyed_at: Optional[float] = None
    meta: Dict[str, str] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.destroyed_at is None

    def cpu_seconds(self, now: float) -> float:
        """Billable lifetime so far (creation to destruction/now)."""
        end = self.destroyed_at if self.destroyed_at is not None else now
        return max(0.0, end - self.created_at)


class ComputeDriver:
    """Simulated libcloud driver bound to one provider and simulation.

    Subclass-free by design: provider differences are data
    (:class:`ProviderProfile`), matching how libcloud drivers differ
    mostly in endpoints and flavours.  The registry instantiates one
    driver per named provider.
    """

    def __init__(self, profile: ProviderProfile, sim: Simulation,
                 rng: Optional[np.random.Generator] = None):
        self.profile = profile
        self.sim = sim
        self.rng = rng or np.random.default_rng(0)
        self.instances: Dict[int, CloudInstance] = {}
        #: maintained count of alive instances (``destroyed_at`` is
        #: only ever set by :meth:`destroy_node`, so the counter cannot
        #: drift from the ``alive`` scan it replaces)
        self._running = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def price_per_cpu_hour(self) -> float:
        """The provider's on-demand list price (credits/CPU·h).

        A scenario's :class:`~repro.economics.pricing.PriceBook` may
        quote a different effective rate; this is the profile default
        the book falls back to when seeded from profiles.
        """
        return self.profile.price_per_cpu_hour

    def running_count(self) -> int:
        return self._running

    def create_node(self, tag: str = "", **meta: str) -> CloudInstance:
        """Start one instance; the node accepts work after boot_delay.

        Raises :class:`QuotaExceeded` beyond the provider cap.
        """
        if self._running >= self.profile.max_instances:
            raise QuotaExceeded(
                f"{self.name}: quota of {self.profile.max_instances} reached")
        now = self.sim.now
        boot_end = now + self.profile.boot_delay
        power = float(max(50.0, self.rng.normal(self.profile.power_mean,
                                                self.profile.power_std))
                      if self.profile.power_std > 0
                      else self.profile.power_mean)
        node = Node.stable(next(_cloud_id_counter), power, start=boot_end,
                           tag=tag or self.name)
        inst = CloudInstance(instance_id=node.node_id, provider=self.name,
                             node=node, created_at=now, boot_end=boot_end,
                             meta=dict(meta))
        self.instances[inst.instance_id] = inst
        self._running += 1
        return inst

    def destroy_node(self, inst: CloudInstance) -> None:
        """Terminate an instance (idempotent)."""
        if inst.instance_id not in self.instances:
            raise CloudError(f"unknown instance {inst.instance_id}")
        if inst.destroyed_at is None:
            inst.destroyed_at = self.sim.now
            self._running -= 1

    def list_nodes(self, alive_only: bool = True) -> List[CloudInstance]:
        out = list(self.instances.values())
        if alive_only:
            out = [i for i in out if i.alive]
        return out

    def total_cpu_hours(self) -> float:
        """Billable CPU·hours across all instances ever started."""
        now = self.sim.now
        return sum(i.cpu_seconds(now) for i in self.instances.values()) / 3600.0

    def peak_concurrency(self) -> int:
        """Max simultaneously alive instances over the driver's history.

        The number arbitration worker budgets are checked against; a
        federation computes its *global* peak by passing every
        driver's instances to :func:`peak_concurrency` in one call
        (per-driver peaks happen at different times, so summing them
        would over-count).
        """
        return peak_concurrency(self.instances.values())


def peak_concurrency(instances: "Iterable[CloudInstance]") -> int:
    """Peak simultaneously alive instances over any instance set.

    Sweeps the create/destroy deltas; still-alive instances count to
    the end of the history.
    """
    deltas: List[Tuple[float, int]] = []
    for inst in instances:
        deltas.append((inst.created_at, 1))
        if inst.destroyed_at is not None:
            deltas.append((inst.destroyed_at, -1))
    peak = cur = 0
    for _t, delta in sorted(deltas):
        cur += delta
        peak = max(peak, cur)
    return peak
