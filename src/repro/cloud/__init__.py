"""Simulated IaaS cloud substrate.

SpeQuloS provisions *Cloud workers* — virtual instances running the
desktop-grid worker software — through the libcloud library, which
unifies access to EC2, Eucalyptus, Rackspace, OpenNebula, StratusLab,
Nimbus and Grid'5000 (paper §3.7).  This package mirrors that stack in
simulation: a provider-agnostic :class:`~repro.cloud.api.ComputeDriver`
interface, a registry of named providers with realistic boot latencies,
and the worker-side agents implementing the three deployment strategies
of §3.5 (Flat / Reschedule / Cloud duplication).
"""

from repro.cloud.api import CloudError, CloudInstance, ComputeDriver, QuotaExceeded
from repro.cloud.registry import PROVIDER_NAMES, get_driver, list_providers
from repro.cloud.worker import (
    CloudDuplicationCoordinator,
    CloudWorkerHandle,
    RescheduleAgent,
)

__all__ = [
    "CloudError",
    "CloudInstance",
    "ComputeDriver",
    "QuotaExceeded",
    "PROVIDER_NAMES",
    "get_driver",
    "list_providers",
    "CloudWorkerHandle",
    "RescheduleAgent",
    "CloudDuplicationCoordinator",
]
