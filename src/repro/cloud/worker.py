"""Cloud-worker deployment strategies (paper §3.5: F / R / D).

* **Flat** needs no agent: the SpeQuloS Scheduler registers the cloud
  node directly with the DG server's pool
  (:meth:`~repro.middleware.base.DGServer.add_cloud_node`) where it
  competes with regular workers.
* **Reschedule** uses :class:`RescheduleAgent`: the cloud worker asks
  the (patched) DG server for work and is served pending tasks first,
  then duplicates of running tasks.
* **Cloud duplication** uses :class:`CloudDuplicationCoordinator`: a
  dedicated cloud-side server receives copies of every uncompleted
  task, stable cloud workers burn through them FCFS, and results are
  merged back (first completion on either side wins).

All three paths share :class:`CloudWorkerHandle`, the Scheduler-side
record used for billing and idle detection.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.cloud.api import CloudInstance
from repro.infra.node import Node
from repro.middleware.base import DGServer, GTID
from repro.simulator.engine import Simulation

__all__ = ["CloudWorkerHandle", "RescheduleAgent",
           "CloudDuplicationCoordinator"]


class CloudWorkerHandle:
    """Scheduler-side view of one provisioned cloud worker."""

    __slots__ = ("instance", "deploy_mode", "agent", "billed_busy",
                 "stopped", "ever_assigned", "last_busy", "ledger_index")

    def __init__(self, instance: CloudInstance, deploy_mode: str):
        self.instance = instance
        self.deploy_mode = deploy_mode
        self.agent: Optional[object] = None
        #: busy CPU-seconds already billed to the Credit System
        self.billed_busy = 0.0
        self.stopped = False
        self.ever_assigned = False
        #: last instant the worker was observed computing (idle-release)
        self.last_busy = instance.boot_end
        #: slot in the owning run's HandleLedger (set on launch);
        #: billing attrs above are mirrored there — mutate via the ledger
        self.ledger_index = -1

    @property
    def node(self) -> Node:
        return self.instance.node


class RescheduleAgent:
    """Worker-side loop of the Reschedule strategy.

    On every idle notification the agent asks the server for a unit via
    :meth:`~repro.middleware.base.DGServer.fetch_for_cloud`; the server
    serves pending work first and duplicates running work otherwise.
    When the server has nothing useful the agent reports starvation
    through ``on_starved`` (the Scheduler stops and unbills the worker,
    §3.5's Greedy release rule).
    """

    def __init__(self, sim: Simulation, server: DGServer, node: Node,
                 on_work: Optional[Callable[[], None]] = None,
                 on_starved: Optional[Callable[["RescheduleAgent"], None]] = None):
        self.sim = sim
        self.server = server
        self.node = node
        self.active = True
        self.units_fetched = 0
        self._on_work = on_work
        self._on_starved = on_starved
        server.register_idle_callback(node, self._try_fetch)

    def start(self) -> None:
        """Begin fetching as soon as the instance has booted."""
        boot = max(self.sim.now, float(self.node.starts[0]))
        self.sim.at(boot, self._try_fetch)

    def _try_fetch(self) -> None:
        if not self.active or self.server.is_busy(self.node):
            return
        unit = self.server.fetch_for_cloud(self.node)
        if unit is not None:
            self.units_fetched += 1
            if self._on_work is not None:
                self._on_work()
        else:
            if self._on_starved is not None:
                self._on_starved(self)

    def stop(self) -> None:
        """Detach from the server; a running unit still completes."""
        self.active = False
        self.server.unregister_idle_callback(self.node)


class CloudDuplicationCoordinator:
    """Cloud-side dedicated server of the Cloud-duplication strategy.

    Holds copies of the BoT's uncompleted tasks in a FCFS queue
    (pending-on-DG tasks first, then duplicates of running ones, which
    is the order :meth:`sync` discovers them in).  Cloud workers
    execute copies to completion — they are stable, so there is no
    failure handling — and completions are merged into the DG server
    via ``external_complete``.  Symmetrically, tasks that the BE-DCI
    completes first are dropped from the queue lazily.
    """

    def __init__(self, sim: Simulation, server: DGServer, bot_id: str,
                 on_starved: Optional[Callable[["CloudDuplicationCoordinator",
                                                Node], None]] = None):
        self.sim = sim
        self.server = server
        self.bot_id = bot_id
        self.queue: Deque[GTID] = deque()
        self.queued: set[GTID] = set()
        self.running: Dict[int, GTID] = {}   # node_id -> gtid
        self.workers: List[Node] = []
        self.completions = 0
        self._on_starved = on_starved
        self._synced = False
        self._busy_acc: Dict[int, float] = {}
        self._busy_since: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Copy every uncompleted task of the BoT to the cloud queue.

        Called when the strategy triggers (and on later refreshes); only
        enqueues tasks not already queued or running here.  Pending-
        before-running order comes from the DG server's bookkeeping:
        tasks never assigned sort first.
        """
        fresh = 0
        gtids = self.server.uncompleted_gtids(self.bot_id)
        never_assigned = [g for g in gtids
                          if self.server.tasks[g].first_assign_time is None]
        assigned = [g for g in gtids
                    if self.server.tasks[g].first_assign_time is not None]
        for gtid in never_assigned + assigned:
            if gtid in self.queued or gtid in self.running.values():
                continue
            self.queue.append(gtid)
            self.queued.add(gtid)
            fresh += 1
        self._synced = True
        return fresh

    def add_worker(self, node: Node) -> None:
        self.workers.append(node)
        boot = max(self.sim.now, float(node.starts[0]))
        self.sim.at(boot, self._feed, node)

    def remove_worker(self, node: Node) -> None:
        if node in self.workers:
            self.workers.remove(node)

    # ------------------------------------------------------------------
    def _feed(self, node: Node) -> None:
        """Hand the next useful copy to an idle cloud worker."""
        if node not in self.workers or node.node_id in self.running:
            return
        while self.queue:
            gtid = self.queue.popleft()
            self.queued.discard(gtid)
            st = self.server.tasks.get(gtid)
            if st is None or st.done:
                continue  # the BE-DCI finished it first
            self.running[node.node_id] = gtid
            self._busy_since[node.node_id] = self.sim.now
            duration = st.task.duration_on(node.power)
            self.sim.schedule(duration, self._finish, node, gtid)
            return
        if self._on_starved is not None:
            self._on_starved(self, node)

    def _finish(self, node: Node, gtid: GTID) -> None:
        self.running.pop(node.node_id, None)
        since = self._busy_since.pop(node.node_id, None)
        if since is not None:
            acc = self._busy_acc.get(node.node_id, 0.0)
            self._busy_acc[node.node_id] = acc + (self.sim.now - since)
        news = self.server.external_complete(gtid, self.sim.now)
        if news:
            self.completions += 1
        self._feed(node)

    def busy(self, node: Node) -> bool:
        return node.node_id in self.running

    def busy_seconds(self, node: Node) -> float:
        """CPU seconds this worker spent on copies (billing basis)."""
        total = self._busy_acc.get(node.node_id, 0.0)
        since = self._busy_since.get(node.node_id)
        if since is not None:
            total += self.sim.now - since
        return total

    def usage_of(self, node_ids: List[int], now: float
                 ) -> "tuple[List[float], List[bool]]":
        """Bulk ``(busy_seconds, busy)`` snapshot for the billing scan.

        Same per-id arithmetic as :meth:`busy_seconds`/:meth:`busy`, one
        call instead of two per handle per tick.
        """
        acc = self._busy_acc
        since = self._busy_since
        running = self.running
        # straight-bytecode comprehensions (see DGServer.cloud_usage_of)
        totals = [
            (acc[nid] if nid in acc else 0.0) + (now - since[nid])
            if nid in since
            else (acc[nid] if nid in acc else 0.0)
            for nid in node_ids]
        busy = [nid in running for nid in node_ids]
        return totals, busy

    def backlog(self) -> int:
        """Copies still waiting for a cloud worker."""
        return len(self.queue)
