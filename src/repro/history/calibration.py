"""α calibration and the ±20 % prediction-success criterion (§3.4).

The Oracle predicts ``tp = α · tc(r) / r``; ``α`` is calibrated per
execution environment from archived history "to minimize the average
difference between the predicted time and the completion times
actually observed".  Both functions are pure statistics over history
data, so they live in the history plane rather than the Oracle — the
Oracle (and the figure builders, and the learning report) import them
from here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["SUCCESS_TOLERANCE", "fit_alpha", "prediction_success"]

#: tolerance of the success criterion (§3.4: "± 20% tolerance")
SUCCESS_TOLERANCE = 0.20


def fit_alpha(base_predictions: Sequence[float],
              actuals: Sequence[float]) -> float:
    """Least-absolute-error scale factor.

    Minimizes ``sum_i |alpha * p_i - a_i|`` exactly: the optimum is the
    weighted median of the ratios ``a_i / p_i`` with weights ``p_i``
    (the derivative of the objective changes sign there).  Returns 1.0
    with no usable history, as the paper initializes α.
    """
    p = np.asarray(list(base_predictions), dtype=float)
    a = np.asarray(list(actuals), dtype=float)
    mask = np.isfinite(p) & np.isfinite(a) & (p > 0) & (a > 0)
    p, a = p[mask], a[mask]
    if p.size == 0:
        return 1.0
    ratios = a / p
    order = np.argsort(ratios)
    ratios, weights = ratios[order], p[order]
    cum = np.cumsum(weights)
    idx = int(np.searchsorted(cum, cum[-1] / 2.0))
    return float(ratios[min(idx, ratios.size - 1)])


def prediction_success(predicted: float, actual: float,
                       tolerance: float = SUCCESS_TOLERANCE) -> bool:
    """§3.4 criterion: actual within [80 %, 120 %] of the prediction."""
    if predicted <= 0:
        return False
    return (1 - tolerance) * predicted <= actual <= (1 + tolerance) * predicted
