"""Execution-history records and archive backends.

The production SpeQuloS keeps BoT execution history in MySQL; the
reproduction archives, per finished execution, the completion-time
grid ``tc(x)`` for ``x = 1%..100%`` plus the task count, makespan and
credits spent, under an *environment key* (BE-DCI, middleware, BoT
category — ``"<dci>//<CATEGORY>"``).

Two process-local backends live here — an in-memory store (the default
for simulations) and a plain SQLite store (``:memory:`` or a file
path).  The cross-run *persistent* backend with code-fingerprint
salting is :class:`repro.history.persistent.PersistentHistoryStore`.
All of them implement the same :class:`HistoryStore` interface, so the
:class:`~repro.history.plane.HistoryPlane` (and through it the Oracle)
does not care which one it reads.
"""

from __future__ import annotations

import json
import math
import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Protocol

import numpy as np

__all__ = ["GRID_FRACTIONS", "ExecutionRecord", "HistoryStore",
           "InMemoryHistoryStore", "SQLiteHistoryStore", "env_key_of",
           "migrate_provider_column", "split_env_key", "tc_grid"]

#: percent grid on which execution history archives tc(x)
GRID_FRACTIONS = np.arange(1, 101) / 100.0


def tc_grid(completion_times: List[float], total: int) -> np.ndarray:
    """``tc(x)`` for x = 1%..100% (NaN where not yet reached)."""
    out = np.full(100, np.nan)
    n = len(completion_times)
    for i, frac in enumerate(GRID_FRACTIONS):
        k = max(1, math.ceil(frac * total))
        if k <= n:
            out[i] = completion_times[k - 1]
    return out


def env_key_of(dci: str, category: str) -> str:
    """History bucket: same BE-DCI + same BoT category (§4.3.3 fits α
    per trace, middleware and category; the DCI name is expected to
    identify trace + middleware)."""
    return f"{dci}//{category}"


def split_env_key(env_key: str) -> tuple:
    """``(dci, category)`` halves of an environment key."""
    dci, _, category = env_key.rpartition("//")
    return dci, category


@dataclass(frozen=True)
class ExecutionRecord:
    """Archived summary of one finished BoT execution.

    ``grid[i]`` is ``tc((i+1)/100)`` — elapsed seconds when (i+1) % of
    the BoT had completed — NaN-padded if the grid was truncated.
    ``credits_spent`` is what the execution's QoS order billed (0 for
    plain-monitoring runs); the admission controller's predicted cost
    comes from it.  ``provider`` is the environment key's *provider
    dimension*: the cloud that supplemented the execution ("" for
    plain-monitoring or pre-economics records), so learned credit
    costs can be split per cloud under heterogeneous price books.
    """

    env_key: str
    n_tasks: int
    makespan: float
    grid: np.ndarray
    credits_spent: float = 0.0
    provider: str = ""

    def tc_at(self, fraction: float) -> float:
        """tc(fraction) looked up on the percent grid (nearest cell)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        idx = min(99, max(0, int(round(fraction * 100)) - 1))
        return float(self.grid[idx])


class HistoryStore(Protocol):
    """Interface shared by archive backends."""

    def add(self, rec: ExecutionRecord) -> None: ...

    def fetch(self, env_key: str) -> List[ExecutionRecord]: ...

    def env_keys(self) -> List[str]: ...

    def __len__(self) -> int: ...


def encode_grid(grid: np.ndarray) -> str:
    """JSON form of a tc grid (NaN cells as nulls) for SQLite backends."""
    return json.dumps([None if np.isnan(v) else float(v) for v in grid])


def migrate_provider_column(conn: sqlite3.Connection) -> None:
    """Add the provider column to a pre-economics ``executions`` table.

    ``CREATE TABLE IF NOT EXISTS`` leaves an existing archive's schema
    untouched, so databases created before the provider dimension need
    the column grafted on (old rows read back as provider "").
    """
    cols = [row[1] for row in
            conn.execute("PRAGMA table_info(executions)").fetchall()]
    if "provider" not in cols:
        conn.execute("ALTER TABLE executions "
                     "ADD COLUMN provider TEXT NOT NULL DEFAULT ''")


def decode_grid(grid_json: str) -> np.ndarray:
    return np.array([np.nan if v is None else v
                     for v in json.loads(grid_json)])


class InMemoryHistoryStore:
    """Dict-of-lists archive; the default for simulations."""

    def __init__(self) -> None:
        self._data: Dict[str, List[ExecutionRecord]] = {}
        self._count = 0

    def add(self, rec: ExecutionRecord) -> None:
        self._data.setdefault(rec.env_key, []).append(rec)
        self._count += 1

    def fetch(self, env_key: str) -> List[ExecutionRecord]:
        return list(self._data.get(env_key, ()))

    def fetch_rates(self, env_key: str) -> List[tuple]:
        """(n_tasks, makespan) pairs only — the throughput probes run
        per routing decision and never need the grids."""
        return [(rec.n_tasks, rec.makespan)
                for rec in self._data.get(env_key, ())]

    def env_keys(self) -> List[str]:
        return sorted(self._data)

    def __len__(self) -> int:
        return self._count


class SQLiteHistoryStore:
    """SQLite-backed archive (``:memory:`` or a file path)."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS executions (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        env_key TEXT NOT NULL,
        n_tasks INTEGER NOT NULL,
        makespan REAL NOT NULL,
        grid TEXT NOT NULL,
        credits_spent REAL NOT NULL DEFAULT 0.0,
        provider TEXT NOT NULL DEFAULT ''
    );
    CREATE INDEX IF NOT EXISTS idx_env ON executions (env_key);
    """

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.executescript(self._SCHEMA)
        migrate_provider_column(self._conn)
        self._conn.commit()

    def add(self, rec: ExecutionRecord) -> None:
        self._conn.execute(
            "INSERT INTO executions "
            "(env_key, n_tasks, makespan, grid, credits_spent, provider) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (rec.env_key, rec.n_tasks, rec.makespan,
             encode_grid(rec.grid), rec.credits_spent, rec.provider))
        self._conn.commit()

    def fetch(self, env_key: str) -> List[ExecutionRecord]:
        rows = self._conn.execute(
            "SELECT env_key, n_tasks, makespan, grid, credits_spent, "
            "provider FROM executions WHERE env_key = ? ORDER BY id",
            (env_key,)).fetchall()
        return [ExecutionRecord(env, n, mk, decode_grid(grid_json),
                                spent, provider)
                for env, n, mk, grid_json, spent, provider in rows]

    def fetch_rates(self, env_key: str) -> List[tuple]:
        """(n_tasks, makespan) pairs without decoding the grids."""
        rows = self._conn.execute(
            "SELECT n_tasks, makespan FROM executions "
            "WHERE env_key = ? ORDER BY id", (env_key,)).fetchall()
        return [(int(n), float(mk)) for n, mk in rows]

    def env_keys(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT env_key FROM executions ORDER BY env_key")
        return [r[0] for r in rows.fetchall()]

    def __len__(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM executions").fetchone()
        return int(n)

    def close(self) -> None:
        self._conn.close()
