"""The history plane: execution history as a first-class subsystem.

The paper's Information module (§3.2) archives every QoS execution so
the Oracle's α-calibrated predictions (§3.4) improve with use.  This
package owns that archive end to end:

* :mod:`repro.history.records` — the :class:`ExecutionRecord` unit,
  the ``tc(x)`` percent grid, environment keys, and the process-local
  backends (in-memory, plain SQLite);
* :mod:`repro.history.persistent` — the cross-run SQLite backend next
  to the campaign store, salted with the code fingerprint so stale
  history orphans itself like stale campaign results;
* :mod:`repro.history.calibration` — ``fit_alpha`` and the ±20 %
  ``prediction_success`` criterion (pure statistics over history);
* :mod:`repro.history.plane` — the :class:`HistoryPlane` query façade
  every consumer reads through: the Oracle (α, success rates,
  residuals), the routers (smoothed throughput, learned affinities)
  and the admission controller (predicted credit cost).

``open_history_plane`` maps a scenario's declarative ``history`` knob
(None/"memory" → fresh in-memory, "persistent" → the shared archive)
to a plane instance.
"""

from __future__ import annotations

from typing import Optional

from repro.history.calibration import (
    SUCCESS_TOLERANCE,
    fit_alpha,
    prediction_success,
)
from repro.history.persistent import (
    PersistentHistoryStore,
    default_history_path,
)
from repro.history.plane import EnvSummary, HistoryPlane
from repro.history.records import (
    GRID_FRACTIONS,
    ExecutionRecord,
    HistoryStore,
    InMemoryHistoryStore,
    SQLiteHistoryStore,
    env_key_of,
    split_env_key,
    tc_grid,
)

__all__ = [
    "GRID_FRACTIONS",
    "SUCCESS_TOLERANCE",
    "EnvSummary",
    "ExecutionRecord",
    "HISTORY_MODES",
    "HistoryPlane",
    "HistoryStore",
    "InMemoryHistoryStore",
    "PersistentHistoryStore",
    "SQLiteHistoryStore",
    "default_history_path",
    "env_key_of",
    "fit_alpha",
    "open_history_plane",
    "prediction_success",
    "split_env_key",
    "tc_grid",
]

#: declarative history modes a scenario config may name
HISTORY_MODES = ("memory", "persistent")


def open_history_plane(mode: Optional[str] = None,
                       path: Optional[str] = None) -> HistoryPlane:
    """Plane for a declarative history mode.

    ``None`` or ``"memory"`` opens a fresh in-memory plane (the
    default — simulations stay pure functions of their config);
    ``"persistent"`` opens the shared cross-run archive (``path``
    overrides its location, else ``REPRO_HISTORY`` / the campaign
    store directory).
    """
    if mode is None or mode == "memory":
        return HistoryPlane()
    if mode == "persistent":
        return HistoryPlane(PersistentHistoryStore(path))
    raise ValueError(f"unknown history mode {mode!r}; available: "
                     f"{', '.join(HISTORY_MODES)}")
