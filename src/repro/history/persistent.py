"""Cross-run persistent history archive.

The paper's Information module archives *every* QoS execution so the
Oracle's α-calibrated predictions improve with use (§3.2, §3.4); the
in-memory store forgets everything between processes, so every
simulated deployment used to start cold.  This backend persists the
archive in SQLite next to the campaign result store
(``benchmarks/.campaign_store/history.sqlite``, override with
``REPRO_HISTORY``) and shares its staleness machinery:

* **code-fingerprint salting** — every record carries the
  :func:`repro.campaign.store.code_fingerprint` salt of the code that
  produced it; :meth:`fetch` only returns records whose salt matches
  the current code, so editing simulation semantics silently orphans
  stale history exactly like it orphans stale campaign results.
  :meth:`gc` reclaims the orphaned rows (``repro history gc``).
* **content-digest idempotence** — re-archiving an identical record
  (same env, salt and payload) is a no-op, so reports that replay a
  cached campaign into the archive do not grow it without bound.
* **pruning policies** beyond salt GC — :meth:`PersistentHistoryStore.
  prune` enforces per-environment record caps (keep the newest N) and
  age-out (drop records older than D days); surfaced as ``repro
  history gc --max-per-env N --max-age-days D``.

Imports of the campaign store happen at call time: the campaign
package sits *above* the core/history layers in the import graph, so
importing it at module load would be circular.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import time
from typing import Dict, List, Optional, Tuple

from repro.history.records import (
    ExecutionRecord,
    decode_grid,
    encode_grid,
    migrate_provider_column,
)

__all__ = ["PersistentHistoryStore", "default_history_path"]


def default_history_path() -> str:
    """``REPRO_HISTORY`` or ``history.sqlite`` next to the campaign
    result store (gitignored; CI persists the directory between runs)."""
    env = os.environ.get("REPRO_HISTORY")
    if env:
        return env
    from repro.campaign.store import default_store_path
    return os.path.join(os.path.dirname(default_store_path()),
                        "history.sqlite")


def _current_salt() -> str:
    from repro.campaign.store import _code_salt
    return _code_salt()


def _record_digest(rec: ExecutionRecord, salt: str) -> str:
    body = "|".join((rec.env_key, salt, str(rec.n_tasks),
                     repr(rec.makespan), encode_grid(rec.grid),
                     repr(rec.credits_spent), rec.provider))
    return hashlib.sha256(body.encode()).hexdigest()


class PersistentHistoryStore:
    """Salted, idempotent SQLite archive shared across processes."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS executions (
        id INTEGER PRIMARY KEY AUTOINCREMENT,
        digest TEXT NOT NULL UNIQUE,
        env_key TEXT NOT NULL,
        salt TEXT NOT NULL,
        n_tasks INTEGER NOT NULL,
        makespan REAL NOT NULL,
        grid TEXT NOT NULL,
        credits_spent REAL NOT NULL DEFAULT 0.0,
        provider TEXT NOT NULL DEFAULT '',
        created_at REAL NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_hist_env ON executions (env_key, salt);
    """

    def __init__(self, path: Optional[str] = None,
                 salt: Optional[str] = None):
        self.path = path or default_history_path()
        parent = os.path.dirname(self.path)
        if self.path != ":memory:" and parent:
            os.makedirs(parent, exist_ok=True)
        self._salt = salt or _current_salt()
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(self._SCHEMA)
        migrate_provider_column(self._conn)
        self._conn.commit()

    # -------------------------------------------------- HistoryStore API
    def add(self, rec: ExecutionRecord) -> None:
        self._conn.execute(
            "INSERT OR IGNORE INTO executions "
            "(digest, env_key, salt, n_tasks, makespan, grid, "
            "credits_spent, provider, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (_record_digest(rec, self._salt), rec.env_key, self._salt,
             rec.n_tasks, rec.makespan, encode_grid(rec.grid),
             rec.credits_spent, rec.provider, time.time()))
        self._conn.commit()

    def fetch(self, env_key: str) -> List[ExecutionRecord]:
        rows = self._conn.execute(
            "SELECT env_key, n_tasks, makespan, grid, credits_spent, "
            "provider FROM executions WHERE env_key = ? AND salt = ? "
            "ORDER BY id",
            (env_key, self._salt)).fetchall()
        return [ExecutionRecord(env, n, mk, decode_grid(grid_json),
                                spent, provider)
                for env, n, mk, grid_json, spent, provider in rows]

    def fetch_rates(self, env_key: str) -> List[Tuple[int, float]]:
        """(n_tasks, makespan) pairs without decoding the grids — the
        routing probes call this once per target per decision."""
        rows = self._conn.execute(
            "SELECT n_tasks, makespan FROM executions "
            "WHERE env_key = ? AND salt = ? ORDER BY id",
            (env_key, self._salt)).fetchall()
        return [(int(n), float(mk)) for n, mk in rows]

    def env_keys(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT env_key FROM executions WHERE salt = ? "
            "ORDER BY env_key", (self._salt,))
        return [r[0] for r in rows.fetchall()]

    def __len__(self) -> int:
        (n,) = self._conn.execute(
            "SELECT COUNT(*) FROM executions WHERE salt = ?",
            (self._salt,)).fetchone()
        return int(n)

    # ------------------------------------------------------- maintenance
    def gc(self, vacuum: bool = True) -> Tuple[int, int]:
        """Drop records whose salt no longer matches the current code.

        Stale records are unreachable anyway (every fetch filters on
        the current salt); GC reclaims their space.  Returns
        ``(rows, grid_bytes)`` reclaimed.
        """
        (rows, nbytes) = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(LENGTH(grid)), 0) "
            "FROM executions WHERE salt != ?", (self._salt,)).fetchone()
        if rows:
            self._conn.execute("DELETE FROM executions WHERE salt != ?",
                               (self._salt,))
            self._conn.commit()
            if vacuum:
                self._conn.execute("VACUUM")
        return int(rows), int(nbytes)

    def prune(self, max_per_env: Optional[int] = None,
              max_age_days: Optional[float] = None,
              now: Optional[float] = None,
              vacuum: bool = True) -> Tuple[int, int]:
        """Archive pruning beyond salt GC: per-env caps and age-out.

        ``max_per_env`` keeps only the *newest* N current-salt records
        of every environment (the EWMA throughput and α calibrations
        weight recent records anyway, so dropping the oldest loses the
        least information); ``max_age_days`` drops current-salt records
        archived more than D days ago (wall-clock ``created_at``).
        Stale-salt records are untouched — :meth:`gc` owns those.
        Returns ``(rows, grid_bytes)`` reclaimed.
        """
        if max_per_env is not None and max_per_env < 1:
            raise ValueError("max_per_env must be >= 1 or None")
        if max_age_days is not None and max_age_days <= 0:
            raise ValueError("max_age_days must be positive or None")
        # one WHERE clause shared by the accounting SELECT and the
        # DELETE — condition subqueries, not materialized id lists,
        # so a large prune never hits SQLite's host-parameter limit
        conditions = []
        params: list = []
        if max_age_days is not None:
            cutoff = (now if now is not None else time.time()) \
                - max_age_days * 86400.0
            conditions.append("(salt = ? AND created_at < ?)")
            params += [self._salt, cutoff]
        if max_per_env is not None:
            conditions.append(
                "id IN (SELECT id FROM ("
                "  SELECT id, ROW_NUMBER() OVER ("
                "    PARTITION BY env_key ORDER BY id DESC) AS rn "
                "  FROM executions WHERE salt = ?) WHERE rn > ?)")
            params += [self._salt, max_per_env]
        if not conditions:
            return 0, 0
        where = " OR ".join(conditions)
        (rows, nbytes) = self._conn.execute(
            f"SELECT COUNT(*), COALESCE(SUM(LENGTH(grid)), 0) "
            f"FROM executions WHERE {where}", params).fetchone()
        if not rows:
            return 0, 0
        self._conn.execute(
            f"DELETE FROM executions WHERE {where}", params)
        self._conn.commit()
        if vacuum:
            self._conn.execute("VACUUM")
        return int(rows), int(nbytes)

    def breakdown(self) -> Dict[str, Dict[str, int]]:
        """Record counts per environment key, split current/stale salt."""
        out: Dict[str, Dict[str, int]] = {}
        rows = self._conn.execute(
            "SELECT env_key, salt = ?, COUNT(*) FROM executions "
            "GROUP BY env_key, salt = ? ORDER BY env_key",
            (self._salt, self._salt)).fetchall()
        for env, current, count in rows:
            bucket = out.setdefault(env, {"current": 0, "stale": 0})
            bucket["current" if current else "stale"] += int(count)
        return out

    def stale_count(self) -> int:
        (n,) = self._conn.execute(
            "SELECT COUNT(*) FROM executions WHERE salt != ?",
            (self._salt,)).fetchone()
        return int(n)

    def file_bytes(self) -> int:
        """On-disk size of the database (0 for in-memory stores)."""
        if self.path == ":memory:" or not os.path.exists(self.path):
            return 0
        return os.path.getsize(self.path)

    def close(self) -> None:
        self._conn.close()
