"""The history plane: one query surface over the execution archive.

The Information module's archive used to be a bare store that only the
Oracle read, one process at a time.  The :class:`HistoryPlane` promotes
it to a first-class subsystem: a thin façade over any
:class:`~repro.history.records.HistoryStore` backend (in-memory by
default, :class:`~repro.history.persistent.PersistentHistoryStore` for
cross-run learning) plus the derived queries every consumer needs —

* the Oracle: per-environment α calibration, ±20 % success rates and
  α residuals (§3.4);
* the routers: smoothed per-DCI throughput estimates and per-category
  slowdown summaries (load probes fed by history instead of
  instantaneous counts, learned category→DCI affinities);
* the admission controller: predicted credit cost of a declared BoT
  from the environment's archived spend per task.

Environment keys are ``"<dci>//<CATEGORY>"`` (the DCI name identifies
trace + middleware); DCI-level queries aggregate over every category
bucket of one DCI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.history.calibration import fit_alpha, prediction_success
from repro.history.records import (
    ExecutionRecord,
    HistoryStore,
    InMemoryHistoryStore,
    env_key_of,
    tc_grid,
)

__all__ = ["EnvSummary", "HistoryPlane"]

#: completion fraction whose tc defines the ideal time (§2.2)
_IDEAL_FRACTION = 0.9


@dataclass(frozen=True)
class EnvSummary:
    """Per-environment archive digest (``repro history stats``)."""

    env_key: str
    records: int
    mean_makespan: float
    #: smoothed sustained rate, tasks per hour
    throughput_per_hour: float
    #: mean tail slowdown (makespan / ideal time), NaN if undefined
    mean_slowdown: float
    #: mean ideal/makespan — the fraction of an execution during which
    #: the DCI delivered its steady-state rate (1.0 = no tail)
    availability: float
    #: mean credits billed per task, the admission cost basis
    cost_per_task: float


class HistoryPlane:
    """Pluggable-backend archive plus the query API consumers share."""

    def __init__(self, backend: Optional[HistoryStore] = None,
                 smoothing: float = 0.3):
        self.backend: HistoryStore = (backend if backend is not None
                                      else InMemoryHistoryStore())
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        #: EWMA factor for the throughput estimates (1.0 = last record)
        self.smoothing = smoothing

    @classmethod
    def ensure(cls, obj) -> "HistoryPlane":
        """Coerce a plane / backend / None into a plane."""
        if isinstance(obj, cls):
            return obj
        return cls(backend=obj)

    # ------------------------------------------------------------ store
    def add(self, rec: ExecutionRecord) -> None:
        self.backend.add(rec)

    def fetch(self, env_key: str) -> List[ExecutionRecord]:
        return self.backend.fetch(env_key)

    def env_keys(self) -> List[str]:
        return self.backend.env_keys()

    def __len__(self) -> int:
        return len(self.backend)

    def archive(self, env_key: str, monitor,
                credits_spent: float = 0.0,
                provider: str = "") -> ExecutionRecord:
        """Archive a finished :class:`~repro.core.info.BoTMonitor`.

        ``provider`` is the environment's provider dimension — the
        cloud that supplemented the execution — so archived credit
        costs can be learned per cloud (heterogeneous price books).
        """
        if not monitor.done:
            raise ValueError("cannot archive an unfinished execution")
        rec = ExecutionRecord(
            env_key=env_key, n_tasks=monitor.total,
            makespan=monitor.completion_times[-1],
            grid=tc_grid(monitor.completion_times, monitor.total),
            credits_spent=credits_spent, provider=provider)
        self.backend.add(rec)
        return rec

    def gc(self, vacuum: bool = True) -> Tuple[int, int]:
        """Reclaim stale-salt records when the backend supports it."""
        gc = getattr(self.backend, "gc", None)
        if gc is None:
            return 0, 0
        return gc(vacuum=vacuum)

    # ------------------------------------------------------ tc(x) grids
    def grids(self, env_key: str) -> np.ndarray:
        """Stacked per-execution ``tc(x)`` grids, shape (k, 100)."""
        history = self.fetch(env_key)
        if not history:
            return np.empty((0, 100))
        return np.vstack([rec.grid for rec in history])

    def makespans(self, env_key: str) -> np.ndarray:
        return np.asarray([rec.makespan for rec in self.fetch(env_key)])

    # ------------------------------------------------------ calibration
    def alpha(self, env_key: str, fraction: float) -> Tuple[float, int]:
        """Calibrated α for an environment at a completion ratio.

        Uses every archived execution of the environment: base
        prediction ``p_i = tc_i(fraction) / fraction``, actual
        ``a_i = makespan_i``.  Returns ``(1.0, 0)`` cold.
        """
        history = self.fetch(env_key)
        if not history:
            return 1.0, 0
        p = [rec.tc_at(fraction) / fraction for rec in history]
        a = [rec.makespan for rec in history]
        return fit_alpha(p, a), len(history)

    def success_rate(self, env_key: str, fraction: float,
                     alpha: float) -> float:
        """Historical ±20 % success rate of α-scaled predictions."""
        history = self.fetch(env_key)
        if not history:
            return float("nan")
        hits = 0
        used = 0
        for rec in history:
            base = rec.tc_at(fraction)
            if not math.isfinite(base) or base <= 0:
                continue
            used += 1
            if prediction_success(alpha * base / fraction, rec.makespan):
                hits += 1
        return hits / used if used else float("nan")

    def alpha_residuals(self, env_key: str, fraction: float,
                        alpha: Optional[float] = None) -> np.ndarray:
        """Signed errors ``a_i - α·p_i`` of the calibrated predictions.

        ``alpha=None`` fits it from the same records first.  Entries
        with an unusable base prediction are dropped.
        """
        history = self.fetch(env_key)
        if not history:
            return np.empty(0)
        if alpha is None:
            alpha, _ = self.alpha(env_key, fraction)
        out = []
        for rec in history:
            base = rec.tc_at(fraction)
            if not math.isfinite(base) or base <= 0:
                continue
            out.append(rec.makespan - alpha * base / fraction)
        return np.asarray(out)

    # ------------------------------------------- throughput / slowdown
    def _rate_pairs(self, env_key: str) -> List[Tuple[int, float]]:
        """(n_tasks, makespan) pairs, skipping grid decodes when the
        backend offers the cheap projection (SQL backends do)."""
        getter = getattr(self.backend, "fetch_rates", None)
        if getter is not None:
            return getter(env_key)
        return [(rec.n_tasks, rec.makespan)
                for rec in self.fetch(env_key)]

    def _ewma_rate(self, pairs) -> Optional[float]:
        """EWMA of per-record sustained rates (tasks/second)."""
        estimate = None
        for n_tasks, makespan in pairs:
            if makespan <= 0:
                continue
            rate = n_tasks / makespan
            estimate = rate if estimate is None else (
                self.smoothing * rate + (1 - self.smoothing) * estimate)
        return estimate

    def throughput(self, env_key: str) -> Optional[float]:
        """Smoothed sustained rate (tasks/second) of an environment.

        EWMA over the archive in insertion order, so recent executions
        dominate — a DCI that degraded shows it without an operator
        resetting anything.  None with no usable history.
        """
        return self._ewma_rate(self._rate_pairs(env_key))

    def dci_throughput(self, dci: str) -> Optional[float]:
        """Smoothed rate over every category bucket of one DCI,
        weighted by each bucket's record count.  Runs per routing
        decision on the history-fed policies, so it only touches the
        (n_tasks, makespan) projection — grids stay un-decoded.
        """
        total_weight = 0
        acc = 0.0
        prefix = f"{dci}//"
        for env_key in self.env_keys():
            if not env_key.startswith(prefix):
                continue
            pairs = self._rate_pairs(env_key)
            est = self._ewma_rate(pairs)
            if est is None:
                continue
            acc += est * len(pairs)
            total_weight += len(pairs)
        if total_weight == 0:
            return None
        return acc / total_weight

    def mean_slowdown(self, env_key: str) -> Optional[float]:
        """Mean tail slowdown (makespan over ``tc(0.9)/0.9``) archived
        for an environment; None without usable records."""
        vals = []
        for rec in self.fetch(env_key):
            ideal = rec.tc_at(_IDEAL_FRACTION) / _IDEAL_FRACTION
            if math.isfinite(ideal) and ideal > 0 and rec.makespan > 0:
                vals.append(rec.makespan / ideal)
        if not vals:
            return None
        return float(np.mean(vals))

    def dci_slowdown(self, dci: str, category: str) -> Optional[float]:
        return self.mean_slowdown(env_key_of(dci, category))

    # ------------------------------------------------- admission basis
    def cost_per_task(self, env_key: str,
                      provider: Optional[str] = None) -> Optional[float]:
        """Mean credits billed per task in this environment.

        ``provider`` selects the environment's provider dimension:
        records from that cloud — plus untagged legacy records, which
        are provider-agnostic — enter the mean, while records tagged
        with *other* clouds are excluded (learned costs are per-cloud:
        the same DCI supplemented from a pricier provider predicts
        pricier).  A provider the bucket has never seen falls back to
        the all-provider mean, mirroring the optimistic cold-start of
        α = 1.
        """
        history = self.fetch(env_key)
        if provider is not None:
            filtered = [rec for rec in history
                        if rec.provider == provider or not rec.provider]
            if filtered:
                history = filtered
        pairs = [(rec.credits_spent, rec.n_tasks)
                 for rec in history if rec.n_tasks > 0]
        if not pairs:
            return None
        return float(np.mean([spent / n for spent, n in pairs]))

    def predicted_cost(self, env_key: str, n_tasks: int,
                       provider: Optional[str] = None) -> Optional[float]:
        """Predicted credit cost of a declared BoT, or None cold."""
        per_task = self.cost_per_task(env_key, provider=provider)
        if per_task is None:
            return None
        return per_task * n_tasks

    def provider_costs(self) -> Dict[str, Tuple[int, float]]:
        """Per-cloud cost learning across every environment:
        ``{provider: (records, mean credits per task)}`` over records
        carrying a provider tag (``repro history stats`` prints it)."""
        acc: Dict[str, List[float]] = {}
        for env_key in self.env_keys():
            for rec in self.fetch(env_key):
                if rec.provider and rec.n_tasks > 0:
                    acc.setdefault(rec.provider, []).append(
                        rec.credits_spent / rec.n_tasks)
        return {provider: (len(vals), float(np.mean(vals)))
                for provider, vals in sorted(acc.items())}

    # --------------------------------------------------------- summary
    def summarize(self, env_key: str) -> EnvSummary:
        history = self.fetch(env_key)
        makespans = [rec.makespan for rec in history]
        slowdown = self.mean_slowdown(env_key)
        rate = self.throughput(env_key)
        cost = self.cost_per_task(env_key)
        return EnvSummary(
            env_key=env_key,
            records=len(history),
            mean_makespan=float(np.mean(makespans)) if makespans
            else float("nan"),
            throughput_per_hour=3600.0 * rate if rate is not None
            else float("nan"),
            mean_slowdown=slowdown if slowdown is not None
            else float("nan"),
            availability=1.0 / slowdown if slowdown else float("nan"),
            cost_per_task=cost if cost is not None else float("nan"))

    def summary(self) -> Dict[str, EnvSummary]:
        """Every environment's digest, key-sorted."""
        return {env: self.summarize(env) for env in self.env_keys()}
