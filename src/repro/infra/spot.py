"""Amazon EC2 spot-instance market model and the paper's bid ladder.

Paper §4.1.1 builds the ``spot10`` / ``spot100`` traces from the EC2
``c1.large`` price history (Jan–Mar 2011) with this strategy: to spend a
constant total of ``S`` dollars per hour, place persistent bids at
prices ``S/i`` for ``i = 1..n``.  Bid *i* runs an instance whenever the
market price is at most ``S/i``, so the number of live instances at
price ``p`` is ``floor(S/p)`` and the total spend is ``floor(S/p)*p <=
S``.  A price spike therefore terminates the *top of the ladder at
once* — spot traces exhibit correlated mass failures, unlike the
independent churn of desktop grids.  That correlation is the behaviour
the experiments exercise, and the model below preserves it.

The price history itself is not redistributable, so we synthesize it:
a mean-reverting log-price (Ornstein–Uhlenbeck in log space) pinned
above a reserve floor, plus a Poisson process of demand spikes with
log-uniform magnitude and bounded duration.  Defaults are calibrated so
the ladder statistics match Table 2 (spot10: mean ~82 instances,
min 29, max 87; spot100: mean ~824, min 196, max 877).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.infra.node import Node

__all__ = ["SpotMarket", "spot_intervals", "ladder_counts"]


@dataclass(frozen=True)
class SpotMarketParams:
    """Calibration of the synthetic price process (dollars, seconds).

    The price is piecewise constant: it holds a level for an
    exponentially distributed time (EC2 spot prices of the 2011 era
    moved in steps lasting hours), then jumps to a fresh level drawn
    log-normally around ``base`` and clamped at the reserve ``floor``.
    Independent demand spikes push the price to several times ``base``
    for bounded windows — these are what terminate the whole top of a
    bid ladder at once.
    """

    floor: float = 0.114        # reserve price: caps the ladder at S/floor
    base: float = 0.118         # typical quiet-market price
    sigma: float = 0.030        # log-price dispersion of fresh levels
    hold_mean: float = 3600.0   # mean holding time of a price level (s)
    step: float = 300.0         # rasterization grid of the series (s)
    spike_rate: float = 1.0 / (86400.0 * 2.0)  # ~1 spike every 2 days
    spike_levels: tuple[float, float] = (0.25, 0.52)  # absolute $ range
    spike_duration: tuple[float, float] = (1800.0, 14400.0)  # 30 min – 4 h


class SpotMarket:
    """Synthetic spot price series on a fixed grid.

    The series is generated once over ``[0, horizon)`` with step
    ``params.step`` and shared by every bid of the ladder, which is what
    couples instance terminations together.
    """

    def __init__(self, rng: np.random.Generator, horizon: float,
                 params: SpotMarketParams | None = None):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.params = params or SpotMarketParams()
        p = self.params
        n = int(math.ceil(horizon / p.step)) + 1
        self.times = np.arange(n) * p.step
        self.prices = self._generate(rng, n)
        self.horizon = float(horizon)

    def _generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        p = self.params
        horizon = n * p.step
        # Piecewise-constant quiet-market level: exponential holding
        # times, fresh log-normal levels around base.
        n_epochs = max(4, int(horizon / p.hold_mean * 2) + 8)
        holds = rng.exponential(p.hold_mean, n_epochs)
        while holds.sum() < horizon:  # pragma: no cover - margin covers
            holds = np.concatenate([holds,
                                    rng.exponential(p.hold_mean, n_epochs)])
        levels = p.base * np.exp(rng.normal(0.0, p.sigma, holds.shape[0]))
        epochs = np.concatenate([[0.0], np.cumsum(holds)])
        grid = np.arange(n) * p.step
        idx = np.searchsorted(epochs, grid, side="right") - 1
        price = levels[np.clip(idx, 0, levels.shape[0] - 1)]
        # Demand spikes: price jumps to a high level for a bounded window.
        n_spikes = rng.poisson(p.spike_rate * horizon)
        for _ in range(n_spikes):
            t0 = rng.random() * horizon
            dur = rng.uniform(*p.spike_duration)
            level = rng.uniform(*p.spike_levels)
            i0 = int(t0 / p.step)
            i1 = min(n, int((t0 + dur) / p.step) + 1)
            price[i0:i1] = np.maximum(price[i0:i1], level)
        return np.maximum(price, p.floor)

    # ------------------------------------------------------------------
    def price_at(self, t: float) -> float:
        """Market price at time ``t`` (step function)."""
        i = min(int(t / self.params.step), self.prices.shape[0] - 1)
        return float(self.prices[i])

    def instance_counts(self, budget: float) -> np.ndarray:
        """``floor(budget / price)`` over the grid — the ladder size."""
        return np.floor(budget / self.prices).astype(int)


def ladder_counts(market: SpotMarket, budget: float) -> np.ndarray:
    """Live-instance count series for a budget-S bid ladder."""
    return market.instance_counts(budget)


def spot_intervals(market: SpotMarket, budget: float,
                   max_instances: int | None = None) -> List[tuple[np.ndarray, np.ndarray]]:
    """Availability intervals of every bid slot of the ladder.

    Bid slot ``i`` (1-based) is live while ``price <= budget / i``.
    Returns one ``(starts, ends)`` pair per slot, slots ordered from the
    most robust (i=1, dies only at extreme prices) to the most fragile.

    ``max_instances`` optionally truncates the ladder (used to cap
    simulation size); the truncation keeps the *most fragile* end
    realistic by dropping only slots beyond the cap.
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    n_max = int(budget / market.params.floor)
    if max_instances is not None:
        n_max = min(n_max, max_instances)
    step = market.params.step
    out: List[tuple[np.ndarray, np.ndarray]] = []
    prices = market.prices
    n_grid = prices.shape[0]
    for i in range(1, n_max + 1):
        live = prices <= (budget / i)
        if not live.any():
            out.append((np.empty(0), np.empty(0)))
            continue
        # Run-length encode the boolean series into intervals.
        d = np.diff(live.astype(np.int8))
        starts_idx = np.flatnonzero(d == 1) + 1
        ends_idx = np.flatnonzero(d == -1) + 1
        if live[0]:
            starts_idx = np.concatenate(([0], starts_idx))
        if live[-1]:
            ends_idx = np.concatenate((ends_idx, [n_grid]))
        starts = starts_idx * step
        ends = np.minimum(ends_idx * step, market.horizon)
        keep = ends > starts
        out.append((starts[keep], ends[keep]))
    return out


def spot_nodes(rng: np.random.Generator, market: SpotMarket, budget: float,
               power_mean: float, power_std: float,
               max_instances: int | None = None, tag: str = "spot",
               id_offset: int = 0) -> List[Node]:
    """Materialize the bid ladder as :class:`Node` objects."""
    intervals = spot_intervals(market, budget, max_instances)
    n = len(intervals)
    if power_std > 0:
        powers = np.maximum(rng.normal(power_mean, power_std, n), 50.0)
    else:
        powers = np.full(n, power_mean)
    nodes = []
    for i, (s, e) in enumerate(intervals):
        nodes.append(Node(id_offset + i, float(powers[i]), s, e, tag=tag))
    return nodes
