"""Interval-set algebra helpers (sorted, disjoint [start, end) arrays).

Small two-pointer routines shared by the trace generators: the
Grid'5000 model intersects per-node renewal schedules with day/night
participation windows, and trace statistics need interval overlap
counts.  All functions take and return parallel ``(starts, ends)``
NumPy arrays that are sorted and pairwise disjoint.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["intersect", "total_length", "validate"]

Arr = np.ndarray


def validate(starts: Arr, ends: Arr) -> None:
    """Raise ValueError unless (starts, ends) is a valid interval set."""
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    if starts.shape != ends.shape:
        raise ValueError("starts/ends shape mismatch")
    if starts.size == 0:
        return
    if not np.all(ends > starts):
        raise ValueError("empty or inverted interval present")
    if not np.all(starts[1:] >= ends[:-1]):
        raise ValueError("intervals overlap or are unsorted")


def total_length(starts: Arr, ends: Arr) -> float:
    """Sum of interval lengths."""
    if len(starts) == 0:
        return 0.0
    return float(np.sum(np.asarray(ends) - np.asarray(starts)))


def intersect(s1: Arr, e1: Arr, s2: Arr, e2: Arr) -> Tuple[Arr, Arr]:
    """Intersection of two interval sets (two-pointer merge)."""
    out_s: list[float] = []
    out_e: list[float] = []
    i = j = 0
    n1, n2 = len(s1), len(s2)
    while i < n1 and j < n2:
        lo = max(s1[i], s2[j])
        hi = min(e1[i], e2[j])
        if hi > lo:
            out_s.append(float(lo))
            out_e.append(float(hi))
        # advance whichever interval ends first
        if e1[i] <= e2[j]:
            i += 1
        else:
            j += 1
    return np.asarray(out_s), np.asarray(out_e)
