"""Interval-set algebra helpers (sorted, disjoint [start, end) arrays).

Small two-pointer routines shared by the trace generators: the
Grid'5000 model intersects per-node renewal schedules with day/night
participation windows, and trace statistics need interval overlap
counts.  All functions take and return parallel ``(starts, ends)``
NumPy arrays that are sorted and pairwise disjoint.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["intersect", "intersect_scalar", "total_length", "validate"]

Arr = np.ndarray


def validate(starts: Arr, ends: Arr) -> None:
    """Raise ValueError unless (starts, ends) is a valid interval set."""
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    if starts.shape != ends.shape:
        raise ValueError("starts/ends shape mismatch")
    if starts.size == 0:
        return
    if not np.all(ends > starts):
        raise ValueError("empty or inverted interval present")
    if not np.all(starts[1:] >= ends[:-1]):
        raise ValueError("intervals overlap or are unsorted")


def total_length(starts: Arr, ends: Arr) -> float:
    """Sum of interval lengths."""
    if len(starts) == 0:
        return 0.0
    return float(np.sum(np.asarray(ends) - np.asarray(starts)))


def intersect(s1: Arr, e1: Arr, s2: Arr, e2: Arr) -> Tuple[Arr, Arr]:
    """Intersection of two interval sets.

    Vectorized pair enumeration: interval ``i`` of the first set
    overlaps exactly the second-set slice ``[lo_i, hi_i)`` where
    ``lo_i`` is the first ``j`` with ``e2[j] > s1[i]`` and ``hi_i`` the
    first with ``s2[j] >= e1[i]`` (both sets are sorted and disjoint,
    so the overlap region is one contiguous run).  Emits the same
    ``(max(start), min(end))`` floats in the same order as the
    historical two-pointer merge (:func:`intersect_scalar`) — only the
    enumeration is batched.
    """
    s1 = np.asarray(s1, dtype=float)
    e1 = np.asarray(e1, dtype=float)
    s2 = np.asarray(s2, dtype=float)
    e2 = np.asarray(e2, dtype=float)
    if s1.size == 0 or s2.size == 0:
        return np.empty(0), np.empty(0)
    lo = np.searchsorted(e2, s1, side="right")
    hi = np.searchsorted(s2, e1, side="left")
    counts = hi - lo
    np.maximum(counts, 0, out=counts)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0), np.empty(0)
    i = np.repeat(np.arange(s1.shape[0]), counts)
    # concatenated ranges lo[i]..hi[i): a ramp minus each row's offset
    offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
    j = np.arange(total) - np.repeat(offsets - lo, counts)
    out_s = np.maximum(s1[i], s2[j])
    out_e = np.minimum(e1[i], e2[j])
    return out_s, out_e


def intersect_scalar(s1: Arr, e1: Arr, s2: Arr, e2: Arr) -> Tuple[Arr, Arr]:
    """Two-pointer reference for :func:`intersect` (kept for property
    tests pinning the vectorized path float-for-float)."""
    out_s: list[float] = []
    out_e: list[float] = []
    i = j = 0
    n1, n2 = len(s1), len(s2)
    while i < n1 and j < n2:
        lo = max(s1[i], s2[j])
        hi = min(e1[i], e2[j])
        if hi > lo:
            out_s.append(float(lo))
            out_e.append(float(hi))
        # advance whichever interval ends first
        if e1[i] <= e2[j]:
            i += 1
        else:
            j += 1
    return np.asarray(out_s), np.asarray(out_e)
