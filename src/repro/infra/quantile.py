"""Piecewise log-linear quantile functions.

Table 2 of the paper publishes availability / unavailability *duration
quartiles* for every BE-DCI trace.  To synthesize traces that honour
those quartiles exactly we sample durations through an explicit
quantile function built from the published points:

* the quantile function passes through (0.25, Q1), (0.50, Q2),
  (0.75, Q3) exactly;
* below Q1 it extends log-linearly down to a floor ``q_min``
  (default Q1/4, clamped to >= 1 s);
* above Q3 it extends log-linearly up to ``q_max = Q3 * tail_factor``,
  giving a controllable heavy upper tail.  The tail matters: Grid'5000
  best-effort availability has a sub-minute *median* but hour-long free
  windows at night, and without those windows long tasks would never
  complete (see DESIGN.md §3.2).

Interpolation is linear in (u, log d) space, i.e. between two anchor
quantiles the distribution is log-uniform — a neutral choice that keeps
all three quartiles exact no matter the tail parameters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["PiecewiseLogQuantile"]


class PiecewiseLogQuantile:
    """Sampler for positive durations matching given quartiles.

    Parameters
    ----------
    quartiles:
        (Q1, Q2, Q3) of the target duration distribution, seconds.
    tail_factor:
        ``q_max = Q3 * tail_factor`` is the maximum sampled duration.
    floor_factor:
        ``q_min = max(1, Q1 * floor_factor)`` is the minimum.
    """

    def __init__(self, quartiles: Sequence[float], tail_factor: float = 40.0,
                 floor_factor: float = 0.25):
        q1, q2, q3 = (float(q) for q in quartiles)
        if not (0 < q1 <= q2 <= q3):
            raise ValueError(f"quartiles must be positive and sorted: {quartiles}")
        if tail_factor < 1.0:
            raise ValueError("tail_factor must be >= 1")
        if not (0 < floor_factor <= 1.0):
            raise ValueError("floor_factor must be in (0, 1]")
        q_min = max(1.0, q1 * floor_factor)
        q_max = q3 * tail_factor
        # Guard against degenerate anchor sets (all quartiles equal).
        eps = 1e-9
        self._u = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        self._logq = np.log(np.maximum.accumulate(
            np.array([q_min, q1, q2 + eps, q3 + 2 * eps, q_max + 3 * eps])))
        self.quartiles = (q1, q2, q3)
        self.q_min = q_min
        self.q_max = q_max

    # ------------------------------------------------------------------
    def ppf(self, u: np.ndarray) -> np.ndarray:
        """Quantile function: map uniforms in [0,1] to durations."""
        u = np.asarray(u, dtype=float)
        if np.any((u < 0) | (u > 1)):
            raise ValueError("u must lie in [0, 1]")
        return np.exp(np.interp(u, self._u, self._logq))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` durations."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return self.ppf(rng.random(size))

    def mean(self, n: int = 20001) -> float:
        """Numerical mean of the distribution (trapezoid over the ppf)."""
        u = np.linspace(0.0, 1.0, n)
        return float(np.trapezoid(self.ppf(u), u))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        q1, q2, q3 = self.quartiles
        return (f"PiecewiseLogQuantile(Q1={q1:.0f}, Q2={q2:.0f}, Q3={q3:.0f}, "
                f"max={self.q_max:.0f})")
