"""Columnar (struct-of-arrays) storage for one trace realization.

A 10^5-host realization as :class:`~repro.infra.node.Node` objects
costs one Python object, two array headers and a per-node validation
pass per host — rebuilt for *every* execution sharing the realization.
:class:`NodeColumns` stores the whole realization as five flat arrays:

* ``starts`` / ``ends`` — every node's availability intervals,
  concatenated in node-id order;
* ``offsets`` — ``int64[n+1]``; node ``i`` owns the slice
  ``starts[offsets[i]:offsets[i+1]]``;
* ``power`` — ``float64[n]`` computing speeds;
* ``cursor`` — ``int64[n]`` per-node scan cursors (absolute flat
  indices), the only mutable column.

The interval arrays, offsets and powers are immutable and shared
zero-copy across executions (they are validated once, in
:meth:`NodeColumns.from_raw`); :meth:`NodeColumns.fresh` hands each
execution its own cursor array — the per-execution cost of "rebuild
all nodes" collapses to one ``offsets[:-1].copy()``.

:class:`ColumnNode` is a flyweight view over one column index exposing
the :class:`~repro.infra.node.Node` API (``node_id``, ``power``,
``interval_at``, ``next_available``...), so the middleware cannot tell
the two apart.  The :class:`~repro.infra.pool.NodePool` goes further
and keeps plain ``int`` indices in its draw lists, materializing a
view only for the node it actually hands out.

Cursor semantics match ``Node._advance`` exactly: monotone ``t``
queries move the cursor to the first interval whose end exceeds ``t``.
Trace nodes are never cloud workers, so ``ColumnNode.cloud`` is always
False (cloud workers stay :class:`~repro.infra.node.Node` objects).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["NodeColumns", "ColumnNode"]


class NodeColumns:
    """One trace realization as struct-of-arrays (see module docstring)."""

    __slots__ = ("n", "starts", "ends", "offsets", "power", "tags",
                 "cursor")

    def __init__(self, starts: np.ndarray, ends: np.ndarray,
                 offsets: np.ndarray, power: np.ndarray,
                 tags: Tuple[str, ...], cursor: np.ndarray):
        self.n = len(offsets) - 1
        self.starts = starts
        self.ends = ends
        self.offsets = offsets
        self.power = power
        self.tags = tags
        self.cursor = cursor

    # ------------------------------------------------------------------
    @classmethod
    def from_raw(cls, raw: Sequence[Tuple[np.ndarray, np.ndarray,
                                          float, str]]) -> "NodeColumns":
        """Build the immutable template from per-node raw arrays.

        ``raw`` is the trace cache's entry format:
        ``[(starts, ends, power, tag), ...]`` in node-id order.  The
        intervals are validated once here (positive-length, sorted,
        non-overlapping per node) instead of once per node per
        execution.
        """
        n = len(raw)
        offsets = np.zeros(n + 1, dtype=np.int64)
        power = np.empty(n, dtype=np.float64)
        if n:
            np.cumsum([s.shape[0] for s, _e, _p, _t in raw],
                      out=offsets[1:])
            counts_e = np.fromiter((e.shape[0] for _s, e, _p, _t in raw),
                                   dtype=np.int64, count=n)
            if not np.array_equal(np.diff(offsets), counts_e):
                raise ValueError("starts and ends must have identical "
                                 "shapes")
            power[:] = np.fromiter((p for _s, _e, p, _t in raw),
                                   dtype=np.float64, count=n)
            if not np.all(power > 0):
                bad = float(power[np.argmax(~(power > 0))])
                raise ValueError(f"node power must be positive, got {bad}")
        total = int(offsets[-1])
        if total:
            starts = np.concatenate([s for s, _e, _p, _t in raw])
            ends = np.concatenate([e for _s, e, _p, _t in raw])
            starts = np.ascontiguousarray(starts, dtype=np.float64)
            ends = np.ascontiguousarray(ends, dtype=np.float64)
        else:
            starts = np.empty(0, dtype=np.float64)
            ends = np.empty(0, dtype=np.float64)
        tags = tuple(tag for _s, _e, _p, tag in raw)
        return cls._seal(starts, ends, offsets, power, tags)

    @classmethod
    def from_flat(cls, starts: np.ndarray, ends: np.ndarray,
                  offsets: np.ndarray, power: np.ndarray,
                  tags: Sequence[str]) -> "NodeColumns":
        """Build the template from already-flat arrays, zero-copy.

        This is the trace store's on-disk layout (``starts``/``ends``/
        ``bounds``/``powers``/``tags``), so a store hit skips both the
        per-node view split and the re-concatenation: the mmap-backed
        arrays become the columns directly.  Validation is the same
        vectorized pass as :meth:`from_raw`.
        """
        starts = np.ascontiguousarray(starts, dtype=np.float64)
        ends = np.ascontiguousarray(ends, dtype=np.float64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        power = np.ascontiguousarray(power, dtype=np.float64)
        if starts.shape != ends.shape:
            raise ValueError("starts and ends must have identical shapes")
        if len(power) and not np.all(power > 0):
            bad = float(power[np.argmax(~(power > 0))])
            raise ValueError(f"node power must be positive, got {bad}")
        return cls._seal(starts, ends, offsets, power, tuple(tags))

    @classmethod
    def _seal(cls, starts: np.ndarray, ends: np.ndarray,
              offsets: np.ndarray, power: np.ndarray,
              tags: Tuple[str, ...]) -> "NodeColumns":
        """Shared interval validation + freeze for both constructors."""
        total = int(offsets[-1])
        if total:
            if not np.all(ends > starts):
                raise ValueError("intervals must be positive-length")
            # sortedness within each node: every adjacent pair must
            # satisfy starts[k+1] >= ends[k] except across node borders
            gap_ok = starts[1:] >= ends[:-1]
            borders = offsets[1:-1] - 1  # last interval index per node
            gap_ok[borders[(borders >= 0) & (borders < total - 1)]] = True
            if not np.all(gap_ok):
                raise ValueError("intervals must be sorted and "
                                 "non-overlapping")
        for arr in (starts, ends, offsets, power):
            arr.setflags(write=False)
        return cls(starts, ends, offsets, power, tags,
                   cursor=offsets[:-1].copy())

    def fresh(self) -> "NodeColumns":
        """A per-execution instance: shared immutable columns, own cursor."""
        return NodeColumns(self.starts, self.ends, self.offsets,
                           self.power, self.tags,
                           cursor=self.offsets[:-1].copy())

    # ------------------------------------------------------------------
    # per-node scans (i is the node id; t must be non-decreasing)
    # ------------------------------------------------------------------
    def advance(self, i: int, t: float) -> int:
        """Move node ``i``'s cursor to its first interval with end > t."""
        ends = self.ends
        cursor = self.cursor
        cur = cursor[i]
        hi = self.offsets[i + 1]
        while cur < hi and ends[cur] <= t:
            cur += 1
        cursor[i] = cur
        return cur

    def interval_at(self, i: int, t: float
                    ) -> Optional[Tuple[float, float]]:
        """The availability interval of node ``i`` containing ``t``."""
        cur = self.advance(i, t)
        if cur < self.offsets[i + 1] and self.starts[cur] <= t:
            return (float(self.starts[cur]), float(self.ends[cur]))
        return None

    def next_available(self, i: int, t: float
                       ) -> Optional[Tuple[float, float]]:
        """First interval of node ``i`` with end > t (current or next)."""
        cur = self.advance(i, t)
        if cur >= self.offsets[i + 1]:
            return None
        return (float(self.starts[cur]), float(self.ends[cur]))

    # ------------------------------------------------------------------
    def first_interval(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ids, start, end) of every node's first interval.

        Nodes without intervals are excluded — used by the pool's
        vectorized initial filing.
        """
        first = self.offsets[:-1]
        ids = np.flatnonzero(first < self.offsets[1:])
        return ids, self.starts[first[ids]], self.ends[first[ids]]

    def view(self, i: int) -> "ColumnNode":
        return ColumnNode(self, i)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NodeColumns n={self.n} "
                f"intervals={self.starts.shape[0]}>")


class ColumnNode:
    """Flyweight `Node`-API view over one :class:`NodeColumns` index.

    Created lazily by the pool for the node it hands to the middleware;
    cheap scalar state (``power``, ``tag``) is bound at construction,
    interval scans delegate to the shared columns (so the cursor is the
    column cursor — one view per (columns, id) pair must be reused,
    which the pool's view cache guarantees).
    """

    __slots__ = ("_cols", "node_id", "power", "tag")

    #: trace nodes are never cloud workers
    cloud = False

    def __init__(self, cols: NodeColumns, i: int):
        self._cols = cols
        self.node_id = int(i)
        self.power = float(cols.power[i])
        self.tag = cols.tags[i]

    # -- Node API ------------------------------------------------------
    @property
    def starts(self) -> np.ndarray:
        o = self._cols.offsets
        return self._cols.starts[o[self.node_id]:o[self.node_id + 1]]

    @property
    def ends(self) -> np.ndarray:
        o = self._cols.offsets
        return self._cols.ends[o[self.node_id]:o[self.node_id + 1]]

    def interval_at(self, t: float) -> Optional[Tuple[float, float]]:
        return self._cols.interval_at(self.node_id, t)

    def available_at(self, t: float) -> bool:
        return self._cols.interval_at(self.node_id, t) is not None

    def next_available(self, t: float) -> Optional[Tuple[float, float]]:
        return self._cols.next_available(self.node_id, t)

    def availability_fraction(self, until: float) -> float:
        if until <= 0:
            return 0.0
        starts, ends = self.starts, self.ends
        clipped = np.clip(ends, None, until) - np.clip(starts, None, until)
        total = float(np.sum(np.maximum(clipped, 0.0)))
        return total / until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ColumnNode {self.node_id} power={self.power:.0f} "
                f"intervals={self.starts.shape[0]}>")
