"""Best-effort Grid availability model (Grid'5000 Gantt substitution).

Paper §4.1.1: "a node is available in Best Effort Grid traces when it
does not compute regular tasks" — the authors derived ``g5klyo`` and
``g5kgre`` from the December-2010 Gantt utilization charts of the Lyon
and Grenoble clusters.  Cluster utilization has two time scales:

* *fast churn* — regular jobs start and finish continuously, so a
  best-effort slot lives seconds-to-minutes (Table 2's quartiles:
  median 51 s on Lyon!);
* *slow tides* — nights and week-ends leave large parts of the cluster
  free, which is why the available-node count swings between 6 and 226
  on Lyon (mean 90.6, std 105.4 — larger than the mean).

We model the fast churn with the same quartile-fitted alternating
renewal process as desktop grids, and the slow tide with a sinusoidal
*participation gate*: node ``i`` of ``N`` only participates while
``gate(t) >= i/N`` where ``gate`` oscillates with a one-day period.
Intersecting the two interval sets reproduces both scales without any
proprietary data.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.infra import intervals as iv
from repro.infra.node import Node
from repro.infra.renewal import RenewalTraceGenerator

__all__ = ["GanttTraceGenerator", "gate_windows"]


def gate_windows(threshold: float, period: float, phase: float,
                 horizon: float, depth: float = 1.0,
                 base: float = 0.5) -> tuple[np.ndarray, np.ndarray]:
    """Time windows where ``base + (depth/2)*sin(2*pi*t/period + phase)``
    exceeds ``threshold``.

    Returns a sorted disjoint interval set over [0, horizon).  With the
    default ``base=0.5, depth=1.0`` the gate spans [0, 1] and threshold
    ``r`` is exceeded during an arc of each period.
    """
    if period <= 0 or horizon <= 0:
        raise ValueError("period and horizon must be positive")
    amp = depth / 2.0
    lo, hi = base - amp, base + amp
    if threshold <= lo:
        return np.array([0.0]), np.array([horizon])
    if threshold >= hi:
        return np.empty(0), np.empty(0)
    # sin(x) > s on (asin(s), pi - asin(s)) within each 2*pi cycle.
    s = (threshold - base) / amp
    a = math.asin(s)
    w = period / (2.0 * math.pi)
    lo_off = (a * w - phase * w) % period
    width = (math.pi - 2.0 * a) * w
    # One window per period at t = lo_off + k*period, k = -1, 0, 1, ...
    # while t < horizon; the arange form computes the exact same
    # k*period + lo_off floats as the historical per-step loop.
    n_max = max(0, int(math.ceil((horizon - lo_off) / period))) + 2
    t = lo_off + np.arange(-1, n_max, dtype=float) * period
    t = t[t < horizon]
    e0 = t + width
    keep = e0 > 0.0
    starts = np.maximum(0.0, t[keep])
    ends = np.minimum(horizon, e0[keep])
    return starts, ends


class GanttTraceGenerator:
    """Renewal churn modulated by a day-period participation gate.

    Parameters
    ----------
    renewal:
        The fast-churn generator (quartile-fitted, power 3000 nops/s
        and homogeneous for Grid'5000 per Table 2).
    gate_period:
        Tide period in seconds (default one day).
    gate_depth:
        0 disables the tide (plain renewal); 1 gives full swings where
        at the trough almost no node participates.
    """

    def __init__(self, renewal: RenewalTraceGenerator,
                 gate_period: float = 86400.0, gate_depth: float = 1.0):
        if not 0.0 <= gate_depth <= 1.0:
            raise ValueError("gate_depth must be in [0, 1]")
        self.renewal = renewal
        self.gate_period = float(gate_period)
        self.gate_depth = float(gate_depth)

    def nodes_for_mean(self, mean_available: float) -> int:
        """Node count matching Table 2's mean available count.

        The sinusoidal gate halves average participation (mean gate
        value is ``base=0.5``), on top of the renewal availability.
        """
        p = self.renewal.p_avail
        participation = 0.5 if self.gate_depth > 0 else 1.0
        return max(1, int(round(mean_available / (p * participation))))

    def generate(self, rng: np.random.Generator, n_nodes: int,
                 horizon: float, tag: str = "", id_offset: int = 0) -> List[Node]:
        """Materialize nodes: renewal schedule ∩ participation windows.

        The renewal schedules come from the bulk-vectorized generator;
        only the (cheap) per-node window intersection runs in a loop.
        """
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        phase = rng.random() * 2.0 * math.pi
        base_nodes = self.renewal.generate(rng, n_nodes, horizon,
                                           tag=tag, id_offset=id_offset)
        if self.gate_depth <= 0.0:
            return base_nodes
        nodes = []
        for i, bn in enumerate(base_nodes):
            thr = (i + 0.5) / n_nodes
            gs, ge = gate_windows(thr, self.gate_period, phase,
                                  horizon, depth=self.gate_depth)
            s, e = iv.intersect(bn.starts, bn.ends, gs, ge)
            nodes.append(Node(id_offset + i, bn.power, s, e, tag=tag))
        return nodes
