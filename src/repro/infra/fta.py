"""Failure Trace Archive–style trace import/export.

The paper replays availability traces from the Failure Trace Archive
(Kondo et al., CCGrid 2010).  The archive's event representation boils
down to per-node availability intervals; this module reads and writes a
plain-text event format compatible with that idea, so users with access
to real FTA datasets (or their own monitoring data) can run every
experiment of this repository on *measured* traces instead of the
synthesized ones:

    # node_id  start_seconds  end_seconds  [power]
    0   0.0      3600.0   950
    0   7200.0  10800.0   950
    1   100.0    4000.0  1210

Lines starting with ``#`` are comments; intervals of one node must be
sorted and disjoint; the optional 4th column carries node power in
nops/s (defaulting to ``default_power``).

Round trip: :func:`save_trace` writes exactly what :func:`load_trace`
reads, so synthesized traces can also be exported for inspection or
reuse by external tools.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, List, Sequence, TextIO, Union

import numpy as np

from repro.infra.node import Node

__all__ = ["load_trace", "save_trace", "TraceFormatError"]


class TraceFormatError(ValueError):
    """Raised on malformed trace files."""


def _open(path_or_file: Union[str, TextIO], mode: str):
    if isinstance(path_or_file, (str, os.PathLike)):
        return open(path_or_file, mode), True
    return path_or_file, False


def load_trace(path_or_file: Union[str, TextIO],
               default_power: float = 1000.0,
               tag: str = "fta") -> List[Node]:
    """Parse an FTA-style interval file into :class:`Node` objects.

    Node ids are renumbered densely (0..n-1) in first-appearance order;
    the original ids are kept in each node's ``tag`` suffix only if
    they differ.  Raises :class:`TraceFormatError` on malformed rows,
    unsorted or overlapping intervals, or inconsistent power values for
    one node.
    """
    fh, owned = _open(path_or_file, "r")
    intervals: Dict[str, List[tuple]] = defaultdict(list)
    powers: Dict[str, float] = {}
    order: List[str] = []
    try:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (3, 4):
                raise TraceFormatError(
                    f"line {lineno}: expected 3 or 4 columns, got "
                    f"{len(parts)}")
            nid = parts[0]
            try:
                start, end = float(parts[1]), float(parts[2])
            except ValueError as exc:
                raise TraceFormatError(
                    f"line {lineno}: bad interval bounds") from exc
            if end <= start:
                raise TraceFormatError(
                    f"line {lineno}: empty/inverted interval "
                    f"[{start}, {end})")
            power = default_power
            if len(parts) == 4:
                try:
                    power = float(parts[3])
                except ValueError as exc:
                    raise TraceFormatError(
                        f"line {lineno}: bad power value") from exc
                if power <= 0:
                    raise TraceFormatError(
                        f"line {lineno}: power must be positive")
            if nid in powers and powers[nid] != power:
                raise TraceFormatError(
                    f"line {lineno}: node {nid} changes power "
                    f"({powers[nid]} -> {power})")
            if nid not in powers:
                powers[nid] = power
                order.append(nid)
            intervals[nid].append((start, end))
    finally:
        if owned:
            fh.close()
    if not order:
        raise TraceFormatError("trace file contains no intervals")

    nodes: List[Node] = []
    for i, nid in enumerate(order):
        ivs = sorted(intervals[nid])
        starts = np.array([s for s, _ in ivs])
        ends = np.array([e for _, e in ivs])
        if np.any(starts[1:] < ends[:-1]):
            raise TraceFormatError(
                f"node {nid}: overlapping availability intervals")
        nodes.append(Node(i, powers[nid], starts, ends, tag=tag))
    return nodes


def save_trace(nodes: Sequence[Node],
               path_or_file: Union[str, TextIO],
               header: str = "") -> None:
    """Write nodes to the FTA-style interval format (see module doc)."""
    fh, owned = _open(path_or_file, "w")
    try:
        fh.write("# node_id start_seconds end_seconds power\n")
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for node in nodes:
            # repr gives the shortest exact decimal: load() replays the
            # simulation bit-for-bit identically.
            for s, e in zip(node.starts, node.ends):
                fh.write(f"{node.node_id} {float(s)!r} {float(e)!r} "
                         f"{float(node.power)!r}\n")
    finally:
        if owned:
            fh.close()
