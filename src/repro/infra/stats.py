"""Trace statistics measurement — regenerates Table 2's columns.

Given a materialized node population, :func:`measure_trace` computes the
same summary the paper publishes for each BE-DCI trace: node-count
moments of the "simultaneously available" process sampled on a grid,
availability / unavailability duration quartiles pooled over nodes, and
the power moments.  The Table 2 benchmark compares these measurements
against the :class:`~repro.infra.catalog.TraceSpec` targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.infra.node import Node

__all__ = ["TraceStats", "measure_trace", "available_count_series"]


@dataclass(frozen=True)
class TraceStats:
    """Measured analogue of one Table 2 row."""

    n_nodes: int
    mean_nodes: float
    std_nodes: float
    min_nodes: int
    max_nodes: int
    avail_quartiles: Tuple[float, float, float]
    unavail_quartiles: Tuple[float, float, float]
    power_mean: float
    power_std: float

    def row(self) -> str:
        """One formatted Table 2-style row."""
        aq = ",".join(f"{q:.0f}" for q in self.avail_quartiles)
        uq = ",".join(f"{q:.0f}" for q in self.unavail_quartiles)
        return (f"{self.mean_nodes:10.1f} {self.std_nodes:8.1f} "
                f"{self.min_nodes:6d} {self.max_nodes:6d}  "
                f"av[{aq}] unav[{uq}]  "
                f"power {self.power_mean:.0f}±{self.power_std:.0f}")


def available_count_series(nodes: Sequence[Node], horizon: float,
                           step: float = 600.0) -> np.ndarray:
    """Number of available nodes sampled every ``step`` seconds.

    Uses an event-difference accumulation: +1 at each interval start,
    -1 at each end, then a cumulative sum over the sorted event grid —
    O(total intervals log) rather than O(nodes * samples).
    """
    if horizon <= 0 or step <= 0:
        raise ValueError("horizon and step must be positive")
    edges: List[np.ndarray] = []
    deltas: List[np.ndarray] = []
    for node in nodes:
        if node.starts.size == 0:
            continue
        edges.append(node.starts)
        deltas.append(np.ones_like(node.starts))
        edges.append(node.ends)
        deltas.append(-np.ones_like(node.ends))
    if not edges:
        return np.zeros(int(horizon / step) + 1)
    t = np.concatenate(edges)
    d = np.concatenate(deltas)
    order = np.argsort(t, kind="stable")
    t, d = t[order], d[order]
    count = np.cumsum(d)
    # Sample strictly inside (0, horizon): at t=0 the stationary-start
    # events are still firing and at t=horizon every interval has been
    # clipped shut, so both edges would report spurious zeros.
    grid = np.arange(step, horizon - step / 2, step)
    # count at grid point g = value after the last event <= g
    idx = np.searchsorted(t, grid, side="right") - 1
    out = np.where(idx >= 0, count[np.clip(idx, 0, None)], 0)
    return out.astype(float)


def _duration_quartiles(durations: np.ndarray) -> Tuple[float, float, float]:
    if durations.size == 0:
        return (0.0, 0.0, 0.0)
    q = np.percentile(durations, [25, 50, 75])
    return (float(q[0]), float(q[1]), float(q[2]))


def measure_trace(nodes: Sequence[Node], horizon: float,
                  step: float = 600.0) -> TraceStats:
    """Compute Table 2-style statistics for a node population.

    Boundary-censored observations are excluded, as failure-trace
    archives do: a node's first availability interval (clipped by the
    stationary start and length-biased — the interval overlapping a
    random time origin is systematically long) and its last one
    (clipped by the horizon) do not enter the duration statistics;
    unavailability durations are the gaps between consecutive
    availability intervals.
    """
    counts = available_count_series(nodes, horizon, step)
    av_durs: List[np.ndarray] = []
    unav_durs: List[np.ndarray] = []
    powers = np.array([n.power for n in nodes], dtype=float)
    for node in nodes:
        if node.starts.size == 0:
            continue
        av = node.ends - node.starts
        if av.size > 2:
            av_durs.append(av[1:-1])
        if node.starts.size > 1:
            unav_durs.append(node.starts[1:] - node.ends[:-1])
    av = np.concatenate(av_durs) if av_durs else np.empty(0)
    un = np.concatenate(unav_durs) if unav_durs else np.empty(0)
    return TraceStats(
        n_nodes=len(nodes),
        mean_nodes=float(np.mean(counts)),
        std_nodes=float(np.std(counts)),
        min_nodes=int(np.min(counts)),
        max_nodes=int(np.max(counts)),
        avail_quartiles=_duration_quartiles(av),
        unavail_quartiles=_duration_quartiles(un),
        power_mean=float(np.mean(powers)) if powers.size else 0.0,
        power_std=float(np.std(powers)) if powers.size else 0.0,
    )
