"""Lazy node pool: serves available idle workers to the middleware.

The paper's ``seti`` trace averages 24 391 simultaneously available
nodes while a BoT occupies at most a few thousand workers, so an event
per node transition would dominate the simulation for nothing.  The
pool instead activates nodes *lazily*:

* ``_ready_*`` — unordered lists of idle nodes believed to be inside an
  availability interval (entries may be stale; they are validated and
  recycled on pop);
* ``_future`` — heap of idle nodes currently unavailable, keyed by next
  interval start.

Only :meth:`acquire` (the middleware asking for a worker) pays the cost
of promoting nodes between the two structures; nodes that are never
needed never generate events.  A node executing a task is owned by the
middleware (which schedules its completion / preemption / resume
events) and re-enters the pool through :meth:`release` /
:meth:`preempted`.

Selection model: desktop-grid work distribution is *pull-based* — the
server hands a task to whichever idle worker polls next.  Among
homogeneous volunteers that is equivalent to a uniformly random pick.
Dedicated cloud workers, however, poll far more aggressively than
desktop clients (they exist only to serve this server and pay no
user-activity backoff), so when both kinds sit idle the next poll is
more likely to come from the cloud side.  ``cloud_poll_weight`` models
that: a single idle cloud worker is ``w`` times more likely to get the
next task than a single idle regular node.  This is what gives the
paper's *Flat* strategy its modest-but-nonzero tail pickup (§4.2.1).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.infra.node import Node

__all__ = ["NodePool"]


class NodePool:
    """Tracks idle nodes and serves poll-weighted random ones on demand."""

    def __init__(self, nodes: Iterable[Node] = (),
                 rng: Optional[np.random.Generator] = None,
                 cloud_poll_weight: float = 10.0):
        if cloud_poll_weight <= 0:
            raise ValueError("cloud_poll_weight must be positive")
        self._rng = rng or np.random.default_rng(0)
        self.cloud_poll_weight = float(cloud_poll_weight)
        self._ready_reg: List[Node] = []
        self._ready_cloud: List[Node] = []
        self._future: List[Tuple[float, int, Node]] = []  # (next_start, id, node)
        self._members: set[int] = set()
        self.size = 0
        for n in nodes:
            self.add(n, at=0.0)

    # ------------------------------------------------------------------
    def add(self, node: Node, at: float) -> None:
        """Register a node; it becomes acquirable from time ``at``."""
        if node.node_id in self._members:
            raise ValueError(f"node {node.node_id} already in pool")
        self._members.add(node.node_id)
        self.size += 1
        self._enqueue(node, at)

    def remove(self, node: Node) -> None:
        """Unregister a node (stale queue entries are skipped lazily)."""
        if node.node_id not in self._members:
            return
        self._members.discard(node.node_id)
        self.size -= 1

    def __contains__(self, node: Node) -> bool:
        return node.node_id in self._members

    def _enqueue(self, node: Node, at: float) -> None:
        """File an idle member node under ready or future."""
        nxt = node.next_available(at)
        if nxt is None:
            # Never comes back within the trace horizon: drop silently.
            self._members.discard(node.node_id)
            self.size -= 1
            return
        start, _end = nxt
        if start <= at:
            (self._ready_cloud if node.cloud else self._ready_reg).append(node)
        else:
            heapq.heappush(self._future, (start, node.node_id, node))

    def _promote(self, t: float) -> None:
        """Move nodes whose next interval has started into ready."""
        future = self._future
        while future and future[0][0] <= t:
            _, nid, node = heapq.heappop(future)
            if nid not in self._members:
                continue
            (self._ready_cloud if node.cloud else self._ready_reg).append(node)

    # ------------------------------------------------------------------
    def _pop_from(self, ready: List[Node], t: float
                  ) -> Optional[Tuple[Node, float]]:
        while ready:
            i = int(self._rng.integers(len(ready)))
            ready[i], ready[-1] = ready[-1], ready[i]
            node = ready.pop()
            if node.node_id not in self._members:
                continue
            iv = node.interval_at(t)
            if iv is None:
                # Stale: its interval ended while it sat idle; refile.
                self._enqueue(node, t)
                continue
            return node, iv[1]
        return None

    def acquire(self, t: float) -> Optional[Tuple[Node, float]]:
        """Pop an idle node available at time ``t`` (poll-weighted).

        Returns ``(node, interval_end)`` or ``None``.  The caller owns
        the node until :meth:`release` (still alive) or
        :meth:`preempted` (availability interval ended under it).
        """
        self._promote(t)
        while self._ready_reg or self._ready_cloud:
            w_cloud = self.cloud_poll_weight * len(self._ready_cloud)
            w_total = w_cloud + len(self._ready_reg)
            pick_cloud = (w_cloud > 0
                          and self._rng.random() * w_total < w_cloud)
            got = self._pop_from(
                self._ready_cloud if pick_cloud else self._ready_reg, t)
            if got is not None:
                return got
            # Chosen side was entirely stale; loop re-weights what's left.
        return None

    def release(self, node: Node, t: float) -> None:
        """Return a node that is still alive at ``t`` (task finished)."""
        if node.node_id not in self._members:
            return  # retired while busy (e.g. a stopped cloud worker)
        self._enqueue(node, t)

    def preempted(self, node: Node, t: float) -> None:
        """Return a node whose availability ended at ``t``; it re-enters
        through its next availability interval."""
        if node.node_id not in self._members:
            return
        self._enqueue(node, t)

    # ------------------------------------------------------------------
    def has_ready(self, t: float) -> bool:
        """Whether at least one idle node is available right now."""
        self._promote(t)
        for ready in (self._ready_reg, self._ready_cloud):
            for node in ready:
                if node.node_id in self._members and node.interval_at(t):
                    return True
        return False

    def next_future_start(self, t: float) -> Optional[float]:
        """Earliest future time an *idle, currently away* node returns.

        Used to schedule a dispatch wake-up when pending work found no
        available node.  Stale ready entries are refiled first so their
        next intervals are taken into account.
        """
        self._promote(t)
        any_ready = False
        for attr in ("_ready_reg", "_ready_cloud"):
            ready = getattr(self, attr)
            keep: List[Node] = []
            refile: List[Node] = []
            for node in ready:
                if node.node_id not in self._members:
                    continue
                if node.interval_at(t) is not None:
                    keep.append(node)  # available now — caller can acquire
                else:
                    refile.append(node)
            setattr(self, attr, keep)
            for node in refile:
                self._enqueue(node, t)
            any_ready = any_ready or bool(getattr(self, attr))
        if any_ready:
            return t
        while self._future and self._future[0][1] not in self._members:
            heapq.heappop(self._future)
        if self._future:
            return self._future[0][0]
        return None

    def idle_count(self, t: float) -> int:
        """Idle nodes available right now (O(pool); stats/debug only)."""
        self._promote(t)
        return sum(1 for ready in (self._ready_reg, self._ready_cloud)
                   for n in ready
                   if n.node_id in self._members and n.interval_at(t))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NodePool size={self.size} reg~{len(self._ready_reg)} "
                f"cloud~{len(self._ready_cloud)} future~{len(self._future)}>")
