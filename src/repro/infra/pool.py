"""Lazy node pool: serves available idle workers to the middleware.

The paper's ``seti`` trace averages 24 391 simultaneously available
nodes while a BoT occupies at most a few thousand workers, so an event
per node transition would dominate the simulation for nothing.  The
pool instead activates nodes *lazily*:

* ``_ready_*`` — unordered lists of idle nodes believed to be inside an
  availability interval (entries may be stale; they are validated and
  recycled on pop);
* ``_future`` — heap of idle nodes currently unavailable, keyed by next
  interval start.

Only :meth:`acquire` (the middleware asking for a worker) pays the cost
of promoting nodes between the two structures; nodes that are never
needed never generate events.  A node executing a task is owned by the
middleware (which schedules its completion / preemption / resume
events) and re-enters the pool through :meth:`release` /
:meth:`preempted`.

Ready bookkeeping: alongside the draw lists the pool keeps
``_ready_end_of`` (node id → ``(interval_end, node)`` for every node
filed ready) and ``_stale`` (a min-heap of those interval ends).  The
probes — :meth:`has_ready`, :meth:`idle_count`,
:meth:`next_future_start` — used to rescan and re-validate every list
entry per call, O(pool) each; now they pop the stale heap once per
*expired* entry (amortized O(log n)), refile those nodes to their next
interval, and read the answer off the index.  :meth:`acquire`
deliberately does **not** sweep: its draw loop still validates lazily
so the RNG draw sequence (and thus every fixed-seed golden) is
bit-identical to the historical scan — a sweep would refile entries
the historical code left in place and shift the draw weights.  Entries
a sweep refiled remain in the draw lists as *ghosts* (their id has
left the index) and are skipped at draw time exactly like the retired
nodes the historical loop skipped; a sweep compacts them away when
they outnumber live entries.

Selection model: desktop-grid work distribution is *pull-based* — the
server hands a task to whichever idle worker polls next.  Among
homogeneous volunteers that is equivalent to a uniformly random pick.
Dedicated cloud workers, however, poll far more aggressively than
desktop clients (they exist only to serve this server and pay no
user-activity backoff), so when both kinds sit idle the next poll is
more likely to come from the cloud side.  ``cloud_poll_weight`` models
that: a single idle cloud worker is ``w`` times more likely to get the
next task than a single idle regular node.  This is what gives the
paper's *Flat* strategy its modest-but-nonzero tail pickup (§4.2.1).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.infra.node import Node

__all__ = ["NodePool"]


class NodePool:
    """Tracks idle nodes and serves poll-weighted random ones on demand."""

    def __init__(self, nodes: Iterable[Node] = (),
                 rng: Optional[np.random.Generator] = None,
                 cloud_poll_weight: float = 10.0):
        if cloud_poll_weight <= 0:
            raise ValueError("cloud_poll_weight must be positive")
        self._rng = rng or np.random.default_rng(0)
        self.cloud_poll_weight = float(cloud_poll_weight)
        self._ready_reg: List[Node] = []
        self._ready_cloud: List[Node] = []
        #: node id -> (interval_end, node) for every node filed ready
        self._ready_end_of: Dict[int, Tuple[float, Node]] = {}
        #: min-heap of (interval_end, id); entries go stale when the
        #: node leaves ready — validated against _ready_end_of on pop
        self._stale: List[Tuple[float, int]] = []
        # (next_start, id, node, interval_end)
        self._future: List[Tuple[float, int, Node, float]] = []
        self._members: set[int] = set()
        self.size = 0
        for n in nodes:
            self.add(n, at=0.0)

    # ------------------------------------------------------------------
    def add(self, node: Node, at: float) -> None:
        """Register a node; it becomes acquirable from time ``at``."""
        if node.node_id in self._members:
            raise ValueError(f"node {node.node_id} already in pool")
        self._members.add(node.node_id)
        self.size += 1
        self._enqueue(node, at)

    def remove(self, node: Node) -> None:
        """Unregister a node (stale queue entries are skipped lazily)."""
        if node.node_id not in self._members:
            return
        self._members.discard(node.node_id)
        self._ready_end_of.pop(node.node_id, None)
        self.size -= 1

    def __contains__(self, node: Node) -> bool:
        return node.node_id in self._members

    def _enqueue(self, node: Node, at: float) -> None:
        """File an idle member node under ready or future."""
        nxt = node.next_available(at)
        if nxt is None:
            # Never comes back within the trace horizon: drop silently.
            self._members.discard(node.node_id)
            self.size -= 1
            return
        start, end = nxt
        if start <= at:
            self._file_ready(node, end)
        else:
            heapq.heappush(self._future, (start, node.node_id, node, end))

    def _file_ready(self, node: Node, end: float) -> None:
        self._ready_end_of[node.node_id] = (end, node)
        heapq.heappush(self._stale, (end, node.node_id))
        (self._ready_cloud if node.cloud else self._ready_reg).append(node)

    def _promote(self, t: float) -> None:
        """Move nodes whose next interval has started into ready."""
        future = self._future
        while future and future[0][0] <= t:
            _, nid, node, end = heapq.heappop(future)
            if nid not in self._members:
                continue
            self._file_ready(node, end)

    def _sweep_stale(self, t: float) -> None:
        """Refile every ready entry whose interval has already ended.

        Only the probes call this — :meth:`acquire` keeps the
        historical lazy validation so its RNG draw sequence is
        unchanged.  Refiled nodes leave ghosts in the draw lists;
        compact those away once they dominate (never triggers in runs
        that only acquire, so fixed-seed traces are unaffected).
        """
        stale = self._stale
        index = self._ready_end_of
        while stale and stale[0][0] <= t:
            end, nid = heapq.heappop(stale)
            entry = index.get(nid)
            if entry is None or entry[0] != end:
                continue  # the node left ready (or was refiled) already
            del index[nid]
            self._enqueue(entry[1], t)
        ghosts = (len(self._ready_reg) + len(self._ready_cloud)
                  - len(index))
        if ghosts > len(index) + 8:
            self._ready_reg = [n for n in self._ready_reg
                               if n.node_id in index]
            self._ready_cloud = [n for n in self._ready_cloud
                                 if n.node_id in index]

    # ------------------------------------------------------------------
    def _pop_from(self, ready: List[Node], t: float
                  ) -> Optional[Tuple[Node, float]]:
        while ready:
            i = int(self._rng.integers(len(ready)))
            ready[i], ready[-1] = ready[-1], ready[i]
            node = ready.pop()
            if node.node_id not in self._ready_end_of:
                continue  # retired, or a ghost left behind by a sweep
            iv = node.interval_at(t)
            if iv is None:
                # Stale: its interval ended while it sat idle; refile.
                del self._ready_end_of[node.node_id]
                self._enqueue(node, t)
                continue
            del self._ready_end_of[node.node_id]
            return node, iv[1]
        return None

    def acquire(self, t: float) -> Optional[Tuple[Node, float]]:
        """Pop an idle node available at time ``t`` (poll-weighted).

        Returns ``(node, interval_end)`` or ``None``.  The caller owns
        the node until :meth:`release` (still alive) or
        :meth:`preempted` (availability interval ended under it).
        """
        self._promote(t)
        while self._ready_reg or self._ready_cloud:
            w_cloud = self.cloud_poll_weight * len(self._ready_cloud)
            w_total = w_cloud + len(self._ready_reg)
            pick_cloud = (w_cloud > 0
                          and self._rng.random() * w_total < w_cloud)
            got = self._pop_from(
                self._ready_cloud if pick_cloud else self._ready_reg, t)
            if got is not None:
                return got
            # Chosen side was entirely stale; loop re-weights what's left.
        return None

    def release(self, node: Node, t: float) -> None:
        """Return a node that is still alive at ``t`` (task finished)."""
        if node.node_id not in self._members:
            return  # retired while busy (e.g. a stopped cloud worker)
        self._enqueue(node, t)

    def preempted(self, node: Node, t: float) -> None:
        """Return a node whose availability ended at ``t``; it re-enters
        through its next availability interval."""
        if node.node_id not in self._members:
            return
        self._enqueue(node, t)

    # ------------------------------------------------------------------
    def has_ready(self, t: float) -> bool:
        """Whether at least one idle node is available right now.

        Stale entries are refiled (consistently with
        :meth:`next_future_start`) rather than rescanned on every
        poll, so the check is O(expired) amortized, not O(pool).
        """
        self._promote(t)
        self._sweep_stale(t)
        return bool(self._ready_end_of)

    def next_future_start(self, t: float) -> Optional[float]:
        """Earliest future time an *idle, currently away* node returns.

        Used to schedule a dispatch wake-up when pending work found no
        available node.  Stale ready entries are refiled first so their
        next intervals are taken into account.
        """
        self._promote(t)
        self._sweep_stale(t)
        if self._ready_end_of:
            return t  # available now — caller can acquire
        while self._future and self._future[0][1] not in self._members:
            heapq.heappop(self._future)
        if self._future:
            return self._future[0][0]
        return None

    def idle_count(self, t: float) -> int:
        """Idle nodes available right now (index size after a sweep)."""
        self._promote(t)
        self._sweep_stale(t)
        return len(self._ready_end_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NodePool size={self.size} ready={len(self._ready_end_of)} "
                f"future~{len(self._future)}>")
