"""Lazy node pool: serves available idle workers to the middleware.

The paper's ``seti`` trace averages 24 391 simultaneously available
nodes while a BoT occupies at most a few thousand workers, so an event
per node transition would dominate the simulation for nothing.  The
pool instead activates nodes *lazily*:

* ``_ready_*`` — unordered lists of idle nodes believed to be inside an
  availability interval (entries may be stale; they are validated and
  recycled on pop);
* a *future* store of idle nodes currently unavailable, keyed by next
  interval start (columnar epoch arrays + an overflow heap, below).

Only :meth:`acquire` (the middleware asking for a worker) pays the cost
of promoting nodes between the two structures; nodes that are never
needed never generate events.  A node executing a task is owned by the
middleware (which schedules its completion / preemption / resume
events) and re-enters the pool through :meth:`release` /
:meth:`preempted`.

Columnar members: a pool built over a :class:`~repro.infra.columns.
NodeColumns` realization keeps plain ``int`` node ids in the draw
lists and heaps — no Python node objects exist for the 10^5-host bulk
of the pool.  Interval validation reads the shared columns directly; a
:class:`~repro.infra.columns.ColumnNode` flyweight is materialized
(and cached, for stable identity) only for the node :meth:`acquire`
actually hands out.  Dynamically added nodes (cloud workers via the
Flat strategy) stay :class:`~repro.infra.node.Node` objects; both
entry kinds coexist in every structure.  The initial filing of a
columnar realization is vectorized but replays the historical
node-id-order ``add()`` loop exactly, so draw-list positions — and
therefore the RNG draw sequence — are unchanged.

Columnar promotion epochs: the t=0 filing used to heapify every
not-yet-available node into a per-node future heap and every ready
interval end into a stale heap — ~10^5 tuple allocations whose pops
dominated the dispatch profile.  The filing now lands in flat sorted
NumPy arrays instead (the *epoch*): ``_fut_start``/``_fut_id``/
``_fut_end`` sorted by ``(start, id)`` with a cursor ``_fut_pos``, and
``_stale_end``/``_stale_id`` sorted by ``(end, id)`` with
``_stale_pos``.  Promotion and stale sweeping over the epoch are one
``searchsorted`` cut plus a bulk refile.  Nodes refiled *after* the
epoch (release/preempt churn) go to small overflow heaps (``_future``,
``_stale``) exactly as before.  **Draw-order invariant:** the
historical heaps popped in ascending ``(start, id)`` / ``(end, id)``
key order — a property of the key multiset, not the heap layout — and
the epoch arrays are sorted by those same keys, so processing an
array cut front-to-back, or merging array head against heap head when
both sides are due (:meth:`_promote_merge`, :meth:`_sweep_merge`),
re-files nodes in the byte-identical order.  For the same reason a
bulk batch of pushes may be replaced by ``extend + heapify``: heapq's
pop sequence depends only on the key multiset (duplicate keys here are
fully identical tuples, hence interchangeable).

Ready bookkeeping: alongside the draw lists the pool keeps
``_ready_end_of`` (node id → ``(interval_end, entry)`` for every node
filed ready).  The probes — :meth:`has_ready`, :meth:`idle_count`,
:meth:`next_future_start` — pop the stale store once per *expired*
entry (amortized O(log n)), refile those nodes to their next interval,
and read the answer off the index.  :meth:`acquire` deliberately does
**not** sweep: its draw loop still validates lazily so the RNG draw
sequence (and thus every fixed-seed golden) is bit-identical to the
historical scan — a sweep would refile entries the historical code
left in place and shift the draw weights.  Entries a sweep refiled
remain in the draw lists as *ghosts* (their id has left the index, or
— after a sweep-refile within the same probe — a fresher copy of the
same id was appended) and are skipped at draw time exactly like the
retired nodes the historical loop skipped; a sweep compacts them away
when they outnumber live entries, keeping exactly one copy per indexed
id (a sweep-refiled node leaves its old list copy *and* appends a new
one, so compaction must deduplicate or the ghost count never drops
and the compaction scan re-triggers forever).

Bulk acquisition: :meth:`acquire_many` is provably ``k`` sequential
:meth:`acquire` calls — one shared :meth:`_promote` (the follow-up
promotes are no-ops: nothing with ``start <= t`` remains and the draws
add nothing) followed by ``k`` runs of the identical scalar draw loop
over ``self._rng``.  Only the bookkeeping around the draws is batched;
the weighted cloud-vs-regular pick, the ghost skips and the lazy
refiles consume the historical RNG sequence draw for draw.  Callers
whose interleaving cannot be reduced to back-to-back acquires (any
path that releases or files nodes between draws) must keep calling
scalar :meth:`acquire`.

Selection model: desktop-grid work distribution is *pull-based* — the
server hands a task to whichever idle worker polls next.  Among
homogeneous volunteers that is equivalent to a uniformly random pick.
Dedicated cloud workers, however, poll far more aggressively than
desktop clients (they exist only to serve this server and pay no
user-activity backoff), so when both kinds sit idle the next poll is
more likely to come from the cloud side.  ``cloud_poll_weight`` models
that: a single idle cloud worker is ``w`` times more likely to get the
next task than a single idle regular node.  This is what gives the
paper's *Flat* strategy its modest-but-nonzero tail pickup (§4.2.1).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.infra.columns import ColumnNode, NodeColumns
from repro.infra.node import Node

__all__ = ["NodePool", "POOL_STATS", "reset_pool_stats"]

#: a pool entry: a columnar node id, or a dynamically added Node
_Entry = Union[int, Node]

#: dispatch-plane telemetry (reset per profiled run by the benches):
#: individual weighted draws served, acquire_many batch calls, and
#: ghost compaction passes over the draw lists
POOL_STATS = {"acquires": 0, "bulk_batches": 0, "ghost_compactions": 0}


def reset_pool_stats() -> None:
    for key in POOL_STATS:
        POOL_STATS[key] = 0


_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)


class NodePool:
    """Tracks idle nodes and serves poll-weighted random ones on demand."""

    def __init__(self,
                 nodes: Union[Iterable[Node], NodeColumns] = (),
                 rng: Optional[np.random.Generator] = None,
                 cloud_poll_weight: float = 10.0):
        if cloud_poll_weight <= 0:
            raise ValueError("cloud_poll_weight must be positive")
        self._rng = rng or np.random.default_rng(0)
        self.cloud_poll_weight = float(cloud_poll_weight)
        self._ready_reg: List[_Entry] = []
        self._ready_cloud: List[_Entry] = []
        #: node id -> (interval_end, entry) for every node filed ready
        self._ready_end_of: Dict[int, Tuple[float, _Entry]] = {}
        # -- future store: epoch arrays (t=0 filing, sorted by
        # (start, id)) behind a cursor, + overflow heap of
        # (next_start, id, entry, interval_end) for later refiles
        self._fut_start = _EMPTY_F
        self._fut_id = _EMPTY_I
        self._fut_end = _EMPTY_F
        self._fut_pos = 0
        self._future: List[Tuple[float, int, _Entry, float]] = []
        # -- stale store: epoch arrays (sorted by (end, id)) behind a
        # cursor, + overflow heap of (interval_end, id)
        self._stale_end = _EMPTY_F
        self._stale_id = _EMPTY_I
        self._stale_pos = 0
        self._stale: List[Tuple[float, int]] = []
        self._members: set[int] = set()
        self.size = 0
        #: backing columnar realization (None for object-only pools)
        self._columns: Optional[NodeColumns] = None
        #: id -> ColumnNode flyweight, created only for acquired nodes
        self._views: Dict[int, ColumnNode] = {}
        #: True when the t=0 filing took the pure vectorized path —
        #: cursor-independent, so the filing may be captured and
        #: restored onto a fresh cursor copy (see capture_filing)
        self.vector_filed = False
        if isinstance(nodes, NodeColumns):
            self._init_columns(nodes)
        else:
            for n in nodes:
                self.add(n, at=0.0)

    # ------------------------------------------------------------------
    # entry plumbing (int = columnar member, Node = object member)
    # ------------------------------------------------------------------
    @staticmethod
    def _id_of(entry: _Entry) -> int:
        return entry if type(entry) is int else entry.node_id

    def _as_entry(self, node) -> _Entry:
        """Normalize a node handed back by the middleware to its entry."""
        if isinstance(node, ColumnNode) and node._cols is self._columns:
            return node.node_id
        return node

    def _out(self, entry: _Entry):
        """The node object handed to the middleware for an entry."""
        if type(entry) is int:
            view = self._views.get(entry)
            if view is None:
                view = self._views[entry] = ColumnNode(self._columns, entry)
            return view
        return entry

    def _next_available(self, entry: _Entry, at: float):
        if type(entry) is int:
            return self._columns.next_available(entry, at)
        return entry.next_available(at)

    def _interval_at(self, entry: _Entry, t: float):
        if type(entry) is int:
            return self._columns.interval_at(entry, t)
        return entry.interval_at(t)

    # ------------------------------------------------------------------
    def _init_columns(self, cols: NodeColumns) -> None:
        """Vectorized initial filing of a columnar realization at t=0.

        Exactly replays ``add(node, at=0.0)`` over node ids in order:
        nodes without a future interval are dropped, first intervals
        containing 0 file ready (ascending id — the draw-list order the
        RNG sequence depends on), later ones become the future *epoch*:
        flat arrays sorted by ``(start, id)``, the same total order the
        historical heap popped in.  Ready interval ends become the
        stale epoch, sorted by ``(end, id)`` likewise.
        """
        self._columns = cols
        ids, s0, e0 = cols.first_interval()
        if len(ids) and float(e0.min()) <= 0.0:
            # A first interval that ended at/before t=0 needs a cursor
            # advance; generated traces never do this — take the exact
            # scalar path rather than approximating it.
            for i in ids.tolist():
                self._members.add(i)
                self.size += 1
                self._enqueue(i, 0.0)
            return
        self._members = set(ids.tolist())
        self.size = len(self._members)
        ready = s0 <= 0.0
        ids_r, e_r = ids[ready], e0[ready]
        index = self._ready_end_of
        reg = self._ready_reg
        for i, end in zip(ids_r.tolist(), e_r.tolist()):
            index[i] = (end, i)
            reg.append(i)
        order = np.lexsort((ids_r, e_r))
        self._stale_end = np.ascontiguousarray(e_r[order])
        self._stale_id = np.ascontiguousarray(ids_r[order])
        away = ~ready
        ids_a, s_a, e_a = ids[away], s0[away], e0[away]
        order = np.lexsort((ids_a, s_a))
        self._fut_start = np.ascontiguousarray(s_a[order])
        self._fut_id = np.ascontiguousarray(ids_a[order])
        self._fut_end = np.ascontiguousarray(e_a[order])
        for arr in (self._stale_end, self._stale_id, self._fut_start,
                    self._fut_id, self._fut_end):
            arr.setflags(write=False)
        self.vector_filed = True

    # ------------------------------------------------------------------
    def capture_filing(self) -> Dict[str, object]:
        """Snapshot the t=0 filing of a freshly built columnar pool.

        Only valid straight after a *vectorized* ``_init_columns`` (the
        degenerate scalar path advances interval cursors, which live in
        the columns, not here).  The epoch arrays are immutable — only
        their cursors move — so the snapshot shares them zero-copy;
        the draw list and ready index are copied per restore.
        Restoring via :meth:`from_filing` onto a fresh cursor copy of
        the same template reproduces the filing — same draw-list order,
        same epochs — without re-deriving it.
        """
        if not self.vector_filed:
            raise ValueError("filing not capturable: pool was not "
                             "vector-filed (object pool, degenerate "
                             "trace, or already mutated)")
        return {"members": set(self._members), "size": self.size,
                "ready_reg": list(self._ready_reg),
                "ready_end_of": dict(self._ready_end_of),
                "stale_end": self._stale_end, "stale_id": self._stale_id,
                "fut_start": self._fut_start, "fut_id": self._fut_id,
                "fut_end": self._fut_end}

    @classmethod
    def from_filing(cls, cols: NodeColumns, filing: Dict[str, object],
                    rng: Optional[np.random.Generator] = None,
                    cloud_poll_weight: float = 10.0) -> "NodePool":
        """Rebuild a pool from a :meth:`capture_filing` snapshot over a
        fresh cursor copy of the *same* columns template — structurally
        identical to ``NodePool(cols, ...)``, skipping the filing."""
        pool = cls(rng=rng, cloud_poll_weight=cloud_poll_weight)
        pool._columns = cols
        pool._members = set(filing["members"])
        pool.size = filing["size"]
        pool._ready_reg = list(filing["ready_reg"])
        pool._ready_end_of = dict(filing["ready_end_of"])
        pool._stale_end = filing["stale_end"]
        pool._stale_id = filing["stale_id"]
        pool._fut_start = filing["fut_start"]
        pool._fut_id = filing["fut_id"]
        pool._fut_end = filing["fut_end"]
        pool.vector_filed = True
        return pool

    # ------------------------------------------------------------------
    def add(self, node: Node, at: float) -> None:
        """Register a node; it becomes acquirable from time ``at``."""
        entry = self._as_entry(node)
        nid = self._id_of(entry)
        if nid in self._members:
            raise ValueError(f"node {nid} already in pool")
        self._members.add(nid)
        self.size += 1
        self._enqueue(entry, at)

    def remove(self, node: Node) -> None:
        """Unregister a node (stale queue entries are skipped lazily)."""
        if node.node_id not in self._members:
            return
        self._members.discard(node.node_id)
        self._ready_end_of.pop(node.node_id, None)
        self.size -= 1

    def __contains__(self, node: Node) -> bool:
        return node.node_id in self._members

    def _enqueue(self, entry: _Entry, at: float) -> None:
        """File an idle member entry under ready or future."""
        nxt = self._next_available(entry, at)
        nid = self._id_of(entry)
        if nxt is None:
            # Never comes back within the trace horizon: drop silently.
            self._members.discard(nid)
            self.size -= 1
            return
        start, end = nxt
        if start <= at:
            self._file_ready(entry, end)
        else:
            heapq.heappush(self._future, (start, nid, entry, end))

    def _file_ready(self, entry: _Entry, end: float) -> None:
        nid = self._id_of(entry)
        self._ready_end_of[nid] = (end, entry)
        heapq.heappush(self._stale, (end, nid))
        cloud = type(entry) is not int and entry.cloud
        (self._ready_cloud if cloud else self._ready_reg).append(entry)

    # ------------------------------------------------------------------
    # promotion (future -> ready)
    # ------------------------------------------------------------------
    def _promote(self, t: float) -> None:
        """Move nodes whose next interval has started into ready.

        Fast path: when the overflow heap holds nothing due, the due
        slice of the future epoch is one ``searchsorted`` cut, filed
        front-to-back — the epoch is sorted by ``(start, id)``, the
        exact order the historical heap popped the same keys in.  When
        both the epoch head and the heap head are due they are merged
        scalar-wise on that key (:meth:`_promote_merge`).
        """
        fs = self._fut_start
        pos = self._fut_pos
        heap = self._future
        if pos < fs.shape[0] and fs[pos] <= t:
            if not heap or heap[0][0] > t:
                hi = int(np.searchsorted(fs, t, side="right"))
                self._bulk_promote(pos, hi)
                self._fut_pos = hi
            else:
                self._promote_merge(t)
            return
        members = self._members
        while heap and heap[0][0] <= t:
            _, nid, entry, end = heapq.heappop(heap)
            if nid not in members:
                continue
            self._file_ready(entry, end)

    def _bulk_promote(self, lo: int, hi: int) -> None:
        """File epoch entries ``[lo, hi)`` ready, in epoch order.

        Epoch entries are always columnar ids (never cloud).  The stale
        pushes may be batched as ``extend + heapify``: heapq's pop
        sequence over a key multiset is layout-independent, so the
        sweep order is unchanged (see the module docstring).
        """
        ids = self._fut_id[lo:hi].tolist()
        ends = self._fut_end[lo:hi].tolist()
        members = self._members
        index = self._ready_end_of
        reg = self._ready_reg
        stale = self._stale
        pairs = []
        for i, end in zip(ids, ends):
            if i not in members:
                continue
            index[i] = (end, i)
            reg.append(i)
            pairs.append((end, i))
        if len(pairs) > 8 and 4 * len(pairs) > len(stale):
            stale.extend(pairs)
            heapq.heapify(stale)
        else:
            for pair in pairs:
                heapq.heappush(stale, pair)

    def _promote_merge(self, t: float) -> None:
        """Promotion merging epoch entries vs heap entries on
        ``(start, id)`` — the historical all-heap pop order.

        The due epoch slice is cut once (``searchsorted`` + `tolist`)
        rather than read element-wise through numpy scalars, and its
        filings (always columnar ids, never cloud) are inlined with
        the stale pushes batched — exact for the same reason as
        :meth:`_bulk_promote`: ready-list append order follows the
        merge order, and the stale heap's pop sequence over a key
        multiset does not depend on its internal layout.
        """
        fs = self._fut_start
        pos = self._fut_pos
        hi = int(np.searchsorted(fs, t, side="right"))
        starts = fs[pos:hi].tolist()
        ids = self._fut_id[pos:hi].tolist()
        ends = self._fut_end[pos:hi].tolist()
        self._fut_pos = hi
        heap = self._future
        members = self._members
        index = self._ready_end_of
        reg = self._ready_reg
        stale = self._stale
        heappop = heapq.heappop
        pairs = []
        i = 0
        n = len(starts)
        while True:
            take_arr = i < n
            take_heap = bool(heap) and heap[0][0] <= t
            if take_arr and take_heap:
                take_arr = ((starts[i], ids[i])
                            <= (heap[0][0], heap[0][1]))
                take_heap = not take_arr
            if take_arr:
                nid = ids[i]
                end = ends[i]
                i += 1
                if nid in members:
                    index[nid] = (end, nid)
                    reg.append(nid)
                    pairs.append((end, nid))
            elif take_heap:
                _, nid, entry, end = heappop(heap)
                if nid in members:
                    self._file_ready(entry, end)
            else:
                break
        if len(pairs) > 8 and 4 * len(pairs) > len(stale):
            stale.extend(pairs)
            heapq.heapify(stale)
        else:
            for pair in pairs:
                heapq.heappush(stale, pair)

    # ------------------------------------------------------------------
    # stale sweep (expired ready entries -> refile)
    # ------------------------------------------------------------------
    def _sweep_stale(self, t: float) -> None:
        """Refile every ready entry whose interval has already ended.

        Only the probes call this — :meth:`acquire` keeps the
        historical lazy validation so its RNG draw sequence is
        unchanged.  Mirrors :meth:`_promote`: one cut of the stale
        epoch when the overflow heap holds nothing due, a scalar
        ``(end, id)`` merge otherwise.  Refiles performed here file
        intervals with ``end > t`` only, so they never extend the cut
        being processed.  Refiled nodes leave ghosts in the draw
        lists; compact those away once they dominate (never triggers
        in runs that only acquire, so fixed-seed traces are
        unaffected).
        """
        se = self._stale_end
        pos = self._stale_pos
        heap = self._stale
        index = self._ready_end_of
        if pos < se.shape[0] and se[pos] <= t:
            if not heap or heap[0][0] > t:
                hi = int(np.searchsorted(se, t, side="right"))
                ends = se[pos:hi].tolist()
                nids = self._stale_id[pos:hi].tolist()
                self._stale_pos = hi
                for end, nid in zip(ends, nids):
                    entry = index.get(nid)
                    if entry is None or entry[0] != end:
                        continue
                    del index[nid]
                    self._enqueue(entry[1], t)
            else:
                self._sweep_merge(t)
        else:
            while heap and heap[0][0] <= t:
                end, nid = heapq.heappop(heap)
                entry = index.get(nid)
                if entry is None or entry[0] != end:
                    continue
                del index[nid]
                self._enqueue(entry[1], t)
        ghosts = (len(self._ready_reg) + len(self._ready_cloud)
                  - len(index))
        if ghosts > 8 and ghosts > len(index):
            self._compact_ghosts()

    def _sweep_merge(self, t: float) -> None:
        """Scalar sweep merging epoch head vs heap head on
        ``(end, id)`` — the historical all-heap pop order.  A key
        duplicated across epoch and heap (a node released back within
        its filing interval) processes epoch-first; the loser fails
        the index-end validation exactly like the historical second
        heap copy did."""
        se, sid = self._stale_end, self._stale_id
        n = se.shape[0]
        heap = self._stale
        index = self._ready_end_of
        pos = self._stale_pos
        while True:
            take_arr = pos < n and se[pos] <= t
            take_heap = bool(heap) and heap[0][0] <= t
            if take_arr and take_heap:
                take_arr = ((se[pos], sid[pos])
                            <= (heap[0][0], heap[0][1]))
                take_heap = not take_arr
            if take_arr:
                end = float(se[pos])
                nid = int(sid[pos])
                pos += 1
            elif take_heap:
                end, nid = heapq.heappop(heap)
            else:
                break
            entry = index.get(nid)
            if entry is None or entry[0] != end:
                continue
            del index[nid]
            self._enqueue(entry[1], t)
        self._stale_pos = pos

    def _compact_ghosts(self) -> None:
        """Drop draw-list entries whose id left the ready index, and
        all-but-one copies of ids that were sweep-refiled back in (the
        refile appends a fresh copy without removing the old one, so
        an id can hold several list slots while the index holds one —
        keeping only the first copy restores list length == index
        size and stops the compaction trigger from re-firing)."""
        POOL_STATS["ghost_compactions"] += 1
        index = self._ready_end_of
        for attr in ("_ready_reg", "_ready_cloud"):
            lst = getattr(self, attr)
            if not lst:
                continue
            seen: set[int] = set()
            out = []
            for entry in lst:
                nid = entry if type(entry) is int else entry.node_id
                if nid in index and nid not in seen:
                    seen.add(nid)
                    out.append(entry)
            setattr(self, attr, out)

    # ------------------------------------------------------------------
    def _draw(self, t: float) -> Optional[Tuple[Node, float]]:
        """One weighted draw over the (already promoted) ready lists —
        the historical :meth:`acquire` body, draw for draw.

        The swap-pop is inlined (it used to live in a ``_pop_from``
        helper) with hoisted locals: the draw loop runs thousands of
        times per arrival storm and the per-call overhead dominated
        its profile.  ``_ready_reg``/``_ready_cloud`` are rebound only
        by :meth:`_compact_ghosts` (sweeps, never draws), so holding
        the list objects across the loop is safe; the stale refiles a
        draw performs always file intervals starting after ``t``, so
        they never grow the lists mid-draw either.
        """
        POOL_STATS["acquires"] += 1
        rng = self._rng
        index = self._ready_end_of
        reg = self._ready_reg
        cloud = self._ready_cloud
        weight = self.cloud_poll_weight
        cols = self._columns
        views = self._views
        while reg or cloud:
            w_cloud = weight * len(cloud)
            w_total = w_cloud + len(reg)
            pick_cloud = (w_cloud > 0
                          and rng.random() * w_total < w_cloud)
            ready = cloud if pick_cloud else reg
            while ready:
                i = int(rng.integers(len(ready)))
                ready[i], ready[-1] = ready[-1], ready[i]
                entry = ready.pop()
                nid = entry if type(entry) is int else entry.node_id
                rec = index.get(nid)
                if rec is None:
                    continue  # retired, or a ghost left by a sweep
                end = rec[0]
                if end > t:
                    # Filed end still ahead: the node was filed inside
                    # an interval no later than ``t`` (time only moves
                    # forward after filing), so ``t`` sits inside that
                    # same interval and its end IS the filed end — the
                    # ``interval_at`` lookup is provably this value.
                    del index[nid]
                    if type(entry) is int:
                        view = views.get(entry)
                        if view is None:
                            view = views[entry] = ColumnNode(cols, entry)
                        return view, end
                    return entry, end
                # Filed interval lapsed; only a full lookup can tell a
                # node inside a *later* interval (hand it out with that
                # end) from one in a gap (stale: refile).
                iv = (cols.interval_at(entry, t) if type(entry) is int
                      else entry.interval_at(t))
                del index[nid]
                if iv is None:
                    self._enqueue(entry, t)
                    continue
                if type(entry) is int:
                    view = views.get(entry)
                    if view is None:
                        view = views[entry] = ColumnNode(cols, entry)
                    return view, iv[1]
                return entry, iv[1]
            # Chosen side was entirely stale; loop re-weights what's left.
        return None

    def ready_hint(self, t: float) -> int:
        """Cheap estimate of how many draws could succeed at ``t``,
        touching no state.

        Counts the ready index (which may still hold entries whose
        interval has lapsed but which no sweep refiled yet) plus the
        due slice of the future epoch (which may hold removed members)
        plus one for a due overflow-heap head.  Purely a routing hint
        for the dispatch plane: both dispatch strategies are
        transcript-identical, so a wrong estimate can never change
        results — only which (equivalent) loop runs.
        """
        hint = len(self._ready_end_of)
        fs = self._fut_start
        pos = self._fut_pos
        if pos < fs.shape[0] and fs[pos] <= t:
            hint += int(np.searchsorted(fs, t, side="right")) - pos
        if self._future and self._future[0][0] <= t:
            hint += 1
        return hint

    def acquire(self, t: float) -> Optional[Tuple[Node, float]]:
        """Pop an idle node available at time ``t`` (poll-weighted).

        Returns ``(node, interval_end)`` or ``None``.  The caller owns
        the node until :meth:`release` (still alive) or
        :meth:`preempted` (availability interval ended under it).
        """
        self._promote(t)
        return self._draw(t)

    def acquire_many(self, t: float, k: int
                     ) -> List[Tuple[Node, float]]:
        """Up to ``k`` acquisitions at ``t``, stopping at the first dry
        draw — RNG-identical to ``k`` sequential :meth:`acquire` calls.

        Exactness: each scalar acquire is promote + draw.  After the
        first promote at ``t`` nothing with ``start <= t`` remains in
        the future store, and a draw never files nodes with
        ``start <= t`` (its lazy refiles go to intervals starting
        later), so the follow-up promotes are no-ops — eliding them
        changes no state and consumes no RNG.  The draws themselves
        run the unmodified scalar loop.  A dry draw consumes the same
        ghost-skip RNG sequence as a scalar acquire returning None,
        after which the scalar caller (the dispatch loop) stopped
        acquiring — so stopping here matches it draw for draw.  Any
        caller that mutates the pool between draws (release, add)
        must use scalar :meth:`acquire` instead.
        """
        if k <= 0:
            return []  # zero acquires touch nothing, not even a promote
        POOL_STATS["bulk_batches"] += 1
        self._promote(t)
        out: List[Tuple[Node, float]] = []
        draw = self._draw
        for _ in range(k):
            got = draw(t)
            if got is None:
                break
            out.append(got)
        return out

    def release(self, node: Node, t: float) -> None:
        """Return a node that is still alive at ``t`` (task finished)."""
        if node.node_id not in self._members:
            return  # retired while busy (e.g. a stopped cloud worker)
        self._enqueue(self._as_entry(node), t)

    def preempted(self, node: Node, t: float) -> None:
        """Return a node whose availability ended at ``t``; it re-enters
        through its next availability interval."""
        if node.node_id not in self._members:
            return
        self._enqueue(self._as_entry(node), t)

    # ------------------------------------------------------------------
    def has_ready(self, t: float) -> bool:
        """Whether at least one idle node is available right now.

        Stale entries are refiled (consistently with
        :meth:`next_future_start`) rather than rescanned on every
        poll, so the check is O(expired) amortized, not O(pool).
        """
        self._promote(t)
        self._sweep_stale(t)
        return bool(self._ready_end_of)

    def next_future_start(self, t: float) -> Optional[float]:
        """Earliest future time an *idle, currently away* node returns.

        Used to schedule a dispatch wake-up when pending work found no
        available node.  Stale ready entries are refiled first so their
        next intervals are taken into account.
        """
        self._promote(t)
        self._sweep_stale(t)
        if self._ready_end_of:
            return t  # available now — caller can acquire
        members = self._members
        fid = self._fut_id
        pos = self._fut_pos
        n = fid.shape[0]
        while pos < n and int(fid[pos]) not in members:
            pos += 1  # retired epoch heads, dropped like heap pops below
        self._fut_pos = pos
        heap = self._future
        while heap and heap[0][1] not in members:
            heapq.heappop(heap)
        best: Optional[float] = None
        if pos < n:
            best = float(self._fut_start[pos])
        if heap and (best is None or heap[0][0] < best):
            best = heap[0][0]
        return best

    def idle_count(self, t: float) -> int:
        """Idle nodes available right now (index size after a sweep)."""
        self._promote(t)
        self._sweep_stale(t)
        return len(self._ready_end_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        future = (self._fut_start.shape[0] - self._fut_pos
                  + len(self._future))
        return (f"<NodePool size={self.size} ready={len(self._ready_end_of)} "
                f"future~{future}>")
