"""Lazy node pool: serves available idle workers to the middleware.

The paper's ``seti`` trace averages 24 391 simultaneously available
nodes while a BoT occupies at most a few thousand workers, so an event
per node transition would dominate the simulation for nothing.  The
pool instead activates nodes *lazily*:

* ``_ready_*`` — unordered lists of idle nodes believed to be inside an
  availability interval (entries may be stale; they are validated and
  recycled on pop);
* ``_future`` — heap of idle nodes currently unavailable, keyed by next
  interval start.

Only :meth:`acquire` (the middleware asking for a worker) pays the cost
of promoting nodes between the two structures; nodes that are never
needed never generate events.  A node executing a task is owned by the
middleware (which schedules its completion / preemption / resume
events) and re-enters the pool through :meth:`release` /
:meth:`preempted`.

Columnar members: a pool built over a :class:`~repro.infra.columns.
NodeColumns` realization keeps plain ``int`` node ids in the draw
lists and heaps — no Python node objects exist for the 10^5-host bulk
of the pool.  Interval validation reads the shared columns directly; a
:class:`~repro.infra.columns.ColumnNode` flyweight is materialized
(and cached, for stable identity) only for the node :meth:`acquire`
actually hands out.  Dynamically added nodes (cloud workers via the
Flat strategy) stay :class:`~repro.infra.node.Node` objects; both
entry kinds coexist in every structure.  The initial filing of a
columnar realization is vectorized but replays the historical
node-id-order ``add()`` loop exactly, so draw-list positions — and
therefore the RNG draw sequence — are unchanged.

Ready bookkeeping: alongside the draw lists the pool keeps
``_ready_end_of`` (node id → ``(interval_end, entry)`` for every node
filed ready) and ``_stale`` (a min-heap of those interval ends).  The
probes — :meth:`has_ready`, :meth:`idle_count`,
:meth:`next_future_start` — used to rescan and re-validate every list
entry per call, O(pool) each; now they pop the stale heap once per
*expired* entry (amortized O(log n)), refile those nodes to their next
interval, and read the answer off the index.  :meth:`acquire`
deliberately does **not** sweep: its draw loop still validates lazily
so the RNG draw sequence (and thus every fixed-seed golden) is
bit-identical to the historical scan — a sweep would refile entries
the historical code left in place and shift the draw weights.  Entries
a sweep refiled remain in the draw lists as *ghosts* (their id has
left the index) and are skipped at draw time exactly like the retired
nodes the historical loop skipped; a sweep compacts them away when
they outnumber live entries.

Selection model: desktop-grid work distribution is *pull-based* — the
server hands a task to whichever idle worker polls next.  Among
homogeneous volunteers that is equivalent to a uniformly random pick.
Dedicated cloud workers, however, poll far more aggressively than
desktop clients (they exist only to serve this server and pay no
user-activity backoff), so when both kinds sit idle the next poll is
more likely to come from the cloud side.  ``cloud_poll_weight`` models
that: a single idle cloud worker is ``w`` times more likely to get the
next task than a single idle regular node.  This is what gives the
paper's *Flat* strategy its modest-but-nonzero tail pickup (§4.2.1).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.infra.columns import ColumnNode, NodeColumns
from repro.infra.node import Node

__all__ = ["NodePool"]

#: a pool entry: a columnar node id, or a dynamically added Node
_Entry = Union[int, Node]


class NodePool:
    """Tracks idle nodes and serves poll-weighted random ones on demand."""

    def __init__(self,
                 nodes: Union[Iterable[Node], NodeColumns] = (),
                 rng: Optional[np.random.Generator] = None,
                 cloud_poll_weight: float = 10.0):
        if cloud_poll_weight <= 0:
            raise ValueError("cloud_poll_weight must be positive")
        self._rng = rng or np.random.default_rng(0)
        self.cloud_poll_weight = float(cloud_poll_weight)
        self._ready_reg: List[_Entry] = []
        self._ready_cloud: List[_Entry] = []
        #: node id -> (interval_end, entry) for every node filed ready
        self._ready_end_of: Dict[int, Tuple[float, _Entry]] = {}
        #: min-heap of (interval_end, id); entries go stale when the
        #: node leaves ready — validated against _ready_end_of on pop
        self._stale: List[Tuple[float, int]] = []
        # (next_start, id, entry, interval_end)
        self._future: List[Tuple[float, int, _Entry, float]] = []
        self._members: set[int] = set()
        self.size = 0
        #: backing columnar realization (None for object-only pools)
        self._columns: Optional[NodeColumns] = None
        #: id -> ColumnNode flyweight, created only for acquired nodes
        self._views: Dict[int, ColumnNode] = {}
        #: True when the t=0 filing took the pure vectorized path —
        #: cursor-independent, so the filing may be captured and
        #: restored onto a fresh cursor copy (see capture_filing)
        self.vector_filed = False
        if isinstance(nodes, NodeColumns):
            self._init_columns(nodes)
        else:
            for n in nodes:
                self.add(n, at=0.0)

    # ------------------------------------------------------------------
    # entry plumbing (int = columnar member, Node = object member)
    # ------------------------------------------------------------------
    @staticmethod
    def _id_of(entry: _Entry) -> int:
        return entry if type(entry) is int else entry.node_id

    def _as_entry(self, node) -> _Entry:
        """Normalize a node handed back by the middleware to its entry."""
        if isinstance(node, ColumnNode) and node._cols is self._columns:
            return node.node_id
        return node

    def _out(self, entry: _Entry):
        """The node object handed to the middleware for an entry."""
        if type(entry) is int:
            view = self._views.get(entry)
            if view is None:
                view = self._views[entry] = ColumnNode(self._columns, entry)
            return view
        return entry

    def _next_available(self, entry: _Entry, at: float):
        if type(entry) is int:
            return self._columns.next_available(entry, at)
        return entry.next_available(at)

    def _interval_at(self, entry: _Entry, t: float):
        if type(entry) is int:
            return self._columns.interval_at(entry, t)
        return entry.interval_at(t)

    # ------------------------------------------------------------------
    def _init_columns(self, cols: NodeColumns) -> None:
        """Vectorized initial filing of a columnar realization at t=0.

        Exactly replays ``add(node, at=0.0)`` over node ids in order:
        nodes without a future interval are dropped, first intervals
        containing 0 file ready (ascending id — the draw-list order the
        RNG sequence depends on), later ones go to the future heap.
        ``heapify`` over unique keys pops in the same order as the
        historical sequential pushes.
        """
        self._columns = cols
        ids, s0, e0 = cols.first_interval()
        if len(ids) and float(e0.min()) <= 0.0:
            # A first interval that ended at/before t=0 needs a cursor
            # advance; generated traces never do this — take the exact
            # scalar path rather than approximating it.
            for i in ids.tolist():
                self._members.add(i)
                self.size += 1
                self._enqueue(i, 0.0)
            return
        self._members = set(ids.tolist())
        self.size = len(self._members)
        ready = s0 <= 0.0
        index = self._ready_end_of
        reg = self._ready_reg
        for i, end in zip(ids[ready].tolist(), e0[ready].tolist()):
            index[i] = (end, i)
            reg.append(i)
        self._stale = list(zip(e0[ready].tolist(), ids[ready].tolist()))
        heapq.heapify(self._stale)
        away = ~ready
        self._future = list(zip(s0[away].tolist(), ids[away].tolist(),
                                ids[away].tolist(), e0[away].tolist()))
        heapq.heapify(self._future)
        self.vector_filed = True

    # ------------------------------------------------------------------
    def capture_filing(self) -> Dict[str, object]:
        """Snapshot the t=0 filing of a freshly built columnar pool.

        Only valid straight after a *vectorized* ``_init_columns`` (the
        degenerate scalar path advances interval cursors, which live in
        the columns, not here).  The snapshot holds only plain ints and
        tuples, so restoring it via :meth:`from_filing` onto a fresh
        cursor copy of the same template reproduces the filing — same
        draw-list order, same heap layouts — without re-deriving it.
        """
        if not self.vector_filed:
            raise ValueError("filing not capturable: pool was not "
                             "vector-filed (object pool, degenerate "
                             "trace, or already mutated)")
        return {"members": set(self._members), "size": self.size,
                "ready_reg": list(self._ready_reg),
                "ready_end_of": dict(self._ready_end_of),
                "stale": list(self._stale),
                "future": list(self._future)}

    @classmethod
    def from_filing(cls, cols: NodeColumns, filing: Dict[str, object],
                    rng: Optional[np.random.Generator] = None,
                    cloud_poll_weight: float = 10.0) -> "NodePool":
        """Rebuild a pool from a :meth:`capture_filing` snapshot over a
        fresh cursor copy of the *same* columns template — structurally
        identical to ``NodePool(cols, ...)``, skipping the filing."""
        pool = cls(rng=rng, cloud_poll_weight=cloud_poll_weight)
        pool._columns = cols
        pool._members = set(filing["members"])
        pool.size = filing["size"]
        pool._ready_reg = list(filing["ready_reg"])
        pool._ready_end_of = dict(filing["ready_end_of"])
        pool._stale = list(filing["stale"])
        pool._future = list(filing["future"])
        pool.vector_filed = True
        return pool

    # ------------------------------------------------------------------
    def add(self, node: Node, at: float) -> None:
        """Register a node; it becomes acquirable from time ``at``."""
        entry = self._as_entry(node)
        nid = self._id_of(entry)
        if nid in self._members:
            raise ValueError(f"node {nid} already in pool")
        self._members.add(nid)
        self.size += 1
        self._enqueue(entry, at)

    def remove(self, node: Node) -> None:
        """Unregister a node (stale queue entries are skipped lazily)."""
        if node.node_id not in self._members:
            return
        self._members.discard(node.node_id)
        self._ready_end_of.pop(node.node_id, None)
        self.size -= 1

    def __contains__(self, node: Node) -> bool:
        return node.node_id in self._members

    def _enqueue(self, entry: _Entry, at: float) -> None:
        """File an idle member entry under ready or future."""
        nxt = self._next_available(entry, at)
        nid = self._id_of(entry)
        if nxt is None:
            # Never comes back within the trace horizon: drop silently.
            self._members.discard(nid)
            self.size -= 1
            return
        start, end = nxt
        if start <= at:
            self._file_ready(entry, end)
        else:
            heapq.heappush(self._future, (start, nid, entry, end))

    def _file_ready(self, entry: _Entry, end: float) -> None:
        nid = self._id_of(entry)
        self._ready_end_of[nid] = (end, entry)
        heapq.heappush(self._stale, (end, nid))
        cloud = type(entry) is not int and entry.cloud
        (self._ready_cloud if cloud else self._ready_reg).append(entry)

    def _promote(self, t: float) -> None:
        """Move nodes whose next interval has started into ready."""
        future = self._future
        while future and future[0][0] <= t:
            _, nid, entry, end = heapq.heappop(future)
            if nid not in self._members:
                continue
            self._file_ready(entry, end)

    def _sweep_stale(self, t: float) -> None:
        """Refile every ready entry whose interval has already ended.

        Only the probes call this — :meth:`acquire` keeps the
        historical lazy validation so its RNG draw sequence is
        unchanged.  Refiled nodes leave ghosts in the draw lists;
        compact those away once they dominate (never triggers in runs
        that only acquire, so fixed-seed traces are unaffected).
        """
        stale = self._stale
        index = self._ready_end_of
        while stale and stale[0][0] <= t:
            end, nid = heapq.heappop(stale)
            entry = index.get(nid)
            if entry is None or entry[0] != end:
                continue  # the node left ready (or was refiled) already
            del index[nid]
            self._enqueue(entry[1], t)
        ghosts = (len(self._ready_reg) + len(self._ready_cloud)
                  - len(index))
        if ghosts > len(index) + 8:
            self._ready_reg = [e for e in self._ready_reg
                               if self._id_of(e) in index]
            self._ready_cloud = [e for e in self._ready_cloud
                                 if self._id_of(e) in index]

    # ------------------------------------------------------------------
    def _pop_from(self, ready: List[_Entry], t: float
                  ) -> Optional[Tuple[_Entry, float]]:
        index = self._ready_end_of
        while ready:
            i = int(self._rng.integers(len(ready)))
            ready[i], ready[-1] = ready[-1], ready[i]
            entry = ready.pop()
            nid = entry if type(entry) is int else entry.node_id
            if nid not in index:
                continue  # retired, or a ghost left behind by a sweep
            iv = self._interval_at(entry, t)
            if iv is None:
                # Stale: its interval ended while it sat idle; refile.
                del index[nid]
                self._enqueue(entry, t)
                continue
            del index[nid]
            return entry, iv[1]
        return None

    def acquire(self, t: float) -> Optional[Tuple[Node, float]]:
        """Pop an idle node available at time ``t`` (poll-weighted).

        Returns ``(node, interval_end)`` or ``None``.  The caller owns
        the node until :meth:`release` (still alive) or
        :meth:`preempted` (availability interval ended under it).
        """
        self._promote(t)
        while self._ready_reg or self._ready_cloud:
            w_cloud = self.cloud_poll_weight * len(self._ready_cloud)
            w_total = w_cloud + len(self._ready_reg)
            pick_cloud = (w_cloud > 0
                          and self._rng.random() * w_total < w_cloud)
            got = self._pop_from(
                self._ready_cloud if pick_cloud else self._ready_reg, t)
            if got is not None:
                return self._out(got[0]), got[1]
            # Chosen side was entirely stale; loop re-weights what's left.
        return None

    def release(self, node: Node, t: float) -> None:
        """Return a node that is still alive at ``t`` (task finished)."""
        if node.node_id not in self._members:
            return  # retired while busy (e.g. a stopped cloud worker)
        self._enqueue(self._as_entry(node), t)

    def preempted(self, node: Node, t: float) -> None:
        """Return a node whose availability ended at ``t``; it re-enters
        through its next availability interval."""
        if node.node_id not in self._members:
            return
        self._enqueue(self._as_entry(node), t)

    # ------------------------------------------------------------------
    def has_ready(self, t: float) -> bool:
        """Whether at least one idle node is available right now.

        Stale entries are refiled (consistently with
        :meth:`next_future_start`) rather than rescanned on every
        poll, so the check is O(expired) amortized, not O(pool).
        """
        self._promote(t)
        self._sweep_stale(t)
        return bool(self._ready_end_of)

    def next_future_start(self, t: float) -> Optional[float]:
        """Earliest future time an *idle, currently away* node returns.

        Used to schedule a dispatch wake-up when pending work found no
        available node.  Stale ready entries are refiled first so their
        next intervals are taken into account.
        """
        self._promote(t)
        self._sweep_stale(t)
        if self._ready_end_of:
            return t  # available now — caller can acquire
        while self._future and self._future[0][1] not in self._members:
            heapq.heappop(self._future)
        if self._future:
            return self._future[0][0]
        return None

    def idle_count(self, t: float) -> int:
        """Idle nodes available right now (index size after a sweep)."""
        self._promote(t)
        self._sweep_stale(t)
        return len(self._ready_end_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NodePool size={self.size} ready={len(self._ready_end_of)} "
                f"future~{len(self._future)}>")
