"""Node model: a computing resource with an availability schedule.

A node alternates between *available* intervals (it can fetch and run
tasks) and *unavailable* gaps (desktop user came back, best-effort job
preempted, spot price exceeded the bid...).  The schedule is stored as
two parallel NumPy arrays of interval starts and ends; the node keeps a
cursor so "what interval contains / follows time t" is amortized O(1)
during a forward-moving simulation.

Cloud workers reuse the same class with a single ``[start, inf)``
interval — the middleware does not care where a worker comes from,
which mirrors how SpeQuloS cloud workers impersonate ordinary desktop
grid workers (paper §3.1).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = ["Node"]


class Node:
    """A (possibly volatile) computing resource.

    Parameters
    ----------
    node_id:
        Unique identifier within one simulation.
    power:
        Computing speed in number of operations per second (Table 2's
        ``avg. power`` column; tasks carry a ``nops`` cost).
    starts, ends:
        Sorted, non-overlapping availability intervals
        ``[starts[i], ends[i])``.  May be empty (a node that never
        shows up).
    cloud:
        True for provisioned cloud workers (stable, billed resources).
    """

    __slots__ = ("node_id", "power", "starts", "ends", "cloud", "_idx", "tag")

    def __init__(self, node_id: int, power: float,
                 starts: np.ndarray, ends: np.ndarray,
                 cloud: bool = False, tag: str = ""):
        if power <= 0:
            raise ValueError(f"node power must be positive, got {power}")
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        if starts.shape != ends.shape:
            raise ValueError("starts and ends must have identical shapes")
        if starts.size and not (np.all(ends > starts)
                                and np.all(starts[1:] >= ends[:-1])):
            raise ValueError("intervals must be positive-length, sorted "
                             "and non-overlapping")
        self.node_id = int(node_id)
        self.power = float(power)
        self.starts = starts
        self.ends = ends
        self.cloud = bool(cloud)
        self.tag = tag
        self._idx = 0  # cursor: first interval with end > last queried t

    # ------------------------------------------------------------------
    @classmethod
    def stable(cls, node_id: int, power: float, start: float = 0.0,
               tag: str = "cloud") -> "Node":
        """A never-failing node (cloud worker), available from ``start``."""
        return cls(node_id, power,
                   np.array([start]), np.array([math.inf]),
                   cloud=True, tag=tag)

    # ------------------------------------------------------------------
    def _advance(self, t: float) -> None:
        """Move the cursor to the first interval whose end is > t."""
        ends = self.ends
        i = self._idx
        n = ends.shape[0]
        while i < n and ends[i] <= t:
            i += 1
        self._idx = i

    def interval_at(self, t: float) -> Optional[Tuple[float, float]]:
        """The availability interval containing ``t``, or None.

        ``t`` must be non-decreasing across calls (forward simulation).
        """
        self._advance(t)
        i = self._idx
        if i < self.starts.shape[0] and self.starts[i] <= t:
            return (float(self.starts[i]), float(self.ends[i]))
        return None

    def available_at(self, t: float) -> bool:
        """Whether the node is available at time ``t``."""
        return self.interval_at(t) is not None

    def next_available(self, t: float) -> Optional[Tuple[float, float]]:
        """First interval (start, end) with end > t and start >= ... .

        If ``t`` falls inside an interval, that interval is returned;
        otherwise the next future interval, or None if the node never
        comes back.
        """
        self._advance(t)
        i = self._idx
        if i >= self.starts.shape[0]:
            return None
        return (float(self.starts[i]), float(self.ends[i]))

    def availability_fraction(self, until: float) -> float:
        """Fraction of [0, until) during which the node is available."""
        if until <= 0:
            return 0.0
        clipped = np.clip(self.ends, None, until) - np.clip(self.starts, None, until)
        total = float(np.sum(np.maximum(clipped, 0.0)))
        return total / until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "cloud" if self.cloud else "volatile"
        return (f"<Node {self.node_id} {kind} power={self.power:.0f} "
                f"intervals={self.starts.shape[0]}>")
