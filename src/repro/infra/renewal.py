"""Alternating-renewal synthesis of node availability traces.

Substitutes for the Failure Trace Archive datasets (``seti``, ``nd``)
and the Grid'5000 Gantt-derived traces (``g5klyo``, ``g5kgre``) that the
paper replays but that are not available offline.

Model
-----
Each node is an independent alternating renewal process: availability
durations ~ ``avail_dist``, unavailability durations ~ ``unavail_dist``
(both :class:`~repro.infra.quantile.PiecewiseLogQuantile` fitted to the
Table 2 quartiles).  Nodes start in stationary phase: the first period
is drawn *length-biased* and the origin falls uniformly inside it, so
the aggregate available-node count is stationary from t=0.  The paper
samples BoT submissions at arbitrary offsets of months-long traces; a
stationary start plus a fresh seed per execution reproduces that
protocol without materializing months of intervals.

The node count needed to hit Table 2's *mean available nodes* column is
``mean / p_avail`` where ``p_avail = E[avail] / (E[avail]+E[unavail])``
is the single-node stationary availability.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.infra.node import Node
from repro.infra.quantile import PiecewiseLogQuantile

__all__ = ["RenewalTraceGenerator", "stationary_availability"]


def stationary_availability(avail: PiecewiseLogQuantile,
                            unavail: PiecewiseLogQuantile) -> float:
    """Long-run fraction of time a renewal node is available.

    For an alternating renewal process this is
    ``E[avail] / (E[avail] + E[unavail])``.
    """
    ma = avail.mean()
    mu = unavail.mean()
    return ma / (ma + mu)


def _length_biased(dist: PiecewiseLogQuantile, rng: np.random.Generator,
                   candidates: int = 16) -> float:
    """Draw one duration from the length-biased version of ``dist``.

    The interval containing a uniformly random time point is distributed
    length-biased; we approximate by importance-resampling a small
    candidate batch with probability proportional to duration.
    """
    c = dist.sample(rng, candidates)
    w = c / c.sum()
    return float(rng.choice(c, p=w))


class RenewalTraceGenerator:
    """Generates per-node availability interval schedules.

    Parameters
    ----------
    avail_dist / unavail_dist:
        Duration distributions (seconds).
    power_mean / power_std:
        Node computing power, drawn i.i.d. normal and truncated at
        ``power_min`` (Table 2's power columns: desktop nodes
        1000 +- 250 nops/s, grid and cloud nodes 3000 nops/s).
    """

    def __init__(self, avail_dist: PiecewiseLogQuantile,
                 unavail_dist: PiecewiseLogQuantile,
                 power_mean: float, power_std: float,
                 power_min: float = 50.0):
        if power_mean <= 0 or power_std < 0:
            raise ValueError("power_mean must be > 0 and power_std >= 0")
        self.avail_dist = avail_dist
        self.unavail_dist = unavail_dist
        self.power_mean = float(power_mean)
        self.power_std = float(power_std)
        self.power_min = float(power_min)
        self._p_avail: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def p_avail(self) -> float:
        """Stationary availability probability of a single node."""
        if self._p_avail is None:
            self._p_avail = stationary_availability(
                self.avail_dist, self.unavail_dist)
        return self._p_avail

    def nodes_for_mean(self, mean_available: float) -> int:
        """Node count whose mean simultaneous availability matches."""
        return max(1, int(round(mean_available / self.p_avail)))

    # ------------------------------------------------------------------
    def draw_power(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample node powers (normal, truncated at ``power_min``)."""
        if self.power_std == 0.0:
            return np.full(size, self.power_mean)
        p = rng.normal(self.power_mean, self.power_std, size)
        return np.maximum(p, self.power_min)

    def _node_schedule(self, rng: np.random.Generator,
                       horizon: float) -> Tuple[np.ndarray, np.ndarray]:
        """One node's (starts, ends) arrays covering [0, horizon).

        Vectorized: cycles (one availability + one gap) are drawn in
        bulk, cumulative-summed into interval boundaries, and clipped
        to the horizon; the rare short draw extends in a loop.
        """
        in_avail = rng.random() < self.p_avail
        # Stationary start: t=0 falls uniformly inside a length-biased
        # first period, so the walk begins at a negative offset.
        first_dist = self.avail_dist if in_avail else self.unavail_dist
        first = _length_biased(first_dist, rng)
        t0 = -first * rng.random()

        cycle = self.avail_dist.mean() + self.unavail_dist.mean()
        est = max(8, int((horizon - t0) / cycle * 1.4) + 4)
        av_parts = []
        un_parts = []
        covered = t0 + first
        while True:
            av = self.avail_dist.sample(rng, est)
            un = self.unavail_dist.sample(rng, est)
            av_parts.append(av)
            un_parts.append(un)
            covered += float(av.sum() + un.sum())
            if covered >= horizon:
                break
            est = max(8, est // 2)
        av = np.concatenate(av_parts) if len(av_parts) > 1 else av_parts[0]
        un = np.concatenate(un_parts) if len(un_parts) > 1 else un_parts[0]

        if in_avail:
            # periods: first(avail), un[0], av[0], un[1], av[1], ...
            starts = np.empty(av.shape[0] + 1)
            ends = np.empty_like(starts)
            starts[0] = t0
            ends[0] = t0 + first
            gap_cum = np.cumsum(un)
            av_cum = np.concatenate(([0.0], np.cumsum(av[:-1])))
            starts[1:] = ends[0] + gap_cum + av_cum
            ends[1:] = starts[1:] + av
        else:
            # periods: first(gap), av[0], un[0], av[1], un[1], ...
            gap_ends = t0 + first + np.concatenate(
                ([0.0], np.cumsum(un[:-1] + av[:-1])))
            starts = gap_ends
            ends = gap_ends + av
        keep = (ends > 0.0) & (starts < horizon)
        starts = np.clip(starts[keep], 0.0, None)
        ends = np.minimum(ends[keep], horizon)
        keep = ends > starts
        return starts[keep], ends[keep]

    def _length_biased_batch(self, rng: np.random.Generator, n: int,
                             dist: PiecewiseLogQuantile,
                             candidates: int = 16) -> np.ndarray:
        """Vectorized length-biased draws (one per row)."""
        c = dist.ppf(rng.random((n, candidates)))
        w = c / c.sum(axis=1, keepdims=True)
        u = rng.random(n)
        idx = (np.cumsum(w, axis=1) < u[:, None]).sum(axis=1)
        return c[np.arange(n), np.minimum(idx, candidates - 1)]

    def generate(self, rng: np.random.Generator, n_nodes: int,
                 horizon: float, tag: str = "", id_offset: int = 0) -> List[Node]:
        """Materialize ``n_nodes`` nodes with schedules over [0, horizon).

        Bulk path: all nodes' cycle durations are drawn as matrices and
        turned into interval boundaries with row-wise cumulative sums
        (the 24k-node ``seti`` trace generates in seconds this way).
        Rows whose drawn cycles do not cover the horizon — rare, the
        cycle count carries a 1.5x margin — fall back to the exact
        scalar walk.
        """
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        powers = self.draw_power(rng, n_nodes)
        cycle = self.avail_dist.mean() + self.unavail_dist.mean()
        k = max(4, int(horizon / cycle * 1.5) + 6)
        n = n_nodes

        in_avail = rng.random(n) < self.p_avail
        first = np.where(
            in_avail,
            self._length_biased_batch(rng, n, self.avail_dist),
            self._length_biased_batch(rng, n, self.unavail_dist))
        t0 = -first * rng.random(n)
        av = self.avail_dist.ppf(rng.random((n, k)))
        un = self.unavail_dist.ppf(rng.random((n, k)))

        starts, ends = self._assemble_bulk(in_avail, first, t0, av, un)
        covered = ends[:, -1] >= horizon
        flat_s, flat_e, offsets = self._clip_rows(
            starts[covered], ends[covered], horizon)

        nodes: List[Node] = []
        row = 0
        for i in range(n):
            if covered[i]:
                s_arr = flat_s[offsets[row]:offsets[row + 1]]
                e_arr = flat_e[offsets[row]:offsets[row + 1]]
                row += 1
            else:
                s_arr, e_arr = self._node_schedule(rng, horizon)
            nodes.append(Node(id_offset + i, float(powers[i]),
                              s_arr, e_arr, tag=tag))
        return nodes

    @staticmethod
    def _assemble_bulk(in_avail: np.ndarray, first: np.ndarray,
                       t0: np.ndarray, av: np.ndarray, un: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Durations → unclipped interval boundary matrices (pure math).

        Uniform layout: avail durations A[j], gap durations G[j]; for
        rows starting available the first avail period is ``first``,
        otherwise the first gap is.  Split out so property tests can
        pin the float association against a scalar reference walk.
        """
        n, k = av.shape
        ia = in_avail[:, None]
        A = np.where(ia, np.hstack([first[:, None], av[:, :k - 1]]), av)
        G = np.where(ia, un, np.hstack([first[:, None], un[:, :k - 1]]))
        cumA = np.cumsum(A, axis=1)
        cumG = np.cumsum(G, axis=1)
        exclA = np.hstack([np.zeros((n, 1)), cumA[:, :-1]])
        exclG = np.hstack([np.zeros((n, 1)), cumG[:, :-1]])
        starts = t0[:, None] + exclA + np.where(ia, exclG, cumG)
        ends = starts + A
        return starts, ends

    @staticmethod
    def _clip_rows(starts: np.ndarray, ends: np.ndarray, horizon: float
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Clip boundary rows to [0, horizon) — all rows at once.

        Replaces the historical per-row mask/clip loop with one
        elementwise pass (same comparisons, same clip floats); returns
        row-major flattened arrays plus per-row offsets, so row ``r``
        owns ``flat[offsets[r]:offsets[r+1]]``.
        """
        if starts.size == 0:
            empty = np.empty(0)
            return empty, empty, np.zeros(starts.shape[0] + 1, dtype=np.int64)
        clipped_s = np.clip(starts, 0.0, None)
        clipped_e = np.minimum(ends, horizon)
        keep = ((ends > 0.0) & (starts < horizon)
                & (clipped_e > clipped_s))
        counts = keep.sum(axis=1)
        offsets = np.zeros(starts.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return clipped_s[keep], clipped_e[keep], offsets
