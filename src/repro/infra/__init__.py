"""Best-Effort DCI substrate: node availability models and trace catalog.

The paper drives its simulations with six availability traces (Table 2):
two desktop grids from the Failure Trace Archive (``seti``, ``nd``), two
best-effort Grid'5000 clusters (``g5klyo``, ``g5kgre``) and two Amazon
EC2 spot-market scenarios (``spot10``, ``spot100``).  None of those
datasets is available offline, so this package *synthesizes* traces
whose published statistics (duration quartiles, mean node counts, node
power) match Table 2 — see DESIGN.md §3 for the substitution argument.
"""

from repro.infra.catalog import TRACE_NAMES, TraceSpec, get_trace_spec, list_trace_specs
from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.infra.quantile import PiecewiseLogQuantile
from repro.infra.renewal import RenewalTraceGenerator
from repro.infra.spot import SpotMarket, spot_intervals
from repro.infra.stats import TraceStats, measure_trace

__all__ = [
    "Node",
    "NodePool",
    "PiecewiseLogQuantile",
    "RenewalTraceGenerator",
    "SpotMarket",
    "spot_intervals",
    "TraceSpec",
    "TraceStats",
    "TRACE_NAMES",
    "get_trace_spec",
    "list_trace_specs",
    "measure_trace",
]
