"""The six BE-DCI traces of Table 2, as generation targets.

Every :class:`TraceSpec` carries the statistics published in Table 2 of
the paper (mean/min/max available nodes, duration quartiles, node
power) and knows how to *materialize* itself into a list of
:class:`~repro.infra.node.Node` schedules:

* ``seti``, ``nd``      — desktop grids: quartile-fitted alternating
  renewal (`repro.infra.renewal`);
* ``g5klyo``, ``g5kgre`` — best-effort grids: renewal churn modulated by
  a day-period participation gate (`repro.infra.gantt`);
* ``spot10``, ``spot100`` — EC2 spot bid ladders over a synthetic price
  market (`repro.infra.spot`).

``materialize(..., max_nodes=...)`` caps the node count: execution
campaigns do not need all 24 391 seti nodes when a BoT can only occupy
a few thousand workers at once (DESIGN.md §4).  The Table 2 benchmark
materializes the full-size traces to report faithful statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.infra.gantt import GanttTraceGenerator
from repro.infra.node import Node
from repro.infra.quantile import PiecewiseLogQuantile
from repro.infra.renewal import RenewalTraceGenerator
from repro.infra.spot import SpotMarket, SpotMarketParams, spot_nodes

__all__ = ["TraceSpec", "TRACE_NAMES", "get_trace_spec", "list_trace_specs"]

#: Trace family: drives which generator materializes the spec.
DESKTOP_GRID = "desktop_grid"
BEST_EFFORT_GRID = "best_effort_grid"
SPOT = "spot"

#: BE-DCI class labels used by Table 1 of the paper.
DCI_CLASS_LABEL = {
    DESKTOP_GRID: "Desktop Grids",
    BEST_EFFORT_GRID: "Best Effort Grids",
    SPOT: "Spot Instances",
}


@dataclass(frozen=True)
class TraceSpec:
    """Generation target for one BE-DCI availability trace (Table 2)."""

    name: str
    family: str
    length_days: float
    mean_nodes: float
    std_nodes: float
    min_nodes: int
    max_nodes: int
    avail_quartiles: Tuple[float, float, float]
    unavail_quartiles: Tuple[float, float, float]
    power_mean: float
    power_std: float
    #: upper-tail extension of the duration distributions (DESIGN.md §3)
    avail_tail_factor: float = 40.0
    unavail_tail_factor: float = 40.0
    #: best-effort grids: day/night participation-gate depth (0 = no
    #: tide; 1 = full swings).  Deep gates reproduce large count swings
    #: but chop long availability runs into window-sized pieces, so
    #: traces with long Q3 availability use a shallow gate.
    gate_depth: float = 1.0
    #: spot-only: the constant hourly budget S of the bid ladder
    spot_budget: Optional[float] = None
    spot_params: SpotMarketParams = field(default_factory=SpotMarketParams)

    # ------------------------------------------------------------------
    def _renewal(self) -> RenewalTraceGenerator:
        avail = PiecewiseLogQuantile(self.avail_quartiles,
                                     tail_factor=self.avail_tail_factor)
        unavail = PiecewiseLogQuantile(self.unavail_quartiles,
                                       tail_factor=self.unavail_tail_factor)
        return RenewalTraceGenerator(avail, unavail,
                                     self.power_mean, self.power_std)

    def natural_node_count(self) -> int:
        """Node count implied by Table 2's mean-available column."""
        if self.family == SPOT:
            assert self.spot_budget is not None
            return int(self.spot_budget / self.spot_params.floor)
        if self._gated():
            gen = GanttTraceGenerator(self._renewal(),
                                      gate_depth=self.gate_depth)
            return gen.nodes_for_mean(self.mean_nodes)
        return self._renewal().nodes_for_mean(self.mean_nodes)

    def _gated(self) -> bool:
        """Whether materialization applies the day/night gate.

        Best-effort grids always do (cluster load tides); desktop grids
        do when ``gate_depth`` > 0 (volunteer diurnal cycles — the
        source of seti's 15868..31092 count swings).
        """
        if self.family == BEST_EFFORT_GRID:
            return True
        return self.family == DESKTOP_GRID and self.gate_depth > 0.0

    @property
    def participation(self) -> float:
        """Mean fraction of the population the gate lets participate
        (node-cap heuristics divide by this)."""
        return 0.5 if self._gated() else 1.0

    def materialize(self, rng: np.random.Generator, horizon: float,
                    max_nodes: Optional[int] = None) -> List[Node]:
        """Generate node schedules over ``[0, horizon)`` seconds.

        ``max_nodes`` caps the materialized population; when capped the
        per-node behaviour (churn, power) is unchanged, only the pool
        depth shrinks, which does not alter execution dynamics as long
        as the cap exceeds the BoT's peak worker demand.
        """
        natural = self.natural_node_count()
        n = natural if max_nodes is None else min(natural, int(max_nodes))
        if n <= 0:
            raise ValueError("node cap must be positive")
        if self.family == SPOT:
            assert self.spot_budget is not None
            market = SpotMarket(rng, horizon, self.spot_params)
            return spot_nodes(rng, market, self.spot_budget,
                              self.power_mean, self.power_std,
                              max_instances=n, tag=self.name)
        if self._gated():
            gen = GanttTraceGenerator(self._renewal(),
                                      gate_depth=self.gate_depth)
            return gen.generate(rng, n, horizon, tag=self.name)
        return self._renewal().generate(rng, n, horizon, tag=self.name)

    @property
    def dci_class(self) -> str:
        """Human-readable BE-DCI class (Table 1 row label)."""
        return DCI_CLASS_LABEL[self.family]


def _build_catalog() -> Dict[str, TraceSpec]:
    """Table 2 of the paper, verbatim targets."""
    return {
        "seti": TraceSpec(
            name="seti", family=DESKTOP_GRID, length_days=120,
            mean_nodes=24391, std_nodes=6793, min_nodes=15868, max_nodes=31092,
            avail_quartiles=(61, 531, 5407),
            unavail_quartiles=(174, 501, 3078),
            power_mean=1000, power_std=250,
            avail_tail_factor=40, unavail_tail_factor=60,
            gate_depth=0.4),
        "nd": TraceSpec(
            name="nd", family=DESKTOP_GRID, length_days=413.87,
            mean_nodes=180, std_nodes=4.129, min_nodes=77, max_nodes=501,
            avail_quartiles=(952, 3840, 26562),
            unavail_quartiles=(640, 960, 1920),
            power_mean=1000, power_std=250,
            avail_tail_factor=20, unavail_tail_factor=30,
            gate_depth=0.0),
        "g5klyo": TraceSpec(
            name="g5klyo", family=BEST_EFFORT_GRID, length_days=31,
            mean_nodes=90.573, std_nodes=105.4, min_nodes=6, max_nodes=226,
            avail_quartiles=(21, 51, 63),
            unavail_quartiles=(191, 236, 480),
            power_mean=3000, power_std=0,
            # sub-minute median churn but hour-long night windows:
            avail_tail_factor=600, unavail_tail_factor=40),
        "g5kgre": TraceSpec(
            name="g5kgre", family=BEST_EFFORT_GRID, length_days=31,
            mean_nodes=474.69, std_nodes=178.7, min_nodes=184, max_nodes=591,
            avail_quartiles=(5, 182, 11268),
            unavail_quartiles=(23, 547, 6891),
            power_mean=3000, power_std=0,
            avail_tail_factor=20, unavail_tail_factor=20,
            gate_depth=0.35),
        "spot10": TraceSpec(
            name="spot10", family=SPOT, length_days=90,
            mean_nodes=82.186, std_nodes=3.814, min_nodes=29, max_nodes=87,
            avail_quartiles=(4415, 5432, 17109),
            unavail_quartiles=(4162, 5034, 9976),
            power_mean=3000, power_std=300,
            spot_budget=10.0),
        "spot100": TraceSpec(
            name="spot100", family=SPOT, length_days=90,
            mean_nodes=823.95, std_nodes=4.945, min_nodes=196, max_nodes=877,
            avail_quartiles=(1063, 5566, 22490),
            unavail_quartiles=(383, 1906, 10274),
            power_mean=3000, power_std=300,
            spot_budget=100.0),
    }


_CATALOG = _build_catalog()
TRACE_NAMES: Tuple[str, ...] = tuple(_CATALOG)


def get_trace_spec(name: str) -> TraceSpec:
    """Look up one of the six Table 2 traces by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r}; available: {', '.join(TRACE_NAMES)}"
        ) from None


def list_trace_specs() -> List[TraceSpec]:
    """All six Table 2 trace specs, catalog order."""
    return [_CATALOG[n] for n in TRACE_NAMES]
