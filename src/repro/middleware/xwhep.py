"""XtremWeb-HEP middleware model.

XWHEP handles volatility with *failure detection*: workers send a
keep-alive message every minute and the server reassigns the task of
any worker silent for ``worker_timeout`` seconds (§4.1.3 standard
parameters: ``keep_alive_period=60``, ``worker_timeout=900``).  There
is no replication — each task runs once at a time — and a preempted
worker loses its work entirely (the pilot job is killed with the
best-effort slot; XtremWeb restarts tasks from scratch).

Consequences the experiments rely on: the tail of an XWHEP execution
costs roughly (lost work + 900 s detection + rerun) per unlucky task,
an order of magnitude less than BOINC's one-day ``delay_bound`` — which
is exactly the asymmetry visible in the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.base import DGServer, TaskState
from repro.simulator.engine import PRIORITY_INFRA, Simulation

__all__ = ["XWHepConfig", "XWHepServer"]


@dataclass(frozen=True)
class XWHepConfig:
    """Standard XWHEP parameters (paper §4.1.3)."""

    keep_alive_period: float = 60.0
    worker_timeout: float = 900.0

    def __post_init__(self) -> None:
        if self.keep_alive_period <= 0 or self.worker_timeout <= 0:
            raise ValueError("periods must be positive")
        if self.worker_timeout < self.keep_alive_period:
            raise ValueError("worker_timeout must be >= keep_alive_period")


class XWHepServer(DGServer):
    """Single-execution server with heartbeat failure detection."""

    def __init__(self, sim: Simulation, pool: NodePool,
                 config: Optional[XWHepConfig] = None, name: str = "xwhep"):
        super().__init__(sim, pool, name)
        self.config = config or XWHepConfig()
        #: incomplete tasks, for cloud duplication candidate scans
        self._incomplete: set[TaskState] = set()
        # Same-instant preemption waves (a DCI-wide availability edge
        # kills many pilot jobs at once) and the detection tick 900 s
        # later batch through the engine; handlers replay the per-event
        # body in seq order, which is exact by construction.
        sim.register_batch(self._preempt, self._preempt_batch)
        sim.register_batch(self._detect, self._detect_batch)

    # ------------------------------------------------------------------
    # base hooks
    # ------------------------------------------------------------------
    def _enqueue_new(self, st: TaskState) -> None:
        self._incomplete.add(st)
        st.queued = True
        self.pending.append(st)

    def _pick_unit(self, node: Node) -> Optional[TaskState]:
        pending = self.pending
        while pending:
            st = pending.popleft()
            if st.done:
                continue
            st.queued = False
            return st
        return None

    # The bulk `_dispatch` precondition is the base's unconditional
    # True: `_pick_unit` never inspects the node (pure FIFO over the
    # non-done entries, the same order the bulk pass pairs in — the
    # `_arrive_batch` argument below, per-pass instead of per-storm),
    # so only the pick's ``queued`` side effect needs replaying.
    def _consume_bulk(self, units) -> None:
        for st in units:
            st.queued = False

    def _execute(self, st: TaskState, node: Node, interval_end: float,
                 is_dup: bool = False) -> None:
        t = self.sim.now
        self._mark_assigned(st, node)
        duration = st.task.duration_on(node.power)
        if t + duration <= interval_end:
            self.sim.at(t + duration, self._finish, st, node, is_dup)
        else:
            self.sim.at(interval_end, self._preempt, st, node, is_dup,
                        priority=PRIORITY_INFRA)

    # ------------------------------------------------------------------
    # execution lifecycle
    # ------------------------------------------------------------------
    def _finish(self, st: TaskState, node: Node, is_dup: bool) -> None:
        t = self.sim.now
        self._node_freed(node)
        st.add_outstanding(-1)
        if is_dup:
            st.add_cloud_dups(-1)
        if st.done:
            self.stats.discarded_results += 1
        else:
            self._complete_task(st)
            self._incomplete.discard(st)
        self.pool.release(node, t)
        self._dispatch()

    def _preempt(self, st: TaskState, node: Node, is_dup: bool) -> None:
        """The node's availability interval ended mid-execution: the
        pilot job dies and all work is lost.  The server only learns
        about it ``worker_timeout`` seconds after the last heartbeat."""
        t = self.sim.now
        self._node_freed(node)
        self.stats.preemptions += 1
        st.add_outstanding(-1)
        if is_dup:
            st.add_cloud_dups(-1)
        self.pool.preempted(node, t)
        self.sim.schedule(self.config.worker_timeout, self._detect, st)
        self._dispatch()

    def _preempt_batch(self, argslist) -> None:
        for args in argslist:
            self._preempt(*args)

    def _detect_batch(self, argslist) -> None:
        for (st,) in argslist:
            self._detect(st)

    # ------------------------------------------------------------------
    def _arrive_batch(self, argslist) -> None:
        """Arrival storm with one merged dispatch.

        Exactness argument: XWHEP's :meth:`_pick_unit` ignores the node
        (FIFO popleft), so the (node draw, task) pairing of one
        dispatch over the concatenated queue is exactly the
        concatenation of the per-arrival dispatches — the pool's RNG
        draw sequence, the assignment order and every scheduled
        lifecycle event (and its seq) are identical.  Once the pool
        runs dry mid-storm, both shapes make zero further draws
        (``acquire`` returns None only with empty draw lists) and arm
        the same single wake-up.  BOINC cannot share this shortcut: its
        one-result-per-user eligibility scan can set a drawn node aside
        under one pending queue but match it under the merged one,
        which shifts the draw sequence.
        """
        for bot_id, task in argslist:
            self._arrive_one(bot_id, task)
        self._dispatch()

    def _detect(self, st: TaskState) -> None:
        """Heartbeat silence exceeded ``worker_timeout``: reissue."""
        self.stats.timeouts += 1
        if st.done or st.queued:
            return
        self.stats.reissues += 1
        st.queued = True
        self.pending.append(st)
        self._dispatch()

    # ------------------------------------------------------------------
    # task completion cleanup shared with external completions
    # ------------------------------------------------------------------
    def external_complete(self, gtid, t) -> bool:
        news = super().external_complete(gtid, t)
        if news:
            self._incomplete.discard(self.tasks[gtid])
        return news

    # ------------------------------------------------------------------
    # Reschedule-strategy cloud interface
    # ------------------------------------------------------------------
    def fetch_for_cloud(self, node: Node) -> Optional[TaskState]:
        """Serve a dedicated cloud worker: pending tasks first, then a
        duplicate of the least-served uncompleted task (§3.5 R)."""
        st = self._pick_unit(node)
        if st is not None:
            self._execute(st, node, float("inf"))
            return st
        best: Optional[TaskState] = None
        best_key = None
        for cand in self._incomplete:
            if cand.done or cand.queued:
                continue
            key = (cand.cloud_dups,
                   cand.first_assign_time if cand.first_assign_time
                   is not None else float("inf"),
                   cand.gtid)
            if best_key is None or key < best_key:
                best, best_key = cand, key
        if best is None:
            return None
        best.add_cloud_dups(1)
        self._execute(best, node, float("inf"), is_dup=True)
        return best
