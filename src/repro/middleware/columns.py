"""Columnar task state mirrored alongside ``TaskState`` objects.

The bulk dispatch pass (:meth:`DGServer._dispatch`) resolves its
candidate set with vectorized masks — "which pending entries are not
done", "do any live workunits already have assignments" — instead of
touching one Python object per queue entry.  :class:`TaskColumns`
holds the fields those masks read as flat NumPy arrays, one row per
task ever admitted to a server:

* ``done`` — ``bool``; the task reached completion;
* ``outstanding`` — ``int32``; replicas currently executing;
* ``first_assign`` — ``float64``; first assignment time (NaN = never
  assigned — mirrors the object field's ``None``);
* ``cloud_dups`` — ``int32``; replicas currently on cloud workers.

**Sync invariant** (the PR 8 ``HandleLedger`` discipline): every
mutation of a mirrored field goes through a ``TaskState`` mutator
method (:meth:`TaskState.mark_done`, :meth:`~TaskState.add_outstanding`,
:meth:`~TaskState.set_first_assign`, :meth:`~TaskState.add_cloud_dups`)
which writes the object field and the column cell in one step; the
object fields stay the source of truth and the columns never disagree.
Direct attribute writes on a column-backed ``TaskState`` are a bug —
``tests/test_dispatch_columns.py`` pins the invariant under random
middleware churn.

Rows are append-only (tasks are never forgotten within a run) and the
arrays grow by amortized doubling, so ``add`` is O(1) and the masks
index with the row lists gathered from the pending queue.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["TaskColumns"]

_CHUNK = 256


class TaskColumns:
    """Flat mirrors of the dispatch-relevant ``TaskState`` fields."""

    __slots__ = ("n", "gtids", "done", "outstanding", "first_assign",
                 "cloud_dups")

    def __init__(self) -> None:
        self.n = 0
        self.gtids: List[int] = []
        self.done = np.zeros(_CHUNK, dtype=bool)
        self.outstanding = np.zeros(_CHUNK, dtype=np.int32)
        self.first_assign = np.full(_CHUNK, np.nan, dtype=np.float64)
        self.cloud_dups = np.zeros(_CHUNK, dtype=np.int32)

    def add(self, gtid: int) -> int:
        """Append a row for a newly admitted task; returns its row id."""
        row = self.n
        if row == self.done.shape[0]:
            self._grow()
        self.gtids.append(gtid)
        self.n = row + 1
        return row

    def _grow(self) -> None:
        cap = 2 * self.done.shape[0]
        for name, fill in (("done", False), ("outstanding", 0),
                           ("first_assign", np.nan), ("cloud_dups", 0)):
            old = getattr(self, name)
            new = np.full(cap, fill, dtype=old.dtype)
            new[:old.shape[0]] = old
            setattr(self, name, new)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = int(np.sum(~self.done[:self.n]))
        return f"<TaskColumns n={self.n} live={live}>"
