"""Desktop-grid middleware simulators: BOINC and XtremWeb-HEP.

The paper's simulator "models two middleware which represent two
different approaches for handling hosts volatility": BOINC relies on
task replication, a validation quorum and a one-day result deadline
(``delay_bound``), while XtremWeb-HEP detects worker failures through
heartbeats and reissues lost tasks (§1, §4.1.3).  Both are implemented
here over the shared :class:`~repro.middleware.base.DGServer` dispatch
machinery, with the exact standard parameters the paper lists.
"""

from repro.middleware.base import DGServer, ServerObserver, ServerStats, TaskState
from repro.middleware.boinc import BoincConfig, BoincServer
from repro.middleware.xwhep import XWHepConfig, XWHepServer

__all__ = [
    "DGServer",
    "ServerObserver",
    "ServerStats",
    "TaskState",
    "BoincConfig",
    "BoincServer",
    "XWHepConfig",
    "XWHepServer",
    "MIDDLEWARE_NAMES",
    "make_server",
]

MIDDLEWARE_NAMES = ("boinc", "xwhep")

_SERVER_CLASSES = {"boinc": BoincServer, "xwhep": XWHepServer}


def resolve_server(kind):
    """The server class for a middleware name (assembly-cacheable)."""
    try:
        return _SERVER_CLASSES[kind.lower()]
    except KeyError:
        raise ValueError(f"unknown middleware {kind!r}; expected one of "
                         f"{MIDDLEWARE_NAMES}") from None


def make_server(kind, sim, pool, config=None, name=None):
    """Factory: build a BOINC or XWHEP server by name."""
    cls = resolve_server(kind)
    return cls(sim, pool, config=config, name=name or kind.lower())
